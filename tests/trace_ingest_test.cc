/**
 * @file
 * Adversarial tests for the hardened external-trace front-end:
 * golden round trips for both containers, format sniffing, every
 * truncation boundary class, bit-flips and length-field lies,
 * quarantine-and-resync byte-range accounting, the bad-record /
 * record-count / resident-size / wall-clock budgets, cancellation,
 * cross-format stream equivalence, suite-level failure isolation
 * through Runner + SuiteHealth, and the quarantine retention
 * satellite.  Everything here must also hold under ASan/UBSan (the
 * CI fuzz job runs the same ingest paths sanitized).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/policy_factory.hh"
#include "sim/runner.hh"
#include "trace/ingest/ingest.hh"
#include "util/quarantine.hh"
#include "util/random.hh"

namespace chirp
{
namespace
{

Addr
canonical(std::uint64_t raw)
{
    return raw & 0x0000'7fff'ffff'ffffull;
}

TraceRecord
sampleRecord(Rng &rng)
{
    TraceRecord rec;
    rec.pc = canonical(rng.next()) | 1;
    rec.cls = static_cast<InstClass>(
        rng.below(static_cast<std::uint64_t>(InstClass::NumClasses)));
    if (isMemory(rec.cls))
        rec.effAddr = canonical(rng.next());
    if (isBranch(rec.cls)) {
        rec.taken = rec.cls != InstClass::CondBranch || rng.chance(0.5);
        rec.target = canonical(rng.next()) | 1;
    }
    return rec;
}

std::vector<TraceRecord>
sampleStream(std::size_t n, std::uint64_t seed = 42)
{
    Rng rng(seed);
    std::vector<TraceRecord> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        records.push_back(sampleRecord(rng));
    return records;
}

std::string
encodeChampSim(const std::vector<TraceRecord> &records)
{
    std::string out;
    for (const TraceRecord &rec : records)
        appendChampSimRecord(out, rec);
    return out;
}

std::string
encodeCvp(const std::vector<TraceRecord> &records)
{
    std::string out;
    appendCvpHeader(out, records.size());
    for (const TraceRecord &rec : records)
        appendCvpRecord(out, rec);
    return out;
}

IngestResult
ingest(const std::string &data,
       ExternalTraceFormat format = ExternalTraceFormat::Auto,
       IngestLimits limits = {})
{
    return ingestTraceBytes(data.data(), data.size(), "test", limits,
                            format);
}

std::string
writeTemp(const char *tag, const std::string &data)
{
    const std::string path =
        ::testing::TempDir() + "chirp_ingest_" + tag;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    return path;
}

TEST(ChampSimIngest, RoundTripsCanonicalStream)
{
    const auto records = sampleStream(300);
    const auto result = ingest(encodeChampSim(records),
                               ExternalTraceFormat::ChampSim);
    ASSERT_EQ(result.trace->size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(result.trace->record(i),
                  champSimCanonical(records[i]))
            << "record " << i;
    EXPECT_EQ(result.stats.badRecords, 0u);
    EXPECT_EQ(result.stats.quarantinedBytes, 0u);
    EXPECT_EQ(result.format, ExternalTraceFormat::ChampSim);
}

TEST(CvpIngest, RoundTripsExactly)
{
    const auto records = sampleStream(300);
    const auto result =
        ingest(encodeCvp(records), ExternalTraceFormat::Cvp);
    ASSERT_EQ(result.trace->size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(result.trace->record(i), records[i])
            << "record " << i;
    EXPECT_EQ(result.stats.badRecords, 0u);
}

TEST(Ingest, AutoSniffsBothContainers)
{
    const auto records = sampleStream(64);
    EXPECT_EQ(ingest(encodeChampSim(records)).format,
              ExternalTraceFormat::ChampSim);
    EXPECT_EQ(ingest(encodeCvp(records)).format,
              ExternalTraceFormat::Cvp);
}

TEST(Ingest, CrossFormatEquivalence)
{
    // The same canonical stream encoded in both containers must
    // materialize identically — the invariant the CI CSV-equality
    // matrix leans on.
    std::vector<TraceRecord> canon;
    for (const TraceRecord &rec : sampleStream(256))
        canon.push_back(champSimCanonical(rec));
    const auto a = ingest(encodeChampSim(canon));
    const auto b = ingest(encodeCvp(canon));
    ASSERT_EQ(a.trace->size(), b.trace->size());
    for (std::size_t i = 0; i < canon.size(); ++i)
        EXPECT_EQ(a.trace->record(i), b.trace->record(i));
}

TEST(Ingest, EmptyInputIsAHardError)
{
    try {
        ingest("");
        FAIL() << "empty input must not produce a trace";
    } catch (const IngestError &err) {
        EXPECT_EQ(err.kind(), DecodeErrorKind::TruncatedHeader);
    }
}

TEST(Ingest, UnrecognizableInputIsAHardError)
{
    // 100 bytes: no CVPT magic, not a 64-byte multiple.
    try {
        ingest(std::string(100, 'x'));
        FAIL() << "unrecognizable input must not produce a trace";
    } catch (const IngestError &err) {
        EXPECT_EQ(err.kind(), DecodeErrorKind::UnknownFormat);
    }
}

TEST(Ingest, AllGarbageExhaustsIntoHardError)
{
    // Sniffs as ChampSim (multiple of 64) but no slot decodes; the
    // stream must end in an error, not an empty "success".
    Rng rng(9);
    std::string garbage;
    for (std::size_t i = 0; i < 64 * 8; ++i)
        garbage += static_cast<char>(0x80 | (rng.next() & 0x7f));
    EXPECT_THROW(ingest(garbage), IngestError);
}

TEST(ChampSimIngest, TruncationAtEveryBoundaryClass)
{
    const auto records = sampleStream(8);
    const std::string whole = encodeChampSim(records);
    // Chop inside every record slot: the prefix records survive, the
    // stub is quarantined, and nothing crashes.
    for (std::size_t cut = 1; cut < 64; cut += 13) {
        for (std::size_t slot = 0; slot < records.size(); ++slot) {
            const std::string data =
                whole.substr(0, slot * 64 + cut);
            if (data.size() % 64 == 0)
                continue; // re-sniffs as well-formed; not this test
            if (slot == 0) {
                // Only a stub: no decodable records is a hard error.
                EXPECT_THROW(
                    ingest(data, ExternalTraceFormat::ChampSim),
                    IngestError);
                continue;
            }
            const auto result =
                ingest(data, ExternalTraceFormat::ChampSim);
            EXPECT_EQ(result.trace->size(), slot);
            EXPECT_GE(result.stats.badRecords, 1u);
        }
    }
}

TEST(CvpIngest, TruncationNearEveryFieldBoundary)
{
    const auto records = sampleStream(4);
    const std::string whole = encodeCvp(records);
    for (std::size_t cut = 17; cut < whole.size(); ++cut) {
        const std::string data = whole.substr(0, cut);
        try {
            const auto result =
                ingest(data, ExternalTraceFormat::Cvp);
            EXPECT_LE(result.trace->size(), records.size());
        } catch (const IngestError &) {
            // Acceptable when nothing decodes.
        }
    }
}

TEST(CvpIngest, ResyncSkipsCorruptRegionAndLogsRange)
{
    const auto records = sampleStream(64);
    std::string data = encodeCvp(records);
    // Stomp a run of bytes in the middle of the body.
    const std::size_t at = data.size() / 2;
    for (std::size_t i = 0; i < 24; ++i)
        data[at + i] = static_cast<char>(0xee);
    const auto result = ingest(data, ExternalTraceFormat::Cvp);
    // Most records survive; the corrupt region is quarantined with
    // its byte range on the books.
    EXPECT_GT(result.trace->size(), records.size() / 2);
    EXPECT_LT(result.trace->size(), records.size() + 1);
    EXPECT_GE(result.stats.quarantinedRangeCount, 1u);
    ASSERT_FALSE(result.stats.ranges.empty());
    const auto &range = result.stats.ranges.front();
    EXPECT_LT(range.begin, range.end);
    EXPECT_LE(range.end, data.size());
}

TEST(CvpIngest, LengthFieldLiesAreRejectedNotTrusted)
{
    // nRegs = 255 would walk far past the record: ImpossibleLength,
    // quarantined, stream continues.
    const auto records = sampleStream(8);
    std::string data;
    appendCvpHeader(data, records.size() + 1);
    for (std::size_t i = 0; i < 4; ++i)
        appendCvpRecord(data, records[i]);
    std::string lie;
    lie.append(8, '\x01'); // pc
    lie += static_cast<char>(0); // Alu
    lie += static_cast<char>(0); // flags
    lie += static_cast<char>(0xff); // nRegs lie
    data += lie;
    for (std::size_t i = 4; i < 8; ++i)
        appendCvpRecord(data, records[i]);
    const auto result = ingest(data, ExternalTraceFormat::Cvp);
    EXPECT_GE(result.trace->size(), 8u);
    EXPECT_GE(result.stats.badRecords, 1u);
}

TEST(CvpIngest, HugeDeclaredCountDoesNotPreallocate)
{
    // A header claiming 2^32 records over an empty body must fail
    // fast on "no decodable records" — not OOM on a reserve.
    std::string data;
    appendCvpHeader(data, 0xffff'ffffull);
    EXPECT_THROW(ingest(data, ExternalTraceFormat::Cvp), IngestError);
}

TEST(CvpIngest, DeclaredCountMismatchIsChargedNotFatal)
{
    const auto records = sampleStream(16);
    std::string data;
    appendCvpHeader(data, 1000); // lies: body holds 16
    for (const TraceRecord &rec : records)
        appendCvpRecord(data, rec);
    const auto result = ingest(data, ExternalTraceFormat::Cvp);
    EXPECT_EQ(result.trace->size(), records.size());
    EXPECT_GE(result.stats.badRecords, 1u);
}

TEST(CvpIngest, ReservedFlagBitsQuarantine)
{
    const auto records = sampleStream(4);
    std::string data = encodeCvp(records);
    data[16 + 9] = static_cast<char>(0x80); // reserved flag bit set
    const auto result = ingest(data, ExternalTraceFormat::Cvp);
    EXPECT_GE(result.stats.badRecords, 1u);
    EXPECT_LT(result.trace->size(), records.size() + 1);
}

TEST(Ingest, BadRecordBudgetFailsTheStream)
{
    // 32 corrupt slots against a budget of 8: IngestError, suite
    // health decides what happens next — never a crash.
    const auto good = sampleStream(4);
    std::string data = encodeChampSim(good);
    for (std::size_t i = 0; i < 32; ++i) {
        std::string bad(64, '\0');
        bad[8] = '\x07'; // is_branch out of range
        data += bad;
    }
    IngestLimits limits;
    limits.badRecordBudget = 8;
    try {
        ingest(data, ExternalTraceFormat::ChampSim, limits);
        FAIL() << "budget exhaustion must throw";
    } catch (const IngestError &err) {
        EXPECT_EQ(err.kind(), DecodeErrorKind::BudgetExceeded);
    }
}

TEST(Ingest, MaxRecordsCapsTheMaterialization)
{
    const auto records = sampleStream(100);
    IngestLimits limits;
    limits.maxRecords = 25;
    const auto result =
        ingest(encodeCvp(records), ExternalTraceFormat::Cvp, limits);
    EXPECT_EQ(result.trace->size(), 25u);
}

TEST(Ingest, ResidentByteBudgetFailsTheStream)
{
    const auto records = sampleStream(30000);
    IngestLimits limits;
    limits.maxResidentBytes = 1024; // ~40 records worth
    try {
        ingest(encodeChampSim(records), ExternalTraceFormat::ChampSim,
               limits);
        FAIL() << "resident budget must throw";
    } catch (const IngestError &err) {
        EXPECT_EQ(err.kind(), DecodeErrorKind::BudgetExceeded);
    }
}

TEST(Ingest, CancelTokenAbortsPromptly)
{
    const auto records = sampleStream(5000);
    std::atomic<bool> cancel{true};
    IngestLimits limits;
    limits.cancel = &cancel;
    try {
        ingest(encodeCvp(records), ExternalTraceFormat::Cvp, limits);
        FAIL() << "pre-raised cancel token must abort the ingest";
    } catch (const IngestError &err) {
        EXPECT_EQ(err.kind(), DecodeErrorKind::Cancelled);
    }
}

TEST(Ingest, ScopedCancelTokenAppliesWhenLimitsCarryNone)
{
    const auto records = sampleStream(5000);
    std::atomic<bool> cancel{true};
    ScopedIngestCancel scope(&cancel);
    EXPECT_THROW(ingest(encodeCvp(records), ExternalTraceFormat::Cvp),
                 IngestError);
}

TEST(Ingest, MissingFileIsUnreadable)
{
    try {
        ingestTraceFile("/nonexistent/chirp-no-such-trace");
        FAIL() << "missing file must throw";
    } catch (const IngestError &err) {
        EXPECT_EQ(err.kind(), DecodeErrorKind::Unreadable);
    }
}

TEST(Ingest, FileAndBytesPathsAgree)
{
    const auto records = sampleStream(128);
    const std::string data = encodeCvp(records);
    const std::string path = writeTemp("agree.cvp", data);
    const auto from_file = ingestTraceFile(path);
    const auto from_bytes = ingest(data);
    ASSERT_EQ(from_file.trace->size(), from_bytes.trace->size());
    for (std::size_t i = 0; i < from_file.trace->size(); ++i)
        EXPECT_EQ(from_file.trace->record(i),
                  from_bytes.trace->record(i));
    std::filesystem::remove(path);
}

TEST(Ingest, RepeatedIngestIsDeterministic)
{
    // Two independent ingests of the same bytes must materialize the
    // identical trace — the property CSV byte-equality rests on.
    const auto records = sampleStream(50);
    const auto once = ingest(encodeCvp(records));
    const auto twice = ingest(encodeCvp(records));
    ASSERT_EQ(once.trace->size(), twice.trace->size());
    for (std::size_t i = 0; i < once.trace->size(); ++i)
        EXPECT_EQ(once.trace->record(i), twice.trace->record(i));
}

TEST(IngestRunner, ExternalWorkloadRunsThroughTheSuite)
{
    const auto records = sampleStream(20000, 7);
    const std::string path =
        writeTemp("suite.cvp", encodeCvp(records));
    WorkloadConfig workload;
    workload.tracePath = path;
    workload.name = "external";
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    const Runner runner(config);
    const SimStats stats =
        runner.runOne(workload, Runner::factoryFor(PolicyKind::Lru));
    // Warmup instructions are accounted separately; together they
    // must cover exactly the ingested stream.
    EXPECT_EQ(stats.instructions + stats.warmupInstructions,
              records.size());
    EXPECT_GT(stats.instructions, 0u);
    std::filesystem::remove(path);
}

TEST(IngestRunner, CorruptFileFailsItsJobNotTheSuite)
{
    const auto records = sampleStream(20000, 8);
    const std::string good_path =
        writeTemp("good.cvp", encodeCvp(records));
    const std::string bad_path =
        writeTemp("bad.bin", std::string(100, 'z'));
    std::vector<WorkloadConfig> suite(2);
    suite[0].tracePath = bad_path;
    suite[0].name = "hostile";
    suite[1].tracePath = good_path;
    suite[1].name = "good";
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    Runner runner(config);
    auto health = std::make_shared<SuiteHealth>();
    runner.setHealth(health);
    const auto results = runner.runSuiteParallel(
        suite, Runner::factoryFor(PolicyKind::Lru), 1);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].stats.instructions, 0u);
    EXPECT_EQ(results[1].stats.instructions +
                  results[1].stats.warmupInstructions,
              records.size());
    EXPECT_EQ(health->failureCount(), 1u);
    EXPECT_EQ(health->okJobs(), 1u);
    std::filesystem::remove(good_path);
    std::filesystem::remove(bad_path);
}

TEST(IngestRunner, ParallelJobsMatchSerial)
{
    const auto records = sampleStream(30000, 9);
    const std::string path =
        writeTemp("par.champsim", encodeChampSim(records));
    std::vector<WorkloadConfig> suite(3);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        suite[i].tracePath = path;
        std::string name(1, 'w');
        name += std::to_string(i);
        suite[i].name = std::move(name);
    }
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    const Runner serial(config, 1);
    const Runner parallel(config, 3);
    const auto a = serial.runSuiteParallel(
        suite, Runner::factoryFor(PolicyKind::Lru), 1);
    const auto b = parallel.runSuiteParallel(
        suite, Runner::factoryFor(PolicyKind::Lru), 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].stats.instructions, b[i].stats.instructions);
        EXPECT_EQ(a[i].stats.l2TlbMisses, b[i].stats.l2TlbMisses);
    }
    std::filesystem::remove(path);
}

TEST(QuarantineRetention, KeepsOnlyNewestArtifacts)
{
    namespace fs = std::filesystem;
    resetQuarantineLog();
    const std::string dir =
        ::testing::TempDir() + "chirp_quarantine_retention";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::size_t keep = quarantineKeepCount();
    for (std::size_t i = 0; i < keep + 4; ++i) {
        std::string path = dir;
        path += "/trace";
        path += std::to_string(i);
        path += ".corrupt";
        std::ofstream(path) << "evidence " << i;
        noteQuarantined(path, "test corruption");
    }
    std::size_t remaining = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        remaining += entry.is_regular_file();
    EXPECT_EQ(remaining, keep);
    EXPECT_EQ(quarantinedArtifactCount(), keep + 4);
    const std::string summary = quarantineSummaryLine();
    EXPECT_NE(summary.find("quarantined"), std::string::npos);
    fs::remove_all(dir);
    resetQuarantineLog();
}

TEST(DecodeErrors, FormatNamesKindAndOffset)
{
    const DecodeError err{DecodeErrorKind::TruncatedRecord, 128,
                          "need 64 bytes"};
    const std::string text = err.format();
    EXPECT_NE(text.find("truncated record"), std::string::npos);
    EXPECT_NE(text.find("128"), std::string::npos);
    EXPECT_NE(text.find("need 64 bytes"), std::string::npos);
}

} // namespace
} // namespace chirp
