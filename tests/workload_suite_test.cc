/** @file Tests for the workload factory and suite enumeration. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "trace/workload_suite.hh"

namespace chirp
{
namespace
{

class WorkloadCategory : public ::testing::TestWithParam<Category>
{
};

TEST_P(WorkloadCategory, BuildsAndEmits)
{
    WorkloadConfig config;
    config.category = GetParam();
    config.seed = 77;
    config.length = 30000;
    auto prog = buildWorkload(config);
    ASSERT_NE(prog, nullptr);
    EXPECT_FALSE(prog->name().empty());
    TraceRecord rec;
    InstCount n = 0;
    bool saw_memory = false;
    bool saw_branch = false;
    while (prog->next(rec)) {
        saw_memory |= isMemory(rec.cls);
        saw_branch |= isBranch(rec.cls);
        ++n;
    }
    EXPECT_EQ(n, 30000u);
    EXPECT_TRUE(saw_memory);
    EXPECT_TRUE(saw_branch);
}

TEST_P(WorkloadCategory, ScaleGrowsFootprint)
{
    WorkloadConfig small;
    small.category = GetParam();
    small.seed = 5;
    small.length = 10000;
    small.scale = 0.5;
    WorkloadConfig big = small;
    big.scale = 2.0;
    const auto sp = buildWorkload(small);
    const auto bp = buildWorkload(big);
    EXPECT_GT(bp->dataFootprintPages(), sp->dataFootprintPages());
}

TEST_P(WorkloadCategory, SeedChangesBehaviourNotValidity)
{
    WorkloadConfig a;
    a.category = GetParam();
    a.seed = 1;
    a.length = 5000;
    WorkloadConfig b = a;
    b.seed = 2;
    const auto pa = buildWorkload(a);
    const auto pb = buildWorkload(b);
    TraceRecord ra;
    TraceRecord rb;
    int diff = 0;
    for (int i = 0; i < 5000; ++i) {
        if (!pa->next(ra) || !pb->next(rb))
            break;
        diff += !(ra == rb);
    }
    EXPECT_GT(diff, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCategories, WorkloadCategory,
    ::testing::Values(Category::Spec, Category::Database,
                      Category::Crypto, Category::Scientific,
                      Category::Web, Category::BigData),
    [](const ::testing::TestParamInfo<Category> &info) {
        return categoryName(info.param);
    });

TEST(WorkloadSuite, EnumeratesRequestedSize)
{
    SuiteOptions options;
    options.size = 13;
    options.traceLength = 10000;
    const auto suite = makeSuite(options);
    EXPECT_EQ(suite.size(), 13u);
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const auto &config : suite) {
        names.insert(config.name);
        seeds.insert(config.seed);
        EXPECT_EQ(config.length, 10000u);
        EXPECT_GT(config.scale, 0.3);
        EXPECT_LT(config.scale, 2.0);
    }
    EXPECT_EQ(names.size(), 13u) << "workload names must be unique";
    EXPECT_EQ(seeds.size(), 13u) << "workload seeds must be unique";
}

TEST(WorkloadSuite, CyclesThroughCategories)
{
    SuiteOptions options;
    options.size = 12;
    const auto suite = makeSuite(options);
    std::set<Category> seen;
    for (const auto &config : suite)
        seen.insert(config.category);
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(Category::NumCategories));
}

TEST(WorkloadSuite, DeterministicForSeed)
{
    SuiteOptions options;
    options.size = 6;
    const auto a = makeSuite(options);
    const auto b = makeSuite(options);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_DOUBLE_EQ(a[i].scale, b[i].scale);
    }
}

TEST(WorkloadSuite, EnvOverridesAreParsed)
{
    ::setenv("CHIRP_SUITE_SIZE", "4", 1);
    ::setenv("CHIRP_TRACE_LEN", "20000", 1);
    ::setenv("CHIRP_SEED", "9", 1);
    ::setenv("CHIRP_CATEGORY", "db", 1);
    const SuiteOptions options = suiteOptionsFromEnv();
    EXPECT_EQ(options.size, 4u);
    EXPECT_EQ(options.traceLength, 20000u);
    EXPECT_EQ(options.baseSeed, 9u);
    EXPECT_EQ(options.onlyCategory,
              static_cast<int>(Category::Database));
    const auto suite = makeSuite(options);
    for (const auto &config : suite)
        EXPECT_EQ(config.category, Category::Database);
    ::unsetenv("CHIRP_SUITE_SIZE");
    ::unsetenv("CHIRP_TRACE_LEN");
    ::unsetenv("CHIRP_SEED");
    ::unsetenv("CHIRP_CATEGORY");
}

} // namespace
} // namespace chirp
