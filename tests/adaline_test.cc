/** @file Tests for ADALINE and the reuse-dataset extraction. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "learn/adaline.hh"
#include "learn/reuse_dataset.hh"
#include "trace/synthetic/workload_factory.hh"
#include "util/random.hh"

namespace chirp
{
namespace
{

TEST(Adaline, LearnsLinearlySeparableFunction)
{
    // Target: sign of x0 (other inputs are noise).
    AdalineConfig config;
    config.inputs = 4;
    config.l1Decay = 0.0;
    Adaline model(config);
    Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
        std::vector<double> x(4);
        for (auto &v : x)
            v = rng.chance(0.5) ? 1.0 : -1.0;
        model.train(x, x[0]);
    }
    int correct = 0;
    for (int i = 0; i < 500; ++i) {
        std::vector<double> x(4);
        for (auto &v : x)
            v = rng.chance(0.5) ? 1.0 : -1.0;
        correct += model.predict(x) == (x[0] > 0);
    }
    EXPECT_GT(correct, 480);
}

TEST(Adaline, InformativeWeightDominates)
{
    AdalineConfig config;
    config.inputs = 8;
    Adaline model(config);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        std::vector<double> x(8);
        for (auto &v : x)
            v = rng.chance(0.5) ? 1.0 : -1.0;
        model.train(x, x[3]); // only input 3 matters
    }
    const auto importance = model.normalizedImportance();
    EXPECT_DOUBLE_EQ(importance[3], 1.0);
    for (std::size_t i = 0; i < 8; ++i) {
        if (i != 3) {
            EXPECT_LT(importance[i], 0.3) << "input " << i;
        }
    }
}

TEST(Adaline, L1RegularizationPrunesUselessWeights)
{
    AdalineConfig config;
    config.inputs = 6;
    config.l1Decay = 2e-3;
    Adaline model(config);
    Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
        std::vector<double> x(6);
        for (auto &v : x)
            v = rng.chance(0.5) ? 1.0 : -1.0;
        model.train(x, x[1]);
    }
    // Noise weights are shrunk toward zero; the informative weight
    // stays an order of magnitude larger.
    double max_noise = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
        if (i != 1) {
            max_noise = std::max(max_noise,
                                 std::abs(model.weights()[i]));
        }
    }
    EXPECT_LT(max_noise, 0.15);
    EXPECT_GT(std::abs(model.weights()[1]), 10.0 * max_noise);
}

TEST(Adaline, ResetZeroesWeights)
{
    Adaline model(AdalineConfig{});
    std::vector<double> x(24, 1.0);
    model.train(x, 1.0);
    model.reset();
    for (double w : model.weights())
        EXPECT_DOUBLE_EQ(w, 0.0);
    EXPECT_DOUBLE_EQ(model.bias(), 0.0);
}

TEST(Adaline, RejectsWrongInputWidth)
{
    Adaline model(AdalineConfig{.inputs = 4});
    std::vector<double> x(5, 1.0);
    EXPECT_EXIT(model.output(x), ::testing::ExitedWithCode(1),
                "input width");
}

TEST(PcBitsToInputs, MapsBitsToPlusMinusOne)
{
    const auto x = pcBitsToInputs(0b1010, 6);
    ASSERT_EQ(x.size(), 6u);
    EXPECT_DOUBLE_EQ(x[0], -1.0);
    EXPECT_DOUBLE_EQ(x[1], 1.0);
    EXPECT_DOUBLE_EQ(x[2], -1.0);
    EXPECT_DOUBLE_EQ(x[3], 1.0);
    EXPECT_DOUBLE_EQ(x[4], -1.0);
    EXPECT_DOUBLE_EQ(x[5], -1.0);
}

TEST(ReuseDataset, CollectsLabeledSamples)
{
    WorkloadConfig config;
    config.category = Category::Spec;
    config.seed = 3;
    config.length = 120000;
    const auto program = buildWorkload(config);
    const auto samples = collectReuseSamples(*program);
    ASSERT_GT(samples.size(), 100u);
    int reused = 0;
    for (const auto &sample : samples) {
        EXPECT_NE(sample.fillPc, 0u);
        reused += sample.reused;
    }
    // Both classes must be represented for the Fig 3 study to be
    // meaningful.
    EXPECT_GT(reused, 0);
    EXPECT_LT(reused, static_cast<int>(samples.size()));
}

TEST(ReuseDataset, MaxSamplesCapRespected)
{
    WorkloadConfig config;
    config.category = Category::Database;
    config.seed = 4;
    config.length = 200000;
    const auto program = buildWorkload(config);
    ReuseCollectorConfig collector;
    collector.maxSamples = 50;
    const auto samples = collectReuseSamples(*program, collector);
    EXPECT_GE(samples.size(), 50u);
    EXPECT_LE(samples.size(), 60u);
}

} // namespace
} // namespace chirp
