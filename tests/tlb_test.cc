/** @file Tests for the TLB, page walkers and hierarchy. */

#include <gtest/gtest.h>

#include "core/lru.hh"
#include "core/policy_factory.hh"
#include "tlb/tlb_hierarchy.hh"

namespace chirp
{
namespace
{

std::unique_ptr<Tlb>
tinyTlb(std::uint32_t entries = 16, std::uint32_t assoc = 4)
{
    TlbConfig config;
    config.name = "test-tlb";
    config.entries = entries;
    config.assoc = assoc;
    config.hitLatency = 8;
    return std::make_unique<Tlb>(
        config, std::make_unique<LruPolicy>(entries / assoc, assoc));
}

AccessInfo
load(Addr vaddr, Addr pc = 0x400000)
{
    AccessInfo info;
    info.pc = pc;
    info.vaddr = vaddr;
    info.cls = InstClass::Load;
    return info;
}

TEST(Tlb, MissThenHitSamePage)
{
    auto tlb = tinyTlb();
    EXPECT_FALSE(tlb->access(load(0x1000), 0, 0));
    EXPECT_TRUE(tlb->access(load(0x1008), 0, 1)) << "same page";
    EXPECT_TRUE(tlb->access(load(0x1fff), 0, 2)) << "same page";
    EXPECT_FALSE(tlb->access(load(0x2000), 0, 3)) << "next page";
    EXPECT_EQ(tlb->accesses(), 4u);
    EXPECT_EQ(tlb->hits(), 2u);
    EXPECT_EQ(tlb->misses(), 2u);
}

TEST(Tlb, AsidsDoNotAlias)
{
    auto tlb = tinyTlb();
    EXPECT_FALSE(tlb->access(load(0x1000), 1, 0));
    EXPECT_FALSE(tlb->access(load(0x1000), 2, 1))
        << "same page, different address space";
    EXPECT_TRUE(tlb->access(load(0x1000), 1, 2));
    EXPECT_TRUE(tlb->access(load(0x1000), 2, 3));
}

TEST(Tlb, FlushAsidIsSelective)
{
    auto tlb = tinyTlb();
    tlb->access(load(0x1000), 1, 0);
    tlb->access(load(0x1000), 2, 1);
    tlb->flushAsid(1, 2);
    EXPECT_FALSE(tlb->probe(0x1000, 1));
    EXPECT_TRUE(tlb->probe(0x1000, 2));
}

TEST(Tlb, FlushAllClearsEverything)
{
    auto tlb = tinyTlb();
    for (Addr page = 0; page < 8; ++page)
        tlb->access(load(page * kPageSize), 0, page);
    EXPECT_GT(tlb->validCount(), 0u);
    tlb->flushAll(100);
    EXPECT_EQ(tlb->validCount(), 0u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    // 2 sets x 2 ways; pages 0, 2, 4 all land in set 0.
    auto tlb = tinyTlb(4, 2);
    tlb->access(load(0 * kPageSize), 0, 0);
    tlb->access(load(2 * kPageSize), 0, 1);
    tlb->access(load(0 * kPageSize), 0, 2); // page 0 is MRU
    tlb->access(load(4 * kPageSize), 0, 3); // evicts page 2
    EXPECT_TRUE(tlb->probe(0 * kPageSize, 0));
    EXPECT_FALSE(tlb->probe(2 * kPageSize, 0));
    EXPECT_TRUE(tlb->probe(4 * kPageSize, 0));
}

TEST(Tlb, CapacityNeverExceeded)
{
    auto tlb = tinyTlb(16, 4);
    for (Addr page = 0; page < 100; ++page)
        tlb->access(load(page * kPageSize), 0, page);
    EXPECT_EQ(tlb->validCount(), 16u);
    EXPECT_EQ(tlb->evictions(), 100u - 16u);
}

TEST(Tlb, EfficiencyTracksLiveTime)
{
    auto tlb = tinyTlb(4, 2);
    // Page A: filled at t=0, hit at t=10, evicted via capacity.
    tlb->access(load(0 * kPageSize), 0, 0);
    tlb->access(load(0 * kPageSize), 0, 10);
    tlb->access(load(2 * kPageSize), 0, 20);
    tlb->access(load(4 * kPageSize), 0, 30); // evicts page 0 (t=30)
    // Generation: fill 0, last hit 10, evict 30 -> live 10/30.
    EXPECT_EQ(tlb->efficiency().generations(), 1u);
    EXPECT_NEAR(tlb->efficiency().efficiency(), 10.0 / 30.0, 1e-9);
}

TEST(Tlb, GeometryMismatchIsFatal)
{
    TlbConfig config;
    config.entries = 16;
    config.assoc = 4;
    EXPECT_EXIT(
        { Tlb tlb(config, std::make_unique<LruPolicy>(8, 2)); },
        ::testing::ExitedWithCode(1), "geometry");
}

TEST(FixedLatencyWalker, ChargesConstantPenalty)
{
    FixedLatencyWalker walker(150);
    EXPECT_EQ(walker.walk(0x1000), 150u);
    EXPECT_EQ(walker.walk(0x2000), 150u);
    EXPECT_EQ(walker.walks(), 2u);
    EXPECT_EQ(walker.totalCycles(), 300u);
    walker.setLatency(20);
    EXPECT_EQ(walker.walk(0x3000), 20u);
}

TEST(RadixPageWalker, PscsShortenRepeatedWalks)
{
    RadixPageWalker::Config config;
    config.memAccessCycles = 40;
    RadixPageWalker walker(config);
    // Cold walk: 4 levels.
    EXPECT_EQ(walker.walk(0x7000), 160u);
    // Neighboring page in the same 2MB region: PD PSC hit -> leaf
    // access only.
    EXPECT_EQ(walker.walk(0x8000), 40u);
    // Same 1GB but different 2MB region: PDPT hit -> 2 accesses.
    EXPECT_EQ(walker.walk(0x7000 + (Addr{1} << 21)), 80u);
    // Same 512GB but different 1GB: PML4 hit -> 3 accesses.
    EXPECT_EQ(walker.walk(0x7000 + (Addr{1} << 30)), 120u);
}

TEST(RadixPageWalker, PscCapacityEviction)
{
    RadixPageWalker::Config config;
    config.pdEntries = 2;
    RadixPageWalker walker(config);
    walker.walk(0x0);                   // region 0 cold
    walker.walk(Addr{1} << 21);         // region 1
    walker.walk(Addr{2} << 21);         // region 2 evicts region 0
    EXPECT_EQ(walker.walk(0x1000), config.memAccessCycles * 2)
        << "PD PSC no longer holds region 0, but PDPT does";
}

TEST(TlbHierarchy, L1FiltersL2)
{
    auto hierarchy = TlbHierarchy::makeDefault(
        makePolicy(PolicyKind::Lru, 128, 8),
        std::make_unique<FixedLatencyWalker>(150));
    AccessInfo info = load(0x5000);
    // Cold: L1 miss, L2 miss, walk.
    const TranslateResult first = hierarchy->translate(info, 0, 0);
    EXPECT_FALSE(first.l1Hit);
    EXPECT_FALSE(first.l2Hit);
    EXPECT_EQ(first.stall, 8u + 150u);
    // Warm: L1 hit, no stall.
    const TranslateResult second = hierarchy->translate(info, 0, 1);
    EXPECT_TRUE(second.l1Hit);
    EXPECT_EQ(second.stall, 0u);
}

TEST(TlbHierarchy, L2HitAfterL1Eviction)
{
    auto hierarchy = TlbHierarchy::makeDefault(
        makePolicy(PolicyKind::Lru, 128, 8),
        std::make_unique<FixedLatencyWalker>(150));
    hierarchy->translate(load(0x0), 0, 0);
    // Push 128 further pages through the L1 d-TLB (64 entries):
    // page 0 is evicted from L1 but still resident in the L2.
    for (Addr page = 1; page <= 128; ++page)
        hierarchy->translate(load(page * kPageSize), 0, page);
    const TranslateResult result =
        hierarchy->translate(load(0x0), 0, 200);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.stall, 8u);
}

TEST(TlbHierarchy, InstructionAndDataSidesAreSeparateL1s)
{
    auto hierarchy = TlbHierarchy::makeDefault(
        makePolicy(PolicyKind::Lru, 128, 8),
        std::make_unique<FixedLatencyWalker>(150));
    AccessInfo ifetch;
    ifetch.pc = 0x400000;
    ifetch.vaddr = 0x400000;
    ifetch.isInstr = true;
    hierarchy->translate(ifetch, 0, 0);
    // Data access to the same page: separate L1, but unified L2 hit.
    AccessInfo data = load(0x400008);
    const TranslateResult result = hierarchy->translate(data, 0, 1);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_TRUE(result.l2Hit);
}

} // namespace
} // namespace chirp
