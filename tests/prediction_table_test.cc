/** @file Tests for PredictionTable and the history registers. */

#include <gtest/gtest.h>

#include "core/history.hh"
#include "core/prediction_table.hh"

namespace chirp
{
namespace
{

TEST(PredictionTable, TrainAndRead)
{
    PredictionTable table(256, 2);
    const std::uint64_t sig = 0xabcd;
    EXPECT_EQ(table.read(sig), 0);
    table.increment(sig);
    table.increment(sig);
    EXPECT_EQ(table.read(sig), 2);
    table.decrement(sig);
    EXPECT_EQ(table.read(sig), 1);
}

TEST(PredictionTable, CountersSaturate)
{
    PredictionTable table(64, 2);
    for (int i = 0; i < 10; ++i)
        table.increment(7);
    EXPECT_EQ(table.read(7), table.counterMax());
    EXPECT_EQ(table.counterMax(), 3);
}

TEST(PredictionTable, ResetZeroes)
{
    PredictionTable table(64, 2);
    table.increment(1);
    table.increment(2);
    table.reset();
    EXPECT_EQ(table.read(1), 0);
    EXPECT_EQ(table.read(2), 0);
}

TEST(PredictionTable, SaltSeparatesTables)
{
    PredictionTable a(4096, 2, HashKind::Index, 1);
    PredictionTable b(4096, 2, HashKind::Index, 2);
    // The same signature should (almost always) map to different
    // slots under different salts.
    int different = 0;
    for (std::uint64_t sig = 0; sig < 64; ++sig)
        different += a.indexOf(sig) != b.indexOf(sig);
    EXPECT_GT(different, 56);
}

TEST(PredictionTable, StorageBits)
{
    PredictionTable table(4096, 2);
    EXPECT_EQ(table.storageBits(), 4096u * 2u);
    EXPECT_EQ(table.storageBits() / 8, 1024u) << "the paper's 1KB table";
}

TEST(PredictionTable, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT({ PredictionTable t(100, 2); },
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(WideShiftHistory, MatchesPaper64BitRegister)
{
    // 16 events x 4 bits = the paper's 64-bit path history register:
    // history = (history << 4) | pcBits.
    WideShiftHistory history(16, 4);
    EXPECT_EQ(history.widthBits(), 64u);
    std::uint64_t reference = 0;
    for (std::uint64_t v = 0; v < 100; ++v) {
        history.push(v & 0x3);
        reference = (reference << 4) | (v & 0x3);
        EXPECT_EQ(history.low64(), reference);
        EXPECT_EQ(history.folded(), reference);
    }
}

TEST(WideShiftHistory, WideRegistersRetainOldEvents)
{
    // 40 events x 4 bits = 160 bits across three words.
    WideShiftHistory history(40, 4);
    EXPECT_EQ(history.widthBits(), 160u);
    history.push(0x3);
    for (int i = 0; i < 38; ++i)
        history.push(0x0);
    // The event from 39 pushes ago is still in the register, so the
    // fold differs from an empty register.
    EXPECT_NE(history.folded(), 0u);
    // One more zero push (total 39) keeps it; the 40th push after
    // the event drops it off the top.
    history.push(0x0);
    EXPECT_NE(history.folded(), 0u);
    history.push(0x0);
    EXPECT_EQ(history.folded(), 0u);
}

TEST(WideShiftHistory, ResetClears)
{
    WideShiftHistory history(8, 8);
    history.push(0xff);
    history.reset();
    EXPECT_EQ(history.folded(), 0u);
}

TEST(ControlFlowHistory, PathCapturesPcBits32)
{
    HistoryConfig config;
    ControlFlowHistory history(config);
    // PC bits [3:2] = 0b11 shifted in with two leading zeros.
    history.onAccess(0xc);
    EXPECT_EQ(history.path().low64(), 0x3u);
    history.onAccess(0x4);
    EXPECT_EQ(history.path().low64(), 0x31u);
}

TEST(ControlFlowHistory, ZeroInjectionWidensStride)
{
    HistoryConfig with;
    with.pathZeroBits = 2;
    HistoryConfig without;
    without.pathZeroBits = 0;
    ControlFlowHistory a(with);
    ControlFlowHistory b(without);
    a.onAccess(0xc);
    a.onAccess(0xc);
    b.onAccess(0xc);
    b.onAccess(0xc);
    EXPECT_EQ(a.path().low64(), 0x33u) << "4-bit stride";
    EXPECT_EQ(b.path().low64(), 0xfu) << "2-bit stride";
}

TEST(ControlFlowHistory, BranchHistoriesCaptureBits114)
{
    HistoryConfig config;
    ControlFlowHistory history(config);
    const Addr pc = 0xabc0; // bits [11:4] = 0xbc
    history.onCondBranch(pc);
    EXPECT_EQ(history.cond().low64(), 0xbcu);
    history.onUncondIndirectBranch(pc);
    EXPECT_EQ(history.uncond().low64(), 0xbcu);
    // Disabled components ignore updates.
    HistoryConfig off;
    off.useCondHist = false;
    off.useUncondHist = false;
    ControlFlowHistory disabled(off);
    disabled.onCondBranch(pc);
    disabled.onUncondIndirectBranch(pc);
    EXPECT_EQ(disabled.cond().low64(), 0u);
    EXPECT_EQ(disabled.uncond().low64(), 0u);
}

TEST(ControlFlowHistory, SignatureComposition)
{
    HistoryConfig config;
    ControlFlowHistory history(config);
    history.onAccess(0x8);        // path = 0b10
    history.onCondBranch(0xab0);  // cond = 0xab
    history.onUncondIndirectBranch(0xcd0); // uncond = 0xcd
    const Addr pc = 0x401234;
    const std::uint64_t expected =
        (pc >> 2) ^ 0x2ull ^ 0xabull ^ 0xcdull;
    EXPECT_EQ(history.signature(pc), expected);
}

TEST(ControlFlowHistory, StorageMatchesTableI)
{
    HistoryConfig config; // paper defaults
    ControlFlowHistory history(config);
    // Three 64-bit registers = 24 bytes (Table I lists 3 x 8B).
    EXPECT_EQ(history.storageBits(), 3u * 64u);
}

} // namespace
} // namespace chirp
