/** @file Behavioural tests for the CHiRP policy (Algorithm 5). */

#include <gtest/gtest.h>

#include "core/chirp.hh"
#include "core/lru.hh"
#include "util/random.hh"

namespace chirp
{
namespace
{

AccessInfo
loadAt(Addr pc, Addr vaddr = 0x1000)
{
    AccessInfo info;
    info.pc = pc;
    info.vaddr = vaddr;
    info.cls = InstClass::Load;
    return info;
}

TEST(Chirp, SignatureUsesPreUpdateHistories)
{
    ChirpPolicy policy(4, 4);
    const Addr pc = 0x401000;
    const std::uint16_t before = policy.currentSignature(pc);
    // Retiring an instruction updates the path history, changing the
    // signature for the same PC.
    policy.onInstRetired(0x40200c, InstClass::Alu);
    const std::uint16_t after = policy.currentSignature(pc);
    EXPECT_NE(before, after);
}

TEST(Chirp, BranchPcsEnterHistoriesOutcomesDoNot)
{
    ChirpPolicy a(4, 4);
    ChirpPolicy b(4, 4);
    // Same branch PC, opposite outcomes: identical signatures
    // (§IV-B: "the signature relies on bits from the branch PC, not
    // conditional branch outcomes").
    a.onBranchRetired(0x400ab0, InstClass::CondBranch, true);
    b.onBranchRetired(0x400ab0, InstClass::CondBranch, false);
    EXPECT_EQ(a.currentSignature(0x401000),
              b.currentSignature(0x401000));
    // Different branch PCs give different signatures.
    ChirpPolicy c(4, 4);
    c.onBranchRetired(0x400cd0, InstClass::CondBranch, true);
    EXPECT_NE(a.currentSignature(0x401000),
              c.currentSignature(0x401000));
}

TEST(Chirp, IndirectBranchesFeedTheirOwnHistory)
{
    ChirpPolicy a(4, 4);
    ChirpPolicy b(4, 4);
    a.onBranchRetired(0x400ab0, InstClass::UncondIndirect, true);
    EXPECT_NE(a.currentSignature(0x401000),
              b.currentSignature(0x401000));
    // Direct unconditional branches do not enter any history.
    ChirpPolicy c(4, 4);
    c.onBranchRetired(0x400ab0, InstClass::UncondDirect, true);
    EXPECT_EQ(b.currentSignature(0x401000),
              c.currentSignature(0x401000));
}

TEST(Chirp, FillStoresSignatureAndReadsPrediction)
{
    ChirpPolicy policy(4, 4);
    const AccessInfo info = loadAt(0x401000);
    const std::uint16_t expected = policy.currentSignature(info.pc);
    const std::uint64_t reads = policy.tableReads();
    policy.onFill(0, 2, info);
    EXPECT_EQ(policy.storedSignature(0, 2), expected);
    EXPECT_EQ(policy.tableReads(), reads + 1);
    EXPECT_FALSE(policy.isDead(0, 2)) << "untrained counter is live";
}

TEST(Chirp, LruEvictionTrainsVictimSignatureDead)
{
    ChirpPolicy policy(1, 2);
    const AccessInfo info = loadAt(0x401000);
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    // No dead candidates: the LRU victim's stored signature is
    // incremented; with deadThreshold 0 a later fill under the same
    // context is predicted dead.
    const std::uint64_t writes = policy.tableWrites();
    const std::uint32_t victim = policy.selectVictim(0, info);
    EXPECT_EQ(victim, 0u) << "way 0 is LRU";
    EXPECT_EQ(policy.tableWrites(), writes + 1);
    policy.onFill(0, victim, info);
    EXPECT_TRUE(policy.isDead(0, victim));
}

TEST(Chirp, DeadVictimEvictionsDoNotTrain)
{
    ChirpPolicy policy(1, 2);
    const AccessInfo info = loadAt(0x401000);
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    policy.selectVictim(0, info); // LRU eviction, trains dead
    policy.onFill(0, 0, info);    // predicted dead now
    ASSERT_TRUE(policy.isDead(0, 0));
    const std::uint64_t writes = policy.tableWrites();
    const std::uint32_t victim = policy.selectVictim(0, info);
    EXPECT_EQ(victim, 0u) << "dead entry preferred over LRU";
    EXPECT_EQ(policy.tableWrites(), writes)
        << "predictor-chosen victims do not self-reinforce";
}

TEST(Chirp, VictimPrefersFirstDeadEntry)
{
    ChirpPolicy policy(1, 4);
    const AccessInfo info = loadAt(0x401000);
    for (std::uint32_t way = 0; way < 4; ++way)
        policy.onFill(0, way, info);
    // Train the context dead via an LRU eviction, then re-fill way 2
    // so it is dead-predicted while ways keep LRU order.
    policy.selectVictim(0, info);
    policy.onFill(0, 2, info);
    ASSERT_TRUE(policy.isDead(0, 2));
    EXPECT_EQ(policy.selectVictim(0, info), 2u);
}

TEST(Chirp, FirstHitTrainsLiveOncePerGeneration)
{
    ChirpConfig config;
    config.hitUpdate = HitUpdateMode::FirstHit;
    ChirpPolicy policy(4, 4, config);
    const AccessInfo info = loadAt(0x401000);
    policy.onFill(0, 0, info);
    policy.onAccessEnd(0, info);
    const std::uint64_t writes = policy.tableWrites();
    policy.onHit(0, 0, info); // first hit: trains
    EXPECT_EQ(policy.tableWrites(), writes + 1);
    policy.onHit(0, 0, info); // second hit: no table traffic
    policy.onHit(0, 0, info);
    EXPECT_EQ(policy.tableWrites(), writes + 1);
}

TEST(Chirp, SelectiveHitUpdateSkipsSameSetHits)
{
    ChirpPolicy policy(4, 4); // default FirstHitDiffSet
    const AccessInfo info = loadAt(0x401000);
    policy.onFill(1, 0, info);
    policy.onAccessEnd(1, info); // lastSet = 1
    const std::uint64_t writes = policy.tableWrites();
    const std::uint64_t reads = policy.tableReads();
    policy.onHit(1, 0, info); // same set as last access: skipped
    policy.onAccessEnd(1, info);
    EXPECT_EQ(policy.tableWrites(), writes);
    EXPECT_EQ(policy.tableReads(), reads);
    // The signature still tracks the newest context (metadata-only).
    EXPECT_EQ(policy.storedSignature(1, 0),
              policy.currentSignature(info.pc));
}

TEST(Chirp, HitFromDifferentSetTrains)
{
    ChirpPolicy policy(4, 4);
    const AccessInfo info = loadAt(0x401000);
    policy.onFill(1, 0, info);
    policy.onAccessEnd(1, info);
    policy.onFill(2, 0, info);
    policy.onAccessEnd(2, info); // lastSet = 2
    const std::uint64_t writes = policy.tableWrites();
    policy.onHit(1, 0, info); // different set: first hit trains
    EXPECT_EQ(policy.tableWrites(), writes + 1);
}

TEST(Chirp, FirstHitDecrementHealsDeadContext)
{
    ChirpPolicy policy(2, 2);
    const AccessInfo info = loadAt(0x401000);
    // Train the context dead.
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    policy.selectVictim(0, info);
    policy.onFill(0, 0, info);
    ASSERT_TRUE(policy.isDead(0, 0));
    policy.onAccessEnd(0, info);
    // A hit from a different set decrements the stored signature and
    // re-reads the prediction: the counter returns to zero -> live.
    policy.onFill(1, 0, info);
    policy.onAccessEnd(1, info);
    policy.onHit(0, 0, info);
    EXPECT_FALSE(policy.isDead(0, 0));
}

TEST(Chirp, DisablingDeadVictimsDegeneratesToExactLru)
{
    ChirpConfig config;
    config.victimPrefersDead = false;
    ChirpPolicy chirp_policy(4, 4, config);
    LruPolicy lru_policy(4, 4);
    Rng rng(99);
    // Random access pattern: both policies must agree on every
    // victim.
    for (int i = 0; i < 2000; ++i) {
        const std::uint32_t set = static_cast<std::uint32_t>(
            rng.below(4));
        const AccessInfo info = loadAt(0x400000 + 4 * rng.below(64));
        const int action = static_cast<int>(rng.below(3));
        if (action == 0) {
            const std::uint32_t way =
                static_cast<std::uint32_t>(rng.below(4));
            chirp_policy.onHit(set, way, info);
            lru_policy.onHit(set, way, info);
        } else if (action == 1) {
            const std::uint32_t way =
                static_cast<std::uint32_t>(rng.below(4));
            chirp_policy.onFill(set, way, info);
            lru_policy.onFill(set, way, info);
        } else {
            ASSERT_EQ(chirp_policy.selectVictim(set, info),
                      lru_policy.selectVictim(set, info))
                << "iteration " << i;
        }
        chirp_policy.onAccessEnd(set, info);
    }
    EXPECT_EQ(chirp_policy.tableReads(), 0u);
    EXPECT_EQ(chirp_policy.tableWrites(), 0u);
}

TEST(Chirp, StorageMatchesTableI)
{
    ChirpConfig config; // 1024-entry 8-way, 4096x2b table
    ChirpPolicy policy(128, 8, config);
    // Table I: prediction bits 128B + signatures 2KB + 3x8B
    // histories + 1KB counters + (LRU stack 3b/entry, listed in the
    // metadata description) + the first-hit bit per entry.
    const std::uint64_t expected = 1024 * (1 + 16 + 1) // pred+sig+firstHit
                                   + 1024 * 3          // LRU stack
                                   + 3 * 64            // histories
                                   + 4096 * 2;         // counters
    EXPECT_EQ(policy.storageBits(), expected);
    // 3.65KB with the 1KB counter table; Table I's 2.65KB total uses
    // the 128B counter column (see table1_storage bench), plus our
    // explicit first-hit bit.
    EXPECT_NEAR(static_cast<double>(policy.storageBits()) / 8.0 / 1024.0,
                3.65, 0.05);
    ChirpConfig small = config;
    small.tableEntries = 512; // the 128B counter column of Table I
    ChirpPolicy small_policy(128, 8, small);
    EXPECT_NEAR(
        static_cast<double>(small_policy.storageBits()) / 8.0 / 1024.0,
        2.65, 0.25);
}

TEST(Chirp, ResetClearsEverything)
{
    ChirpPolicy policy(4, 4);
    const AccessInfo info = loadAt(0x401000);
    policy.onFill(0, 0, info);
    policy.onInstRetired(0x400004, InstClass::Alu);
    policy.onBranchRetired(0x400ab0, InstClass::CondBranch, true);
    policy.selectVictim(0, info);
    const std::uint16_t sig_before_reset =
        policy.currentSignature(0x401000);
    policy.reset();
    EXPECT_EQ(policy.tableReads(), 0u);
    EXPECT_EQ(policy.tableWrites(), 0u);
    EXPECT_EQ(policy.deadVictims() + policy.lruVictims(), 0u);
    // Histories are cleared: the signature returns to its reset
    // value.
    ChirpPolicy fresh(4, 4);
    EXPECT_EQ(policy.currentSignature(0x401000),
              fresh.currentSignature(0x401000));
    (void)sig_before_reset;
}

TEST(Chirp, PathHistoryFilterRespectsConfig)
{
    ChirpConfig memory_only;
    memory_only.history.pathFilter = PathFilter::Memory;
    ChirpPolicy policy(4, 4, memory_only);
    const std::uint16_t before = policy.currentSignature(0x401000);
    policy.onInstRetired(0x40200c, InstClass::Alu);
    EXPECT_EQ(policy.currentSignature(0x401000), before)
        << "ALU instructions filtered out";
    policy.onInstRetired(0x40200c, InstClass::Load);
    EXPECT_NE(policy.currentSignature(0x401000), before);
}

TEST(Chirp, DeadAndLruVictimCountersPartitionEvictions)
{
    ChirpPolicy policy(1, 2);
    const AccessInfo info = loadAt(0x401000);
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    policy.selectVictim(0, info); // LRU fallback
    EXPECT_EQ(policy.lruVictims(), 1u);
    EXPECT_EQ(policy.deadVictims(), 0u);
    policy.onFill(0, 0, info); // dead-predicted
    policy.selectVictim(0, info);
    EXPECT_EQ(policy.deadVictims(), 1u);
}

} // namespace
} // namespace chirp
