/** @file Unit tests for util/random.hh. */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/random.hh"

namespace chirp
{
namespace
{

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsRemapped)
{
    Rng a(0);
    EXPECT_NE(a.next(), 0u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 1000; ++i)
        ++seen[rng.below(8)];
    for (int i = 0; i < 8; ++i)
        EXPECT_GT(seen[i], 60) << "value " << i << " underrepresented";
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(17);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(19);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Zipf, HeadIsHotterThanTail)
{
    Rng rng(29);
    Rng::Zipf zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[50] * 5);
    EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(Zipf, AllRanksReachable)
{
    Rng rng(31);
    Rng::Zipf zipf(8, 0.5);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 5000; ++i)
        ++counts[zipf(rng)];
    for (int i = 0; i < 8; ++i)
        EXPECT_GT(counts[i], 0) << "rank " << i;
}

TEST(Shuffle, IsAPermutation)
{
    Rng rng(37);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = values;
    rng.shuffle(values);
    std::sort(values.begin(), values.end());
    EXPECT_EQ(values, sorted);
}

TEST(Shuffle, ChangesOrderForLongVectors)
{
    Rng rng(41);
    std::vector<int> values(100);
    std::iota(values.begin(), values.end(), 0);
    auto original = values;
    rng.shuffle(values);
    EXPECT_NE(values, original);
}

} // namespace
} // namespace chirp
