/**
 * @file
 * Randomized scalar-vs-vector equivalence for every simd kernel.
 *
 * The scalar reference is the semantic contract (scan order,
 * tie-breaking, n == 0 sentinel); the ISA variants must return
 * bit-identical results for every lane count and tail shape.  Each
 * test runs the same inputs twice — once under CHIRP_FORCE_SCALAR=1
 * and once with the native backend — via refreshBackend() round
 * trips, and additionally checks the scalar contract against a naive
 * reference written here, so a bug shared by both dispatch paths
 * cannot hide.
 *
 * Lane counts sweep 0..kMaxLanes, crossing every dispatch threshold
 * (SSE2 16-byte blocks, AVX2 32-byte blocks, 2/4-word lanes for the
 * 64-bit kernels) and every tail length on each side of them.
 */

#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitfield.hh"
#include "util/simd.hh"
#include "util/types.hh"

namespace chirp
{
namespace
{

/** Past two AVX2 blocks plus an odd tail. */
constexpr std::size_t kMaxLanes = 70;
constexpr int kTrialsPerSize = 8;

/**
 * Saves the CHIRP_FORCE_SCALAR state, flips it as asked, and
 * refreshes the cached backend; restores both on destruction.
 */
class ScopedBackend
{
  public:
    explicit ScopedBackend(bool force_scalar)
    {
        const char *old = std::getenv("CHIRP_FORCE_SCALAR");
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (force_scalar)
            setenv("CHIRP_FORCE_SCALAR", "1", 1);
        else
            unsetenv("CHIRP_FORCE_SCALAR");
        simd::refreshBackend();
    }

    ~ScopedBackend()
    {
        if (had_old_)
            setenv("CHIRP_FORCE_SCALAR", old_.c_str(), 1);
        else
            unsetenv("CHIRP_FORCE_SCALAR");
        simd::refreshBackend();
    }

  private:
    bool had_old_ = false;
    std::string old_;
};

/** Runs @p fn under the scalar backend, then the native one. */
template <typename Fn>
void
underBothBackends(Fn &&fn)
{
    {
        ScopedBackend scalar(true);
        ASSERT_EQ(simd::activeBackend(), simd::Backend::Scalar);
        fn(simd::Backend::Scalar);
    }
    {
        ScopedBackend native(false);
        fn(simd::activeBackend());
    }
}

std::vector<std::uint8_t>
randomBytes(std::mt19937_64 &rng, std::size_t n, std::uint8_t lo,
            std::uint8_t hi)
{
    std::uniform_int_distribution<int> dist(lo, hi);
    std::vector<std::uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(dist(rng));
    return v;
}

// ---- naive references (independent of src/util/simd.hh) ----

std::size_t
refFirstSet(const std::uint8_t *v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (v[i] != 0)
            return i;
    return n;
}

std::size_t
refFirstClear(const std::uint8_t *v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (v[i] == 0)
            return i;
    return n;
}

std::size_t
refFirstAtLeast(const std::uint8_t *v, std::size_t n, std::uint8_t lim)
{
    for (std::size_t i = 0; i < n; ++i)
        if (v[i] >= lim)
            return i;
    return n;
}

std::size_t
refDeepestSet(const std::uint8_t *flags, const std::uint8_t *rank,
              std::size_t n)
{
    std::size_t best = n;
    int best_rank = -1;
    for (std::size_t i = 0; i < n; ++i)
        if (flags[i] != 0 && static_cast<int>(rank[i]) > best_rank) {
            best_rank = rank[i];
            best = i;
        }
    return best;
}

std::uint8_t
refMaxLane(const std::uint8_t *v, std::size_t n)
{
    std::uint8_t best = 0;
    for (std::size_t i = 0; i < n; ++i)
        best = std::max(best, v[i]);
    return best;
}

std::size_t
refMatchTag(const Addr *tags, const std::uint8_t *valid, std::size_t n,
            Addr tag)
{
    for (std::size_t i = 0; i < n; ++i)
        if (valid[i] != 0 && tags[i] == tag)
            return i;
    return n;
}

TEST(SimdBackend, NameIsKnownAndScalarIsForced)
{
    {
        ScopedBackend scalar(true);
        EXPECT_STREQ(simd::backendName(simd::activeBackend()), "scalar");
    }
    ScopedBackend native(false);
    const std::string name = simd::backendName(simd::activeBackend());
    EXPECT_TRUE(name == "scalar" || name == "sse2" || name == "avx2" ||
                name == "neon")
        << name;
}

TEST(SimdScan, FirstSetClearAtLeastMatchScalar)
{
    std::mt19937_64 rng(0xC0FFEE01);
    for (std::size_t n = 0; n <= kMaxLanes; ++n) {
        for (int trial = 0; trial < kTrialsPerSize; ++trial) {
            // Small value range: plenty of zero lanes and ties.
            const auto v = randomBytes(rng, n, 0, 3);
            const std::uint8_t lim =
                static_cast<std::uint8_t>(rng() % 5);
            underBothBackends([&](simd::Backend b) {
                SCOPED_TRACE(std::string("backend=") +
                             simd::backendName(b) +
                             " n=" + std::to_string(n));
                EXPECT_EQ(simd::firstSetLane(v.data(), n),
                          refFirstSet(v.data(), n));
                EXPECT_EQ(simd::firstClearLane(v.data(), n),
                          refFirstClear(v.data(), n));
                EXPECT_EQ(simd::firstLaneAtLeast(v.data(), n, lim),
                          refFirstAtLeast(v.data(), n, lim));
            });
        }
    }
}

TEST(SimdScan, AllZeroAndAllSetEdges)
{
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{15},
                          std::size_t{16}, std::size_t{17},
                          std::size_t{31}, std::size_t{32},
                          std::size_t{33}, std::size_t{64},
                          kMaxLanes}) {
        const std::vector<std::uint8_t> zeros(n, 0);
        const std::vector<std::uint8_t> ones(n, 1);
        underBothBackends([&](simd::Backend) {
            EXPECT_EQ(simd::firstSetLane(zeros.data(), n), n);
            EXPECT_EQ(simd::firstClearLane(ones.data(), n), n);
            EXPECT_EQ(simd::firstSetLane(ones.data(), n),
                      n == 0 ? n : 0u);
            EXPECT_EQ(simd::firstClearLane(zeros.data(), n),
                      n == 0 ? n : 0u);
            EXPECT_EQ(simd::firstLaneAtLeast(zeros.data(), n, 1), n);
            EXPECT_EQ(simd::maxLane(zeros.data(), n), 0u);
        });
    }
}

TEST(SimdScan, DeepestSetTieBreaksOnEarliestMaximum)
{
    std::mt19937_64 rng(0xC0FFEE02);
    for (std::size_t n = 0; n <= kMaxLanes; ++n) {
        for (int trial = 0; trial < kTrialsPerSize; ++trial) {
            const auto flags = randomBytes(rng, n, 0, 1);
            // Tiny rank alphabet forces duplicate maxima.
            const auto rank = randomBytes(rng, n, 0, 2);
            underBothBackends([&](simd::Backend b) {
                SCOPED_TRACE(std::string("backend=") +
                             simd::backendName(b) +
                             " n=" + std::to_string(n));
                EXPECT_EQ(
                    simd::deepestSetLane(flags.data(), rank.data(), n),
                    refDeepestSet(flags.data(), rank.data(), n));
            });
        }
    }
    // Max legal rank at both ends of a vector block.
    std::vector<std::uint8_t> flags(33, 1);
    std::vector<std::uint8_t> rank(33, 0);
    rank[0] = 254;
    rank[32] = 254;
    underBothBackends([&](simd::Backend) {
        EXPECT_EQ(simd::deepestSetLane(flags.data(), rank.data(), 33),
                  0u);
    });
}

TEST(SimdScan, MaxLaneAndAddToLanesMatchScalar)
{
    std::mt19937_64 rng(0xC0FFEE03);
    for (std::size_t n = 0; n <= kMaxLanes; ++n) {
        for (int trial = 0; trial < kTrialsPerSize; ++trial) {
            const auto v = randomBytes(rng, n, 0, 200);
            const std::uint8_t delta =
                static_cast<std::uint8_t>(rng() % 7);
            underBothBackends([&](simd::Backend b) {
                SCOPED_TRACE(std::string("backend=") +
                             simd::backendName(b) +
                             " n=" + std::to_string(n));
                EXPECT_EQ(simd::maxLane(v.data(), n),
                          refMaxLane(v.data(), n));
                auto mutated = v;
                simd::addToLanes(mutated.data(), n, delta);
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(mutated[i],
                              static_cast<std::uint8_t>(v[i] + delta));
            });
        }
    }
}

TEST(SimdScan, MatchTagFindsFirstValidMatchOnly)
{
    std::mt19937_64 rng(0xC0FFEE04);
    for (std::size_t n = 0; n <= kMaxLanes; ++n) {
        for (int trial = 0; trial < kTrialsPerSize; ++trial) {
            std::vector<Addr> tags(n);
            // Four-value tag alphabet: frequent duplicates, so the
            // first-match tie-break is exercised constantly.
            for (auto &t : tags)
                t = 0xABCD0000u + (rng() % 4);
            const auto valid = randomBytes(rng, n, 0, 1);
            const Addr probe = 0xABCD0000u + (rng() % 4);
            underBothBackends([&](simd::Backend b) {
                SCOPED_TRACE(std::string("backend=") +
                             simd::backendName(b) +
                             " n=" + std::to_string(n));
                EXPECT_EQ(simd::matchTagLane(tags.data(), valid.data(),
                                             n, probe),
                          refMatchTag(tags.data(), valid.data(), n,
                                      probe));
            });
        }
    }
    // An invalid lane holding the probe tag must not match.
    std::vector<Addr> tags(5, 0x42);
    std::vector<std::uint8_t> valid = {0, 0, 1, 0, 1};
    underBothBackends([&](simd::Backend) {
        EXPECT_EQ(simd::matchTagLane(tags.data(), valid.data(), 5,
                                     Addr{0x42}),
                  2u);
    });
}

TEST(SimdFold, FoldPlanApplyEqualsFoldXorAtEveryWidth)
{
    std::mt19937_64 rng(0xC0FFEE05);
    for (unsigned nbits = 1; nbits < 64; ++nbits) {
        const simd::FoldPlan plan(nbits);
        for (int trial = 0; trial < 32; ++trial) {
            const std::uint64_t v = rng();
            ASSERT_EQ(plan.apply(v), foldXor(v, nbits))
                << "nbits=" << nbits << " v=" << v;
        }
    }
}

TEST(SimdFold, LaneFoldsMatchPerElementFoldXor)
{
    std::mt19937_64 rng(0xC0FFEE06);
    constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ull;
    // Widths around the word-halving boundaries plus the GHRP ones.
    const unsigned widths[] = {1, 3, 7, 8, 10, 12, 16, 21, 31, 32, 33,
                               48, 63};
    for (unsigned nbits : widths) {
        const simd::FoldPlan plan(nbits);
        for (std::size_t n = 0; n <= 9; ++n) {
            std::vector<std::uint64_t> input(n);
            for (auto &v : input)
                v = rng();
            std::vector<std::uint64_t> fold_ref(n), mul_ref(n);
            for (std::size_t i = 0; i < n; ++i) {
                fold_ref[i] = foldXor(input[i], nbits);
                mul_ref[i] = foldXor(input[i] * kMul, nbits);
            }
            underBothBackends([&](simd::Backend b) {
                SCOPED_TRACE(std::string("backend=") +
                             simd::backendName(b) + " nbits=" +
                             std::to_string(nbits) +
                             " n=" + std::to_string(n));
                auto a = input;
                simd::xorFoldLanes(a.data(), n, nbits);
                EXPECT_EQ(a, fold_ref);
                auto bv = input;
                simd::xorFoldLanes(bv.data(), n, plan);
                EXPECT_EQ(bv, fold_ref);
                auto c = input;
                simd::mulXorFoldLanes(c.data(), n, kMul, nbits);
                EXPECT_EQ(c, mul_ref);
                auto d = input;
                simd::mulXorFoldLanes(d.data(), n, kMul, plan);
                EXPECT_EQ(d, mul_ref);
            });
        }
    }
}

TEST(SimdFold, FusedSigAndSigIndexLanesMatchScalarReference)
{
    std::mt19937_64 rng(0xC0FFEE07);
    constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ull;
    // (signatureBits, indexBits) pairs covering the policy configs
    // (SHiP 14-bit SHCT, GHRP 12-bit banks, CHiRP defaults) plus the
    // 16-bit truncation edge.
    const unsigned sig_widths[] = {8, 12, 14, 16};
    const unsigned idx_widths[] = {7, 12, 14, 10};
    for (std::size_t w = 0; w < 4; ++w) {
        const unsigned sig_bits = sig_widths[w];
        const unsigned idx_bits = idx_widths[w];
        const simd::FoldPlan sig_plan(sig_bits);
        const simd::FoldPlan idx_plan(idx_bits);
        const std::uint64_t salt = rng();
        const std::uint64_t xor_term = rng();
        // A bank base in the bits above the index, as GHRP passes.
        const std::uint32_t idx_or = static_cast<std::uint32_t>(w)
                                     << idx_bits;
        for (std::size_t n = 0; n <= kMaxLanes;
             n += (n < 12 ? 1 : 7)) {
            std::vector<std::uint64_t> base(n);
            for (auto &v : base)
                v = rng();
            std::vector<std::uint16_t> sig_ref(n);
            std::vector<std::uint32_t> idx_ref(n);
            for (std::size_t i = 0; i < n; ++i) {
                sig_ref[i] = static_cast<std::uint16_t>(
                    foldXor(base[i] ^ xor_term, sig_bits));
                idx_ref[i] =
                    idx_or |
                    static_cast<std::uint32_t>(foldXor(
                        (static_cast<std::uint64_t>(sig_ref[i]) ^
                         salt) *
                            kMul,
                        idx_bits));
            }
            underBothBackends([&](simd::Backend b) {
                SCOPED_TRACE(std::string("backend=") +
                             simd::backendName(b) + " sig_bits=" +
                             std::to_string(sig_bits) +
                             " n=" + std::to_string(n));
                std::vector<std::uint16_t> sigs(n, 0xAAAA);
                simd::xorFoldSigLanes(base.data(), n, xor_term,
                                      sig_plan, sigs.data());
                EXPECT_EQ(sigs, sig_ref);
                std::vector<std::uint16_t> sigs2(n, 0xAAAA);
                std::vector<std::uint32_t> idxs(n, 0xDEADBEEFu);
                simd::sigIndexLanes(base.data(), n, xor_term,
                                    sig_plan, salt, kMul, idx_plan,
                                    idx_or, sigs2.data(),
                                    idxs.data());
                EXPECT_EQ(sigs2, sig_ref);
                EXPECT_EQ(idxs, idx_ref);
            });
        }
    }
}

} // namespace
} // namespace chirp
