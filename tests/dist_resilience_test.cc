/**
 * @file
 * Distributed sweep-fabric resilience tests.  Each test forks real
 * worker processes around socketpairs *before* creating the
 * coordinator fabric (fork and threads don't mix), then asserts the
 * merged result grid is bit-identical to a serial single-process
 * reference — with healthy workers, with a worker kill -9'd
 * mid-shard, with a worker desyncing the wire protocol, with no
 * workers at all (graceful degradation), and when resuming a
 * partially-journaled run through the fabric.  The shard ledger's
 * crash trail is covered directly.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/policy_factory.hh"
#include "dist/fabric.hh"
#include "dist/shard_ledger.hh"
#include "sim/run_journal.hh"
#include "sim/runner.hh"
#include "util/fault_injection.hh"
#include "util/subprocess.hh"

namespace chirp
{
namespace
{

class DistResilienceTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

SimConfig
fastConfig()
{
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    return config;
}

std::vector<WorkloadConfig>
smallSuite(std::size_t size = 4)
{
    SuiteOptions options;
    options.size = size;
    options.traceLength = 40000;
    return makeSuite(options);
}

std::vector<PolicyFactory>
twoPolicies()
{
    return {Runner::factoryFor(PolicyKind::Lru),
            Runner::factoryFor(PolicyKind::Chirp)};
}

/** Fast fabric knobs so failure paths resolve in test time. */
dist::FabricOptions
testOptions()
{
    dist::FabricOptions opts;
    opts.shardWorkloads = 1; // one workload per shard: real dispatch
    opts.heartbeatMs = 100;
    opts.workerTimeoutMs = 2000;
    opts.leaseMs = 4000;
    opts.backoffMs = 50;
    return opts;
}

void
expectGridIdentical(
    const std::vector<std::vector<WorkloadResult>> &got,
    const std::vector<std::vector<WorkloadResult>> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t p = 0; p < got.size(); ++p) {
        ASSERT_EQ(got[p].size(), want[p].size());
        for (std::size_t w = 0; w < got[p].size(); ++w) {
            SCOPED_TRACE("policy " + std::to_string(p) +
                         " workload " + std::to_string(w));
            // encodeSimStats is bit-exact (doubles travel as their
            // IEEE-754 bit patterns), so string equality is the same
            // claim as byte-identical CSVs.
            EXPECT_EQ(encodeSimStats(got[p][w].stats),
                      encodeSimStats(want[p][w].stats));
        }
    }
}

struct WorkerProc
{
    pid_t pid = -1;
    int fd = -1; //!< coordinator's end of the wire
};

/**
 * Fork one worker process running the same suite sweep this test's
 * coordinator will issue.  Must be called before any fabric (and so
 * any thread) exists in the parent.  The child arms @p fault, runs
 * the sweep as fabric worker @p id, and _Exit(0)s; it only ever
 * leaves via _Exit, never through gtest.
 */
WorkerProc
forkWorker(unsigned id, const std::vector<WorkloadConfig> &suite,
           const std::vector<PolicyFactory> &factories,
           const std::string &fault = "")
{
    int fds[2];
    std::string error;
    if (!makeSocketPair(fds, &error)) {
        ADD_FAILURE() << error;
        return {};
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        ADD_FAILURE() << "fork failed";
        return {};
    }
    if (pid == 0) {
        ::close(fds[0]);
        if (!fault.empty())
            FaultInjector::instance().configure(fault);
        auto fabric = dist::SweepFabric::makeWorker(fds[1], id,
                                                    testOptions());
        FaultInjector::instance().setWorkerId(static_cast<int>(id));
        Runner runner(fastConfig(), 1);
        runner.setFabric(fabric);
        runner.runSuiteMulti(suite, factories);
        std::_Exit(0);
    }
    ::close(fds[1]);
    return {pid, fds[0]};
}

void
reap(const WorkerProc &worker)
{
    if (worker.pid > 0)
        ::waitpid(worker.pid, nullptr, 0);
}

TEST_F(DistResilienceTest, DistributedSweepMatchesSerial)
{
    const auto suite = smallSuite();
    const auto factories = twoPolicies();
    const Runner serial(fastConfig(), 1);
    const auto reference = serial.runSuiteMulti(suite, factories);

    const WorkerProc w0 = forkWorker(0, suite, factories);
    const WorkerProc w1 = forkWorker(1, suite, factories);
    auto fabric = dist::SweepFabric::makeCoordinator(testOptions());
    fabric->adoptWorker(w0.fd);
    fabric->adoptWorker(w1.fd);
    Runner runner(fastConfig(), 1);
    runner.setFabric(fabric);
    const auto results = runner.runSuiteMulti(suite, factories);
    reap(w0);
    reap(w1);

    expectGridIdentical(results, reference);
    const SuiteHealth &health = *runner.health();
    EXPECT_EQ(health.okJobs(), suite.size() * factories.size());
    EXPECT_EQ(health.failureCount(), 0u);
    const dist::FabricStats stats = fabric->stats();
    EXPECT_EQ(stats.remoteResults, suite.size() * factories.size())
        << "every job must have executed remotely";
    EXPECT_EQ(stats.shardsLocal, 0u);
}

TEST_F(DistResilienceTest, WorkerKilledMidShardIsRedispatched)
{
    const auto suite = smallSuite();
    const auto factories = twoPolicies();
    const Runner serial(fastConfig(), 1);
    const auto reference = serial.runSuiteMulti(suite, factories);

    // Worker 0 _Exit(137)s at its third job event — mid-shard, after
    // at least one result already streamed back (exactly a kill -9).
    const WorkerProc w0 =
        forkWorker(0, suite, factories, "worker-crash@0");
    const WorkerProc w1 = forkWorker(1, suite, factories);
    auto fabric = dist::SweepFabric::makeCoordinator(testOptions());
    fabric->adoptWorker(w0.fd);
    fabric->adoptWorker(w1.fd);
    Runner runner(fastConfig(), 1);
    runner.setFabric(fabric);
    const auto results = runner.runSuiteMulti(suite, factories);
    reap(w0);
    reap(w1);

    expectGridIdentical(results, reference);
    const SuiteHealth &health = *runner.health();
    EXPECT_EQ(health.okJobs(), suite.size() * factories.size());
    EXPECT_EQ(health.failureCount(), 0u);
    const dist::FabricStats stats = fabric->stats();
    EXPECT_EQ(stats.workersLost, 1u);
    EXPECT_GE(stats.shardsRequeued, 1u)
        << "the dead worker's shard must be re-dispatched";
}

TEST_F(DistResilienceTest, WireDesyncDropsWorkerNotResults)
{
    const auto suite = smallSuite();
    const auto factories = twoPolicies();
    const Runner serial(fastConfig(), 1);
    const auto reference = serial.runSuiteMulti(suite, factories);

    // Worker 1 truncates its first Result frame mid-write; the
    // coordinator must drop the desynced stream and re-run the shard
    // elsewhere rather than merge garbage.
    const WorkerProc w0 = forkWorker(0, suite, factories);
    const WorkerProc w1 =
        forkWorker(1, suite, factories, "msg-truncate@1");
    auto fabric = dist::SweepFabric::makeCoordinator(testOptions());
    fabric->adoptWorker(w0.fd);
    fabric->adoptWorker(w1.fd);
    Runner runner(fastConfig(), 1);
    runner.setFabric(fabric);
    const auto results = runner.runSuiteMulti(suite, factories);
    reap(w0);
    reap(w1);

    expectGridIdentical(results, reference);
    EXPECT_EQ(runner.health()->okJobs(),
              suite.size() * factories.size());
}

TEST_F(DistResilienceTest, NoWorkersDegradesToInProcess)
{
    const auto suite = smallSuite(3);
    const auto factories = twoPolicies();
    const Runner serial(fastConfig(), 1);
    const auto reference = serial.runSuiteMulti(suite, factories);

    auto fabric = dist::SweepFabric::makeCoordinator(testOptions());
    Runner runner(fastConfig(), 1);
    runner.setFabric(fabric);
    const auto results = runner.runSuiteMulti(suite, factories);

    expectGridIdentical(results, reference);
    const dist::FabricStats stats = fabric->stats();
    EXPECT_EQ(stats.remoteResults, 0u);
    EXPECT_EQ(stats.shardsLocal, suite.size())
        << "every shard must fall back to the runner thread";
    EXPECT_EQ(runner.health()->okJobs(),
              suite.size() * factories.size());
}

TEST_F(DistResilienceTest, ResumedSweepDistributesOnlyMissingJobs)
{
    const auto suite = smallSuite();
    const auto factories = twoPolicies();
    const std::string path =
        ::testing::TempDir() + "chirp_dist_resume.journal";
    std::filesystem::remove(path);
    const std::uint64_t fp = 0xd15c0;

    const Runner serial(fastConfig(), 1);
    const auto reference = serial.runSuiteMulti(suite, factories);

    {
        // Seed run: one injected hard fault leaves exactly workload
        // 0's second policy missing from the journal — the same hole
        // a coordinator killed mid-sweep leaves behind.
        Runner first(fastConfig(), 1);
        first.setJournal(
            std::make_shared<RunJournal>(path, fp, /*resume=*/false));
        FaultInjector::instance().configure("hard-throw@2");
        first.runSuiteMulti(suite, factories);
        EXPECT_EQ(first.health()->failureCount(), 1u);
    }
    FaultInjector::instance().reset();

    const WorkerProc w0 = forkWorker(0, suite, factories);
    auto fabric = dist::SweepFabric::makeCoordinator(testOptions());
    fabric->adoptWorker(w0.fd);
    Runner resumed(fastConfig(), 1);
    resumed.setFabric(fabric);
    auto journal =
        std::make_shared<RunJournal>(path, fp, /*resume=*/true);
    EXPECT_EQ(journal->loaded(),
              suite.size() * factories.size() - 1);
    resumed.setJournal(journal);
    const auto results = resumed.runSuiteMulti(suite, factories);
    reap(w0);

    expectGridIdentical(results, reference);
    const SuiteHealth &health = *resumed.health();
    EXPECT_EQ(health.okJobs(), suite.size() * factories.size());
    EXPECT_EQ(health.resumedJobs(),
              suite.size() * factories.size() - 1)
        << "only the missing job re-executes";
    EXPECT_EQ(fabric->stats().shardsDispatched, 1u)
        << "one shard: the workload with the journal hole";
    std::filesystem::remove(path);
}

TEST(ShardLedgerTest, ResumeCountsPriorDoneShards)
{
    const std::string path =
        ::testing::TempDir() + "chirp_test.shards";
    std::filesystem::remove(path);
    const std::uint64_t fp = 0x511a7d;
    {
        dist::ShardLedger ledger(path, fp, /*resume=*/false);
        ASSERT_TRUE(ledger.valid());
        ledger.recordDispatch(0, 0, 1, 2);
        ledger.recordDispatch(0, 1, 1, 0);
        ledger.recordRequeue(0, 1, 1, "connection closed");
        ledger.recordDone(0, 0);
        ledger.recordDispatch(0, 1, 2, 1);
        ledger.recordDone(0, 1);
    }
    {
        dist::ShardLedger resumed(path, fp, /*resume=*/true);
        EXPECT_EQ(resumed.priorDone(), 2u);
    }
    {
        // A different fingerprint is a different run: restart empty.
        dist::ShardLedger other(path, fp + 1, /*resume=*/true);
        EXPECT_EQ(other.priorDone(), 0u);
    }
    std::filesystem::remove(path);
}

} // namespace
} // namespace chirp
