/** @file Tests for mixed 4KB/2MB page support. */

#include <gtest/gtest.h>

#include "core/policy_factory.hh"
#include "tlb/page_map.hh"
#include "tlb/tlb_hierarchy.hh"
#include "trace/synthetic/workload_factory.hh"

namespace chirp
{
namespace
{

constexpr Addr kHuge = Addr{1} << kHugePageShift;

TEST(PageMap, DefaultsToBasePages)
{
    PageMap map;
    EXPECT_EQ(map.pageShiftFor(0x1000), kPageShift);
    EXPECT_EQ(map.pageShiftFor(Addr{1} << 40), kPageShift);
    EXPECT_EQ(map.hugePages(), 0u);
}

TEST(PageMap, AlignedInteriorBecomesHuge)
{
    PageMap map;
    // 8MB range starting half a superpage off alignment: the head
    // is trimmed, leaving 3 full superpages.
    const Addr base = (Addr{16} << kHugePageShift) + kHuge / 2;
    const std::size_t huge = map.mapHuge(base, 8 * 1024 * 1024);
    EXPECT_EQ(huge, 3u);
    EXPECT_EQ(map.hugePages(), 3u);
    // Unaligned head stays 4KB.
    EXPECT_EQ(map.pageShiftFor(base), kPageShift);
    // Aligned interior is huge.
    const Addr interior = (base + kHuge) & ~(kHuge - 1);
    EXPECT_EQ(map.pageShiftFor(interior), kHugePageShift);
    EXPECT_EQ(map.pageShiftFor(interior + kHuge - 1), kHugePageShift);
    // Just past the end is 4KB again.
    EXPECT_EQ(map.pageShiftFor(interior + 3 * kHuge), kPageShift);
}

TEST(PageMap, TooSmallRangesStayBase)
{
    PageMap map;
    EXPECT_EQ(map.mapHuge(0x1000, 64 * 1024), 0u);
    EXPECT_EQ(map.pageShiftFor(0x2000), kPageShift);
}

TEST(PageMap, OverlapIsFatal)
{
    PageMap map;
    map.mapHuge(0, 8 * kHuge);
    EXPECT_EXIT(map.mapHuge(2 * kHuge, 4 * kHuge),
                ::testing::ExitedWithCode(1), "overlap");
}

TEST(MixedPages, OneEntryCoversAWholeSuperpage)
{
    auto hierarchy = TlbHierarchy::makeDefault(
        makePolicy(PolicyKind::Lru, 128, 8),
        std::make_unique<FixedLatencyWalker>(150));
    PageMap map;
    map.mapHuge(0, 16 * kHuge);
    hierarchy->setPageMap(&map);

    AccessInfo info;
    info.pc = 0x400000;
    info.cls = InstClass::Load;
    // Touch every 4KB page of one superpage: one miss total.
    std::uint64_t now = 0;
    info.vaddr = 0;
    hierarchy->translate(info, 0, now++);
    const std::uint64_t misses_after_first =
        hierarchy->l2().misses();
    for (Addr off = kPageSize; off < kHuge; off += kPageSize) {
        info.vaddr = off;
        hierarchy->translate(info, 0, now++);
    }
    EXPECT_EQ(hierarchy->l2().misses(), misses_after_first)
        << "512 base pages behind one superpage entry";
}

TEST(MixedPages, HugeAnd4kEntriesDoNotAlias)
{
    auto hierarchy = TlbHierarchy::makeDefault(
        makePolicy(PolicyKind::Lru, 128, 8),
        std::make_unique<FixedLatencyWalker>(150));
    PageMap map;
    map.mapHuge(0, 4 * kHuge);
    hierarchy->setPageMap(&map);

    AccessInfo info;
    info.pc = 0x400000;
    info.cls = InstClass::Load;
    // A huge-backed address and a base-page address whose page
    // numbers collide at their respective shifts must not share an
    // entry.
    info.vaddr = 0x0; // huge page 0
    hierarchy->translate(info, 0, 0);
    info.vaddr = 4 * kHuge; // base pages beyond the huge range
    const TranslateResult base_access =
        hierarchy->translate(info, 0, 1);
    EXPECT_FALSE(base_access.l1Hit);
    EXPECT_FALSE(base_access.l2Hit);
}

TEST(MixedPages, SuperpagesReduceStreamMisses)
{
    // A streaming workload with all of its big regions huge-backed
    // must miss far less than the same workload on base pages.
    WorkloadConfig workload;
    workload.category = Category::BigData;
    workload.seed = 17;
    workload.length = 120000;

    auto run = [&](bool use_huge) {
        auto program = buildWorkload(workload);
        PageMap map;
        if (use_huge) {
            for (const auto &alloc :
                 program->dataLayout().allocations()) {
                if (alloc.npages >= 512)
                    map.mapHuge(alloc.base, alloc.npages * kPageSize);
            }
        }
        auto hierarchy = TlbHierarchy::makeDefault(
            makePolicy(PolicyKind::Lru, 128, 8),
            std::make_unique<FixedLatencyWalker>(150));
        hierarchy->setPageMap(&map);
        TraceRecord rec;
        std::uint64_t now = 0;
        while (program->next(rec)) {
            AccessInfo fetch;
            fetch.pc = rec.pc;
            fetch.vaddr = rec.pc;
            fetch.isInstr = true;
            hierarchy->translate(fetch, 0, now);
            if (isMemory(rec.cls)) {
                AccessInfo data;
                data.pc = rec.pc;
                data.vaddr = rec.effAddr;
                data.cls = rec.cls;
                hierarchy->translate(data, 0, now);
            }
            ++now;
        }
        return hierarchy->l2().misses();
    };

    const std::uint64_t base = run(false);
    const std::uint64_t huge = run(true);
    EXPECT_LT(huge, base / 3)
        << "2MB backing must collapse streaming TLB misses";
}

} // namespace
} // namespace chirp
