/** @file Unit tests for util/stats.hh. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace chirp
{
namespace
{

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Unbiased sample variance of the classic example set.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsCombinedStream)
{
    RunningStat a;
    RunningStat b;
    RunningStat all;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.1 * i;
        (i % 2 ? a : b).push(x);
        all.push(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a;
    a.push(1.0);
    RunningStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    RunningStat target;
    target.merge(a);
    EXPECT_EQ(target.count(), 1u);
    EXPECT_DOUBLE_EQ(target.mean(), 1.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 1.0, 10);
    h.push(0.05);  // bin 0
    h.push(0.55);  // bin 5
    h.push(-3.0);  // clamped to bin 0
    h.push(7.0);   // clamped to bin 9
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.density(0), 0.5);
    EXPECT_NEAR(h.binCenter(0), 0.05, 1e-12);
    EXPECT_NEAR(h.binCenter(9), 0.95, 1e-12);
}

TEST(Mean, Basics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(GeomeanSpeedup, PercentImprovement)
{
    // Two workloads at +10% and -10%: geomean is ~ -0.5%.
    const double pct =
        geomeanSpeedupPct({1.1, 0.9}, {1.0, 1.0});
    EXPECT_NEAR(pct, (std::sqrt(1.1 * 0.9) - 1.0) * 100.0, 1e-9);
    EXPECT_NEAR(geomeanSpeedupPct({1.0}, {1.0}), 0.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly)
{
    const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(PctReduction, Signs)
{
    EXPECT_DOUBLE_EQ(pctReduction(2.0, 1.0), 50.0);
    EXPECT_DOUBLE_EQ(pctReduction(1.0, 2.0), -100.0);
    EXPECT_DOUBLE_EQ(pctReduction(0.0, 1.0), 0.0);
}

} // namespace
} // namespace chirp
