/** @file Tests for the synthetic data-access patterns. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/synthetic/patterns.hh"

namespace chirp
{
namespace
{

constexpr Addr kBase = Addr{1} << 32;

TEST(StreamPattern, SequentialPages)
{
    StreamPattern stream(kBase, 4, 3, 8);
    Rng rng(1);
    // Three touches per page, then the next page.
    for (unsigned page = 0; page < 4; ++page) {
        for (unsigned t = 0; t < 3; ++t) {
            const Addr addr = stream.nextAddr(rng);
            EXPECT_EQ(pageNumber(addr), pageNumber(kBase) + page);
            EXPECT_EQ(addr & kPageOffsetMask, t * 8);
        }
    }
    // Wraps to the first page.
    EXPECT_EQ(pageNumber(stream.nextAddr(rng)), pageNumber(kBase));
}

TEST(StreamPattern, LaggedRevisitsReTouchOldPages)
{
    // revisit fraction 1.0: after every page beyond the lag, one
    // extra touch lands `lag` pages back.
    StreamPattern stream(kBase, 64, 2, 64, /*revisit=*/1.0, /*lag=*/8);
    Rng rng(21);
    std::vector<Addr> pages;
    for (int i = 0; i < 64; ++i)
        pages.push_back(pageNumber(stream.nextAddr(rng)) -
                        pageNumber(kBase));
    // Find a back-jump of exactly `lag` pages.
    bool saw_revisit = false;
    for (std::size_t i = 1; i < pages.size(); ++i) {
        if (pages[i] + 8 == pages[i - 1] + 1 ||
            (pages[i - 1] >= 8 && pages[i] == pages[i - 1] - 8 + 1)) {
            saw_revisit = true;
        }
    }
    EXPECT_TRUE(saw_revisit);
}

TEST(StreamPattern, NoRevisitsByDefault)
{
    StreamPattern stream(kBase, 32, 2);
    Rng rng(23);
    Addr last = 0;
    bool first = true;
    while (true) {
        const Addr page = pageNumber(stream.nextAddr(rng)) -
                          pageNumber(kBase);
        if (!first) {
            EXPECT_GE(page + 1, last) << "pages advance monotonically";
        }
        if (page == 31)
            break;
        last = page;
        first = false;
    }
}

TEST(StreamPattern, ResetRestarts)
{
    StreamPattern stream(kBase, 8, 2);
    Rng rng(1);
    const Addr first = stream.nextAddr(rng);
    for (int i = 0; i < 7; ++i)
        stream.nextAddr(rng);
    stream.reset();
    EXPECT_EQ(stream.nextAddr(rng), first);
}

TEST(ZipfPattern, StaysInFootprint)
{
    ZipfPattern zipf(kBase, 32, 1.0, 42);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const Addr addr = zipf.nextAddr(rng);
        EXPECT_GE(addr, kBase);
        EXPECT_LT(addr, kBase + 32 * kPageSize);
    }
    EXPECT_EQ(zipf.footprintPages(), 32u);
    EXPECT_FALSE(zipf.transient());
}

TEST(ZipfPattern, SkewedTowardFewPages)
{
    ZipfPattern zipf(kBase, 64, 1.1, 42);
    Rng rng(7);
    std::map<Addr, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[pageNumber(zipf.nextAddr(rng))];
    // The most popular page should hold far more than 1/64 of the
    // accesses.
    int max_count = 0;
    for (const auto &[page, count] : counts)
        max_count = std::max(max_count, count);
    EXPECT_GT(max_count, 20000 / 16);
}

TEST(ZipfPattern, LineSlotsQuantizeOffsets)
{
    ZipfPattern zipf(kBase, 8, 1.0, 42, 4);
    Rng rng(7);
    std::set<Addr> offsets;
    for (int i = 0; i < 500; ++i)
        offsets.insert(zipf.nextAddr(rng) & kPageOffsetMask);
    EXPECT_LE(offsets.size(), 4u);
    for (const Addr off : offsets)
        EXPECT_EQ(off % 64, 0u);
}

TEST(UniformPattern, CoversFootprint)
{
    UniformPattern uniform(kBase, 16);
    Rng rng(3);
    std::set<Addr> pages;
    for (int i = 0; i < 2000; ++i)
        pages.insert(pageNumber(uniform.nextAddr(rng)));
    EXPECT_EQ(pages.size(), 16u);
    EXPECT_TRUE(uniform.transient());
}

TEST(ChasePattern, VisitsEveryPageBeforeRepeating)
{
    ChasePattern chase(kBase, 16, 1, 99);
    Rng rng(5);
    std::set<Addr> pages;
    for (int i = 0; i < 16; ++i)
        pages.insert(pageNumber(chase.nextAddr(rng)));
    // Sattolo cycle: all 16 pages visited in the first 16 steps.
    EXPECT_EQ(pages.size(), 16u);
}

TEST(ChasePattern, DerefsPerPage)
{
    ChasePattern chase(kBase, 8, 3, 99);
    Rng rng(5);
    for (int step = 0; step < 4; ++step) {
        const Addr page = pageNumber(chase.nextAddr(rng));
        EXPECT_EQ(pageNumber(chase.nextAddr(rng)), page);
        EXPECT_EQ(pageNumber(chase.nextAddr(rng)), page);
    }
}

TEST(TiledPattern, AccessesStayInTileThenAdvance)
{
    TiledPattern tiled(kBase, 64, 8, 100);
    Rng rng(11);
    // First 100 touches stay inside pages [0, 8).
    for (int i = 0; i < 100; ++i) {
        const Addr page = pageNumber(tiled.nextAddr(rng)) -
                          pageNumber(kBase);
        EXPECT_LT(page, 8u);
    }
    // After the tile advances, accesses come from [8, 16).
    for (int i = 0; i < 100; ++i) {
        const Addr page = pageNumber(tiled.nextAddr(rng)) -
                          pageNumber(kBase);
        EXPECT_GE(page, 8u);
        EXPECT_LT(page, 16u);
    }
}

TEST(TiledPattern, TileClampedToFootprint)
{
    TiledPattern tiled(kBase, 4, 100, 10);
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        const Addr page = pageNumber(tiled.nextAddr(rng)) -
                          pageNumber(kBase);
        EXPECT_LT(page, 4u);
    }
}

} // namespace
} // namespace chirp
