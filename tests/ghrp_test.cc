/** @file Behavioural tests for the GHRP adaptation. */

#include <gtest/gtest.h>

#include "core/ghrp.hh"

namespace chirp
{
namespace
{

AccessInfo
loadAt(Addr pc)
{
    AccessInfo info;
    info.pc = pc;
    info.vaddr = 0x1000;
    info.cls = InstClass::Load;
    return info;
}

TEST(Ghrp, HistoryUpdatesOnConditionalBranchesOnly)
{
    GhrpPolicy policy(4, 4);
    EXPECT_EQ(policy.history(), 0u);
    policy.onBranchRetired(0x400010, InstClass::UncondDirect, true);
    EXPECT_EQ(policy.history(), 0u);
    policy.onBranchRetired(0x400010, InstClass::CondBranch, true);
    const std::uint64_t after_taken = policy.history();
    EXPECT_NE(after_taken, 0u);
    EXPECT_EQ(after_taken & 1, 1u) << "outcome bit is the LSB";
    policy.onBranchRetired(0x400010, InstClass::CondBranch, false);
    EXPECT_EQ(policy.history() & 1, 0u);
}

TEST(Ghrp, UntrainedFillsAreLive)
{
    GhrpPolicy policy(4, 4);
    policy.onFill(0, 0, loadAt(0x400000));
    EXPECT_FALSE(policy.isDead(0, 0));
}

TEST(Ghrp, RepeatedUnreusedEvictionsTrainDead)
{
    GhrpPolicy policy(1, 2);
    const AccessInfo info = loadAt(0x400700);
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    // Fill/evict cycles with a constant context: dead evidence
    // accumulates for this signature.
    for (int i = 0; i < 12; ++i) {
        const std::uint32_t victim = policy.selectVictim(0, info);
        policy.onFill(0, victim, info);
    }
    // A fresh fill in the same context is now predicted dead.
    const std::uint32_t victim = policy.selectVictim(0, info);
    policy.onFill(0, victim, info);
    EXPECT_TRUE(policy.isDead(0, victim));
}

TEST(Ghrp, DeadEntriesArePreferredVictims)
{
    GhrpPolicy policy(1, 4);
    const AccessInfo info = loadAt(0x400800);
    for (std::uint32_t way = 0; way < 4; ++way)
        policy.onFill(0, way, info);
    // Saturate the signature dead, then refresh way 2's prediction
    // by re-filling it.
    for (int i = 0; i < 12; ++i) {
        const std::uint32_t victim = policy.selectVictim(0, info);
        policy.onFill(0, victim, info);
    }
    // At least one way should now be dead-predicted; the victim scan
    // picks the first dead way, not the LRU way.
    std::uint32_t first_dead = ~0u;
    for (std::uint32_t way = 0; way < 4; ++way) {
        if (policy.isDead(0, way)) {
            first_dead = way;
            break;
        }
    }
    ASSERT_NE(first_dead, ~0u);
    EXPECT_EQ(policy.selectVictim(0, info), first_dead);
}

TEST(Ghrp, HitsTrainLiveAndClearDeadBit)
{
    GhrpPolicy policy(1, 2);
    const AccessInfo info = loadAt(0x400900);
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    for (int i = 0; i < 12; ++i) {
        const std::uint32_t victim = policy.selectVictim(0, info);
        policy.onFill(0, victim, info);
    }
    // Hits pour live evidence onto the signature; eventually fills
    // under this context go back to live.
    for (int i = 0; i < 12; ++i)
        policy.onHit(0, 0, info);
    EXPECT_FALSE(policy.isDead(0, 0));
    policy.onFill(0, 1, info);
    EXPECT_FALSE(policy.isDead(0, 1));
}

TEST(Ghrp, TableTrafficOnEveryAccess)
{
    GhrpPolicy policy(4, 4);
    const AccessInfo info = loadAt(0x400a00);
    policy.onFill(0, 0, info);
    const std::uint64_t reads = policy.tableReads();
    const std::uint64_t writes = policy.tableWrites();
    policy.onHit(0, 0, info);
    // A hit reads all three tables and writes all three (live
    // training) — the Fig 11 "over 100%" behaviour.
    EXPECT_EQ(policy.tableReads(), reads + 3);
    EXPECT_EQ(policy.tableWrites(), writes + 3);
}

TEST(Ghrp, ContextSeparatesPredictions)
{
    GhrpPolicy policy(1, 2);
    const AccessInfo info = loadAt(0x400b00);
    // Context A: saturate dead.
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    for (int i = 0; i < 12; ++i) {
        const std::uint32_t victim = policy.selectVictim(0, info);
        policy.onFill(0, victim, info);
    }
    // Switch context by retiring conditional branches.
    for (int i = 0; i < 30; ++i)
        policy.onBranchRetired(0x40f000 + 16 * i, InstClass::CondBranch,
                               (i % 2) == 0);
    policy.onFill(0, 0, info);
    EXPECT_FALSE(policy.isDead(0, 0))
        << "a different branch context maps to different signatures";
}

TEST(Ghrp, StorageAccountsTablesAndSignatures)
{
    GhrpConfig config;
    GhrpPolicy policy(128, 8, config);
    const std::uint64_t expected =
        128ull * 8 * (config.numTables * config.signatureBits + 1) +
        128ull * 8 * 3 +
        config.numTables * config.tableEntries * config.counterBits +
        64;
    EXPECT_EQ(policy.storageBits(), expected);
}

} // namespace
} // namespace chirp
