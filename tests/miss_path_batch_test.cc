/**
 * @file
 * Batched-vs-scalar miss-path equivalence: Tlb::accessBatch with the
 * batched miss path (chunk signature/index precompute, deferred bulk
 * counters) must leave exactly the state of the scalar reference —
 * per-access hit results, victim choices, prediction-table traffic
 * and contents, and every statistic — for every policy kind, across
 * odd chunk tails, warmup-style sub-batch splits, and a mid-chunk
 * injected fault (CHIRP_FAULT=chunk-throw@N) whose unwind flushes a
 * torn chunk.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/policy_factory.hh"
#include "tlb/tlb.hh"
#include "util/fault_injection.hh"

namespace chirp
{
namespace
{

constexpr std::uint32_t kEntries = 128;
constexpr std::uint32_t kAssoc = 8;
constexpr Asid kAsid = 1;

/** RAII CHIRP_BATCH_MISS=0 so a failing ASSERT cannot leak it. */
class ScalarMissPath
{
  public:
    ScalarMissPath() { ::setenv("CHIRP_BATCH_MISS", "0", 1); }
    ~ScalarMissPath() { ::unsetenv("CHIRP_BATCH_MISS"); }
};

struct Stream
{
    std::vector<AccessInfo> infos;
    std::vector<Addr> keys;
    std::vector<std::uint64_t> nows;
    // Retire events delivered between chunks (frozen-history
    // contract): one batch per chunk index.
    std::vector<std::vector<AccessInfo>> retires;
};

/**
 * A random access stream over a working set a few times the TLB
 * capacity (so every policy sees hits, misses and evictions), plus
 * per-chunk retire batches for the history-driven policies.
 */
Stream
makeStream(std::size_t n, std::size_t chunks, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    Stream s;
    s.infos.resize(n);
    s.keys.resize(n);
    s.nows.resize(n);
    std::vector<std::uint8_t> shifts(n, kPageShift);
    std::vector<Addr> vaddrs(n);
    for (std::size_t i = 0; i < n; ++i) {
        AccessInfo &info = s.infos[i];
        info.pc = 0x400000 + (rng() % 512) * 4;
        info.vaddr = (rng() % (kEntries * 4)) << kPageShift;
        info.cls = InstClass::Load;
        info.isInstr = false;
        vaddrs[i] = info.vaddr;
        s.nows[i] = i;
    }
    Tlb::keysOf(vaddrs.data(), shifts.data(), n, kAsid, s.keys.data());
    s.retires.resize(chunks);
    for (auto &batch : s.retires) {
        const std::size_t m = rng() % 6;
        for (std::size_t r = 0; r < m; ++r) {
            AccessInfo info;
            info.pc = 0x400000 + (rng() % 512) * 4;
            const unsigned pick = rng() % 3;
            info.cls = pick == 0   ? InstClass::CondBranch
                       : pick == 1 ? InstClass::UncondIndirect
                                   : InstClass::Load;
            batch.push_back(info);
        }
    }
    return s;
}

std::unique_ptr<Tlb>
makeTlb(PolicyKind kind)
{
    TlbConfig config;
    config.name = "l2";
    config.entries = kEntries;
    config.assoc = kAssoc;
    return std::make_unique<Tlb>(
        config, makePolicy(kind, kEntries / kAssoc, kAssoc));
}

void
deliverRetires(Tlb &tlb, const std::vector<AccessInfo> &batch)
{
    for (const AccessInfo &info : batch) {
        tlb.policy().onInstRetired(info.pc, info.cls);
        if (isBranch(info.cls))
            tlb.policy().onBranchRetired(info.pc, info.cls, true);
    }
}

void
expectSameState(Tlb &a, Tlb &b, const Stream &s)
{
    EXPECT_EQ(a.accesses(), b.accesses());
    EXPECT_EQ(a.hits(), b.hits());
    EXPECT_EQ(a.misses(), b.misses());
    EXPECT_EQ(a.evictions(), b.evictions());
    EXPECT_EQ(a.validCount(), b.validCount());
    EXPECT_EQ(a.efficiency().generations(),
              b.efficiency().generations());
    EXPECT_EQ(a.efficiency().efficiency(),
              b.efficiency().efficiency());
    EXPECT_EQ(a.policy().tableReads(), b.policy().tableReads());
    EXPECT_EQ(a.policy().tableWrites(), b.policy().tableWrites());
    // Resident-entry equality: every key of the stream probes the
    // same way in both TLBs.
    for (const AccessInfo &info : s.infos)
        EXPECT_EQ(a.probe(info.vaddr, kAsid), b.probe(info.vaddr, kAsid));
}

TEST(MissPathBatch, EnvParsing)
{
    ::unsetenv("CHIRP_BATCH_MISS");
    EXPECT_TRUE(batchMissPath());
    ::setenv("CHIRP_BATCH_MISS", "", 1);
    EXPECT_TRUE(batchMissPath()) << "empty means unset";
    ::setenv("CHIRP_BATCH_MISS", "1", 1);
    EXPECT_TRUE(batchMissPath());
    ::setenv("CHIRP_BATCH_MISS", "0", 1);
    EXPECT_FALSE(batchMissPath()) << "explicit zero disables";
    ::unsetenv("CHIRP_BATCH_MISS");
}

/**
 * Batched accessBatch vs the scalar accessBatch reference loop vs n
 * one-at-a-time access() calls: identical per-access hit results and
 * identical end state, for every policy and with chunk sizes that
 * leave odd tails (the last chunk of each size is shorter).
 */
TEST(MissPathBatch, BatchedMatchesScalarEveryPolicy)
{
    ::unsetenv("CHIRP_BATCH_MISS");
    for (const PolicyKind kind : allPolicyKinds()) {
        SCOPED_TRACE(policyKindName(kind));
        for (const std::size_t chunk_size :
             {std::size_t{256}, std::size_t{97}, std::size_t{1}}) {
            SCOPED_TRACE("chunk " + std::to_string(chunk_size));
            const std::size_t n = 2000;
            const std::size_t chunks =
                (n + chunk_size - 1) / chunk_size;
            const Stream s = makeStream(n, chunks, 7 + chunk_size);

            auto batched = makeTlb(kind);
            ASSERT_TRUE(batched->missPathBatched());
            std::unique_ptr<Tlb> scalar_batch;
            std::unique_ptr<Tlb> scalar_one;
            {
                ScalarMissPath guard;
                scalar_batch = makeTlb(kind);
                scalar_one = makeTlb(kind);
            }
            ASSERT_FALSE(scalar_batch->missPathBatched());

            std::vector<std::uint8_t> ha(chunk_size), hb(chunk_size);
            std::size_t c = 0;
            for (std::size_t lo = 0; lo < n; lo += chunk_size, ++c) {
                const std::size_t m =
                    std::min(chunk_size, n - lo);
                batched->accessBatch(s.infos.data() + lo,
                                     s.keys.data() + lo,
                                     s.nows.data() + lo, m, kAsid,
                                     ha.data());
                scalar_batch->accessBatch(s.infos.data() + lo,
                                          s.keys.data() + lo,
                                          s.nows.data() + lo, m,
                                          kAsid, hb.data());
                for (std::size_t j = 0; j < m; ++j) {
                    EXPECT_EQ(ha[j], hb[j]) << "access " << lo + j;
                    const bool hit = scalar_one->access(
                        s.infos[lo + j], kAsid, s.nows[lo + j]);
                    EXPECT_EQ(ha[j] != 0, hit) << "access " << lo + j;
                }
                deliverRetires(*batched, s.retires[c]);
                deliverRetires(*scalar_batch, s.retires[c]);
                deliverRetires(*scalar_one, s.retires[c]);
            }
            expectSameState(*batched, *scalar_batch, s);
            expectSameState(*batched, *scalar_one, s);
        }
    }
}

/**
 * Warmup-boundary splits: a chunk delivered as two sub-batches split
 * at an arbitrary cut (the simulator's warmup handling) equals the
 * unsplit batch and the scalar loop.
 */
TEST(MissPathBatch, SubBatchSplitMatchesUnsplit)
{
    ::unsetenv("CHIRP_BATCH_MISS");
    for (const PolicyKind kind : allPolicyKinds()) {
        SCOPED_TRACE(policyKindName(kind));
        const std::size_t n = 1024;
        const std::size_t chunk = 256;
        const Stream s = makeStream(n, n / chunk, 23);

        auto split = makeTlb(kind);
        auto whole = makeTlb(kind);
        std::vector<std::uint8_t> ha(chunk), hb(chunk);
        const std::size_t cuts[] = {0, 1, 101, 255};
        std::size_t c = 0;
        for (std::size_t lo = 0; lo < n; lo += chunk, ++c) {
            const std::size_t cut = cuts[c % 4];
            split->accessBatch(s.infos.data() + lo, s.keys.data() + lo,
                               s.nows.data() + lo, cut, kAsid,
                               ha.data());
            split->accessBatch(s.infos.data() + lo + cut,
                               s.keys.data() + lo + cut,
                               s.nows.data() + lo + cut, chunk - cut,
                               kAsid, ha.data() + cut);
            whole->accessBatch(s.infos.data() + lo, s.keys.data() + lo,
                               s.nows.data() + lo, chunk, kAsid,
                               hb.data());
            for (std::size_t j = 0; j < chunk; ++j)
                EXPECT_EQ(ha[j], hb[j]) << "access " << lo + j;
            deliverRetires(*split, s.retires[c]);
            deliverRetires(*whole, s.retires[c]);
        }
        expectSameState(*split, *whole, s);
    }
}

/**
 * Mid-chunk fault unwind: CHIRP_FAULT=chunk-throw@K throws a
 * TransientError halfway through the Kth batched chunk.  The flushed
 * counters and all TLB/policy state must equal a scalar run of
 * exactly the accesses that completed before the throw, and both
 * TLBs must stay usable (and identical) afterwards.
 */
TEST(MissPathBatch, ChunkThrowUnwindsToScalarState)
{
    ::unsetenv("CHIRP_BATCH_MISS");
    constexpr std::size_t kChunk = 256;
    constexpr std::size_t kFaultChunk = 2;
    for (const PolicyKind kind : allPolicyKinds()) {
        SCOPED_TRACE(policyKindName(kind));
        const std::size_t n = 5 * kChunk;
        const Stream s = makeStream(n, n / kChunk, 41);

        auto batched = makeTlb(kind);
        std::unique_ptr<Tlb> scalar;
        {
            ScalarMissPath guard;
            scalar = makeTlb(kind);
        }

        FaultInjector::instance().configure(
            "chunk-throw@" + std::to_string(kFaultChunk));
        ASSERT_TRUE(FaultInjector::chunkFaultsArmed());

        std::vector<std::uint8_t> hits(kChunk);
        std::size_t survived = 0;
        bool threw = false;
        std::size_t c = 0;
        for (std::size_t lo = 0; lo < n; lo += kChunk, ++c) {
            try {
                batched->accessBatch(s.infos.data() + lo,
                                     s.keys.data() + lo,
                                     s.nows.data() + lo, kChunk, kAsid,
                                     hits.data());
                survived += kChunk;
            } catch (const TransientError &) {
                threw = true;
                EXPECT_EQ(c, kFaultChunk);
                // The fault fires between accesses, halfway through.
                survived += kChunk / 2;
                break;
            }
            deliverRetires(*batched, s.retires[c]);
        }
        ASSERT_TRUE(threw);
        EXPECT_FALSE(FaultInjector::chunkFaultsArmed());
        FaultInjector::instance().reset();

        // Scalar replay of exactly the surviving prefix (with the
        // same between-chunk retires).
        for (std::size_t i = 0; i < survived; ++i) {
            scalar->access(s.infos[i], kAsid, s.nows[i]);
            if ((i + 1) % kChunk == 0)
                deliverRetires(*scalar, s.retires[i / kChunk]);
        }
        expectSameState(*batched, *scalar, s);

        // Both remain consistent when the run continues (the
        // simulator retries a transient fault from a clean slate, but
        // the TLB itself must not be torn).
        std::vector<std::uint8_t> ha(kChunk), hb(kChunk);
        const std::size_t m = std::min(kChunk, n - survived);
        batched->accessBatch(s.infos.data() + survived,
                             s.keys.data() + survived,
                             s.nows.data() + survived, m, kAsid,
                             ha.data());
        scalar->accessBatch(s.infos.data() + survived,
                            s.keys.data() + survived,
                            s.nows.data() + survived, m, kAsid,
                            hb.data());
        for (std::size_t j = 0; j < m; ++j)
            EXPECT_EQ(ha[j], hb[j]);
        expectSameState(*batched, *scalar, s);
    }
}

} // namespace
} // namespace chirp
