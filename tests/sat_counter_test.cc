/** @file Unit tests for util/sat_counter.hh. */

#include <gtest/gtest.h>

#include "util/sat_counter.hh"

namespace chirp
{
namespace
{

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    EXPECT_EQ(c.max(), 3);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.saturatedHigh());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
    EXPECT_FALSE(c.saturatedHigh());
}

TEST(SatCounter, IncrementDecrementSymmetry)
{
    SatCounter c(3);
    c.increment();
    c.increment();
    c.decrement();
    EXPECT_EQ(c.value(), 1);
}

TEST(SatCounter, InitialValueClamped)
{
    SatCounter c(2, 100);
    EXPECT_EQ(c.value(), 3);
}

TEST(SatCounter, SetClamps)
{
    SatCounter c(2);
    c.set(2);
    EXPECT_EQ(c.value(), 2);
    c.set(99);
    EXPECT_EQ(c.value(), 3);
}

class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidth, MaxMatchesWidth)
{
    const unsigned bits = GetParam();
    SatCounter c(bits);
    EXPECT_EQ(c.max(), (1u << bits) - 1);
    for (unsigned i = 0; i < (1u << bits) + 5; ++i)
        c.increment();
    EXPECT_EQ(c.value(), c.max());
    for (unsigned i = 0; i < (1u << bits) + 5; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 12u));

} // namespace
} // namespace chirp
