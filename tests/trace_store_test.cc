/**
 * @file
 * Tests for the materialized trace store: one generation per
 * workload shared across getters, stream-key isolation, the on-disk
 * cache tier (round trip, corruption rejection, regeneration), and
 * residency bookkeeping via drop().
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "trace/trace_file.hh"
#include "trace/trace_store.hh"
#include "util/fault_injection.hh"

namespace chirp
{
namespace
{

WorkloadConfig
sampleConfig(Category category = Category::Spec,
             std::uint64_t seed = 42, InstCount length = 20000)
{
    WorkloadConfig config;
    config.category = category;
    config.seed = seed;
    config.length = length;
    config.name = "store-test";
    return config;
}

/** Fresh per-test temp dir so tests cannot see each other's files. */
std::string
freshCacheDir(const char *tag)
{
    const std::string dir =
        ::testing::TempDir() + "chirp_store_" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(TraceStore, SameConfigSharesOneMaterialization)
{
    TraceStore store("");
    const auto config = sampleConfig();
    const SharedTrace first = store.get(config);
    const SharedTrace second = store.get(config);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first.get(), second.get()) << "same stream object shared";
    EXPECT_EQ(store.generated(), 1u) << "generator ran exactly once";
    EXPECT_EQ(first->size(), config.length);
}

TEST(TraceStore, KeyIgnoresDisplayName)
{
    auto a = sampleConfig();
    auto b = sampleConfig();
    b.name = "renamed-copy";
    EXPECT_EQ(workloadTraceKey(a), workloadTraceKey(b));

    TraceStore store("");
    EXPECT_EQ(store.get(a).get(), store.get(b).get());
    EXPECT_EQ(store.generated(), 1u);
}

TEST(TraceStore, DistinctConfigsAreIsolated)
{
    TraceStore store("");
    const auto base = sampleConfig();
    auto other_seed = base;
    other_seed.seed = base.seed + 1;
    auto other_cat = base;
    other_cat.category = Category::Crypto;
    auto other_len = base;
    other_len.length = base.length / 2;
    auto other_scale = base;
    other_scale.scale = 2.0;

    const auto t0 = store.get(base);
    const auto t1 = store.get(other_seed);
    const auto t2 = store.get(other_cat);
    const auto t3 = store.get(other_len);
    const auto t4 = store.get(other_scale);
    EXPECT_EQ(store.generated(), 5u);
    EXPECT_NE(t0.get(), t1.get());
    EXPECT_NE(t0.get(), t2.get());
    EXPECT_NE(t0.get(), t3.get());
    EXPECT_NE(t0.get(), t4.get());
    EXPECT_NE(*t0, *t1) << "different seed, different stream";
}

TEST(TraceStore, MatchesDirectGeneration)
{
    TraceStore store("");
    const auto config = sampleConfig(Category::Database, 7, 5000);
    const auto trace = store.get(config);
    EXPECT_EQ(*trace, materializeWorkload(config));
}

TEST(TraceStore, DropReleasesResidency)
{
    TraceStore store("");
    const auto config = sampleConfig();
    {
        const auto trace = store.get(config);
        EXPECT_EQ(store.residentTraces(), 1u);
    }
    store.drop(config);
    EXPECT_EQ(store.residentTraces(), 0u);
    // A fresh get() after drop re-materializes.
    const auto again = store.get(config);
    EXPECT_EQ(store.generated(), 2u);
    EXPECT_EQ(*again, materializeWorkload(config));
}

TEST(TraceStore, DiskTierRoundTrips)
{
    const std::string dir = freshCacheDir("roundtrip");
    const auto config = sampleConfig(Category::Web, 9, 8000);

    TraceStore writer(dir);
    const auto generated = writer.get(config);
    EXPECT_EQ(writer.generated(), 1u);
    EXPECT_TRUE(std::filesystem::exists(writer.cachePath(config)))
        << "materialization persisted to the cache dir";

    // A second store must satisfy the request from disk alone.
    TraceStore reader(dir);
    const auto loaded = reader.get(config);
    EXPECT_EQ(reader.generated(), 0u);
    EXPECT_EQ(reader.diskLoads(), 1u);
    EXPECT_EQ(*loaded, *generated);
    std::filesystem::remove_all(dir);
}

TEST(TraceStore, CorruptedCacheIsRejectedAndRegenerated)
{
    const std::string dir = freshCacheDir("corrupt");
    const auto config = sampleConfig(Category::BigData, 11, 6000);

    TraceStore writer(dir);
    const auto generated = writer.get(config);
    const std::string path = writer.cachePath(config);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Flip one byte in the record payload; the eager checksum pass
    // must refuse the file and fall back to the generator.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 26 * 3 + 1, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }

    TraceStore reader(dir);
    const auto regenerated = reader.get(config);
    EXPECT_EQ(reader.rejectedCaches(), 1u);
    EXPECT_EQ(reader.diskLoads(), 0u);
    EXPECT_EQ(reader.generated(), 1u);
    EXPECT_EQ(*regenerated, *generated)
        << "regenerated stream is the pristine one";
    std::filesystem::remove_all(dir);
}

TEST(TraceStore, StaleLengthCacheIsRejected)
{
    const std::string dir = freshCacheDir("stale");
    auto config = sampleConfig(Category::Scientific, 13, 4000);

    {
        TraceStore store(dir);
        store.get(config);
    }
    // Same stream key cannot happen with a different length (length
    // is part of the key), but a truncated/rewritten file under the
    // same name must still be refused by the count check.
    const TraceStore probe(dir);
    const std::string path = probe.cachePath(config);
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        // Rewrite the file with fewer records than the config needs.
        auto short_config = config;
        short_config.length = 100;
        TraceFileWriter writer(path);
        for (const auto &rec : materializeWorkload(short_config))
            writer.append(rec);
    }
    TraceStore reader(dir);
    const auto trace = reader.get(config);
    EXPECT_EQ(reader.rejectedCaches(), 1u);
    EXPECT_EQ(reader.generated(), 1u);
    EXPECT_EQ(trace->size(), config.length);
    std::filesystem::remove_all(dir);
}

TEST(TraceStore, TruncatedCacheIsQuarantined)
{
    const std::string dir = freshCacheDir("truncated");
    const auto config = sampleConfig(Category::Web, 17, 3000);

    TraceStore writer(dir);
    const auto generated = writer.get(config);
    const std::string path = writer.cachePath(config);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Cut the file in half: the probe's size check must refuse it,
    // rename it aside as evidence, and regenerate.
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);

    TraceStore reader(dir);
    const auto regenerated = reader.get(config);
    EXPECT_EQ(reader.quarantinedCaches(), 1u);
    EXPECT_EQ(reader.rejectedCaches(), 1u);
    EXPECT_EQ(reader.generated(), 1u);
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"))
        << "bad file kept for post-mortem";
    EXPECT_TRUE(std::filesystem::exists(path))
        << "fresh cache file re-published after regeneration";
    EXPECT_EQ(*regenerated, *generated);

    // The re-published replacement must satisfy a third store.
    TraceStore again(dir);
    again.get(config);
    EXPECT_EQ(again.diskLoads(), 1u);
    EXPECT_EQ(again.quarantinedCaches(), 0u);
    std::filesystem::remove_all(dir);
}

TEST(TraceStore, BitFlippedCacheIsQuarantined)
{
    const std::string dir = freshCacheDir("bitflip");
    const auto config = sampleConfig(Category::Spec, 19, 3000);

    TraceStore writer(dir);
    const auto generated = writer.get(config);
    const std::string path = writer.cachePath(config);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Single flipped bit mid-payload: structure stays plausible, so
    // only the checksum pass can catch it.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 26 * 10, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);
    }

    TraceStore reader(dir);
    const auto regenerated = reader.get(config);
    EXPECT_EQ(reader.quarantinedCaches(), 1u);
    EXPECT_EQ(reader.generated(), 1u);
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
    EXPECT_EQ(*regenerated, *generated);
    std::filesystem::remove_all(dir);
}

/** Pin CHIRP_TRACE_FORMAT for one test, restoring the prior value. */
class ScopedTraceFormat
{
  public:
    explicit ScopedTraceFormat(const char *format)
    {
        if (const char *prev = std::getenv("CHIRP_TRACE_FORMAT"))
            saved_ = prev;
        ::setenv("CHIRP_TRACE_FORMAT", format, 1);
    }

    ~ScopedTraceFormat()
    {
        if (saved_.empty())
            ::unsetenv("CHIRP_TRACE_FORMAT");
        else
            ::setenv("CHIRP_TRACE_FORMAT", saved_.c_str(), 1);
    }

    ScopedTraceFormat(const ScopedTraceFormat &) = delete;
    ScopedTraceFormat &operator=(const ScopedTraceFormat &) = delete;

  private:
    std::string saved_;
};

TEST(TraceStoreMmap, DiskTierServesZeroCopyMappings)
{
    const ScopedTraceFormat format("mmap");
    const std::string dir = freshCacheDir("mmap_roundtrip");
    const auto config = sampleConfig(Category::Scientific, 23, 7000);

    TraceStore writer(dir);
    const auto generated = writer.get(config);
    EXPECT_EQ(writer.generated(), 1u);

    TraceStore reader(dir);
    const auto mapped = reader.get(config);
    EXPECT_EQ(reader.generated(), 0u);
    EXPECT_EQ(reader.diskLoads(), 1u);
    EXPECT_EQ(reader.mappedLoads(), 1u)
        << "the mmap tier must map, not copy, the cache file";
    EXPECT_EQ(*mapped, *generated);
    std::filesystem::remove_all(dir);
}

TEST(TraceStoreMmap, BitFlippedCacheQuarantinesLikeStreamingTier)
{
    const ScopedTraceFormat format("mmap");
    const std::string dir = freshCacheDir("mmap_bitflip");
    const auto config = sampleConfig(Category::Database, 29, 3000);

    TraceStore writer(dir);
    const auto generated = writer.get(config);
    const std::string path = writer.cachePath(config);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Same single-bit corruption the streaming-tier test injects: the
    // mapped checksum pass must catch it before the trace is trusted,
    // quarantine the file identically, and fall back to the generator.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 8 * 100, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);
    }

    TraceStore reader(dir);
    const auto regenerated = reader.get(config);
    EXPECT_EQ(reader.mappedLoads(), 0u);
    EXPECT_EQ(reader.quarantinedCaches(), 1u);
    EXPECT_EQ(reader.rejectedCaches(), 1u);
    EXPECT_EQ(reader.generated(), 1u);
    EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"))
        << "mmap tier keeps the same .corrupt evidence trail";
    EXPECT_EQ(*regenerated, *generated);

    // The re-published replacement serves zero-copy again.
    TraceStore again(dir);
    EXPECT_EQ(*again.get(config), *generated);
    EXPECT_EQ(again.mappedLoads(), 1u);
    EXPECT_EQ(again.quarantinedCaches(), 0u);
    std::filesystem::remove_all(dir);
}

/**
 * The CHIRP_FAULT cache-bitflip action against the v2 column format:
 * the injector corrupts the freshly published cache file, and the
 * next store to consider it must quarantine and regenerate on both
 * the streaming and the zero-copy tier.
 */
void
runFaultInjectedBitflip(const char *format_name, std::uint64_t seed)
{
    const ScopedTraceFormat format(format_name);
    const std::string dir =
        freshCacheDir((std::string("fault_") + format_name).c_str());
    const auto config = sampleConfig(Category::Web, seed, 4000);

    FaultInjector &injector = FaultInjector::instance();
    injector.configure("cache-bitflip@0");
    TraceStore writer(dir);
    const auto generated = writer.get(config);
    EXPECT_EQ(injector.cacheEvents(), 1u)
        << "publishing the cache file must fire the armed action";
    injector.reset();

    TraceStore reader(dir);
    const auto regenerated = reader.get(config);
    EXPECT_EQ(reader.quarantinedCaches(), 1u)
        << format_name << ": corrupted publish must be quarantined";
    EXPECT_EQ(reader.generated(), 1u);
    EXPECT_TRUE(std::filesystem::exists(
        writer.cachePath(config) + ".corrupt"));
    EXPECT_EQ(*regenerated, *generated);
    std::filesystem::remove_all(dir);
}

TEST(TraceStoreFault, InjectedBitflipQuarantinesStreamingTier)
{
    runFaultInjectedBitflip("columnar", 31);
}

TEST(TraceStoreFault, InjectedBitflipQuarantinesMmapTier)
{
    runFaultInjectedBitflip("mmap", 37);
}

TEST(MemoryTraceSource, ReplaysSharedStream)
{
    const auto config = sampleConfig(Category::Crypto, 5, 3000);
    const auto trace = std::make_shared<const ColumnarTrace>(
        materializeWorkload(config));
    MemoryTraceSource source(trace, "replay");
    EXPECT_EQ(source.expectedLength(), trace->size());

    std::vector<TraceRecord> replayed;
    TraceRecord rec;
    while (source.next(rec))
        replayed.push_back(rec);
    EXPECT_EQ(*trace, replayed);

    // reset() rewinds to a byte-identical second pass.
    source.reset();
    std::size_t i = 0;
    while (source.next(rec))
        EXPECT_EQ(rec, trace->record(i++));
    EXPECT_EQ(i, trace->size());
}

} // namespace
} // namespace chirp
