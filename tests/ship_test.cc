/** @file Behavioural tests for the SHiP adaptation. */

#include <gtest/gtest.h>

#include "core/ship.hh"

namespace chirp
{
namespace
{

AccessInfo
loadAt(Addr pc)
{
    AccessInfo info;
    info.pc = pc;
    info.vaddr = 0x1000;
    info.cls = InstClass::Load;
    return info;
}

TEST(Ship, DefaultsDegenerateToLruWhenUntrained)
{
    ShipPolicy policy(4, 4);
    const AccessInfo info = loadAt(0x400000);
    for (std::uint32_t way = 0; way < 4; ++way)
        policy.onFill(0, way, info);
    // Untrained counters are 0 -> every insertion was demoted, so the
    // victim is the most recent insertion path... verify the victim
    // is a valid way and that with a trained-live signature the
    // policy behaves as plain LRU.
    for (int i = 0; i < 8; ++i) {
        policy.onHit(0, 1, info); // train the signature live
        policy.onAccessEnd(0, info);
    }
    policy.onFill(0, 2, loadAt(0x400000));
    // Live-predicted fill goes to MRU: way 2 must not be the victim.
    EXPECT_NE(policy.selectVictim(0, info), 2u);
}

TEST(Ship, DeadSignatureInsertsAtLru)
{
    ShipPolicy policy(4, 4);
    const Addr dead_pc = 0x400100;
    const Addr live_pc = 0x400200;
    // Train the live signature well above zero.
    for (int i = 0; i < 8; ++i) {
        policy.onFill(1, 0, loadAt(live_pc));
        policy.onHit(1, 0, loadAt(live_pc));
        policy.onAccessEnd(1, loadAt(live_pc));
    }
    EXPECT_GT(policy.counterFor(live_pc), 0);
    // The dead PC's counter stays at 0 (never trained live), so its
    // fills are demoted straight to the LRU position.
    EXPECT_EQ(policy.counterFor(dead_pc), 0);
    policy.onFill(0, 0, loadAt(live_pc));
    policy.onHit(0, 0, loadAt(live_pc));
    policy.onFill(0, 1, loadAt(live_pc));
    policy.onHit(0, 1, loadAt(live_pc));
    policy.onFill(0, 2, loadAt(live_pc));
    policy.onHit(0, 2, loadAt(live_pc));
    policy.onFill(0, 3, loadAt(dead_pc));
    EXPECT_EQ(policy.selectVictim(0, loadAt(live_pc)), 3u)
        << "dead-predicted insertion is the next victim";
}

TEST(Ship, EvictionWithoutReuseTrainsDead)
{
    ShipPolicy policy(2, 2);
    const Addr pc = 0x400300;
    // Build the counter up.
    for (int i = 0; i < 4; ++i) {
        policy.onFill(0, 0, loadAt(pc));
        policy.onHit(0, 0, loadAt(pc));
        policy.onAccessEnd(0, loadAt(pc));
    }
    // Fill way 1 (never hit), then touch way 0 so way 1 is the LRU
    // victim.
    policy.onFill(0, 1, loadAt(pc));
    policy.onHit(0, 0, loadAt(pc));
    const std::uint16_t trained = policy.counterFor(pc);
    EXPECT_GT(trained, 0);
    // Evicting the unreused entry decrements its signature counter.
    EXPECT_EQ(policy.selectVictim(0, loadAt(pc)), 1u);
    EXPECT_LT(policy.counterFor(pc), trained);
}

TEST(Ship, SelectiveHitUpdateFiltersTraining)
{
    ShipConfig config;
    config.hitUpdate = HitUpdateMode::FirstHitDiffSet;
    ShipPolicy policy(4, 2, config);
    const AccessInfo info = loadAt(0x400400);
    policy.onFill(0, 0, info);
    policy.onAccessEnd(0, info);
    const std::uint64_t writes_before = policy.tableWrites();
    // Hit to the same set as the previous access: no training.
    policy.onHit(0, 0, info);
    policy.onAccessEnd(0, info);
    EXPECT_EQ(policy.tableWrites(), writes_before);
    // Re-fill in another set, then hit it coming from elsewhere.
    policy.onFill(2, 0, info);
    policy.onAccessEnd(2, info);
    policy.onFill(1, 0, info);
    policy.onAccessEnd(1, info);
    policy.onHit(2, 0, info);
    EXPECT_GT(policy.tableWrites(), writes_before)
        << "first hit from a different set trains";
}

TEST(Ship, EveryModeTrainsOnAllHits)
{
    ShipPolicy policy(4, 2); // default: Every
    const AccessInfo info = loadAt(0x400500);
    policy.onFill(0, 0, info);
    const std::uint64_t before = policy.tableWrites();
    policy.onHit(0, 0, info);
    policy.onHit(0, 0, info);
    policy.onHit(0, 0, info);
    EXPECT_EQ(policy.tableWrites(), before + 3);
}

TEST(Ship, UnlimitedTableHasNoAliasing)
{
    ShipConfig config;
    config.unlimitedTable = true;
    ShipPolicy policy(4, 2, config);
    // Two PCs that would alias in a folded table stay separate.
    const Addr a = 0x400000;
    const Addr b = a + (1ull << 40);
    for (int i = 0; i < 4; ++i) {
        policy.onFill(0, 0, loadAt(a));
        policy.onHit(0, 0, loadAt(a));
    }
    EXPECT_GT(policy.counterFor(a), 0);
    EXPECT_EQ(policy.counterFor(b), 0);
}

TEST(Ship, SubsetSetsFallBackToPlainLru)
{
    ShipConfig config;
    config.predictedSetsFraction = 0.5;
    ShipPolicy policy(4, 2, config); // sets 0,1 predicted; 2,3 LRU
    const AccessInfo info = loadAt(0x400600);
    const std::uint64_t reads_before = policy.tableReads();
    policy.onFill(3, 0, info);
    policy.onHit(3, 0, info);
    policy.selectVictim(3, info);
    EXPECT_EQ(policy.tableReads(), reads_before)
        << "unpredicted sets never touch the table";
    policy.onFill(0, 0, info);
    EXPECT_GT(policy.tableReads(), reads_before);
}

TEST(Ship, StorageAccountsSignaturesAndTable)
{
    ShipConfig config;
    ShipPolicy policy(128, 8, config);
    const std::uint64_t expected =
        128ull * 8 * (config.signatureBits + 1) // per-entry sig+outcome
        + 128ull * 8 * 3                        // LRU stack
        + 16384ull * 3;                         // SHCT
    EXPECT_EQ(policy.storageBits(), expected);
}

} // namespace
} // namespace chirp
