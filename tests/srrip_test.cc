/** @file Behavioural tests for SRRIP. */

#include <gtest/gtest.h>

#include "core/srrip.hh"

namespace chirp
{
namespace
{

AccessInfo
dummyAccess()
{
    AccessInfo info;
    info.pc = 0x400000;
    info.vaddr = 0x1000;
    info.cls = InstClass::Load;
    return info;
}

TEST(Srrip, InsertionIsLongReReference)
{
    SrripPolicy policy(4, 4);
    policy.onFill(0, 1, dummyAccess());
    EXPECT_EQ(policy.rrpv(0, 1), policy.maxRrpv() - 1);
}

TEST(Srrip, HitPromotesToNearImmediate)
{
    SrripPolicy policy(4, 4);
    policy.onFill(0, 1, dummyAccess());
    policy.onHit(0, 1, dummyAccess());
    EXPECT_EQ(policy.rrpv(0, 1), 0);
}

TEST(Srrip, VictimIsDistantEntry)
{
    SrripPolicy policy(1, 4);
    const AccessInfo info = dummyAccess();
    // Fill all ways (RRPV 2 each), promote ways 0-2.
    for (std::uint32_t way = 0; way < 4; ++way)
        policy.onFill(0, way, info);
    policy.onHit(0, 0, info);
    policy.onHit(0, 1, info);
    policy.onHit(0, 2, info);
    // Way 3 (RRPV 2) ages to 3 first and is the victim.
    EXPECT_EQ(policy.selectVictim(0, info), 3u);
}

TEST(Srrip, AgingIsBoundedAndMonotonic)
{
    SrripPolicy policy(1, 2);
    const AccessInfo info = dummyAccess();
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    policy.onHit(0, 0, info);
    policy.onHit(0, 1, info);
    // Both at RRPV 0: victim selection must still terminate (ages
    // the set up to RRPV max) and return a valid way.
    const std::uint32_t victim = policy.selectVictim(0, info);
    EXPECT_LT(victim, 2u);
    // After aging, the non-victim sits at max too.
    EXPECT_EQ(policy.rrpv(0, 1 - victim), policy.maxRrpv());
}

TEST(Srrip, ScanResistance)
{
    // A re-referenced entry survives a stream of single-use fills.
    SrripPolicy policy(1, 4);
    const AccessInfo info = dummyAccess();
    for (std::uint32_t way = 0; way < 4; ++way)
        policy.onFill(0, way, info);
    for (int i = 0; i < 20; ++i) {
        policy.onHit(0, 2, info); // way 2 stays hot
        const std::uint32_t victim = policy.selectVictim(0, info);
        EXPECT_NE(victim, 2u) << "hot entry evicted by scan";
        policy.onFill(0, victim, info);
    }
}

TEST(Srrip, WiderRrpvHasLargerMax)
{
    SrripPolicy policy(4, 4, 3);
    EXPECT_EQ(policy.maxRrpv(), 7);
    policy.onFill(0, 0, dummyAccess());
    EXPECT_EQ(policy.rrpv(0, 0), 6);
}

TEST(Srrip, StorageAccounting)
{
    SrripPolicy policy(128, 8, 2);
    EXPECT_EQ(policy.storageBits(), 128u * 8u * 2u);
}

} // namespace
} // namespace chirp
