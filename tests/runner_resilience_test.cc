/**
 * @file
 * Suite-runner resilience tests driven by the fault injector: hard
 * faults isolate a single job, transient faults are retried per
 * --retries, the run journal resumes to bit-identical stats, the
 * watchdog cancels jobs overrunning their budget, and a recorder
 * failure in runSuiteMulti fails exactly that workload's pending
 * policies.  All runs are serial (jobs = 1) so fault events land on
 * deterministic jobs.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/policy_factory.hh"
#include "sim/run_journal.hh"
#include "sim/runner.hh"
#include "util/fault_injection.hh"

namespace chirp
{
namespace
{

class RunnerResilienceTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

SimConfig
fastConfig()
{
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    return config;
}

std::vector<WorkloadConfig>
smallSuite(std::size_t size = 4)
{
    SuiteOptions options;
    options.size = size;
    options.traceLength = 40000;
    return makeSuite(options);
}

void
expectIdenticalStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2TlbAccesses, b.l2TlbAccesses);
    EXPECT_EQ(a.l2TlbHits, b.l2TlbHits);
    EXPECT_EQ(a.l2TlbMisses, b.l2TlbMisses);
    EXPECT_EQ(a.tableReads, b.tableReads);
    EXPECT_EQ(a.tableWrites, b.tableWrites);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.l2Efficiency, b.l2Efficiency);
}

TEST_F(RunnerResilienceTest, HardFaultIsolatesOneJob)
{
    const auto suite = smallSuite();
    const Runner runner(fastConfig());
    // Serial run: job event 1 is the second workload's only attempt.
    FaultInjector::instance().configure("hard-throw@1");
    const auto results = runner.runSuiteParallel(
        suite, Runner::factoryFor(PolicyKind::Lru), 1);

    ASSERT_EQ(results.size(), suite.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 1)
            EXPECT_EQ(results[i].stats.instructions, 0u);
        else
            EXPECT_GT(results[i].stats.instructions, 0u);
    }
    const SuiteHealth &health = *runner.health();
    EXPECT_EQ(health.totalJobs(), suite.size());
    EXPECT_EQ(health.okJobs(), suite.size() - 1);
    ASSERT_EQ(health.failureCount(), 1u);
    const JobResult failed = health.failures()[0];
    EXPECT_EQ(failed.workload, suite[1].name);
    EXPECT_EQ(failed.attempts, 1u)
        << "InjectedFault must not be retried";
    EXPECT_NE(failed.error.find("permanent"), std::string::npos);
}

TEST_F(RunnerResilienceTest, TransientFaultIsRetriedToSuccess)
{
    const auto suite = smallSuite();
    const auto factory = Runner::factoryFor(PolicyKind::Srrip);
    const Runner clean(fastConfig());
    const auto reference = clean.runSuiteParallel(suite, factory, 1);

    Runner runner(fastConfig());
    ASSERT_EQ(runner.resilience().retries, 1u) << "default retry budget";
    // Serial events: job0 @0, job1 @1, job2 @2 (throws) then its
    // retry @3, job3 @4.
    FaultInjector::instance().configure("throw@2");
    const auto results = runner.runSuiteParallel(suite, factory, 1);

    const SuiteHealth &health = *runner.health();
    EXPECT_EQ(health.okJobs(), suite.size());
    EXPECT_EQ(health.failureCount(), 0u);
    EXPECT_EQ(health.retriedJobs(), 1u);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE(suite[i].name);
        expectIdenticalStats(results[i].stats, reference[i].stats);
    }
}

TEST_F(RunnerResilienceTest, ExhaustedRetriesFailTheJob)
{
    const auto suite = smallSuite();
    Runner runner(fastConfig());
    // Both the first attempt (event 1) and the one retry (event 2)
    // fail; the job is out of budget after 2 attempts.
    FaultInjector::instance().configure("throw@1,throw@2");
    runner.runSuiteParallel(suite, Runner::factoryFor(PolicyKind::Lru),
                            1);
    const SuiteHealth &health = *runner.health();
    ASSERT_EQ(health.failureCount(), 1u);
    EXPECT_EQ(health.failures()[0].attempts, 2u);
    EXPECT_EQ(health.failures()[0].workload, suite[1].name);
    EXPECT_NE(health.failures()[0].error.find("transient"),
              std::string::npos);
}

TEST_F(RunnerResilienceTest, ZeroRetriesFailsOnFirstTransient)
{
    const auto suite = smallSuite(2);
    Runner runner(fastConfig());
    runner.setResilience({/*retries=*/0, /*jobTimeoutMs=*/0});
    FaultInjector::instance().configure("throw@0");
    runner.runSuiteParallel(suite, Runner::factoryFor(PolicyKind::Lru),
                            1);
    const SuiteHealth &health = *runner.health();
    ASSERT_EQ(health.failureCount(), 1u);
    EXPECT_EQ(health.failures()[0].attempts, 1u);
}

TEST_F(RunnerResilienceTest, WatchdogCancelsSlowJobs)
{
    const auto suite = smallSuite(3);
    Runner runner(fastConfig());
    // The budget must let a healthy job finish even on a loaded CI
    // runner under sanitizers (~100 ms observed) while the slow job
    // overruns it by a wide margin.
    runner.setResilience({/*retries=*/1, /*jobTimeoutMs=*/400});
    // Job 1's attempt sleeps 1.5 s before simulating; the watchdog
    // trips at 400 ms and the simulator aborts at its first
    // cancellation point.
    FaultInjector::instance().configure("slow@1:1500");
    const auto results = runner.runSuiteParallel(
        suite, Runner::factoryFor(PolicyKind::Lru), 1);
    const SuiteHealth &health = *runner.health();
    EXPECT_EQ(health.okJobs(), suite.size() - 1)
        << "the watchdog is enforcing: the slow job is cancelled";
    ASSERT_EQ(health.failureCount(), 1u);
    EXPECT_EQ(health.hungJobs(), 1u);
    EXPECT_EQ(health.timedOutJobs(), 1u);
    const JobResult failed = health.failures()[0];
    EXPECT_EQ(failed.workload, suite[1].name);
    EXPECT_TRUE(failed.timedOut);
    EXPECT_EQ(failed.attempts, 1u)
        << "a cancelled attempt is never retried";
    EXPECT_EQ(results[1].stats.instructions, 0u);
}

TEST_F(RunnerResilienceTest, JournalResumeIsBitIdentical)
{
    const auto suite = smallSuite();
    const auto factory = Runner::factoryFor(PolicyKind::Chirp);
    const std::string path =
        ::testing::TempDir() + "chirp_resilience.journal";
    std::filesystem::remove(path);
    const std::uint64_t fp = 0xc0ffee;

    const Runner clean(fastConfig());
    const auto reference = clean.runSuiteParallel(suite, factory, 1);

    {
        // First run: job 2 dies with a permanent fault, the other
        // three land in the journal.
        Runner crashing(fastConfig());
        crashing.setJournal(
            std::make_shared<RunJournal>(path, fp, /*resume=*/false));
        FaultInjector::instance().configure("hard-throw@2");
        crashing.runSuiteParallel(suite, factory, 1);
        EXPECT_EQ(crashing.health()->failureCount(), 1u);
    }

    FaultInjector::instance().reset();
    Runner resuming(fastConfig());
    auto journal =
        std::make_shared<RunJournal>(path, fp, /*resume=*/true);
    EXPECT_EQ(journal->loaded(), suite.size() - 1);
    resuming.setJournal(journal);
    const auto resumed = resuming.runSuiteParallel(suite, factory, 1);

    const SuiteHealth &health = *resuming.health();
    EXPECT_EQ(health.resumedJobs(), suite.size() - 1)
        << "only the failed job is re-simulated";
    EXPECT_EQ(health.okJobs(), suite.size());
    EXPECT_EQ(health.failureCount(), 0u);
    ASSERT_EQ(resumed.size(), reference.size());
    for (std::size_t i = 0; i < resumed.size(); ++i) {
        SCOPED_TRACE(suite[i].name);
        expectIdenticalStats(resumed[i].stats, reference[i].stats);
    }
    std::filesystem::remove(path);
}

TEST_F(RunnerResilienceTest, MultiRecorderFailureFailsItsWorkloadOnly)
{
    const auto suite = smallSuite(2);
    const std::vector<PolicyFactory> factories = {
        Runner::factoryFor(PolicyKind::Lru),
        Runner::factoryFor(PolicyKind::Chirp),
    };
    const Runner runner(fastConfig(), 1);
    // Fast-path serial events per workload: recorder first, then one
    // replay per policy.  Event 0 is workload 0's recorder; with no
    // event stream every pending policy of that workload fails.
    FaultInjector::instance().configure("hard-throw@0");
    const auto results =
        runner.runSuiteMulti(suite, factories, "", {}, {"lru", "chirp"});

    ASSERT_EQ(results.size(), factories.size());
    for (std::size_t p = 0; p < factories.size(); ++p) {
        EXPECT_EQ(results[p][0].stats.instructions, 0u);
        EXPECT_GT(results[p][1].stats.instructions, 0u);
    }
    const SuiteHealth &health = *runner.health();
    EXPECT_EQ(health.totalJobs(), suite.size() * factories.size());
    ASSERT_EQ(health.failureCount(), factories.size());
    for (const JobResult &job : health.failures()) {
        EXPECT_EQ(job.workload, suite[0].name);
        EXPECT_NE(job.error.find("permanent"), std::string::npos);
    }
}

TEST_F(RunnerResilienceTest, MultiReplayFaultFailsOnePolicyJob)
{
    const auto suite = smallSuite(2);
    const std::vector<PolicyFactory> factories = {
        Runner::factoryFor(PolicyKind::Lru),
        Runner::factoryFor(PolicyKind::Srrip),
    };
    const Runner runner(fastConfig(), 1);
    const auto reference = runner.runSuiteMulti(suite, factories);
    // Serial fast-path events: w0 recorder @0, replays @1 @2; the
    // fault hits workload 0's second policy replay.
    FaultInjector::instance().configure("hard-throw@2");
    const auto results =
        runner.runSuiteMulti(suite, factories, "", {}, {"lru", "srrip"});

    const SuiteHealth &health = *runner.health();
    ASSERT_EQ(health.failureCount(), 1u);
    EXPECT_EQ(health.failures()[0].policy, "srrip");
    EXPECT_EQ(health.failures()[0].workload, suite[0].name);
    EXPECT_EQ(results[1][0].stats.instructions, 0u);
    // Every other cell matches the fault-free sweep bit-exactly.
    expectIdenticalStats(results[0][0].stats, reference[0][0].stats);
    expectIdenticalStats(results[0][1].stats, reference[0][1].stats);
    expectIdenticalStats(results[1][1].stats, reference[1][1].stats);
}

} // namespace
} // namespace chirp
