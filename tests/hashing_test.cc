/** @file Unit tests for util/hashing.hh. */

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "util/bitfield.hh"
#include "util/hashing.hh"

namespace chirp
{
namespace
{

TEST(Mix64, IsDeterministicAndMixes)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Single-bit input changes flip roughly half the output bits.
    const std::uint64_t a = mix64(0x1000);
    const std::uint64_t b = mix64(0x1001);
    const int flipped = std::popcount(a ^ b);
    EXPECT_GT(flipped, 16);
    EXPECT_LT(flipped, 48);
}

TEST(HashCombine, OrderSensitive)
{
    const std::uint64_t ab = hashCombine(hashCombine(0, 1), 2);
    const std::uint64_t ba = hashCombine(hashCombine(0, 2), 1);
    EXPECT_NE(ab, ba);
}

TEST(IndexHash, FitsWidth)
{
    for (unsigned w : {4u, 8u, 12u, 16u}) {
        for (std::uint64_t v = 0; v < 1000; v += 13)
            EXPECT_LE(indexHash(v, w), maskBits(w));
    }
}

TEST(IndexHash, SpreadsSequentialInputs)
{
    // Sequential signatures should not pile onto few table slots.
    std::set<std::uint64_t> slots;
    for (std::uint64_t sig = 0; sig < 256; ++sig)
        slots.insert(indexHash(sig, 12));
    EXPECT_GT(slots.size(), 200u);
}

TEST(CrcHash, MatchesKnownProperties)
{
    // CRC of distinct values differ (no trivial collisions in a
    // small smoke set).
    std::set<std::uint64_t> seen;
    for (std::uint64_t v = 0; v < 512; ++v)
        seen.insert(crcHash(v, 16));
    EXPECT_GT(seen.size(), 500u);
}

TEST(HashBy, DispatchesAllKinds)
{
    const std::uint64_t value = 0x123456789abcdefull;
    EXPECT_EQ(hashBy(HashKind::Index, value, 16), indexHash(value, 16));
    EXPECT_EQ(hashBy(HashKind::Fold, value, 16), foldHash(value, 16));
    EXPECT_EQ(hashBy(HashKind::Crc, value, 16), crcHash(value, 16));
}

TEST(HashKindName, AllNamed)
{
    EXPECT_STREQ(hashKindName(HashKind::Index), "index");
    EXPECT_STREQ(hashKindName(HashKind::Fold), "fold");
    EXPECT_STREQ(hashKindName(HashKind::Crc), "crc");
}

} // namespace
} // namespace chirp
