/** @file Unit tests for util/bitfield.hh. */

#include <gtest/gtest.h>

#include "util/bitfield.hh"

namespace chirp
{
namespace
{

TEST(MaskBits, Boundaries)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 0x1u);
    EXPECT_EQ(maskBits(8), 0xffu);
    EXPECT_EQ(maskBits(63), 0x7fffffffffffffffull);
    EXPECT_EQ(maskBits(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractsInclusiveRange)
{
    const std::uint64_t value = 0xdeadbeefcafebabeull;
    EXPECT_EQ(bits(value, 7, 0), 0xbeull);
    EXPECT_EQ(bits(value, 15, 8), 0xbaull);
    EXPECT_EQ(bits(value, 63, 56), 0xdeull);
    EXPECT_EQ(bits(value, 3, 2), (value >> 2) & 0x3);
}

TEST(Bits, SingleBitRange)
{
    EXPECT_EQ(bits(0b1000, 3, 3), 1u);
    EXPECT_EQ(bits(0b1000, 2, 2), 0u);
}

TEST(Bit, MatchesShiftAndMask)
{
    const std::uint64_t value = 0xa5a5a5a5a5a5a5a5ull;
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(bit(value, i), (value >> i) & 1) << "bit " << i;
}

TEST(InsertBits, ReplacesField)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xf), 0xf0u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0x0), 0xff0fu);
    // Only the low bits of src are used.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(InsertBits, RoundTripsWithBits)
{
    const std::uint64_t original = 0x123456789abcdef0ull;
    const std::uint64_t patched = insertBits(original, 23, 12, 0x5a5);
    EXPECT_EQ(bits(patched, 23, 12), 0x5a5u);
    // Bits outside the field are untouched.
    EXPECT_EQ(bits(patched, 11, 0), bits(original, 11, 0));
    EXPECT_EQ(bits(patched, 63, 24), bits(original, 63, 24));
}

TEST(IsPowerOfTwo, Classification)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(Log2, FloorAndCeil)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(FoldXor, FoldsToRequestedWidth)
{
    // Folding to 16 bits XORs the four 16-bit chunks.
    const std::uint64_t value = 0x1111222233334444ull;
    EXPECT_EQ(foldXor(value, 16), 0x1111u ^ 0x2222u ^ 0x3333u ^ 0x4444u);
    // Result always fits in the width.
    for (unsigned w = 1; w < 64; ++w)
        EXPECT_LE(foldXor(0xdeadbeefdeadbeefull, w), maskBits(w));
}

TEST(FoldXor, ZeroIsZero)
{
    EXPECT_EQ(foldXor(0, 16), 0u);
}

TEST(FoldXor, PreservesLowBitsOfSmallValues)
{
    EXPECT_EQ(foldXor(0x1234, 16), 0x1234u);
}

} // namespace
} // namespace chirp
