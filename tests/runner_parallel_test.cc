/**
 * @file
 * Serial vs parallel suite runs must be indistinguishable: identical
 * WorkloadResult vectors (bit-identical stats, same order) at any job
 * count, order-independent aggregation, and per-job failure
 * isolation (a throwing job must not abort the suite).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/policy_factory.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

namespace chirp
{
namespace
{

SimConfig
fastConfig()
{
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    return config;
}

std::vector<WorkloadConfig>
smallSuite(std::size_t size = 8)
{
    SuiteOptions options;
    options.size = size;
    options.traceLength = 60000;
    return makeSuite(options);
}

void
expectIdenticalResults(const std::vector<WorkloadResult> &serial,
                       const std::vector<WorkloadResult> &parallel)
{
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(serial[i].workload.name);
        EXPECT_EQ(serial[i].workload.name, parallel[i].workload.name);
        EXPECT_EQ(serial[i].workload.seed, parallel[i].workload.seed);
        const SimStats &a = serial[i].stats;
        const SimStats &b = parallel[i].stats;
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.l1iTlbMisses, b.l1iTlbMisses);
        EXPECT_EQ(a.l1dTlbMisses, b.l1dTlbMisses);
        EXPECT_EQ(a.l2TlbAccesses, b.l2TlbAccesses);
        EXPECT_EQ(a.l2TlbHits, b.l2TlbHits);
        EXPECT_EQ(a.l2TlbMisses, b.l2TlbMisses);
        EXPECT_EQ(a.tableReads, b.tableReads);
        EXPECT_EQ(a.tableWrites, b.tableWrites);
        EXPECT_EQ(a.walkCycles, b.walkCycles);
        // Doubles too: both paths run the same deterministic
        // computation, so these are bit-identical, not just close.
        EXPECT_EQ(a.l2Efficiency, b.l2Efficiency);
    }
}

TEST(RunnerParallel, MatchesSerialForLru)
{
    const Runner runner(fastConfig());
    const auto suite = smallSuite();
    const auto factory = Runner::factoryFor(PolicyKind::Lru);
    expectIdenticalResults(
        runner.runSuiteParallel(suite, factory, 1),
        runner.runSuiteParallel(suite, factory, 4));
}

TEST(RunnerParallel, MatchesSerialForChirp)
{
    // CHiRP is the stateful policy with the most internal machinery;
    // if any state leaked across jobs this is where it would show.
    const Runner runner(fastConfig());
    const auto suite = smallSuite();
    const auto factory = Runner::factoryFor(PolicyKind::Chirp);
    expectIdenticalResults(
        runner.runSuiteParallel(suite, factory, 1),
        runner.runSuiteParallel(suite, factory, 4));
}

TEST(RunnerParallel, ConfiguredJobsMatchExplicitJobs)
{
    const auto suite = smallSuite(6);
    const auto factory = Runner::factoryFor(PolicyKind::Srrip);
    const Runner serial(fastConfig(), 1);
    Runner parallel(fastConfig(), 3);
    EXPECT_EQ(parallel.jobs(), 3u);
    expectIdenticalResults(serial.runSuite(suite, factory),
                           parallel.runSuite(suite, factory));
    parallel.setJobs(1);
    EXPECT_EQ(parallel.jobs(), 1u);
}

TEST(RunnerParallel, MoreJobsThanWorkloads)
{
    const Runner runner(fastConfig());
    const auto suite = smallSuite(3);
    const auto factory = Runner::factoryFor(PolicyKind::Random);
    expectIdenticalResults(
        runner.runSuiteParallel(suite, factory, 1),
        runner.runSuiteParallel(suite, factory, 16));
}

TEST(RunnerParallel, IsolatesJobExceptions)
{
    // A throwing job must not abort the suite: the run completes,
    // the failure lands in the health ledger with the job's error,
    // and only the failed slot carries empty stats.
    const Runner runner(fastConfig());
    const auto suite = smallSuite(6);
    const PolicyFactory throwing =
        [](std::uint32_t, std::uint32_t)
        -> std::unique_ptr<ReplacementPolicy> {
        throw std::runtime_error("factory exploded");
    };
    const auto results = runner.runSuiteParallel(suite, throwing, 4);
    ASSERT_EQ(results.size(), suite.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].workload.name, suite[i].name);
        EXPECT_EQ(results[i].stats.instructions, 0u);
    }
    const SuiteHealth &health = *runner.health();
    EXPECT_EQ(health.totalJobs(), suite.size());
    EXPECT_EQ(health.okJobs(), 0u);
    ASSERT_EQ(health.failureCount(), suite.size());
    EXPECT_EQ(health.failures()[0].error, "factory exploded");
}

TEST(RunnerParallel, AggregateIsOrderIndependent)
{
    const Runner runner(fastConfig());
    const auto suite = smallSuite(6);
    auto results =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Lru));

    const SimStats forward = aggregateStats(results);
    std::reverse(results.begin(), results.end());
    const SimStats backward = aggregateStats(results);

    EXPECT_EQ(forward.instructions, backward.instructions);
    EXPECT_EQ(forward.cycles, backward.cycles);
    EXPECT_EQ(forward.l2TlbAccesses, backward.l2TlbAccesses);
    EXPECT_EQ(forward.l2TlbMisses, backward.l2TlbMisses);
    EXPECT_EQ(forward.tableReads, backward.tableReads);
    EXPECT_EQ(forward.walkCycles, backward.walkCycles);
    EXPECT_GT(forward.instructions, 0u);
}

TEST(RunnerMulti, MatchesPerPolicyRunSuite)
{
    // The materialized-replay sweep must be bit-identical to running
    // each policy standalone through the generator, serial or not.
    const auto suite = smallSuite(6);
    const std::vector<PolicyFactory> factories = {
        Runner::factoryFor(PolicyKind::Lru),
        Runner::factoryFor(PolicyKind::Srrip),
        Runner::factoryFor(PolicyKind::Ghrp),
        Runner::factoryFor(PolicyKind::Chirp),
    };
    const Runner serial(fastConfig(), 1);
    const Runner parallel(fastConfig(), 4);
    const auto multi_serial = serial.runSuiteMulti(suite, factories);
    const auto multi_parallel = parallel.runSuiteMulti(suite, factories);
    ASSERT_EQ(multi_serial.size(), factories.size());
    ASSERT_EQ(multi_parallel.size(), factories.size());
    for (std::size_t p = 0; p < factories.size(); ++p) {
        SCOPED_TRACE("policy " + std::to_string(p));
        const auto standalone = serial.runSuite(suite, factories[p]);
        expectIdenticalResults(standalone, multi_serial[p]);
        expectIdenticalResults(standalone, multi_parallel[p]);
    }
}

TEST(RunnerMulti, GeneratesEachWorkloadOnce)
{
    const auto suite = smallSuite(5);
    const std::vector<PolicyFactory> factories = {
        Runner::factoryFor(PolicyKind::Lru),
        Runner::factoryFor(PolicyKind::Random),
        Runner::factoryFor(PolicyKind::Ship),
    };
    const Runner runner(fastConfig(), 2);
    runner.runSuiteMulti(suite, factories);
    EXPECT_EQ(runner.traceStore().generated(), suite.size())
        << "one materialization per workload, not per policy job";
    EXPECT_EQ(runner.traceStore().residentTraces(), 0u)
        << "all traces dropped after their last policy job";
}

TEST(RunnerMulti, ObserverSeesEveryJob)
{
    const auto suite = smallSuite(4);
    const std::vector<PolicyFactory> factories = {
        Runner::factoryFor(PolicyKind::Lru),
        Runner::factoryFor(PolicyKind::Chirp),
    };
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    const SimObserver observer = [&](std::size_t p, std::size_t w,
                                     const Simulator &sim) {
        EXPECT_GT(sim.tlbs().l2().accesses(), 0u);
        std::lock_guard<std::mutex> lock(mutex);
        seen.emplace_back(p, w);
    };
    const Runner runner(fastConfig(), 3);
    runner.runSuiteMulti(suite, factories, "", observer);
    ASSERT_EQ(seen.size(), factories.size() * suite.size());
    std::sort(seen.begin(), seen.end());
    for (std::size_t p = 0; p < factories.size(); ++p)
        for (std::size_t w = 0; w < suite.size(); ++w)
            EXPECT_EQ(seen[p * suite.size() + w],
                      std::make_pair(p, w));
}

TEST(RunnerMulti, RunReplayMatchesGeneratorRun)
{
    const auto suite = smallSuite(1);
    const Runner runner(fastConfig(), 1);
    const auto factory = Runner::factoryFor(PolicyKind::Srrip);
    const auto reference = runner.runSuite(suite, factory);

    const SharedTrace trace = runner.traceStore().get(suite[0]);
    const SimStats replayed =
        runner.runReplay(suite[0], trace, factory);
    EXPECT_EQ(replayed.instructions, reference[0].stats.instructions);
    EXPECT_EQ(replayed.cycles, reference[0].stats.cycles);
    EXPECT_EQ(replayed.l2TlbMisses, reference[0].stats.l2TlbMisses);
    EXPECT_EQ(replayed.l2Efficiency, reference[0].stats.l2Efficiency);
}

TEST(RunnerParallel, MergeSumsCounters)
{
    SimStats a;
    a.instructions = 1000;
    a.l2TlbMisses = 10;
    a.l2Efficiency = 0.5;
    a.walkLatency = 150;
    SimStats b;
    b.instructions = 3000;
    b.l2TlbMisses = 2;
    b.l2Efficiency = 0.9;

    const SimStats merged = a + b;
    EXPECT_EQ(merged.instructions, 4000u);
    EXPECT_EQ(merged.l2TlbMisses, 12u);
    EXPECT_EQ(merged.walkLatency, 150u);
    // Instruction-weighted efficiency: (0.5*1000 + 0.9*3000) / 4000.
    EXPECT_DOUBLE_EQ(merged.l2Efficiency, 0.8);
    EXPECT_DOUBLE_EQ(merged.mpki(), 3.0);
}

} // namespace
} // namespace chirp
