/** @file Coverage for code layout, efficiency tracking and logging. */

#include <gtest/gtest.h>

#include "core/chirp.hh"
#include "tlb/efficiency.hh"
#include "trace/synthetic/code_layout.hh"
#include "util/logging.hh"
#include "util/progress.hh"

namespace chirp
{
namespace
{

TEST(CodeLayout, AllocatesContiguousAlignedFunctions)
{
    CodeLayout layout(0x400000);
    const FuncDesc a = layout.allocFunction(2);
    const FuncDesc b = layout.allocFunction(3);
    EXPECT_EQ(a.entry, 0x400000u);
    EXPECT_EQ(b.entry, a.entry + 2 * kBlockBytes);
    EXPECT_EQ(a.entry % kBlockBytes, 0u);
    EXPECT_EQ(b.entry % kBlockBytes, 0u);
}

TEST(CodeLayout, PcOfAddressesSlots)
{
    CodeLayout layout;
    const FuncDesc fn = layout.allocFunction(4);
    EXPECT_EQ(fn.pcOf(0, 0), fn.entry);
    EXPECT_EQ(fn.pcOf(0, 3), fn.entry + 12);
    EXPECT_EQ(fn.pcOf(2, 1), fn.entry + 2 * kBlockBytes + 4);
}

TEST(CodeLayout, PaddingInflatesCodeFootprint)
{
    CodeLayout tight(0x400000);
    CodeLayout padded(0x400000);
    for (int i = 0; i < 8; ++i) {
        tight.allocFunction(4);
        padded.allocFunction(4, /*pad_pages=*/2);
    }
    EXPECT_GT(padded.codePages(), tight.codePages());
    EXPECT_GE(padded.codePages(), 16u);
}

TEST(CodeLayout, RejectsMisalignedBase)
{
    EXPECT_EXIT({ CodeLayout layout(0x400004); },
                ::testing::ExitedWithCode(1), "aligned");
}

TEST(EfficiencyTracker, RatioOfLiveToResident)
{
    EfficiencyTracker tracker;
    tracker.recordGeneration(0, 50, 100);  // 50% live
    tracker.recordGeneration(100, 100, 200); // never hit: 0% live
    EXPECT_EQ(tracker.generations(), 2u);
    EXPECT_NEAR(tracker.efficiency(), 50.0 / 200.0, 1e-12);
}

TEST(EfficiencyTracker, IgnoresDegenerateGenerations)
{
    EfficiencyTracker tracker;
    tracker.recordGeneration(100, 100, 100); // zero residency
    EXPECT_EQ(tracker.generations(), 0u);
    EXPECT_DOUBLE_EQ(tracker.efficiency(), 0.0);
}

TEST(EfficiencyTracker, ResetClears)
{
    EfficiencyTracker tracker;
    tracker.recordGeneration(0, 10, 20);
    tracker.reset();
    EXPECT_EQ(tracker.generations(), 0u);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    chirp_warn("test warning ", 42);
    chirp_inform("test info ", 3.5);
    SUCCEED();
}

TEST(Logging, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(chirp_fatal("boom ", 7), ::testing::ExitedWithCode(1),
                "boom 7");
}

TEST(ChirpVictim, DeepestDeadEntryPreferred)
{
    // Two dead-predicted entries: the LRU-deeper one is the victim.
    ChirpPolicy policy(1, 4);
    AccessInfo info;
    info.pc = 0x401000;
    info.vaddr = 0x1000;
    info.cls = InstClass::Load;
    for (std::uint32_t way = 0; way < 4; ++way)
        policy.onFill(0, way, info);
    // Train the context dead, then re-fill ways 1 and 2 (both dead).
    policy.selectVictim(0, info);
    policy.onFill(0, 1, info);
    policy.onFill(0, 2, info);
    ASSERT_TRUE(policy.isDead(0, 1));
    ASSERT_TRUE(policy.isDead(0, 2));
    // Way 1 was filled before way 2, so it is deeper in the stack.
    EXPECT_GT(policy.stackPosition(0, 1), policy.stackPosition(0, 2));
    EXPECT_EQ(policy.selectVictim(0, info), 1u);
}

class HistoryWidth
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(HistoryWidth, ShiftRegisterDropsExactlyOldestEvent)
{
    const auto [events, shift] = GetParam();
    WideShiftHistory history(events, shift);
    // Push a marker, then exactly events-1 zeros: still present.
    history.push(1);
    for (unsigned i = 0; i + 1 < events; ++i)
        history.push(0);
    EXPECT_NE(history.folded(), 0u);
    history.push(0); // the marker falls off
    EXPECT_EQ(history.folded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistoryWidth,
    ::testing::Values(std::pair<unsigned, unsigned>{4, 4},
                      std::pair<unsigned, unsigned>{16, 4},
                      std::pair<unsigned, unsigned>{8, 8},
                      std::pair<unsigned, unsigned>{40, 4},
                      std::pair<unsigned, unsigned>{24, 8},
                      std::pair<unsigned, unsigned>{16, 2}));

TEST(ProgressReporter, AutoResolvesToLinesWhenNotATty)
{
    // Under ctest stderr is a pipe, so Auto must pick the CI-safe
    // line mode rather than the \r redraw.
    ProgressReporter progress("auto", 4);
    EXPECT_EQ(progress.mode(), ProgressReporter::Mode::Lines);
}

TEST(ProgressReporter, LinesModePrintsStrideAndFinal)
{
    ::testing::internal::CaptureStderr();
    {
        ProgressReporter progress("batch", 20,
                                  ProgressReporter::Mode::Lines);
        for (int i = 0; i < 20; ++i)
            progress.tick();
        EXPECT_EQ(progress.done(), 20u);
    }
    const std::string out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("[batch] 2/20"), std::string::npos);
    EXPECT_NE(out.find("[batch] 20/20"), std::string::npos);
    EXPECT_EQ(out.find('\r'), std::string::npos)
        << "line mode never uses carriage-return redraws";
}

TEST(ProgressReporter, EmptyLabelIsSilent)
{
    ::testing::internal::CaptureStderr();
    {
        ProgressReporter progress("", 5,
                                  ProgressReporter::Mode::Lines);
        for (int i = 0; i < 5; ++i)
            progress.tick();
    }
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

} // namespace
} // namespace chirp
