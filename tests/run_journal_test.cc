/**
 * @file
 * RunJournal tests: bit-exact SimStats round trips (including the
 * l2Efficiency double via its IEEE-754 bit pattern), resume reload,
 * identity-mismatch restart (with .stale quarantine and field-level
 * divergence naming), torn-final-line tolerance, and job key
 * stability/distinctness.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/run_journal.hh"
#include "util/logging.hh"

namespace chirp
{
namespace
{

std::string
journalPath(const char *tag)
{
    const std::string path =
        ::testing::TempDir() + "chirp_journal_" + tag;
    std::filesystem::remove(path);
    return path;
}

SimStats
sampleStats(std::uint64_t salt)
{
    SimStats stats;
    stats.instructions = 1000000 + salt;
    stats.warmupInstructions = 200000 + salt;
    stats.cycles = 2345678 + salt;
    stats.l1iTlbAccesses = 900001 + salt;
    stats.l1iTlbMisses = 1201 + salt;
    stats.l1dTlbAccesses = 700003 + salt;
    stats.l1dTlbMisses = 4567 + salt;
    stats.l2TlbAccesses = 5768 + salt;
    stats.l2TlbHits = 5000 + salt;
    stats.l2TlbMisses = 768 + salt;
    stats.branches = 150000 + salt;
    stats.branchMispredicts = 9001 + salt;
    stats.tableReads = 4242 + salt;
    stats.tableWrites = 2121 + salt;
    // A value with no short decimal form: only a bit-pattern round
    // trip preserves it exactly.
    stats.l2Efficiency = 0.1 + 1e-17 * static_cast<double>(salt + 1);
    stats.walkCycles = 76800 + salt;
    stats.walkLatency = 100;
    return stats;
}

void
expectBitIdentical(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.warmupInstructions, b.warmupInstructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1iTlbAccesses, b.l1iTlbAccesses);
    EXPECT_EQ(a.l1iTlbMisses, b.l1iTlbMisses);
    EXPECT_EQ(a.l1dTlbAccesses, b.l1dTlbAccesses);
    EXPECT_EQ(a.l1dTlbMisses, b.l1dTlbMisses);
    EXPECT_EQ(a.l2TlbAccesses, b.l2TlbAccesses);
    EXPECT_EQ(a.l2TlbHits, b.l2TlbHits);
    EXPECT_EQ(a.l2TlbMisses, b.l2TlbMisses);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.tableReads, b.tableReads);
    EXPECT_EQ(a.tableWrites, b.tableWrites);
    // Bit-identical, not just close: resume must not drift CSVs.
    EXPECT_EQ(a.l2Efficiency, b.l2Efficiency);
    EXPECT_EQ(a.walkCycles, b.walkCycles);
    EXPECT_EQ(a.walkLatency, b.walkLatency);
}

TEST(RunJournalCodec, RoundTripsBitExactly)
{
    const SimStats original = sampleStats(3);
    SimStats decoded;
    ASSERT_TRUE(decodeSimStats(encodeSimStats(original), decoded));
    expectBitIdentical(original, decoded);
}

TEST(RunJournalCodec, PreservesAwkwardDoubles)
{
    for (const double eff :
         {0.0, -0.0, 1.0 / 3.0, 1e-300, 0.9999999999999999}) {
        SimStats stats = sampleStats(0);
        stats.l2Efficiency = eff;
        SimStats decoded;
        ASSERT_TRUE(decodeSimStats(encodeSimStats(stats), decoded));
        EXPECT_EQ(std::signbit(decoded.l2Efficiency),
                  std::signbit(eff));
        EXPECT_EQ(decoded.l2Efficiency, eff);
    }
}

TEST(RunJournalCodec, RejectsGarbledLines)
{
    SimStats stats;
    EXPECT_FALSE(decodeSimStats("", stats));
    EXPECT_FALSE(decodeSimStats("1 2 3", stats));
    EXPECT_FALSE(decodeSimStats("not numbers at all", stats));
}

TEST(RunJournal, FreshJournalStartsEmpty)
{
    const std::string path = journalPath("fresh");
    RunJournal journal(path, 0xabcdef, /*resume=*/false);
    EXPECT_TRUE(journal.valid());
    EXPECT_EQ(journal.loaded(), 0u);
    EXPECT_EQ(journal.path(), path);
    SimStats stats;
    EXPECT_FALSE(journal.lookup(42, stats));
    std::filesystem::remove(path);
}

TEST(RunJournal, ResumeReloadsRecordedEntries)
{
    const std::string path = journalPath("resume");
    const std::uint64_t fp = 0x1122334455667788ull;
    const SimStats first = sampleStats(1);
    const SimStats second = sampleStats(2);
    {
        RunJournal journal(path, fp, /*resume=*/false);
        ASSERT_TRUE(journal.valid());
        journal.record(101, first);
        journal.record(202, second);
    }
    RunJournal resumed(path, fp, /*resume=*/true);
    EXPECT_TRUE(resumed.valid());
    EXPECT_EQ(resumed.loaded(), 2u);
    SimStats got;
    ASSERT_TRUE(resumed.lookup(101, got));
    expectBitIdentical(first, got);
    ASSERT_TRUE(resumed.lookup(202, got));
    expectBitIdentical(second, got);
    EXPECT_FALSE(resumed.lookup(303, got));
    std::filesystem::remove(path);
}

TEST(RunJournal, ResumedJournalKeepsAppending)
{
    const std::string path = journalPath("append");
    const std::uint64_t fp = 7;
    {
        RunJournal journal(path, fp, false);
        journal.record(1, sampleStats(1));
    }
    {
        RunJournal journal(path, fp, true);
        ASSERT_EQ(journal.loaded(), 1u);
        journal.record(2, sampleStats(2));
    }
    RunJournal third(path, fp, true);
    EXPECT_EQ(third.loaded(), 2u);
    SimStats got;
    EXPECT_TRUE(third.lookup(1, got));
    EXPECT_TRUE(third.lookup(2, got));
    std::filesystem::remove(path);
}

TEST(RunJournal, FingerprintMismatchRestartsEmpty)
{
    const std::string path = journalPath("mismatch");
    {
        RunJournal journal(path, 0xaaaa, false);
        journal.record(1, sampleStats(1));
    }
    // A different suite/config fingerprint must not resume against
    // the stale grid.
    RunJournal restarted(path, 0xbbbb, /*resume=*/true);
    EXPECT_TRUE(restarted.valid());
    EXPECT_EQ(restarted.loaded(), 0u);
    SimStats got;
    EXPECT_FALSE(restarted.lookup(1, got));
    std::filesystem::remove(path);
}

TEST(RunJournal, MismatchQuarantinesStaleFile)
{
    const std::string path = journalPath("quarantine");
    const std::string stale = path + ".stale";
    std::filesystem::remove(stale);
    {
        RunJournal journal(path, 0xaaaa, false);
        journal.record(1, sampleStats(1));
    }
    const auto stale_bytes = std::filesystem::file_size(path);
    RunJournal restarted(path, 0xbbbb, /*resume=*/true);
    EXPECT_EQ(restarted.loaded(), 0u);
    // The refused journal survives for inspection, byte for byte.
    ASSERT_TRUE(std::filesystem::exists(stale));
    EXPECT_EQ(std::filesystem::file_size(stale), stale_bytes);
    std::filesystem::remove(path);
    std::filesystem::remove(stale);
}

TEST(RunJournal, MismatchNamesDivergingFields)
{
    const std::string path = journalPath("fielddiff");
    JournalIdentity before;
    before.suite = "fig_before";
    before.suiteHash = 0x1111;
    before.configHash = 0x2222;
    {
        RunJournal journal(path, before, false);
        journal.record(1, sampleStats(1));
    }
    JournalIdentity after = before;
    after.configHash = 0x3333; // same suite, different sim config
    std::vector<std::string> lines;
    setLogSink([&lines](const std::string &line) {
        lines.push_back(line);
    });
    RunJournal restarted(path, after, /*resume=*/true);
    setLogSink({});
    EXPECT_EQ(restarted.loaded(), 0u);
    std::string all;
    for (const std::string &line : lines)
        all += line + "\n";
    EXPECT_NE(all.find("config hash"), std::string::npos)
        << "the diverging field must be named: " << all;
    EXPECT_EQ(all.find("suite name"), std::string::npos)
        << "matching fields must not be blamed: " << all;
    EXPECT_EQ(all.find("suite hash"), std::string::npos) << all;
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".stale");
}

TEST(RunJournal, IdentityRoundTripsThroughHeader)
{
    const std::string path = journalPath("identity");
    JournalIdentity id;
    id.suite = "fig01";
    id.suiteHash = 0xdeadbeef;
    id.configHash = 0xfeedface;
    {
        RunJournal journal(path, id, false);
        journal.record(7, sampleStats(7));
    }
    RunJournal resumed(path, id, /*resume=*/true);
    EXPECT_EQ(resumed.loaded(), 1u);
    EXPECT_EQ(resumed.identity().suite, "fig01");
    SimStats got;
    EXPECT_TRUE(resumed.lookup(7, got));
    std::filesystem::remove(path);
}

TEST(RunJournal, WithoutResumeExistingJournalIsOverwritten)
{
    const std::string path = journalPath("overwrite");
    const std::uint64_t fp = 9;
    {
        RunJournal journal(path, fp, false);
        journal.record(1, sampleStats(1));
    }
    {
        // Same fingerprint but resume off: a deliberate fresh run.
        RunJournal journal(path, fp, false);
        EXPECT_EQ(journal.loaded(), 0u);
    }
    RunJournal check(path, fp, true);
    EXPECT_EQ(check.loaded(), 0u);
    std::filesystem::remove(path);
}

TEST(RunJournal, TornFinalLineIsIgnored)
{
    const std::string path = journalPath("torn");
    const std::uint64_t fp = 0xfeed;
    {
        RunJournal journal(path, fp, false);
        journal.record(1, sampleStats(1));
        journal.record(2, sampleStats(2));
    }
    {
        // Crash mid-append: the final record is cut off mid-fields.
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "J 0000000000000003 12345 678";
    }
    RunJournal resumed(path, fp, true);
    EXPECT_EQ(resumed.loaded(), 2u) << "torn line must not resume";
    SimStats got;
    EXPECT_TRUE(resumed.lookup(1, got));
    EXPECT_TRUE(resumed.lookup(2, got));
    EXPECT_FALSE(resumed.lookup(3, got));
    std::filesystem::remove(path);
}

TEST(RunJournal, JobKeysAreStableAndDistinct)
{
    WorkloadConfig workload;
    workload.category = Category::Spec;
    workload.seed = 42;
    workload.length = 10000;
    workload.name = "wl-0";

    const std::uint64_t key = RunJournal::jobKey(0, workload, 0);
    EXPECT_EQ(key, RunJournal::jobKey(0, workload, 0))
        << "same job, same key, every run";

    EXPECT_NE(key, RunJournal::jobKey(1, workload, 0))
        << "suite sequence distinguishes repeated suites";
    EXPECT_NE(key, RunJournal::jobKey(0, workload, 1))
        << "policy index distinguishes the grid column";

    auto renamed = workload;
    renamed.name = "wl-renamed";
    EXPECT_NE(key, RunJournal::jobKey(0, renamed, 0))
        << "display name is part of the identity";

    auto reseeded = workload;
    reseeded.seed = 43;
    EXPECT_NE(key, RunJournal::jobKey(0, reseeded, 0));
}

TEST(RunJournal, SuiteSeqIsMonotonic)
{
    const std::string path = journalPath("seq");
    RunJournal journal(path, 1, false);
    EXPECT_EQ(journal.nextSuiteSeq(), 0u);
    EXPECT_EQ(journal.nextSuiteSeq(), 1u);
    EXPECT_EQ(journal.nextSuiteSeq(), 2u);
    std::filesystem::remove(path);
}

} // namespace
} // namespace chirp
