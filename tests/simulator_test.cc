/** @file Tests for the timing simulator, runner and OPT bound. */

#include <gtest/gtest.h>

#include "core/policy_factory.hh"
#include "sim/opt_bound.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

namespace chirp
{
namespace
{

WorkloadConfig
testWorkload(Category category = Category::Spec, std::uint64_t seed = 21,
             InstCount length = 150000)
{
    WorkloadConfig config;
    config.category = category;
    config.seed = seed;
    config.length = length;
    return config;
}

std::unique_ptr<ReplacementPolicy>
l2Policy(const SimConfig &config, PolicyKind kind = PolicyKind::Lru)
{
    return makePolicy(kind,
                      config.tlbs.l2.entries / config.tlbs.l2.assoc,
                      config.tlbs.l2.assoc);
}

TEST(Simulator, BasicInvariants)
{
    SimConfig config;
    Simulator sim(config, l2Policy(config));
    const auto program = buildWorkload(testWorkload());
    const SimStats stats = sim.run(*program);

    EXPECT_EQ(stats.instructions + stats.warmupInstructions, 150000u);
    EXPECT_EQ(stats.warmupInstructions, 75000u);
    EXPECT_GT(stats.cycles, stats.instructions)
        << "an in-order machine with stalls runs below 1 IPC";
    EXPECT_GT(stats.l2TlbAccesses, 0u);
    EXPECT_EQ(stats.l2TlbHits + stats.l2TlbMisses, stats.l2TlbAccesses);
    EXPECT_LE(stats.l2TlbAccesses,
              stats.l1iTlbMisses + stats.l1dTlbMisses)
        << "every L2 access comes from an L1 miss";
    EXPECT_GT(stats.branches, 0u);
    EXPECT_GT(stats.ipc(), 0.0);
    EXPECT_LT(stats.ipc(), 1.0);
    EXPECT_GT(stats.mpki(), 0.0);
    EXPECT_EQ(stats.walkLatency, config.pageWalkLatency);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    SimConfig config;
    const auto workload = testWorkload(Category::Database, 5, 100000);
    Simulator a(config, l2Policy(config, PolicyKind::Chirp));
    Simulator b(config, l2Policy(config, PolicyKind::Chirp));
    const auto pa = buildWorkload(workload);
    const auto pb = buildWorkload(workload);
    const SimStats sa = a.run(*pa);
    const SimStats sb = b.run(*pb);
    EXPECT_EQ(sa.cycles, sb.cycles);
    EXPECT_EQ(sa.l2TlbMisses, sb.l2TlbMisses);
    EXPECT_EQ(sa.tableReads, sb.tableReads);
    EXPECT_EQ(sa.branchMispredicts, sb.branchMispredicts);
}

TEST(Simulator, RunIsRepeatableOnTheSameInstance)
{
    SimConfig config;
    config.simulateCaches = false;
    Simulator sim(config, l2Policy(config));
    const auto program = buildWorkload(testWorkload());
    const SimStats first = sim.run(*program);
    const SimStats second = sim.run(*program);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.l2TlbMisses, second.l2TlbMisses);
}

TEST(Simulator, DisablingCachesRemovesCacheStalls)
{
    SimConfig with;
    SimConfig without;
    without.simulateCaches = false;
    const auto workload = testWorkload();
    Simulator a(with, l2Policy(with));
    Simulator b(without, l2Policy(without));
    const auto pa = buildWorkload(workload);
    const auto pb = buildWorkload(workload);
    const SimStats sa = a.run(*pa);
    const SimStats sb = b.run(*pb);
    EXPECT_GT(sa.cycles, sb.cycles);
    EXPECT_EQ(sa.l2TlbMisses, sb.l2TlbMisses)
        << "TLB behaviour is independent of the cache model";
}

TEST(Simulator, HigherWalkLatencyOnlyAddsWalkCycles)
{
    SimConfig low;
    low.pageWalkLatency = 20;
    SimConfig high;
    high.pageWalkLatency = 340;
    const auto workload = testWorkload(Category::BigData, 9, 120000);
    Simulator a(low, l2Policy(low));
    Simulator b(high, l2Policy(high));
    const auto pa = buildWorkload(workload);
    const auto pb = buildWorkload(workload);
    const SimStats sa = a.run(*pa);
    const SimStats sb = b.run(*pb);
    EXPECT_EQ(sa.l2TlbMisses, sb.l2TlbMisses);
    EXPECT_EQ(sa.cycles - sa.walkCycles, sb.cycles - sb.walkCycles)
        << "base cycles are penalty-independent";
    EXPECT_GT(sb.cycles, sa.cycles);
}

TEST(SimStats, IpcAtPenaltyMatchesActualSimulation)
{
    // Re-deriving IPC at another penalty must match a real run at
    // that penalty (the Fig 10 shortcut).
    SimConfig base;
    base.pageWalkLatency = 150;
    SimConfig other;
    other.pageWalkLatency = 320;
    const auto workload = testWorkload(Category::Database, 13, 120000);
    Simulator a(base, l2Policy(base));
    Simulator b(other, l2Policy(other));
    const auto pa = buildWorkload(workload);
    const auto pb = buildWorkload(workload);
    const SimStats sa = a.run(*pa);
    const SimStats sb = b.run(*pb);
    EXPECT_NEAR(sa.ipcAtPenalty(320), sb.ipc(), 1e-9);
    EXPECT_NEAR(sa.ipcAtPenalty(150), sa.ipc(), 1e-9);
}

TEST(Runner, SuiteProducesOneResultPerWorkload)
{
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    Runner runner(config);
    SuiteOptions options;
    options.size = 4;
    options.traceLength = 40000;
    const auto suite = makeSuite(options);
    const auto results =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Lru));
    ASSERT_EQ(results.size(), 4u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].workload.name, suite[i].name);
    EXPECT_GE(averageMpki(results), 0.0);
}

TEST(Runner, AggregationHelpers)
{
    std::vector<WorkloadResult> base(2);
    std::vector<WorkloadResult> better(2);
    for (int i = 0; i < 2; ++i) {
        base[i].stats.instructions = 1000;
        base[i].stats.l2TlbMisses = 100;
        base[i].stats.cycles = 25000; // 10000 base + 100 x 150 walk
        base[i].stats.walkCycles = 15000;
        base[i].stats.walkLatency = 150;
        better[i] = base[i];
        better[i].stats.l2TlbMisses = 50;
        better[i].stats.cycles = 17500;
        better[i].stats.walkCycles = 7500;
    }
    EXPECT_DOUBLE_EQ(averageMpki(base), 100.0);
    EXPECT_DOUBLE_EQ(averageMpki(better), 50.0);
    EXPECT_DOUBLE_EQ(mpkiReductionPct(base, better), 50.0);
    EXPECT_NEAR(speedupPct(base, better, 150),
                (25000.0 / 17500.0 - 1.0) * 100.0, 1e-9);
}

TEST(OptBound, NeverWorseThanLru)
{
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    for (const Category category :
         {Category::Spec, Category::Database, Category::BigData}) {
        const auto workload = testWorkload(category, 31, 100000);
        Simulator sim(config, l2Policy(config));
        const auto program = buildWorkload(workload);
        const SimStats lru = sim.run(*program);
        const auto program2 = buildWorkload(workload);
        const OptBoundResult opt = computeOptBound(*program2);
        EXPECT_LE(opt.misses, lru.l2TlbMisses)
            << categoryName(category);
        EXPECT_EQ(opt.instructions, lru.instructions);
        EXPECT_GT(opt.misses, 0u) << "compulsory misses remain";
    }
}

TEST(OptBound, PerfectlyCacheableStreamHasOnlyColdMisses)
{
    // A trace that touches 8 pages repeatedly: OPT misses only the
    // compulsory fills (which all land in the warmup half here).
    std::vector<TraceRecord> records;
    for (int round = 0; round < 100; ++round) {
        for (Addr page = 0; page < 8; ++page) {
            TraceRecord rec;
            rec.pc = 0x400000;
            rec.cls = InstClass::Load;
            rec.effAddr = page * kPageSize;
            records.push_back(rec);
        }
    }
    VectorSource source(std::move(records));
    const OptBoundResult opt = computeOptBound(source);
    EXPECT_EQ(opt.misses, 0u);
}

} // namespace
} // namespace chirp
