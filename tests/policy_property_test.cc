/**
 * @file
 * Property tests that every replacement policy must satisfy,
 * parameterized over the full policy set and several geometries.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <tuple>

#include "core/policy_factory.hh"
#include "sim/runner.hh"
#include "tlb/tlb.hh"
#include "trace/ingest/ingest.hh"
#include "util/random.hh"

namespace chirp
{
namespace
{

using Geometry = std::pair<std::uint32_t, std::uint32_t>; // sets, ways
using Param = std::tuple<PolicyKind, Geometry>;

class PolicyProperty : public ::testing::TestWithParam<Param>
{
  protected:
    PolicyKind kind() const { return std::get<0>(GetParam()); }
    std::uint32_t sets() const { return std::get<1>(GetParam()).first; }
    std::uint32_t ways() const { return std::get<1>(GetParam()).second; }

    std::unique_ptr<ReplacementPolicy>
    make() const
    {
        return makePolicy(kind(), sets(), ways());
    }

    static AccessInfo
    randomAccess(Rng &rng)
    {
        AccessInfo info;
        info.pc = 0x400000 + 4 * rng.below(4096);
        info.vaddr = rng.below(1 << 20) * kPageSize;
        info.cls = rng.chance(0.5) ? InstClass::Load : InstClass::Store;
        return info;
    }
};

TEST_P(PolicyProperty, VictimIsAlwaysAValidWay)
{
    auto policy = make();
    Rng rng(kind() == PolicyKind::Lru ? 1 : 2);
    // Fill everything, then hammer with random events.
    for (std::uint32_t set = 0; set < sets(); ++set)
        for (std::uint32_t way = 0; way < ways(); ++way)
            policy->onFill(set, way, randomAccess(rng));
    for (int i = 0; i < 3000; ++i) {
        const std::uint32_t set =
            static_cast<std::uint32_t>(rng.below(sets()));
        const AccessInfo info = randomAccess(rng);
        switch (rng.below(4)) {
          case 0:
            policy->onHit(set,
                          static_cast<std::uint32_t>(rng.below(ways())),
                          info);
            break;
          case 1: {
            const std::uint32_t victim = policy->selectVictim(set, info);
            ASSERT_LT(victim, ways());
            policy->onFill(set, victim, info);
            break;
          }
          case 2:
            policy->onBranchRetired(info.pc, InstClass::CondBranch,
                                    rng.chance(0.5));
            policy->onInstRetired(info.pc, InstClass::Alu);
            break;
          default:
            policy->onAccessEnd(set, info);
            break;
        }
    }
}

TEST_P(PolicyProperty, ResetIsReproducible)
{
    auto policy = make();
    Rng script_rng(77);
    std::vector<AccessInfo> script;
    for (int i = 0; i < 400; ++i)
        script.push_back(randomAccess(script_rng));

    auto run = [&](ReplacementPolicy &p) {
        std::vector<std::uint32_t> victims;
        std::uint32_t set = 0;
        for (const auto &info : script) {
            set = (set + 1) % sets();
            p.onFill(set, 0, info);
            p.onAccessEnd(set, info);
            victims.push_back(p.selectVictim(set, info));
        }
        return victims;
    };

    const auto first = run(*policy);
    policy->reset();
    const auto second = run(*policy);
    EXPECT_EQ(first, second);
}

TEST_P(PolicyProperty, StorageIsPositiveAndBounded)
{
    auto policy = make();
    EXPECT_GT(policy->storageBits(), 0u);
    // No policy should need more than 64KB of metadata for these
    // geometries (the paper's point is small predictors).
    EXPECT_LT(policy->storageBits() / 8, 64u * 1024u);
}

TEST_P(PolicyProperty, SinglePageAlwaysHitsAfterFirstAccess)
{
    TlbConfig config;
    config.entries = sets() * ways();
    config.assoc = ways();
    Tlb tlb(config, make());
    AccessInfo info;
    info.pc = 0x400000;
    info.vaddr = 0x7000;
    info.cls = InstClass::Load;
    EXPECT_FALSE(tlb.access(info, 0, 0));
    for (int i = 1; i <= 50; ++i)
        EXPECT_TRUE(tlb.access(info, 0, i)) << "access " << i;
}

TEST_P(PolicyProperty, WorkingSetWithinCapacityEventuallyAllHits)
{
    // Random policy can evict resident pages even below capacity, so
    // this guarantee only applies to the deterministic policies.
    if (kind() == PolicyKind::Random)
        GTEST_SKIP();
    TlbConfig config;
    config.entries = sets() * ways();
    config.assoc = ways();
    Tlb tlb(config, make());
    // A working set of one page per set can never collide.
    std::vector<Addr> pages;
    for (std::uint32_t set = 0; set < sets(); ++set)
        pages.push_back(static_cast<Addr>(set) * kPageSize);
    std::uint64_t now = 0;
    for (const Addr va : pages) {
        AccessInfo info;
        info.pc = 0x400000;
        info.vaddr = va;
        info.cls = InstClass::Load;
        tlb.access(info, 0, now++);
    }
    for (int round = 0; round < 3; ++round) {
        for (const Addr va : pages) {
            AccessInfo info;
            info.pc = 0x400000;
            info.vaddr = va;
            info.cls = InstClass::Load;
            EXPECT_TRUE(tlb.access(info, 0, now++));
        }
    }
}

TEST_P(PolicyProperty, RunsOverAnIngestedExternalTrace)
{
    // Every policy must also digest a stream that came through the
    // untrusted ingest front-end, not just the synthetic generator.
    // One geometry suffices; the fixture is shared across policies.
    if (sets() != 16)
        GTEST_SKIP();
    static const std::string path = [] {
        Rng rng(0xc5a11d);
        std::string data;
        appendCvpHeader(data, 12000);
        for (int i = 0; i < 12000; ++i) {
            TraceRecord rec;
            rec.pc = (0x400000 + 4 * rng.below(4096)) | 1;
            rec.cls = rng.chance(0.2) ? InstClass::CondBranch
                      : rng.chance(0.5) ? InstClass::Load
                                        : InstClass::Store;
            if (isMemory(rec.cls))
                rec.effAddr = rng.below(1 << 20) * kPageSize;
            if (isBranch(rec.cls)) {
                rec.taken = rng.chance(0.5);
                rec.target = 0x400000 + 4 * rng.below(4096);
            }
            appendCvpRecord(data, rec);
        }
        const std::string file =
            ::testing::TempDir() + "chirp_policy_ingest.cvp";
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        return file;
    }();
    WorkloadConfig workload;
    workload.tracePath = path;
    workload.name = "ingested";
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    const Runner runner(config);
    const SimStats stats =
        runner.runOne(workload, Runner::factoryFor(kind()));
    EXPECT_EQ(stats.instructions + stats.warmupInstructions, 12000u);
    EXPECT_GT(stats.l2TlbAccesses, 0u);
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    const auto &[kind, geometry] = info.param;
    return std::string(policyKindName(kind)) + "_" +
           std::to_string(geometry.first) + "x" +
           std::to_string(geometry.second);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Lru, PolicyKind::Random,
                          PolicyKind::Srrip, PolicyKind::Ship,
                          PolicyKind::Ghrp, PolicyKind::Chirp),
        ::testing::Values(Geometry{4, 4}, Geometry{16, 8},
                          Geometry{128, 8})),
    paramName);

} // namespace
} // namespace chirp
