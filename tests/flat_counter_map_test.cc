/**
 * @file
 * FlatCounterMap (the open-addressing table behind SHiP's unlimited
 * SHCT) against a std::unordered_map reference: identical counter
 * values under random increment/decrement/read mixes, identical
 * distinct-key counts, correct growth past the load-factor bound,
 * and a capacity-preserving clear().
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "util/flat_counter_map.hh"
#include "util/random.hh"

namespace chirp
{
namespace
{

TEST(FlatCounterMap, MatchesUnorderedMapReference)
{
    constexpr unsigned kBits = 3; // saturate at 7
    FlatCounterMap map(kBits, 16);
    std::unordered_map<std::uint64_t, int> reference;
    const int max = (1 << kBits) - 1;

    Rng rng(0xF1A7);
    for (int op = 0; op < 20000; ++op) {
        // Small key pool: plenty of revisits and probe collisions.
        const std::uint64_t key = rng.below(512) * 0x9E3779B97F4A7C15ull;
        switch (rng.below(3)) {
          case 0: {
            map.increment(key);
            int &value = reference[key]; // inserts at zero, like slotFor
            if (value < max)
                ++value;
            break;
          }
          case 1: {
            map.decrement(key);
            int &value = reference[key];
            if (value > 0)
                --value;
            break;
          }
          default: {
            const auto it = reference.find(key);
            const int expected = it == reference.end() ? 0 : it->second;
            ASSERT_EQ(map.value(key), expected) << "op " << op;
            break;
          }
        }
    }

    EXPECT_EQ(map.size(), reference.size());
    for (const auto &[key, value] : reference)
        ASSERT_EQ(map.value(key), value);
}

TEST(FlatCounterMap, GrowsPastInitialCapacity)
{
    FlatCounterMap map(2, 16);
    const std::size_t initial = map.capacity();
    // Far more distinct keys than the initial slot count; every value
    // must survive the rehashes.
    for (std::uint64_t key = 1; key <= 1000; ++key) {
        map.increment(key);
        map.increment(key);
    }
    EXPECT_EQ(map.size(), 1000u);
    EXPECT_GT(map.capacity(), initial);
    // Load factor stays below 3/4 after growth.
    EXPECT_LT(map.size() * 4, map.capacity() * 3 + 4);
    for (std::uint64_t key = 1; key <= 1000; ++key)
        ASSERT_EQ(map.value(key), 2);
    EXPECT_EQ(map.value(12345), 0) << "absent keys read as zero";
}

TEST(FlatCounterMap, SaturatesBothEnds)
{
    FlatCounterMap map(2, 16);
    EXPECT_EQ(map.counterMax(), 3);
    for (int i = 0; i < 10; ++i)
        map.increment(7);
    EXPECT_EQ(map.value(7), 3);
    for (int i = 0; i < 10; ++i)
        map.decrement(7);
    EXPECT_EQ(map.value(7), 0);
    // Decrement of an absent key materializes it at zero (the
    // behaviour SHiP's reference unordered_map table had).
    map.decrement(99);
    EXPECT_EQ(map.value(99), 0);
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatCounterMap, ClearKeepsCapacity)
{
    FlatCounterMap map(2, 16);
    for (std::uint64_t key = 0; key < 500; ++key)
        map.increment(key * 3);
    const std::size_t grown = map.capacity();
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), grown)
        << "clear() must not shed capacity (policy resets would "
           "re-allocate)";
    for (std::uint64_t key = 0; key < 500; ++key)
        ASSERT_EQ(map.value(key * 3), 0);
    // Reusable after clear.
    map.increment(42);
    EXPECT_EQ(map.value(42), 1);
    EXPECT_EQ(map.size(), 1u);
}

} // namespace
} // namespace chirp
