/**
 * @file
 * AtomicFile tests: temp-then-rename publication, crash-equivalent
 * discard keeping the previous file intact, sticky error reporting,
 * and the atomicWriteFile convenience wrapper.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hh"

namespace chirp
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string
tempTarget(const char *tag)
{
    return ::testing::TempDir() + "chirp_atomic_" + tag;
}

TEST(AtomicFile, PublishesOnCommit)
{
    const std::string path = tempTarget("publish");
    std::filesystem::remove(path);
    {
        AtomicFile file(path);
        ASSERT_TRUE(file.valid()) << file.error();
        EXPECT_TRUE(file.write("hello "));
        EXPECT_TRUE(file.write("world\n"));
        EXPECT_FALSE(std::filesystem::exists(path))
            << "target untouched until commit";
        EXPECT_TRUE(file.commit()) << file.error();
    }
    EXPECT_EQ(slurp(path), "hello world\n");
    std::filesystem::remove(path);
}

TEST(AtomicFile, DiscardLeavesPreviousFileIntact)
{
    const std::string path = tempTarget("discard");
    ASSERT_TRUE(atomicWriteFile(path, "previous run\n"));
    {
        AtomicFile file(path);
        ASSERT_TRUE(file.valid());
        file.write("half-written garbage");
        // No commit: destruction models a crash/early exit.
    }
    EXPECT_EQ(slurp(path), "previous run\n");
    // No temp litter left next to the target.
    std::size_t siblings = 0;
    for (const auto &entry : std::filesystem::directory_iterator(
             std::filesystem::path(path).parent_path())) {
        if (entry.path().string().rfind(path + ".tmp", 0) == 0)
            ++siblings;
    }
    EXPECT_EQ(siblings, 0u);
    std::filesystem::remove(path);
}

TEST(AtomicFile, UnwritableDirectoryReportsError)
{
    AtomicFile file("/nonexistent-dir-for-chirp/test.csv");
    EXPECT_FALSE(file.valid());
    EXPECT_FALSE(file.error().empty());
    EXPECT_FALSE(file.commit());
}

TEST(AtomicFile, CommitTwiceIsAnError)
{
    const std::string path = tempTarget("twice");
    AtomicFile file(path);
    ASSERT_TRUE(file.valid());
    file.write("once\n");
    EXPECT_TRUE(file.commit());
    EXPECT_FALSE(file.commit()) << "second commit has nothing to publish";
    std::filesystem::remove(path);
}

TEST(AtomicFile, AtomicWriteFileReplacesContent)
{
    const std::string path = tempTarget("replace");
    ASSERT_TRUE(atomicWriteFile(path, "v1"));
    ASSERT_TRUE(atomicWriteFile(path, "v2 is longer"));
    EXPECT_EQ(slurp(path), "v2 is longer");
    std::string error;
    EXPECT_FALSE(atomicWriteFile("/nonexistent-dir-for-chirp/x", "v",
                                 &error));
    EXPECT_FALSE(error.empty());
    std::filesystem::remove(path);
}

} // namespace
} // namespace chirp
