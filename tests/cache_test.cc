/** @file Tests for the cache model and hierarchy. */

#include <gtest/gtest.h>

#include "mem/cache_hierarchy.hh"

namespace chirp
{
namespace
{

CacheConfig
tinyCache()
{
    // 4 sets x 2 ways x 64B lines = 512B.
    CacheConfig config;
    config.name = "tiny";
    config.sizeBytes = 512;
    config.assoc = 2;
    config.lineBytes = 64;
    config.latency = 3;
    return config;
}

TEST(Cache, MissThenHit)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x103f, false)) << "same 64B line";
    EXPECT_FALSE(cache.access(0x1040, false)) << "next line";
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    Cache cache(tinyCache());
    // Three lines mapping to the same set (4 sets, line 64B:
    // set = (addr/64) % 4). Addresses 0, 256, 512 all hit set 0.
    cache.access(0, false);
    cache.access(256, false);
    cache.access(0, false);   // 0 becomes MRU
    cache.access(512, false); // evicts 256 (LRU)
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(256));
    EXPECT_TRUE(cache.probe(512));
}

TEST(Cache, ResetClears)
{
    Cache cache(tinyCache());
    cache.access(0x1000, true);
    cache.reset();
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(Cache, RejectsIndivisibleGeometry)
{
    CacheConfig config = tinyCache();
    config.sizeBytes = 500;
    EXPECT_EXIT({ Cache c(config); }, ::testing::ExitedWithCode(1),
                "not divisible");
}

TEST(CacheHierarchy, LatencyAccumulatesDownTheHierarchy)
{
    CacheHierarchyConfig config; // Table II
    CacheHierarchy hierarchy(config);
    // Cold access: misses L1, L2, L3 -> 12 + 42 + 240.
    EXPECT_EQ(hierarchy.accessData(0x5000, false),
              config.l2.latency + config.l3.latency +
                  config.dramLatency);
    // Second access: L1 hit -> no stall.
    EXPECT_EQ(hierarchy.accessData(0x5000, false), 0u);
}

TEST(CacheHierarchy, InstrAndDataAreSeparateL1s)
{
    CacheHierarchy hierarchy;
    hierarchy.accessInstr(0x9000);
    // The same address on the data side still misses L1d but hits
    // the unified L2 (filled by the instruction access).
    const Cycles stall = hierarchy.accessData(0x9000, false);
    EXPECT_EQ(stall, CacheHierarchyConfig{}.l2.latency);
}

TEST(CacheHierarchy, L2HitAfterL1Eviction)
{
    CacheHierarchyConfig config;
    CacheHierarchy hierarchy(config);
    hierarchy.accessData(0x100000, false);
    // Sweep enough lines through L1d (64KB, 8-way, 64B lines = 128
    // sets) to evict the first one, but not enough to spill L2.
    for (Addr a = 0; a < 80 * 1024; a += 64)
        hierarchy.accessData(0x200000 + a, false);
    const Cycles stall = hierarchy.accessData(0x100000, false);
    EXPECT_EQ(stall, config.l2.latency);
}

} // namespace
} // namespace chirp
