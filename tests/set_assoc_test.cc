/** @file Tests for the generic set-associative array. */

#include <gtest/gtest.h>

#include "mem/set_assoc.hh"

namespace chirp
{
namespace
{

struct Payload
{
    int value = 0;
};

TEST(SetAssocArray, GeometryAndIndexing)
{
    SetAssocArray<Payload> array(16, 4);
    EXPECT_EQ(array.numSets(), 16u);
    EXPECT_EQ(array.assoc(), 4u);
    EXPECT_EQ(array.setIndex(0x12345), 0x12345u & 0xf);
    EXPECT_EQ(array.tagOf(0x12345), 0x12345ull >> 4);
}

TEST(SetAssocArray, FindAfterInstall)
{
    SetAssocArray<Payload> array(8, 2);
    const Addr key = 0x77;
    const std::uint32_t set = array.setIndex(key);
    EXPECT_EQ(array.findWay(set, array.tagOf(key)), -1);
    const int way = array.invalidWay(set);
    ASSERT_GE(way, 0);
    array.fill(set, static_cast<std::uint32_t>(way), array.tagOf(key));
    array.dataAt(set, way).value = 42;
    EXPECT_EQ(array.findWay(set, array.tagOf(key)), way);
    EXPECT_TRUE(array.valid(set, way));
    EXPECT_EQ(array.tag(set, way), array.tagOf(key));
    EXPECT_EQ(array.dataAt(set, way).value, 42);
}

TEST(SetAssocArray, InvalidWayExhaustion)
{
    SetAssocArray<Payload> array(4, 2);
    const std::uint32_t set = 1;
    EXPECT_EQ(array.invalidWay(set), 0);
    array.fill(set, 0, 0x1);
    EXPECT_EQ(array.invalidWay(set), 1);
    array.fill(set, 1, 0x2);
    EXPECT_EQ(array.invalidWay(set), -1);
}

TEST(SetAssocArray, InvalidatedWayDoesNotMatchItsOldTag)
{
    SetAssocArray<Payload> array(4, 2);
    const std::uint32_t set = 2;
    array.fill(set, 0, 0x9);
    array.dataAt(set, 0).value = 7;
    ASSERT_EQ(array.findWay(set, 0x9), 0);
    array.invalidate(set, 0);
    EXPECT_EQ(array.findWay(set, 0x9), -1);
    EXPECT_FALSE(array.valid(set, 0));
    EXPECT_EQ(array.dataAt(set, 0).value, 0) << "payload reset";
    EXPECT_EQ(array.invalidWay(set), 0);
}

TEST(SetAssocArray, DistinctTagsDistinctSlots)
{
    SetAssocArray<Payload> array(4, 4);
    // Keys mapping to the same set must be distinguished by tag.
    const Addr a = 0x10; // set 0
    const Addr b = 0x20; // set 0
    EXPECT_EQ(array.setIndex(a), array.setIndex(b));
    EXPECT_NE(array.tagOf(a), array.tagOf(b));
}

TEST(SetAssocArray, InvalidateAllAndValidCount)
{
    SetAssocArray<Payload> array(4, 2);
    array.fill(0, 0, 0x1);
    array.fill(3, 1, 0x2);
    EXPECT_EQ(array.validCount(), 2u);
    array.invalidateAll();
    EXPECT_EQ(array.validCount(), 0u);
}

TEST(SetAssocArray, RejectsBadGeometry)
{
    using Array = SetAssocArray<Payload>;
    EXPECT_EXIT({ Array a(3, 2); }, ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT({ Array a(0, 2); }, ::testing::ExitedWithCode(1),
                "nonzero");
}

} // namespace
} // namespace chirp
