/** @file Tests for the extension policies (DRRIP, tree-PLRU). */

#include <gtest/gtest.h>

#include "core/drrip.hh"
#include "core/plru.hh"
#include "core/policy_factory.hh"

namespace chirp
{
namespace
{

AccessInfo
dummyAccess()
{
    AccessInfo info;
    info.pc = 0x400000;
    info.vaddr = 0x1000;
    info.cls = InstClass::Load;
    return info;
}

TEST(Drrip, LeaderSetAssignment)
{
    DrripPolicy policy(128, 8);
    int srrip_leaders = 0;
    int brrip_leaders = 0;
    for (std::uint32_t set = 0; set < 128; ++set) {
        switch (policy.roleOf(set)) {
          case DrripPolicy::SetRole::SrripLeader:
            ++srrip_leaders;
            break;
          case DrripPolicy::SetRole::BrripLeader:
            ++brrip_leaders;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(srrip_leaders, 8);
    EXPECT_EQ(brrip_leaders, 8);
}

TEST(Drrip, PselMovesWithLeaderMisses)
{
    DrripPolicy policy(128, 8);
    const AccessInfo info = dummyAccess();
    const std::uint16_t start = policy.psel();
    // Find an SRRIP leader and miss in it repeatedly.
    std::uint32_t srrip_leader = 0;
    for (std::uint32_t set = 0; set < 128; ++set) {
        if (policy.roleOf(set) == DrripPolicy::SetRole::SrripLeader) {
            srrip_leader = set;
            break;
        }
    }
    for (int i = 0; i < 10; ++i) {
        const std::uint32_t victim =
            policy.selectVictim(srrip_leader, info);
        policy.onFill(srrip_leader, victim, info);
    }
    EXPECT_GT(policy.psel(), start)
        << "SRRIP-leader misses push PSEL toward BRRIP";
}

TEST(Drrip, VictimAlwaysValid)
{
    DrripPolicy policy(16, 4);
    const AccessInfo info = dummyAccess();
    for (std::uint32_t set = 0; set < 16; ++set) {
        for (int i = 0; i < 50; ++i) {
            const std::uint32_t victim = policy.selectVictim(set, info);
            ASSERT_LT(victim, 4u);
            policy.onFill(set, victim, info);
            if (i % 3 == 0)
                policy.onHit(set, victim, info);
        }
    }
}

TEST(Drrip, RejectsTooManyLeaders)
{
    DrripConfig config;
    config.leaderSets = 64;
    EXPECT_EXIT({ DrripPolicy policy(16, 4, config); },
                ::testing::ExitedWithCode(1), "leader sets");
}

TEST(Plru, VictimAvoidsRecentlyTouchedWay)
{
    PlruPolicy policy(4, 8);
    const AccessInfo info = dummyAccess();
    for (std::uint32_t way = 0; way < 8; ++way)
        policy.onFill(0, way, info);
    for (int i = 0; i < 50; ++i) {
        policy.onHit(0, 3, info);
        const std::uint32_t victim = policy.selectVictim(0, info);
        ASSERT_LT(victim, 8u);
        EXPECT_NE(victim, 3u) << "just-touched way must not be victim";
        policy.onFill(0, victim, info);
    }
}

TEST(Plru, CyclesThroughAllWaysUnderFillsOnly)
{
    PlruPolicy policy(1, 4);
    const AccessInfo info = dummyAccess();
    std::vector<bool> seen(4, false);
    std::uint32_t way = 0;
    for (int i = 0; i < 4; ++i) {
        way = policy.selectVictim(0, info);
        seen[way] = true;
        policy.onFill(0, way, info);
    }
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(seen[i]) << "way " << i;
}

TEST(Plru, RejectsNonPowerOfTwoAssoc)
{
    EXPECT_EXIT({ PlruPolicy policy(4, 6); },
                ::testing::ExitedWithCode(1), "power-of-two");
}

TEST(Plru, StorageIsAssocMinusOneBitsPerSet)
{
    PlruPolicy policy(128, 8);
    EXPECT_EQ(policy.storageBits(), 128u * 7u);
}

TEST(ExtraPolicies, ConstructibleByName)
{
    for (const std::string &name : extraPolicyNames()) {
        const auto policy = makePolicy(name, 128, 8);
        EXPECT_EQ(policy->name(), name);
        EXPECT_GT(policy->storageBits(), 0u);
    }
}

} // namespace
} // namespace chirp
