/** @file Tests for the synthetic Program trace generator. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/synthetic/program.hh"
#include "trace/synthetic/workload_factory.hh"

namespace chirp
{
namespace
{

/** A minimal two-region program for focused checks. */
std::unique_ptr<Program>
tinyProgram(std::uint64_t seed = 5, InstCount length = 20000)
{
    auto prog = std::make_unique<Program>("tiny", seed, length);
    const Addr data = prog->dataLayout().alloc(64);
    const unsigned hot = prog->addPattern(
        std::make_unique<ZipfPattern>(data, 64, 1.0, 11));
    const Addr sdata = prog->dataLayout().alloc(256);
    const unsigned stream = prog->addPattern(
        std::make_unique<StreamPattern>(sdata, 256, 4));

    Program::SharedFnSpec fn;
    fn.name = "helper";
    fn.alus = 4;
    fn.loads = 2;
    const unsigned helper = prog->addSharedFunction(fn);

    Program::RegionSpec a;
    a.name = "hotloop";
    a.loadSites = {hot, hot};
    a.calls = {{helper, hot, true, 1.0}};
    a.minIters = 4;
    a.maxIters = 8;
    prog->addRegion(a);

    Program::RegionSpec b;
    b.name = "sweeper";
    b.loadSites = {stream};
    b.calls = {{helper, stream, true, 1.0}};
    b.minIters = 4;
    b.maxIters = 8;
    prog->addRegion(b);

    prog->finalize();
    return prog;
}

TEST(Program, EmitsExactlyLengthInstructions)
{
    auto prog = tinyProgram(5, 5000);
    TraceRecord rec;
    InstCount n = 0;
    while (prog->next(rec))
        ++n;
    EXPECT_EQ(n, 5000u);
    EXPECT_EQ(prog->expectedLength(), 5000u);
}

TEST(Program, DeterministicAcrossResets)
{
    auto prog = tinyProgram();
    std::vector<TraceRecord> first;
    std::vector<TraceRecord> second;
    TraceRecord rec;
    while (prog->next(rec))
        first.push_back(rec);
    prog->reset();
    while (prog->next(rec))
        second.push_back(rec);
    EXPECT_EQ(first, second);
}

TEST(Program, DeterministicAcrossInstances)
{
    auto a = tinyProgram(9);
    auto b = tinyProgram(9);
    TraceRecord ra;
    TraceRecord rb;
    for (int i = 0; i < 10000; ++i) {
        const bool more_a = a->next(ra);
        const bool more_b = b->next(rb);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        ASSERT_EQ(ra, rb) << "diverged at instruction " << i;
    }
}

TEST(Program, DifferentSeedsDiverge)
{
    auto a = tinyProgram(1);
    auto b = tinyProgram(2);
    TraceRecord ra;
    TraceRecord rb;
    int differences = 0;
    for (int i = 0; i < 5000; ++i) {
        if (!a->next(ra) || !b->next(rb))
            break;
        differences += !(ra == rb);
    }
    EXPECT_GT(differences, 0);
}

TEST(Program, InstructionStreamIsWellFormed)
{
    auto prog = tinyProgram();
    TraceRecord rec;
    while (prog->next(rec)) {
        // Instructions are 4-byte aligned in the code segment.
        EXPECT_EQ(rec.pc % 4, 0u);
        EXPECT_GE(rec.pc, 0x400000u);
        if (isMemory(rec.cls)) {
            EXPECT_GE(rec.effAddr, Addr{1} << 32)
                << "data addresses live in the data segment";
        }
        if (isBranch(rec.cls) && rec.cls != InstClass::CondBranch) {
            EXPECT_TRUE(rec.taken);
            EXPECT_NE(rec.target, 0u);
        }
    }
}

TEST(Program, CallsEnterSharedFunctionAndReturn)
{
    auto prog = tinyProgram();
    TraceRecord rec;
    bool saw_call = false;
    Addr call_pc = 0;
    Addr call_target = 0;
    bool checked_return = false;
    std::vector<TraceRecord> window;
    while (prog->next(rec)) {
        if (rec.cls == InstClass::UncondIndirect && !saw_call &&
            rec.target != 0 && rec.target < 0x500000) {
            saw_call = true;
            call_pc = rec.pc;
            call_target = rec.target;
            continue;
        }
        if (saw_call && !checked_return &&
            rec.cls == InstClass::UncondIndirect) {
            // The matching return jumps back to the call site + 4.
            EXPECT_EQ(rec.target, call_pc + 4);
            checked_return = true;
        }
    }
    EXPECT_TRUE(saw_call);
    EXPECT_TRUE(checked_return);
    (void)call_target;
}

TEST(Program, ClassMixIsPlausible)
{
    auto prog = tinyProgram(7, 50000);
    std::map<InstClass, int> counts;
    TraceRecord rec;
    while (prog->next(rec))
        ++counts[rec.cls];
    EXPECT_GT(counts[InstClass::Alu], 0);
    EXPECT_GT(counts[InstClass::Load], 0);
    EXPECT_GT(counts[InstClass::CondBranch], 0);
    EXPECT_GT(counts[InstClass::UncondIndirect], 0);
    // Memory share should be substantial but not dominant.
    const int mem = counts[InstClass::Load] + counts[InstClass::Store];
    EXPECT_GT(mem, 50000 / 20);
    EXPECT_LT(mem, 50000 / 2);
}

TEST(Program, PeriodicBranchesHavePatternedOutcomes)
{
    auto prog = tinyProgram(3, 60000);
    // For each conditional-branch PC, count outcomes; periodic sites
    // should show a stable not-taken fraction near 1/period.
    std::map<Addr, std::pair<int, int>> outcomes; // taken, total
    TraceRecord rec;
    while (prog->next(rec)) {
        if (rec.cls == InstClass::CondBranch) {
            auto &[taken, total] = outcomes[rec.pc];
            taken += rec.taken;
            ++total;
        }
    }
    EXPECT_GT(outcomes.size(), 2u);
    // Every branch executes both often enough to be meaningful.
    int patterned = 0;
    for (const auto &[pc, stats] : outcomes) {
        if (stats.second < 100)
            continue;
        const double rate =
            static_cast<double>(stats.first) / stats.second;
        if (rate > 0.05 && rate < 0.995)
            ++patterned;
    }
    EXPECT_GT(patterned, 0);
}

TEST(Program, FinalizeValidatesReferences)
{
    Program prog("bad", 1, 1000);
    Program::RegionSpec region;
    region.name = "r";
    region.loadSites = {0}; // no patterns registered
    prog.addRegion(region);
    EXPECT_EXIT(prog.finalize(), ::testing::ExitedWithCode(1),
                "no data patterns");
}

TEST(Program, CodeLayoutFootprint)
{
    auto prog = tinyProgram();
    EXPECT_GT(prog->layout().codePages(), 0u);
    EXPECT_EQ(prog->dataFootprintPages(), 64u + 256u);
}

} // namespace
} // namespace chirp
