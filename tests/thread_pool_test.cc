/**
 * @file
 * ThreadPool unit tests: results come back through futures,
 * exceptions propagate, FIFO order holds with one worker, and the
 * pool survives an N-jobs stress burst.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace chirp
{
namespace
{

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 64; ++i)
        pending.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &job : pending)
        job.get();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> pending;
    for (int i = 0; i < 32; ++i)
        pending.push_back(pool.submit([i] { return i * i; }));
    int total = 0;
    for (auto &job : pending)
        total += job.get();
    int expected = 0;
    for (int i = 0; i < 32; ++i)
        expected += i * i;
    EXPECT_EQ(total, expected);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The pool must stay usable after a task threw.
    auto after = pool.submit([] { return 11; });
    EXPECT_EQ(after.get(), 11);
}

TEST(ThreadPool, SingleWorkerPreservesFifoOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 16; ++i)
        pending.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &job : pending)
        job.get();
    std::vector<int> expected(16);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, StressManyJobsManyWorkers)
{
    ThreadPool pool(8);
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::future<void>> pending;
    pending.reserve(2000);
    for (std::uint64_t i = 0; i < 2000; ++i)
        pending.push_back(pool.submit([&sum, i] { sum += i; }));
    for (auto &job : pending)
        job.get();
    EXPECT_EQ(sum.load(), 2000ull * 1999ull / 2ull);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::defaultConcurrency());
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
    auto job = pool.submit([] { return 3; });
    EXPECT_EQ(job.get(), 3);
}

TEST(ThreadPool, DestructionDrainsRunningWork)
{
    std::atomic<int> finished{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i)
            pool.submit([&finished] { ++finished; }).get();
    }
    EXPECT_EQ(finished.load(), 8);
}

TEST(ThreadPool, ThrowingJobDoesNotStarveQueuedWork)
{
    // One worker: a throwing job at the head of the queue must not
    // deadlock or abandon the jobs queued behind it.
    ThreadPool pool(1);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("head of queue"); });
    std::atomic<int> finished{0};
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 16; ++i)
        pending.push_back(pool.submit([&finished] { ++finished; }));
    EXPECT_THROW(bad.get(), std::runtime_error);
    for (auto &job : pending)
        job.get();
    EXPECT_EQ(finished.load(), 16);
}

TEST(ThreadPool, AllJobsFailStillDeliversEveryException)
{
    ThreadPool pool(4);
    std::vector<std::future<void>> pending;
    for (int i = 0; i < 32; ++i) {
        pending.push_back(pool.submit(
            [] { throw std::runtime_error("every job fails"); }));
    }
    int delivered = 0;
    for (auto &job : pending) {
        try {
            job.get();
        } catch (const std::runtime_error &err) {
            EXPECT_STREQ(err.what(), "every job fails");
            ++delivered;
        }
    }
    EXPECT_EQ(delivered, 32);
    // The pool must still be healthy afterwards.
    EXPECT_EQ(pool.submit([] { return 5; }).get(), 5);
}

TEST(ThreadPool, ShutdownWithThrowingAndQueuedJobs)
{
    // Destroying the pool while a throwing job runs and more work is
    // queued must neither hang nor terminate: the running job's
    // exception lands in its future and abandoned jobs surface as
    // broken promises.
    std::future<void> thrown;
    std::vector<std::future<void>> queued;
    {
        ThreadPool pool(1);
        std::atomic<bool> started{false};
        thrown = pool.submit([&started] {
            started = true;
            throw std::runtime_error("mid-shutdown");
        });
        for (int i = 0; i < 8; ++i)
            queued.push_back(pool.submit([] {}));
        // Make sure the throwing job was picked up before shutdown;
        // otherwise it would be abandoned with the queued ones.
        while (!started)
            std::this_thread::yield();
    }
    EXPECT_THROW(thrown.get(), std::runtime_error);
    for (auto &job : queued) {
        try {
            job.get(); // ran before shutdown
        } catch (const std::future_error &err) {
            EXPECT_EQ(err.code(),
                      std::future_errc::broken_promise); // abandoned
        }
    }
}

} // namespace
} // namespace chirp
