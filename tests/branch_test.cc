/** @file Tests for the branch-prediction substrate. */

#include <gtest/gtest.h>

#include "branch/branch_unit.hh"
#include "util/random.hh"

namespace chirp
{
namespace
{

TEST(HashedPerceptron, LearnsAStronglyBiasedBranch)
{
    HashedPerceptron predictor;
    const Addr pc = 0x401000;
    for (int i = 0; i < 200; ++i)
        predictor.update(pc, true);
    EXPECT_TRUE(predictor.predict(pc));

    for (int i = 0; i < 400; ++i)
        predictor.update(pc, false);
    EXPECT_FALSE(predictor.predict(pc));
}

TEST(HashedPerceptron, LearnsAPeriodicPattern)
{
    HashedPerceptron predictor;
    const Addr pc = 0x402000;
    // Period-4 pattern: T T T N. Train for a while...
    for (int i = 0; i < 2000; ++i)
        predictor.update(pc, (i % 4) != 3);
    // ...then measure accuracy over the next window.
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        const bool actual = (i % 4) != 3;
        correct += predictor.predict(pc) == actual;
        predictor.update(pc, actual);
    }
    EXPECT_GT(correct, 360) << "history-based predictor should track "
                               "a short periodic pattern";
}

TEST(HashedPerceptron, HistoryAdvances)
{
    HashedPerceptron predictor;
    const std::uint64_t before = predictor.history();
    predictor.update(0x400100, true);
    EXPECT_EQ(predictor.history(), (before << 1) | 1);
    predictor.update(0x400100, false);
    EXPECT_EQ(predictor.history() & 1, 0u);
}

TEST(HashedPerceptron, ResetClearsState)
{
    HashedPerceptron predictor;
    for (int i = 0; i < 100; ++i)
        predictor.update(0x400000, false);
    predictor.reset();
    EXPECT_EQ(predictor.history(), 0u);
    EXPECT_TRUE(predictor.predict(0x400000))
        << "zero weights predict taken (sum >= 0)";
}

TEST(Btb, StoresAndPredictsTargets)
{
    Btb btb(1024, 4);
    EXPECT_EQ(btb.predict(0x400000), 0u);
    btb.update(0x400000, 0x400400);
    EXPECT_EQ(btb.predict(0x400000), 0x400400u);
    btb.update(0x400000, 0x400800);
    EXPECT_EQ(btb.predict(0x400000), 0x400800u);
}

TEST(Btb, CapacityEviction)
{
    Btb btb(16, 2); // 8 sets x 2 ways
    // Fill one set (branches 0x0, 0x200, 0x400 all map to set 0 with
    // 8 sets of 4-byte keys: key = pc>>2, set = key & 7).
    btb.update(0x0, 0x100);
    btb.update(0x200, 0x300);
    btb.predict(0x0); // refresh recency via hit bookkeeping? (reads only)
    btb.update(0x400, 0x500);
    // One of the first two was evicted; the newest must be present.
    EXPECT_EQ(btb.predict(0x400), 0x500u);
}

TEST(IndirectPredictor, ConvergesOnAStableTarget)
{
    IndirectPredictor predictor(512);
    const Addr pc = 0x400abc;
    // The index mixes in a target-path history, so it stabilizes
    // once the register is full of the repeated target.
    for (int i = 0; i < 32; ++i)
        predictor.update(pc, 0x500000);
    EXPECT_EQ(predictor.predict(pc), 0x500000u);
}

TEST(BranchUnit, PenalizesColdBranchesThenLearns)
{
    BranchUnit unit;
    TraceRecord rec;
    rec.pc = 0x400100;
    rec.cls = InstClass::UncondDirect;
    rec.target = 0x400800;
    rec.taken = true;
    const Cycles first = unit.onBranch(rec);
    EXPECT_EQ(first, BranchUnitConfig{}.mispredictPenalty)
        << "cold BTB misses the target";
    const Cycles second = unit.onBranch(rec);
    EXPECT_EQ(second, 0u);
    EXPECT_EQ(unit.branches(), 2u);
    EXPECT_EQ(unit.mispredicts(), 1u);
}

TEST(BranchUnit, ConditionalDirectionAndTarget)
{
    BranchUnit unit;
    TraceRecord rec;
    rec.pc = 0x400200;
    rec.cls = InstClass::CondBranch;
    rec.target = 0x400900;
    rec.taken = true;
    // Train until the unit predicts this always-taken branch.
    for (int i = 0; i < 50; ++i)
        unit.onBranch(rec);
    EXPECT_EQ(unit.onBranch(rec), 0u);
    // A sudden not-taken outcome is a mispredict.
    rec.taken = false;
    EXPECT_EQ(unit.onBranch(rec), BranchUnitConfig{}.mispredictPenalty);
}

TEST(BranchUnit, IndirectTargetsResolveAfterTraining)
{
    BranchUnit unit;
    TraceRecord rec;
    rec.pc = 0x400300;
    rec.cls = InstClass::UncondIndirect;
    rec.target = 0x480000;
    rec.taken = true;
    for (int i = 0; i < 32; ++i)
        unit.onBranch(rec); // warm the target-path history
    EXPECT_EQ(unit.onBranch(rec), 0u) << "stable target is learned";
}

TEST(BranchUnit, NonBranchesAreIgnored)
{
    BranchUnit unit;
    TraceRecord rec;
    rec.pc = 0x400400;
    rec.cls = InstClass::Load;
    EXPECT_EQ(unit.onBranch(rec), 0u);
    EXPECT_EQ(unit.branches(), 1u) << "counted but no predictor state";
}

TEST(BranchUnit, MispredictRateOnRandomOutcomesIsBounded)
{
    BranchUnit unit;
    Rng rng(3);
    TraceRecord rec;
    rec.cls = InstClass::CondBranch;
    rec.target = 0x400800;
    int penalties = 0;
    for (int i = 0; i < 4000; ++i) {
        rec.pc = 0x400000 + 64 * (i % 4);
        rec.taken = rng.chance(0.9);
        penalties += unit.onBranch(rec) > 0;
    }
    // A 90%-biased random branch should mispredict roughly 10% of
    // the time once warmed, certainly less than 25%.
    EXPECT_LT(penalties, 1000);
}

} // namespace
} // namespace chirp
