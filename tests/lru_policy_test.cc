/** @file Behavioural tests for the LRU and Random policies. */

#include <gtest/gtest.h>

#include "core/lru.hh"
#include "core/random_repl.hh"

namespace chirp
{
namespace
{

AccessInfo
dummyAccess()
{
    AccessInfo info;
    info.pc = 0x400000;
    info.vaddr = 0x1000;
    info.cls = InstClass::Load;
    return info;
}

TEST(LruPolicy, ExactStackOrder)
{
    LruPolicy policy(4, 4);
    const AccessInfo info = dummyAccess();
    // Fill ways 0..3 in order; way 0 is then LRU.
    for (std::uint32_t way = 0; way < 4; ++way)
        policy.onFill(0, way, info);
    EXPECT_EQ(policy.selectVictim(0, info), 0u);
    // Touch way 0; way 1 becomes LRU.
    policy.onHit(0, 0, info);
    EXPECT_EQ(policy.selectVictim(0, info), 1u);
    // Touch way 1 and 2; way 3 is LRU.
    policy.onHit(0, 1, info);
    policy.onHit(0, 2, info);
    EXPECT_EQ(policy.selectVictim(0, info), 3u);
}

TEST(LruPolicy, StackPositionsArePermutation)
{
    LruPolicy policy(2, 8);
    const AccessInfo info = dummyAccess();
    for (std::uint32_t way = 0; way < 8; ++way)
        policy.onFill(1, way, info);
    policy.onHit(1, 3, info);
    policy.onHit(1, 5, info);
    std::vector<bool> seen(8, false);
    for (std::uint32_t way = 0; way < 8; ++way) {
        const std::uint32_t pos = policy.stackPosition(1, way);
        ASSERT_LT(pos, 8u);
        EXPECT_FALSE(seen[pos]) << "duplicate stack position " << pos;
        seen[pos] = true;
    }
    EXPECT_EQ(policy.stackPosition(1, 5), 0u) << "most recent";
}

TEST(LruPolicy, SetsAreIndependent)
{
    LruPolicy policy(2, 2);
    const AccessInfo info = dummyAccess();
    policy.onFill(0, 0, info);
    policy.onFill(0, 1, info);
    policy.onFill(1, 1, info);
    policy.onFill(1, 0, info);
    EXPECT_EQ(policy.selectVictim(0, info), 0u);
    EXPECT_EQ(policy.selectVictim(1, info), 1u);
}

TEST(LruPolicy, InvalidateDemotesToLru)
{
    LruPolicy policy(1, 4);
    const AccessInfo info = dummyAccess();
    for (std::uint32_t way = 0; way < 4; ++way)
        policy.onFill(0, way, info);
    policy.onInvalidate(0, 2);
    EXPECT_EQ(policy.selectVictim(0, info), 2u);
}

TEST(LruPolicy, StorageIsThreeBitsPerEntryAt8Way)
{
    LruPolicy policy(128, 8);
    EXPECT_EQ(policy.storageBits(), 128u * 8u * 3u);
}

TEST(RandomPolicy, VictimsAreInRangeAndCoverAllWays)
{
    RandomPolicy policy(4, 8);
    const AccessInfo info = dummyAccess();
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 800; ++i) {
        const std::uint32_t victim = policy.selectVictim(0, info);
        ASSERT_LT(victim, 8u);
        ++counts[victim];
    }
    for (int way = 0; way < 8; ++way)
        EXPECT_GT(counts[way], 40) << "way " << way;
}

TEST(RandomPolicy, DeterministicAfterReset)
{
    RandomPolicy policy(4, 8);
    const AccessInfo info = dummyAccess();
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 20; ++i)
        first.push_back(policy.selectVictim(0, info));
    policy.reset();
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(policy.selectVictim(0, info), first[i]);
}

} // namespace
} // namespace chirp
