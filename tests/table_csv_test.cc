/** @file Unit tests for the table formatter and CSV writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hh"
#include "util/table.hh"

namespace chirp
{
namespace
{

TEST(TableFormatter, AlignsColumns)
{
    TableFormatter t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "22"});
    const std::string out = t.str();
    // Header, separator, two rows.
    std::vector<std::string> lines;
    std::stringstream ss(out);
    for (std::string line; std::getline(ss, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0].substr(0, 4), "name");
    EXPECT_EQ(lines[1].find_first_not_of('-'), std::string::npos);
    // The second column starts at the same offset on every line:
    // "name" is padded to the width of "longer" plus two spaces.
    EXPECT_EQ(lines[0].find("value"), lines[2].find("1"));
    EXPECT_EQ(lines[0].find("value"), lines[3].find("22"));
}

TEST(TableFormatter, RaggedRowsArePadded)
{
    TableFormatter t;
    t.header({"a", "b", "c"});
    t.row({"only-one"});
    EXPECT_NO_THROW({ const auto s = t.str(); });
}

TEST(TableFormatter, NumFormatting)
{
    EXPECT_EQ(TableFormatter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TableFormatter::num(3.14159, 0), "3");
    EXPECT_EQ(TableFormatter::num(std::uint64_t{12345}), "12345");
}

TEST(CsvWriter, EscapesSpecials)
{
    const std::string path = ::testing::TempDir() + "csv_test.csv";
    {
        CsvWriter csv(path);
        csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
        csv.row({"second", "row"});
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    EXPECT_NE(content.find("plain"), std::string::npos);
    EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
    EXPECT_NE(content.find("second,row\n"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace chirp
