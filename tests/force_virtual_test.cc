/**
 * @file
 * CHIRP_FORCE_VIRTUAL equality: the devirtualized fast path — typed
 * policy dispatch in the TLB, retire-hook devirtualization, and the
 * record-once/replay-many L2 event stream with shared CHiRP
 * signature streams — must produce bit-identical statistics to the
 * legacy generic-virtual, full-simulation path it replaced.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/policy_factory.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "tlb/tlb.hh"

namespace chirp
{
namespace
{

SimConfig
fastConfig()
{
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    return config;
}

std::vector<WorkloadConfig>
smallSuite(std::size_t size = 5)
{
    SuiteOptions options;
    options.size = size;
    options.traceLength = 60000;
    return makeSuite(options);
}

/** The paper policy set with every dispatch specialization. */
std::vector<PolicyFactory>
specializedFactories()
{
    return {
        Runner::factoryFor(PolicyKind::Lru),
        Runner::factoryFor(PolicyKind::Ship),
        Runner::factoryFor(PolicyKind::Ghrp),
        Runner::factoryFor(PolicyKind::Chirp),
    };
}

void
expectIdenticalStats(const std::vector<std::vector<WorkloadResult>> &a,
                     const std::vector<std::vector<WorkloadResult>> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        ASSERT_EQ(a[p].size(), b[p].size());
        for (std::size_t w = 0; w < a[p].size(); ++w) {
            SCOPED_TRACE("policy " + std::to_string(p) + " workload " +
                         a[p][w].workload.name);
            const SimStats &x = a[p][w].stats;
            const SimStats &y = b[p][w].stats;
            EXPECT_EQ(x.instructions, y.instructions);
            EXPECT_EQ(x.cycles, y.cycles);
            EXPECT_EQ(x.l1iTlbMisses, y.l1iTlbMisses);
            EXPECT_EQ(x.l1dTlbMisses, y.l1dTlbMisses);
            EXPECT_EQ(x.l2TlbAccesses, y.l2TlbAccesses);
            EXPECT_EQ(x.l2TlbHits, y.l2TlbHits);
            EXPECT_EQ(x.l2TlbMisses, y.l2TlbMisses);
            EXPECT_EQ(x.tableReads, y.tableReads);
            EXPECT_EQ(x.tableWrites, y.tableWrites);
            EXPECT_EQ(x.walkCycles, y.walkCycles);
            // Bit-identical doubles: both paths run the same
            // deterministic computation.
            EXPECT_EQ(x.l2Efficiency, y.l2Efficiency);
        }
    }
}

/** RAII environment flip so a failing ASSERT cannot leak the flag. */
class ForcedVirtual
{
  public:
    ForcedVirtual() { ::setenv("CHIRP_FORCE_VIRTUAL", "1", 1); }
    ~ForcedVirtual() { ::unsetenv("CHIRP_FORCE_VIRTUAL"); }
};

TEST(ForceVirtual, EnvParsing)
{
    ::unsetenv("CHIRP_FORCE_VIRTUAL");
    EXPECT_FALSE(forceVirtualDispatch());
    ::setenv("CHIRP_FORCE_VIRTUAL", "", 1);
    EXPECT_FALSE(forceVirtualDispatch()) << "empty means unset";
    ::setenv("CHIRP_FORCE_VIRTUAL", "0", 1);
    EXPECT_FALSE(forceVirtualDispatch()) << "explicit zero means off";
    ::setenv("CHIRP_FORCE_VIRTUAL", "1", 1);
    EXPECT_TRUE(forceVirtualDispatch());
    ::setenv("CHIRP_FORCE_VIRTUAL", "yes", 1);
    EXPECT_TRUE(forceVirtualDispatch());
    ::unsetenv("CHIRP_FORCE_VIRTUAL");
}

TEST(ForceVirtual, LegacySerialMatchesFastSerial)
{
    const auto suite = smallSuite();
    const auto factories = specializedFactories();
    const Runner runner(fastConfig(), 1);

    std::vector<std::vector<WorkloadResult>> forced;
    {
        ForcedVirtual guard;
        forced = runner.runSuiteMulti(suite, factories);
    }
    const auto fast = runner.runSuiteMulti(suite, factories);
    expectIdenticalStats(forced, fast);
}

TEST(ForceVirtual, LegacyParallelMatchesFastParallel)
{
    const auto suite = smallSuite();
    const auto factories = specializedFactories();
    const Runner runner(fastConfig(), 4);

    std::vector<std::vector<WorkloadResult>> forced;
    {
        ForcedVirtual guard;
        forced = runner.runSuiteMulti(suite, factories);
    }
    const auto fast = runner.runSuiteMulti(suite, factories);
    expectIdenticalStats(forced, fast);
}

TEST(ForceVirtual, StandaloneRunMatchesUnderForcedDispatch)
{
    // A plain Simulator::run must be unaffected by the flag too: the
    // devirtualized access loop is state-identical to generic
    // dispatch, not just the suite runner.
    const auto suite = smallSuite(2);
    const Runner runner(fastConfig(), 1);
    for (const PolicyKind kind :
         {PolicyKind::Lru, PolicyKind::Ship, PolicyKind::Ghrp,
          PolicyKind::Chirp}) {
        SCOPED_TRACE(policyKindName(kind));
        const auto factory = Runner::factoryFor(kind);
        std::vector<WorkloadResult> forced;
        {
            ForcedVirtual guard;
            forced = runner.runSuite(suite, factory);
        }
        const auto fast = runner.runSuite(suite, factory);
        ASSERT_EQ(forced.size(), fast.size());
        for (std::size_t w = 0; w < forced.size(); ++w) {
            EXPECT_EQ(forced[w].stats.cycles, fast[w].stats.cycles);
            EXPECT_EQ(forced[w].stats.l2TlbMisses,
                      fast[w].stats.l2TlbMisses);
            EXPECT_EQ(forced[w].stats.tableReads,
                      fast[w].stats.tableReads);
            EXPECT_EQ(forced[w].stats.tableWrites,
                      fast[w].stats.tableWrites);
        }
    }
}

} // namespace
} // namespace chirp
