/**
 * @file
 * End-to-end integration tests: the full stack (workload -> TLB
 * hierarchy -> policies -> stats) behaves per the paper's
 * qualitative claims on miniature suites.
 */

#include <gtest/gtest.h>

#include "core/policy_factory.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "trace/trace_file.hh"

namespace chirp
{
namespace
{

SimConfig
fastConfig()
{
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    return config;
}

TEST(Integration, ChirpBeatsLruOnContextDependentWorkloads)
{
    // Averaged over a small mixed suite, CHiRP must reduce MPKI
    // relative to LRU — the paper's headline claim.
    Runner runner(fastConfig());
    SuiteOptions options;
    options.size = 6;
    options.traceLength = 300000;
    const auto suite = makeSuite(options);
    const auto lru =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Lru));
    const auto chirp_results =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Chirp));
    EXPECT_GT(mpkiReductionPct(lru, chirp_results), 5.0);
}

TEST(Integration, ChirpImprovesTlbEfficiency)
{
    Runner runner(fastConfig());
    SuiteOptions options;
    options.size = 6;
    options.traceLength = 300000;
    const auto suite = makeSuite(options);
    const auto lru =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Lru));
    const auto chirp_results =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Chirp));
    EXPECT_GT(efficiencyGainPct(lru, chirp_results), 0.0);
}

TEST(Integration, ChirpTouchesItsTableFarLessThanGhrp)
{
    // §IV-E / Fig 11: CHiRP's selective updates cut prediction-table
    // traffic by an order of magnitude relative to per-access
    // policies.
    Runner runner(fastConfig());
    SuiteOptions options;
    options.size = 4;
    options.traceLength = 200000;
    const auto suite = makeSuite(options);
    const auto ghrp =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Ghrp));
    const auto chirp_results =
        runner.runSuite(suite, Runner::factoryFor(PolicyKind::Chirp));
    const double ghrp_rate = meanTableAccessRate(ghrp);
    const double chirp_rate = meanTableAccessRate(chirp_results);
    EXPECT_GT(ghrp_rate, 1.0) << "GHRP reads+writes on every access";
    EXPECT_LT(chirp_rate, ghrp_rate / 5.0);
}

TEST(Integration, CryptoWorkloadsFitTheTlb)
{
    Runner runner(fastConfig());
    WorkloadConfig workload;
    workload.category = Category::Crypto;
    workload.seed = 12;
    workload.length = 200000;
    const SimStats stats =
        runner.runOne(workload, Runner::factoryFor(PolicyKind::Lru));
    EXPECT_LT(stats.mpki(), 0.5)
        << "compute-bound tiny-footprint workloads barely miss";
}

TEST(Integration, BiggerTlbNeverHurtsBadly)
{
    // MPKI with a 2048-entry L2 TLB should be <= MPKI with 1024
    // entries (modulo tiny indexing effects) under LRU.
    const auto workload = [] {
        WorkloadConfig config;
        config.category = Category::Database;
        config.seed = 33;
        config.length = 200000;
        return config;
    }();
    SimConfig small = fastConfig();
    SimConfig big = fastConfig();
    big.tlbs.l2.entries = 2048;
    const SimStats s_small =
        Runner(small).runOne(workload, Runner::factoryFor(PolicyKind::Lru));
    const SimStats s_big =
        Runner(big).runOne(workload, Runner::factoryFor(PolicyKind::Lru));
    EXPECT_LE(s_big.mpki(), s_small.mpki() * 1.05);
}

TEST(Integration, FileRoundTripPreservesSimulation)
{
    // Simulating a trace from a file must give identical stats to
    // simulating the generator directly.
    WorkloadConfig workload;
    workload.category = Category::Web;
    workload.seed = 8;
    workload.length = 60000;
    const std::string path = ::testing::TempDir() + "roundtrip_sim.chtr";
    {
        const auto program = buildWorkload(workload);
        TraceFileWriter writer(path);
        TraceRecord rec;
        while (program->next(rec))
            writer.append(rec);
    }
    const SimConfig config = fastConfig();
    const std::uint32_t sets =
        config.tlbs.l2.entries / config.tlbs.l2.assoc;

    Simulator direct(config, makePolicy(PolicyKind::Chirp, sets,
                                        config.tlbs.l2.assoc));
    const auto program = buildWorkload(workload);
    const SimStats from_generator = direct.run(*program);

    Simulator replay(config, makePolicy(PolicyKind::Chirp, sets,
                                        config.tlbs.l2.assoc));
    TraceFileSource source(path);
    const SimStats from_file = replay.run(source);

    EXPECT_EQ(from_generator.cycles, from_file.cycles);
    EXPECT_EQ(from_generator.l2TlbMisses, from_file.l2TlbMisses);
    EXPECT_EQ(from_generator.tableReads, from_file.tableReads);
    std::remove(path.c_str());
}

TEST(Integration, PolicyFactoryByNameMatchesByKind)
{
    for (const PolicyKind kind : allPolicyKinds()) {
        const auto by_kind = makePolicy(kind, 128, 8);
        const auto by_name = makePolicy(
            std::string(policyKindName(kind)), 128, 8);
        EXPECT_EQ(by_kind->name(), by_name->name());
        EXPECT_EQ(by_kind->storageBits(), by_name->storageBits());
    }
}

TEST(Integration, UnknownPolicyNameIsFatal)
{
    EXPECT_EXIT({ makePolicy(std::string("belady"), 128, 8); },
                ::testing::ExitedWithCode(1), "unknown replacement");
}

} // namespace
} // namespace chirp
