/**
 * @file
 * FaultInjector tests: spec parsing, actions firing at exactly their
 * armed event (once), the transient/permanent exception split, the
 * cache corruption actions mutating a real file, and counter/reset
 * behaviour.  The injector is a process-wide singleton, so every test
 * configures it afresh and disarms it on the way out.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/fault_injection.hh"

namespace chirp
{
namespace
{

/** Configure-on-entry / disarm-on-exit guard around the singleton. */
class FaultInjectionTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

std::string
scratchFile(const char *tag, const std::string &content)
{
    const std::string path =
        ::testing::TempDir() + "chirp_fault_" + tag;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST_F(FaultInjectionTest, DisarmedInjectorIsInert)
{
    FaultInjector &injector = FaultInjector::instance();
    EXPECT_FALSE(injector.active());
    for (int i = 0; i < 4; ++i)
        EXPECT_NO_THROW(injector.onJobStart());
    EXPECT_EQ(injector.jobEvents(), 4u);
    EXPECT_EQ(injector.cacheEvents(), 0u);
}

TEST_F(FaultInjectionTest, ThrowFiresOnceAtItsEvent)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("throw@2");
    EXPECT_TRUE(injector.active());
    EXPECT_NO_THROW(injector.onJobStart()); // event 0
    EXPECT_NO_THROW(injector.onJobStart()); // event 1
    EXPECT_THROW(injector.onJobStart(), TransientError);
    // Fired actions stay fired: event 2 never recurs.
    EXPECT_NO_THROW(injector.onJobStart());
    EXPECT_EQ(injector.jobEvents(), 4u);
}

TEST_F(FaultInjectionTest, HardThrowIsNotTransient)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("hard-throw@0");
    try {
        injector.onJobStart();
        FAIL() << "expected InjectedFault";
    } catch (const InjectedFault &err) {
        EXPECT_NE(std::string(err.what()).find("permanent"),
                  std::string::npos);
    } catch (const TransientError &) {
        FAIL() << "hard-throw must not be retryable";
    }
}

TEST_F(FaultInjectionTest, MultipleActionsFireIndependently)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("throw@0,hard-throw@2");
    EXPECT_THROW(injector.onJobStart(), TransientError); // event 0
    EXPECT_NO_THROW(injector.onJobStart());              // event 1
    EXPECT_THROW(injector.onJobStart(), InjectedFault);  // event 2
    EXPECT_NO_THROW(injector.onJobStart());
}

TEST_F(FaultInjectionTest, SlowDelaysTheArmedEvent)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("slow@0:50");
    const auto begin = std::chrono::steady_clock::now();
    injector.onJobStart();
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - begin);
    EXPECT_GE(elapsed.count(), 50);
}

TEST_F(FaultInjectionTest, CacheTruncateCutsThePublishedFile)
{
    const std::string path =
        scratchFile("truncate", std::string(100, 'x'));
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("cache-truncate@1:30");
    injector.onCachePublish(path); // event 0: not armed, untouched
    EXPECT_EQ(std::filesystem::file_size(path), 100u);
    injector.onCachePublish(path); // event 1: cut 30 bytes
    EXPECT_EQ(std::filesystem::file_size(path), 70u);
    EXPECT_EQ(injector.cacheEvents(), 2u);
    EXPECT_EQ(injector.jobEvents(), 0u)
        << "cache events must not advance the job counter";
    std::filesystem::remove(path);
}

TEST_F(FaultInjectionTest, CacheTruncateDefaultsToHalf)
{
    const std::string path =
        scratchFile("truncate_half", std::string(64, 'y'));
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("cache-truncate@0");
    injector.onCachePublish(path);
    EXPECT_EQ(std::filesystem::file_size(path), 32u);
    std::filesystem::remove(path);
}

TEST_F(FaultInjectionTest, CacheBitflipChangesExactlyOneBit)
{
    const std::string content(40, 'z');
    const std::string path = scratchFile("bitflip", content);
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("cache-bitflip@0:7");
    injector.onCachePublish(path);
    const std::string mutated = slurp(path);
    ASSERT_EQ(mutated.size(), content.size());
    for (std::size_t i = 0; i < content.size(); ++i) {
        if (i == 7)
            EXPECT_EQ(mutated[i], static_cast<char>(content[i] ^ 0x01));
        else
            EXPECT_EQ(mutated[i], content[i]);
    }
    std::filesystem::remove(path);
}

TEST_F(FaultInjectionTest, JobActionsIgnoreCacheEventsAndViceVersa)
{
    const std::string path = scratchFile("cross", "payload");
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("throw@0,cache-bitflip@0");
    // The cache event must not trip the job action...
    injector.onCachePublish(path);
    // ...and the job event must still fire its own.
    EXPECT_THROW(injector.onJobStart(), TransientError);
    std::filesystem::remove(path);
}

TEST_F(FaultInjectionTest, ConfigureResetsCountersAndResetDisarms)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.configure("throw@5");
    injector.onJobStart();
    injector.onJobStart();
    EXPECT_EQ(injector.jobEvents(), 2u);
    injector.configure("throw@5"); // re-arm: counters restart
    EXPECT_EQ(injector.jobEvents(), 0u);
    injector.reset();
    EXPECT_FALSE(injector.active());
    for (int i = 0; i < 8; ++i)
        EXPECT_NO_THROW(injector.onJobStart());
}

using FaultInjectionDeathTest = FaultInjectionTest;

TEST_F(FaultInjectionDeathTest, MalformedSpecsAreFatal)
{
    EXPECT_EXIT(FaultInjector::instance().configure("throw"),
                ::testing::ExitedWithCode(1), "missing '@index'");
    EXPECT_EXIT(FaultInjector::instance().configure("explode@3"),
                ::testing::ExitedWithCode(1), "unknown action");
    EXPECT_EXIT(FaultInjector::instance().configure("throw@banana"),
                ::testing::ExitedWithCode(1), "bad number");
}

} // namespace
} // namespace chirp
