/** @file Tests for interleaved multi-process simulation. */

#include <gtest/gtest.h>

#include "core/policy_factory.hh"
#include "sim/simulator.hh"
#include "trace/synthetic/workload_factory.hh"

namespace chirp
{
namespace
{

SimConfig
fastConfig()
{
    SimConfig config;
    config.simulateCaches = false;
    config.simulateBranch = false;
    return config;
}

std::unique_ptr<ReplacementPolicy>
l2Policy(const SimConfig &config, PolicyKind kind = PolicyKind::Lru)
{
    return makePolicy(kind,
                      config.tlbs.l2.entries / config.tlbs.l2.assoc,
                      config.tlbs.l2.assoc);
}

std::unique_ptr<Program>
process(std::uint64_t seed, InstCount length = 80000,
        Category category = Category::Spec)
{
    WorkloadConfig config;
    config.category = category;
    config.seed = seed;
    config.length = length;
    return buildWorkload(config);
}

TEST(MultiProcess, SingleSourceMatchesPlainRun)
{
    const SimConfig config = fastConfig();
    Simulator a(config, l2Policy(config));
    Simulator b(config, l2Policy(config));
    auto pa = process(3);
    auto pb = process(3);
    const SimStats plain = a.run(*pa);
    const SimStats multi = b.runInterleaved({pb.get()}, 1000, false);
    EXPECT_EQ(plain.cycles, multi.cycles);
    EXPECT_EQ(plain.l2TlbMisses, multi.l2TlbMisses);
}

TEST(MultiProcess, RetiresAllInstructionsFromAllProcesses)
{
    const SimConfig config = fastConfig();
    Simulator sim(config, l2Policy(config));
    auto p1 = process(1, 50000);
    auto p2 = process(2, 70000);
    const SimStats stats =
        sim.runInterleaved({p1.get(), p2.get()}, 5000, false);
    EXPECT_EQ(stats.instructions + stats.warmupInstructions, 120000u);
}

TEST(MultiProcess, IdenticalProcessesDoNotShareTranslations)
{
    // Two copies of the same program under different ASIDs: each
    // needs its own TLB entries, so misses are at least the
    // single-process count (per measured instruction).
    const SimConfig config = fastConfig();
    Simulator single_sim(config, l2Policy(config));
    auto p0 = process(9, 80000);
    const SimStats single = single_sim.run(*p0);

    Simulator multi_sim(config, l2Policy(config));
    auto p1 = process(9, 80000);
    auto p2 = process(9, 80000);
    const SimStats multi =
        multi_sim.runInterleaved({p1.get(), p2.get()}, 4000, false);
    EXPECT_GT(multi.mpki(), single.mpki() * 0.9)
        << "ASID tagging must prevent cross-process translation reuse";
}

TEST(MultiProcess, FlushOnSwitchCostsMisses)
{
    const SimConfig config = fastConfig();
    Simulator tagged(config, l2Policy(config));
    Simulator flushed(config, l2Policy(config));
    auto a1 = process(5, 60000);
    auto a2 = process(6, 60000, Category::Database);
    auto b1 = process(5, 60000);
    auto b2 = process(6, 60000, Category::Database);
    const SimStats with_asids =
        tagged.runInterleaved({a1.get(), a2.get()}, 3000, false);
    const SimStats with_flush =
        flushed.runInterleaved({b1.get(), b2.get()}, 3000, true);
    EXPECT_GT(with_flush.l2TlbMisses, with_asids.l2TlbMisses)
        << "flushing on every switch must cost refills";
}

TEST(MultiProcess, ShorterQuantumMeansMoreInterference)
{
    const SimConfig config = fastConfig();
    Simulator coarse(config, l2Policy(config));
    Simulator fine(config, l2Policy(config));
    auto a1 = process(11, 60000);
    auto a2 = process(12, 60000, Category::BigData);
    auto b1 = process(11, 60000);
    auto b2 = process(12, 60000, Category::BigData);
    const SimStats coarse_stats =
        coarse.runInterleaved({a1.get(), a2.get()}, 30000, true);
    const SimStats fine_stats =
        fine.runInterleaved({b1.get(), b2.get()}, 1000, true);
    EXPECT_GE(fine_stats.l2TlbMisses, coarse_stats.l2TlbMisses)
        << "more flushes cannot reduce misses";
}

TEST(MultiProcess, RejectsInvalidArguments)
{
    const SimConfig config = fastConfig();
    Simulator sim(config, l2Policy(config));
    EXPECT_EXIT(sim.runInterleaved({}, 100, false),
                ::testing::ExitedWithCode(1), "at least one source");
    auto p1 = process(1, 1000);
    auto p2 = process(2, 1000);
    EXPECT_EXIT(sim.runInterleaved({p1.get(), p2.get()}, 0, false),
                ::testing::ExitedWithCode(1), "quantum");
}

} // namespace
} // namespace chirp
