/**
 * @file
 * Batched-pull equivalence: for every trace source, nextBatch() must
 * deliver exactly the record sequence that repeated next() calls
 * produce — across all six workload categories, at awkward batch
 * sizes, and through the capping/file-backed wrappers.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/synthetic/workload_factory.hh"
#include "trace/trace_file.hh"
#include "trace/trace_store.hh"
#include "trace/workload_suite.hh"

namespace chirp
{
namespace
{

std::vector<TraceRecord>
drainScalar(TraceSource &source)
{
    source.reset();
    std::vector<TraceRecord> out;
    TraceRecord rec;
    while (source.next(rec))
        out.push_back(rec);
    return out;
}

std::vector<TraceRecord>
drainBatched(TraceSource &source, std::size_t batch)
{
    source.reset();
    std::vector<TraceRecord> out;
    std::vector<TraceRecord> buf(batch);
    std::size_t got;
    while ((got = source.nextBatch(buf.data(), batch)) > 0)
        out.insert(out.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(got));
    return out;
}

const std::size_t kBatchSizes[] = {1, 7, 64, 256, 1000};

WorkloadConfig
makeConfig(Category category, std::uint64_t seed, InstCount length)
{
    WorkloadConfig config;
    config.category = category;
    config.seed = seed;
    config.length = length;
    return config;
}

std::vector<Category>
allCategories()
{
    std::vector<Category> cats;
    const auto ncat = static_cast<unsigned>(Category::NumCategories);
    for (unsigned c = 0; c < ncat; ++c)
        cats.push_back(static_cast<Category>(c));
    return cats;
}

TEST(TraceBatch, GeneratorMatchesScalarForAllCategories)
{
    for (const Category category : allCategories()) {
        WorkloadConfig config;
        config.category = category;
        config.seed = 0xBEE5 + static_cast<std::uint64_t>(category);
        config.length = 12000;
        SCOPED_TRACE(categoryName(category));

        const auto scalar_program = buildWorkload(config);
        const auto reference = drainScalar(*scalar_program);
        ASSERT_EQ(reference.size(), config.length);

        for (const std::size_t batch : kBatchSizes) {
            SCOPED_TRACE("batch=" + std::to_string(batch));
            const auto program = buildWorkload(config);
            EXPECT_EQ(drainBatched(*program, batch), reference);
        }
    }
}

TEST(TraceBatch, MemorySourceMatchesGenerator)
{
    for (const Category category : allCategories()) {
        WorkloadConfig config;
        config.category = category;
        config.seed = 0xFACE + static_cast<std::uint64_t>(category);
        config.length = 9000;
        SCOPED_TRACE(categoryName(category));

        const auto program = buildWorkload(config);
        const auto reference = drainScalar(*program);
        const auto trace = std::make_shared<const ColumnarTrace>(
            materializeWorkload(config));

        MemoryTraceSource source(trace);
        EXPECT_EQ(drainScalar(source), reference);
        for (const std::size_t batch : kBatchSizes) {
            SCOPED_TRACE("batch=" + std::to_string(batch));
            EXPECT_EQ(drainBatched(source, batch), reference);
        }
    }
}

TEST(TraceBatch, ShortFinalBatchSignalsEnd)
{
    const auto trace = std::make_shared<const ColumnarTrace>(
        materializeWorkload(makeConfig(Category::Spec, 3, 1000)));
    MemoryTraceSource source(trace);
    TraceRecord buf[300];
    EXPECT_EQ(source.nextBatch(buf, 300), 300u);
    EXPECT_EQ(source.nextBatch(buf, 300), 300u);
    EXPECT_EQ(source.nextBatch(buf, 300), 300u);
    EXPECT_EQ(source.nextBatch(buf, 300), 100u) << "short count at end";
    EXPECT_EQ(source.nextBatch(buf, 300), 0u) << "drained source";
}

TEST(TraceBatch, CappedSourceClampsBatches)
{
    const auto trace = std::make_shared<const ColumnarTrace>(
        materializeWorkload(makeConfig(Category::Database, 4, 2000)));
    MemoryTraceSource inner(trace);
    CappedSource capped(inner, 500);
    EXPECT_EQ(drainScalar(capped).size(), 500u);
    for (const std::size_t batch : kBatchSizes) {
        SCOPED_TRACE("batch=" + std::to_string(batch));
        inner.reset();
        const auto records = drainBatched(capped, batch);
        ASSERT_EQ(records.size(), 500u);
        for (std::size_t i = 0; i < records.size(); ++i)
            EXPECT_EQ(records[i], trace->record(i));
    }
}

TEST(TraceBatch, VectorSourceBatchesMatchScalar)
{
    const auto records =
        materializeWorkload(makeConfig(Category::Web, 6, 777));
    VectorSource source(records);
    const auto reference = drainScalar(source);
    ASSERT_EQ(reference, records);
    for (const std::size_t batch : kBatchSizes) {
        SCOPED_TRACE("batch=" + std::to_string(batch));
        EXPECT_EQ(drainBatched(source, batch), reference);
    }
}

TEST(TraceBatch, FileSourceBatchesMatchScalar)
{
    const std::string path = ::testing::TempDir() + "batch.chtr";
    const auto records =
        materializeWorkload(makeConfig(Category::Crypto, 8, 1500));
    {
        TraceFileWriter writer(path);
        for (const auto &rec : records)
            writer.append(rec);
    }
    TraceFileSource source(path);
    EXPECT_EQ(drainScalar(source), records);
    for (const std::size_t batch : kBatchSizes) {
        SCOPED_TRACE("batch=" + std::to_string(batch));
        EXPECT_EQ(drainBatched(source, batch), records);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace chirp
