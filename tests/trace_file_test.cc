/** @file Tests for the binary trace file format. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/trace_file.hh"

namespace chirp
{
namespace
{

std::vector<TraceRecord>
sampleRecords()
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 100; ++i) {
        TraceRecord rec;
        rec.pc = 0x400000 + 4 * i;
        rec.cls = static_cast<InstClass>(i % 8);
        rec.effAddr = isMemory(rec.cls) ? 0x100000000ull + 8 * i : 0;
        rec.target = isBranch(rec.cls) ? rec.pc + 64 : 0;
        rec.taken = (i % 3) == 0;
        records.push_back(rec);
    }
    return records;
}

TEST(TraceFile, RoundTripsRecords)
{
    const std::string path = ::testing::TempDir() + "roundtrip.chtr";
    const auto records = sampleRecords();
    {
        TraceFileWriter writer(path);
        for (const auto &rec : records)
            writer.append(rec);
        writer.close();
        EXPECT_EQ(writer.count(), records.size());
    }

    TraceFileSource source(path);
    EXPECT_EQ(source.count(), records.size());
    EXPECT_EQ(source.expectedLength(), records.size());
    TraceRecord rec;
    std::size_t i = 0;
    while (source.next(rec)) {
        ASSERT_LT(i, records.size());
        EXPECT_EQ(rec, records[i]) << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, records.size());
    std::remove(path.c_str());
}

TEST(TraceFile, ResetReplaysIdentically)
{
    const std::string path = ::testing::TempDir() + "reset.chtr";
    {
        TraceFileWriter writer(path);
        for (const auto &rec : sampleRecords())
            writer.append(rec);
    } // destructor closes

    TraceFileSource source(path);
    std::vector<TraceRecord> first;
    std::vector<TraceRecord> second;
    TraceRecord rec;
    while (source.next(rec))
        first.push_back(rec);
    source.reset();
    while (source.next(rec))
        second.push_back(rec);
    EXPECT_EQ(first, second);
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceIsValid)
{
    const std::string path = ::testing::TempDir() + "empty.chtr";
    {
        TraceFileWriter writer(path);
    }
    TraceFileSource source(path);
    TraceRecord rec;
    EXPECT_FALSE(source.next(rec));
    std::remove(path.c_str());
}

TEST(TraceFile, ChecksumDetectsCorruption)
{
    const std::string path = ::testing::TempDir() + "corrupt.chtr";
    {
        TraceFileWriter writer(path);
        for (const auto &rec : sampleRecords())
            writer.append(rec);
    }
    // Flip a byte in the middle of the record payload.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 26 * 10 + 3, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }
    TraceFileSource source(path);
    TraceRecord rec;
    // Reading records succeeds; checksum validation at the end is
    // what catches the corruption (fatal -> process exit).
    EXPECT_EXIT(
        {
            while (source.next(rec)) {
            }
        },
        ::testing::ExitedWithCode(1), "checksum");
    std::remove(path.c_str());
}

TEST(TraceFile, VerifyChecksumAcceptsIntactFiles)
{
    const std::string path = ::testing::TempDir() + "verify_ok.chtr";
    const auto records = sampleRecords();
    {
        TraceFileWriter writer(path);
        for (const auto &rec : records)
            writer.append(rec);
    }
    TraceFileSource source(path);
    EXPECT_TRUE(source.verifyChecksum());
    // Verification must not disturb the read position: the full
    // stream still replays.
    TraceRecord rec;
    std::size_t i = 0;
    while (source.next(rec))
        EXPECT_EQ(rec, records[i++]);
    EXPECT_EQ(i, records.size());
    std::remove(path.c_str());
}

TEST(TraceFile, VerifyChecksumRejectsCorruption)
{
    const std::string path = ::testing::TempDir() + "verify_bad.chtr";
    {
        TraceFileWriter writer(path);
        for (const auto &rec : sampleRecords())
            writer.append(rec);
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 26 * 42, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);
    }
    TraceFileSource source(path);
    EXPECT_FALSE(source.verifyChecksum())
        << "eager verification flags the flipped byte";
    std::remove(path.c_str());
}

TEST(TraceFile, ProbeClassifiesFiles)
{
    const std::string good = ::testing::TempDir() + "probe_good.chtr";
    {
        TraceFileWriter writer(good);
        for (const auto &rec : sampleRecords())
            writer.append(rec);
    }
    EXPECT_TRUE(TraceFileSource::probe(good));

    const std::string garbage = ::testing::TempDir() + "probe_bad.chtr";
    {
        std::FILE *f = std::fopen(garbage.c_str(), "wb");
        std::fputs("not a trace at all", f);
        std::fclose(f);
    }
    EXPECT_FALSE(TraceFileSource::probe(garbage));

    // Truncated payload: header claims more records than the file
    // holds.
    const std::string truncated =
        ::testing::TempDir() + "probe_trunc.chtr";
    std::filesystem::copy_file(
        good, truncated,
        std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(truncated, 16 + 26 * 50);
    EXPECT_FALSE(TraceFileSource::probe(truncated));

    EXPECT_FALSE(TraceFileSource::probe(
        ::testing::TempDir() + "does_not_exist.chtr"));

    std::remove(good.c_str());
    std::remove(garbage.c_str());
    std::remove(truncated.c_str());
}

TEST(TraceFile, RejectsGarbageFiles)
{
    const std::string path = ::testing::TempDir() + "garbage.chtr";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("this is not a trace", f);
        std::fclose(f);
    }
    EXPECT_EXIT({ TraceFileSource source(path); },
                ::testing::ExitedWithCode(1), "not a chirp trace");
    std::remove(path.c_str());
}

/** Write @p records to a fresh temp file and return its path. */
std::string
writeTrace(const char *tag, const std::vector<TraceRecord> &records)
{
    const std::string path = ::testing::TempDir() + tag;
    TraceFileWriter writer(path);
    for (const auto &rec : records)
        writer.append(rec);
    EXPECT_TRUE(writer.close());
    return path;
}

/**
 * A record stream sized so the file ends mid-page: v2 files are
 * 16 + 24n + pad8(n) + 32 bytes, so 200 records give 5048 bytes --
 * two pages with a partial tail.  The mmap loader must still reach
 * the meta column and the checksum footer inside that tail page.
 */
std::vector<TraceRecord>
tailPageRecords()
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 200; ++i) {
        TraceRecord rec;
        rec.pc = 0x400000 + 4 * i;
        rec.cls = static_cast<InstClass>(i % 8);
        rec.effAddr = isMemory(rec.cls) ? 0x200000000ull + 16 * i : 0;
        rec.target = isBranch(rec.cls) ? rec.pc + 128 : 0;
        rec.taken = (i & 1) != 0;
        records.push_back(rec);
    }
    return records;
}

TEST(TraceMap, MapsPartialTailPage)
{
    const auto records = tailPageRecords();
    const std::string path = writeTrace("map_tail.chtr", records);
    ASSERT_NE(std::filesystem::file_size(path) % 4096, 0u)
        << "fixture must exercise a partial tail page";

    std::string reason;
    const auto mapped = mapTraceFile(path, &reason);
    ASSERT_NE(mapped, nullptr) << reason;
    ASSERT_EQ(mapped->size(), records.size());
    // Every record, most importantly the last ones living in the
    // partially used tail page, replays from the mapping.
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(mapped->record(i), records[i]) << "record " << i;

    // The streaming loader agrees byte for byte.
    const auto streamed = readTraceFile(path, &reason);
    ASSERT_NE(streamed, nullptr) << reason;
    EXPECT_EQ(*mapped, *streamed);
    std::remove(path.c_str());
}

TEST(TraceMap, MapOutlivesEarlierHandles)
{
    const auto records = tailPageRecords();
    const std::string path = writeTrace("map_alive.chtr", records);
    std::shared_ptr<const ColumnarTrace> survivor;
    {
        const auto mapped = mapTraceFile(path);
        ASSERT_NE(mapped, nullptr);
        survivor = mapped;
    }
    // The mapping is owned by the shared_ptr, not the call scope, and
    // stays valid after the file is unlinked (POSIX keeps the pages).
    std::remove(path.c_str());
    EXPECT_EQ(survivor->record(records.size() - 1),
              records.back());
}

TEST(TraceMap, RejectsBitFlip)
{
    const std::string path =
        writeTrace("map_bitflip.chtr", tailPageRecords());
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 8 * 57 + 2, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0x40, f);
        std::fclose(f);
    }
    std::string map_reason;
    EXPECT_EQ(mapTraceFile(path, &map_reason), nullptr);
    EXPECT_NE(map_reason.find("checksum"), std::string::npos)
        << map_reason;
    // Parity: the streaming loader refuses the same file for the
    // same reason, so both tiers quarantine identically upstream.
    std::string read_reason;
    EXPECT_EQ(readTraceFile(path, &read_reason), nullptr);
    EXPECT_NE(read_reason.find("checksum"), std::string::npos)
        << read_reason;
    std::remove(path.c_str());
}

TEST(TraceMap, RejectsTruncation)
{
    const std::string path =
        writeTrace("map_trunc.chtr", tailPageRecords());
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - 40);
    std::string reason;
    EXPECT_EQ(mapTraceFile(path, &reason), nullptr);
    EXPECT_FALSE(reason.empty());
    EXPECT_EQ(readTraceFile(path), nullptr);
    std::remove(path.c_str());
}

TEST(InstClassHelpers, Classification)
{
    EXPECT_TRUE(isBranch(InstClass::CondBranch));
    EXPECT_TRUE(isBranch(InstClass::UncondDirect));
    EXPECT_TRUE(isBranch(InstClass::UncondIndirect));
    EXPECT_FALSE(isBranch(InstClass::Load));
    EXPECT_TRUE(isMemory(InstClass::Load));
    EXPECT_TRUE(isMemory(InstClass::Store));
    EXPECT_FALSE(isMemory(InstClass::Alu));
    EXPECT_STREQ(instClassName(InstClass::Load), "load");
    EXPECT_STREQ(instClassName(InstClass::UncondIndirect),
                 "uncondIndirect");
}

TEST(VectorSource, CapAndLength)
{
    VectorSource inner(sampleRecords());
    CappedSource capped(inner, 10);
    EXPECT_EQ(capped.expectedLength(), 10u);
    TraceRecord rec;
    int n = 0;
    while (capped.next(rec))
        ++n;
    EXPECT_EQ(n, 10);
    capped.reset();
    n = 0;
    while (capped.next(rec))
        ++n;
    EXPECT_EQ(n, 10);
}

} // namespace
} // namespace chirp
