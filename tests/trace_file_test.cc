/** @file Tests for the binary trace file format. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/trace_file.hh"

namespace chirp
{
namespace
{

std::vector<TraceRecord>
sampleRecords()
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 100; ++i) {
        TraceRecord rec;
        rec.pc = 0x400000 + 4 * i;
        rec.cls = static_cast<InstClass>(i % 8);
        rec.effAddr = isMemory(rec.cls) ? 0x100000000ull + 8 * i : 0;
        rec.target = isBranch(rec.cls) ? rec.pc + 64 : 0;
        rec.taken = (i % 3) == 0;
        records.push_back(rec);
    }
    return records;
}

TEST(TraceFile, RoundTripsRecords)
{
    const std::string path = ::testing::TempDir() + "roundtrip.chtr";
    const auto records = sampleRecords();
    {
        TraceFileWriter writer(path);
        for (const auto &rec : records)
            writer.append(rec);
        writer.close();
        EXPECT_EQ(writer.count(), records.size());
    }

    TraceFileSource source(path);
    EXPECT_EQ(source.count(), records.size());
    EXPECT_EQ(source.expectedLength(), records.size());
    TraceRecord rec;
    std::size_t i = 0;
    while (source.next(rec)) {
        ASSERT_LT(i, records.size());
        EXPECT_EQ(rec, records[i]) << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, records.size());
    std::remove(path.c_str());
}

TEST(TraceFile, ResetReplaysIdentically)
{
    const std::string path = ::testing::TempDir() + "reset.chtr";
    {
        TraceFileWriter writer(path);
        for (const auto &rec : sampleRecords())
            writer.append(rec);
    } // destructor closes

    TraceFileSource source(path);
    std::vector<TraceRecord> first;
    std::vector<TraceRecord> second;
    TraceRecord rec;
    while (source.next(rec))
        first.push_back(rec);
    source.reset();
    while (source.next(rec))
        second.push_back(rec);
    EXPECT_EQ(first, second);
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceIsValid)
{
    const std::string path = ::testing::TempDir() + "empty.chtr";
    {
        TraceFileWriter writer(path);
    }
    TraceFileSource source(path);
    TraceRecord rec;
    EXPECT_FALSE(source.next(rec));
    std::remove(path.c_str());
}

TEST(TraceFile, ChecksumDetectsCorruption)
{
    const std::string path = ::testing::TempDir() + "corrupt.chtr";
    {
        TraceFileWriter writer(path);
        for (const auto &rec : sampleRecords())
            writer.append(rec);
    }
    // Flip a byte in the middle of the record payload.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 26 * 10 + 3, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }
    TraceFileSource source(path);
    TraceRecord rec;
    // Reading records succeeds; checksum validation at the end is
    // what catches the corruption (fatal -> process exit).
    EXPECT_EXIT(
        {
            while (source.next(rec)) {
            }
        },
        ::testing::ExitedWithCode(1), "checksum");
    std::remove(path.c_str());
}

TEST(TraceFile, VerifyChecksumAcceptsIntactFiles)
{
    const std::string path = ::testing::TempDir() + "verify_ok.chtr";
    const auto records = sampleRecords();
    {
        TraceFileWriter writer(path);
        for (const auto &rec : records)
            writer.append(rec);
    }
    TraceFileSource source(path);
    EXPECT_TRUE(source.verifyChecksum());
    // Verification must not disturb the read position: the full
    // stream still replays.
    TraceRecord rec;
    std::size_t i = 0;
    while (source.next(rec))
        EXPECT_EQ(rec, records[i++]);
    EXPECT_EQ(i, records.size());
    std::remove(path.c_str());
}

TEST(TraceFile, VerifyChecksumRejectsCorruption)
{
    const std::string path = ::testing::TempDir() + "verify_bad.chtr";
    {
        TraceFileWriter writer(path);
        for (const auto &rec : sampleRecords())
            writer.append(rec);
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 26 * 42, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);
    }
    TraceFileSource source(path);
    EXPECT_FALSE(source.verifyChecksum())
        << "eager verification flags the flipped byte";
    std::remove(path.c_str());
}

TEST(TraceFile, ProbeClassifiesFiles)
{
    const std::string good = ::testing::TempDir() + "probe_good.chtr";
    {
        TraceFileWriter writer(good);
        for (const auto &rec : sampleRecords())
            writer.append(rec);
    }
    EXPECT_TRUE(TraceFileSource::probe(good));

    const std::string garbage = ::testing::TempDir() + "probe_bad.chtr";
    {
        std::FILE *f = std::fopen(garbage.c_str(), "wb");
        std::fputs("not a trace at all", f);
        std::fclose(f);
    }
    EXPECT_FALSE(TraceFileSource::probe(garbage));

    // Truncated payload: header claims more records than the file
    // holds.
    const std::string truncated =
        ::testing::TempDir() + "probe_trunc.chtr";
    std::filesystem::copy_file(
        good, truncated,
        std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(truncated, 16 + 26 * 50);
    EXPECT_FALSE(TraceFileSource::probe(truncated));

    EXPECT_FALSE(TraceFileSource::probe(
        ::testing::TempDir() + "does_not_exist.chtr"));

    std::remove(good.c_str());
    std::remove(garbage.c_str());
    std::remove(truncated.c_str());
}

TEST(TraceFile, RejectsGarbageFiles)
{
    const std::string path = ::testing::TempDir() + "garbage.chtr";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("this is not a trace", f);
        std::fclose(f);
    }
    EXPECT_EXIT({ TraceFileSource source(path); },
                ::testing::ExitedWithCode(1), "not a chirp trace");
    std::remove(path.c_str());
}

TEST(InstClassHelpers, Classification)
{
    EXPECT_TRUE(isBranch(InstClass::CondBranch));
    EXPECT_TRUE(isBranch(InstClass::UncondDirect));
    EXPECT_TRUE(isBranch(InstClass::UncondIndirect));
    EXPECT_FALSE(isBranch(InstClass::Load));
    EXPECT_TRUE(isMemory(InstClass::Load));
    EXPECT_TRUE(isMemory(InstClass::Store));
    EXPECT_FALSE(isMemory(InstClass::Alu));
    EXPECT_STREQ(instClassName(InstClass::Load), "load");
    EXPECT_STREQ(instClassName(InstClass::UncondIndirect),
                 "uncondIndirect");
}

TEST(VectorSource, CapAndLength)
{
    VectorSource inner(sampleRecords());
    CappedSource capped(inner, 10);
    EXPECT_EQ(capped.expectedLength(), 10u);
    TraceRecord rec;
    int n = 0;
    while (capped.next(rec))
        ++n;
    EXPECT_EQ(n, 10);
    capped.reset();
    n = 0;
    while (capped.next(rec))
        ++n;
    EXPECT_EQ(n, 10);
}

} // namespace
} // namespace chirp
