/**
 * @file
 * Golden tests for the incremental history fold: WideShiftHistory
 * maintains its 64-bit XOR-fold on push(), and that view must be
 * bit-identical to an independent recompute from a naive bit-vector
 * model of the register, for every width the Fig 2 sweep visits.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/history.hh"
#include "util/random.hh"

namespace chirp
{
namespace
{

/**
 * Naive reference: the register as a vector of bits (index 0 = LSB),
 * shifted and folded from first principles.
 */
class BitModel
{
  public:
    BitModel(unsigned events, unsigned shift_per_event)
        : shift_(shift_per_event), bits_(events * shift_per_event, 0)
    {
    }

    void
    push(std::uint64_t value)
    {
        for (std::size_t i = bits_.size(); i-- > shift_;)
            bits_[i] = bits_[i - shift_];
        for (unsigned i = 0; i < shift_ && i < bits_.size(); ++i)
            bits_[i] = static_cast<std::uint8_t>((value >> i) & 1);
    }

    /** XOR-fold of the 64-bit words the register decomposes into. */
    std::uint64_t
    folded() const
    {
        std::uint64_t fold = 0;
        for (std::size_t i = 0; i < bits_.size(); ++i)
            fold ^= static_cast<std::uint64_t>(bits_[i]) << (i % 64);
        return fold;
    }

    std::uint64_t
    low64() const
    {
        std::uint64_t low = 0;
        for (std::size_t i = 0; i < bits_.size() && i < 64; ++i)
            low |= static_cast<std::uint64_t>(bits_[i]) << i;
        return low;
    }

    void reset() { std::fill(bits_.begin(), bits_.end(), 0); }

  private:
    unsigned shift_;
    std::vector<std::uint8_t> bits_;
};

/** Random pushes; the incremental fold must track the model exactly. */
void
checkAgainstModel(unsigned events, unsigned shift, unsigned pushes)
{
    SCOPED_TRACE("events=" + std::to_string(events) +
                 " shift=" + std::to_string(shift));
    WideShiftHistory history(events, shift);
    BitModel model(events, shift);
    ASSERT_EQ(history.widthBits(), events * shift);

    Rng rng(0x5109 + events * 131 + shift);
    for (unsigned i = 0; i < pushes; ++i) {
        const std::uint64_t value = rng.next();
        history.push(value);
        model.push(value);
        ASSERT_EQ(history.folded(), model.folded()) << "push " << i;
        ASSERT_EQ(history.low64(), model.low64()) << "push " << i;
    }

    history.reset();
    model.reset();
    EXPECT_EQ(history.folded(), model.folded());
    // The fold must stay consistent after reset, not just after
    // construction.
    for (unsigned i = 0; i < 64; ++i) {
        const std::uint64_t value = rng.next();
        history.push(value);
        model.push(value);
        ASSERT_EQ(history.folded(), model.folded()) << "post-reset " << i;
    }
}

TEST(WideShiftHistoryFold, PaperPathRegister)
{
    // 16 events x 4 bits: the paper's 64-bit path history.
    checkAgainstModel(16, 4, 2000);
}

TEST(WideShiftHistoryFold, PaperBranchRegisters)
{
    // 8 events x 8 bits: the conditional/indirect branch histories.
    checkAgainstModel(8, 8, 2000);
}

TEST(WideShiftHistoryFold, Fig2SweepWidths)
{
    // The Fig 2 history-length study sweeps pathEvents at the paper's
    // 4-bit shift: widths 16 through 256 bits, crossing the one-word
    // fast path (<= 64), the exact two-word boundary and the general
    // multi-word case.
    for (unsigned events : {4u, 8u, 16u, 24u, 32u, 48u, 64u})
        checkAgainstModel(events, 4, 1200);
}

TEST(WideShiftHistoryFold, PartialTopWordWidths)
{
    // Widths that do not divide into whole 64-bit words exercise the
    // top-word mask in the multi-word path.
    checkAgainstModel(33, 3, 1200); // 99 bits
    checkAgainstModel(25, 5, 1200); // 125 bits
    checkAgainstModel(13, 7, 1200); // 91 bits
}

TEST(WideShiftHistoryFold, NarrowRegisters)
{
    checkAgainstModel(8, 2, 1200);  // 16 bits
    checkAgainstModel(16, 2, 1200); // 32 bits
    checkAgainstModel(1, 1, 200);   // degenerate single-bit register
}

TEST(ControlFlowHistorySignature, MatchesRegisterFolds)
{
    // signature(pc) must be (pc >> 2) XOR the three incremental
    // folds — i.e. the folds really are what composition consumes.
    HistoryConfig config;
    ControlFlowHistory history(config);
    Rng rng(0xF01D);
    for (int i = 0; i < 500; ++i) {
        const Addr pc = rng.next() & 0x7FFFFFFFFFFFull;
        history.onAccess(pc);
        if (rng.chance(0.3))
            history.onCondBranch(pc + 8);
        if (rng.chance(0.1))
            history.onUncondIndirectBranch(pc + 16);
        const std::uint64_t expected = (pc >> 2) ^
                                       history.path().folded() ^
                                       history.cond().folded() ^
                                       history.uncond().folded();
        ASSERT_EQ(history.signature(pc), expected);
    }
}

} // namespace
} // namespace chirp
