/**
 * @file
 * Fixed-size worker pool for sharding independent simulation jobs.
 *
 * Tasks are enqueued with submit(), which returns a std::future so
 * exceptions thrown inside a task propagate to whoever calls get().
 * Workers pull from a shared queue (dynamic load balancing: a worker
 * that finishes a short job immediately steals the next pending one),
 * which keeps heterogeneous (workload x policy) grids busy without
 * static partitioning.
 */

#ifndef CHIRP_UTIL_THREAD_POOL_HH
#define CHIRP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace chirp
{

/** Fixed worker count, FIFO task queue, future-based results. */
class ThreadPool
{
  public:
    /**
     * Spawn @p num_threads workers; 0 means defaultConcurrency().
     * Workers live until destruction.
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /**
     * Drains: waits for running tasks to finish.  Tasks still queued
     * but never started are abandoned (their futures report a broken
     * promise), which keeps teardown prompt after a failure.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p fn for execution on some worker.  The returned
     * future yields fn's result, or rethrows whatever fn threw.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using Result = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Sensible worker count for this machine: hardware concurrency,
     * or 1 when the runtime cannot tell.
     */
    static unsigned defaultConcurrency();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace chirp

#endif // CHIRP_UTIL_THREAD_POOL_HH
