#include "util/csv.hh"

#include "util/logging.hh"

namespace chirp
{

CsvWriter::CsvWriter(const std::string &path)
    : path_(path), file_(std::make_unique<AtomicFile>(path))
{
    if (!file_->valid())
        chirp_fatal("cannot open CSV output file '", path, "': ",
                    file_->error());
}

CsvWriter::~CsvWriter()
{
    if (file_)
        close();
}

void
CsvWriter::close()
{
    if (!file_)
        return;
    if (!file_->commit())
        chirp_fatal("cannot publish CSV output file '", path_, "': ",
                    file_->error());
    file_.reset();
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quoting =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quoting)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    if (!file_)
        chirp_fatal("row() after close() of CSV file '", path_, "'");
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            line += ',';
        line += escape(cells[i]);
    }
    line += '\n';
    if (!file_->write(line))
        chirp_fatal("cannot write CSV output file '", path_, "': ",
                    file_->error());
}

} // namespace chirp
