#include "util/csv.hh"

#include "util/logging.hh"

namespace chirp
{

CsvWriter::CsvWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "w"))
{
    if (!file_)
        chirp_fatal("cannot open CSV output file '", path, "'");
}

CsvWriter::~CsvWriter()
{
    if (file_)
        std::fclose(file_);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quoting =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quoting)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            line += ',';
        line += escape(cells[i]);
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), file_);
}

} // namespace chirp
