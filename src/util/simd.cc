#include "util/simd.hh"

#include <cstdlib>
#include <cstring>

namespace chirp
{
namespace simd
{
namespace
{

bool
forceScalarRequested()
{
    const char *env = std::getenv("CHIRP_FORCE_SCALAR");
    return env != nullptr && *env != '\0' &&
           std::strcmp(env, "0") != 0;
}

Backend
detectBackend()
{
    if (forceScalarRequested())
        return Backend::Scalar;
#if defined(CHIRP_SIMD_X86)
    if (__builtin_cpu_supports("avx2"))
        return Backend::Avx2;
    return Backend::Sse2; // baseline for x86-64
#elif defined(CHIRP_SIMD_NEON)
    return Backend::Neon; // baseline for aarch64
#else
    return Backend::Scalar;
#endif
}

} // namespace

namespace detail
{
// Zero-initialized (= Scalar) until this dynamic initializer runs, so
// kernel calls from other translation units' static initializers are
// safe in any link order.
Backend g_backend = detectBackend();
} // namespace detail

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Scalar:
        return "scalar";
      case Backend::Sse2:
        return "sse2";
      case Backend::Avx2:
        return "avx2";
      case Backend::Neon:
        return "neon";
    }
    return "scalar";
}

void
refreshBackend()
{
    detail::g_backend = detectBackend();
}

#ifdef CHIRP_SIMD_X86

namespace detail
{

/*
 * AVX2 variants — compiled with a per-function target attribute so
 * the translation unit itself needs no -mavx2, and guarded at runtime
 * by cpuid in detectBackend().  The inline dispatchers in simd.hh
 * enter these only when the input fills at least one 256-bit vector;
 * every tail delegates back to the (header-inline) SSE2 bodies, so
 * results are bit-identical to the SSE2 and scalar paths at any size.
 */

#define CHIRP_AVX2 __attribute__((target("avx2")))

CHIRP_AVX2 std::size_t
firstSetAvx2(const std::uint8_t *v, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const unsigned set = ~static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, zero)));
        if (set != 0)
            return i + static_cast<unsigned>(__builtin_ctz(set));
    }
    return i + firstSetSse2(v + i, n - i);
}

CHIRP_AVX2 std::size_t
firstClearAvx2(const std::uint8_t *v, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const unsigned zeros = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, zero)));
        if (zeros != 0)
            return i + static_cast<unsigned>(__builtin_ctz(zeros));
    }
    return i + firstClearSse2(v + i, n - i);
}

CHIRP_AVX2 std::size_t
firstAtLeastAvx2(const std::uint8_t *v, std::size_t n,
                 std::uint8_t limit)
{
    const __m256i lim = _mm256_set1_epi8(static_cast<char>(limit));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const unsigned ge =
            static_cast<unsigned>(_mm256_movemask_epi8(
                _mm256_cmpeq_epi8(_mm256_max_epu8(x, lim), x)));
        if (ge != 0)
            return i + static_cast<unsigned>(__builtin_ctz(ge));
    }
    return i + firstAtLeastSse2(v + i, n - i, limit);
}

namespace
{

CHIRP_AVX2 inline __m256i
maskedRankAvx2(const std::uint8_t *flags, const std::uint8_t *rank,
               std::size_t i)
{
    const __m256i f =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(flags + i));
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(rank + i));
    const __m256i dead = _mm256_cmpeq_epi8(f, _mm256_setzero_si256());
    return _mm256_andnot_si256(
        dead, _mm256_add_epi8(r, _mm256_set1_epi8(1)));
}

CHIRP_AVX2 inline std::uint8_t
horizontalMaxU8Avx2(__m256i x)
{
    const __m128i folded = _mm_max_epu8(
        _mm256_castsi256_si128(x), _mm256_extracti128_si256(x, 1));
    return horizontalMaxU8(folded);
}

CHIRP_AVX2 inline __m256i
mul64Avx2(__m256i a, __m256i b)
{
    const __m256i ll = _mm256_mul_epu32(a, b);
    const __m256i hl = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
    const __m256i lh = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
    return _mm256_add_epi64(
        ll, _mm256_slli_epi64(_mm256_add_epi64(hl, lh), 32));
}

CHIRP_AVX2 inline __m256i
foldLadderAvx2(__m256i v, unsigned nbits)
{
    unsigned chunks = (64 + nbits - 1) / nbits;
    while (chunks > 1) {
        const unsigned half = (chunks + 1) / 2;
        const unsigned shift = half * nbits;
        const __m256i mask = _mm256_set1_epi64x(
            static_cast<long long>(maskBits(shift)));
        if (shift < 64)
            v = _mm256_xor_si256(v, _mm256_srli_epi64(v, shift));
        v = _mm256_and_si256(v, mask);
        chunks = half;
    }
    return v;
}

} // namespace

CHIRP_AVX2 std::size_t
deepestSetAvx2(const std::uint8_t *flags, const std::uint8_t *rank,
               std::size_t n)
{
    __m256i vmax = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32)
        vmax = _mm256_max_epu8(vmax, maskedRankAvx2(flags, rank, i));
    std::uint8_t best = horizontalMaxU8Avx2(vmax);
    for (std::size_t j = i; j < n; ++j) {
        const std::uint8_t key =
            flags[j] != 0 ? static_cast<std::uint8_t>(rank[j] + 1) : 0;
        if (key > best)
            best = key;
    }
    if (best == 0)
        return n;
    const __m256i want = _mm256_set1_epi8(static_cast<char>(best));
    for (i = 0; i + 32 <= n; i += 32) {
        const unsigned hit =
            static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(
                maskedRankAvx2(flags, rank, i), want)));
        if (hit != 0)
            return i + static_cast<unsigned>(__builtin_ctz(hit));
    }
    for (; i < n; ++i) {
        const std::uint8_t key =
            flags[i] != 0 ? static_cast<std::uint8_t>(rank[i] + 1) : 0;
        if (key == best)
            return i;
    }
    return n;
}

CHIRP_AVX2 std::uint8_t
maxLaneAvx2(const std::uint8_t *v, std::size_t n)
{
    __m256i vmax = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32)
        vmax = _mm256_max_epu8(
            vmax, _mm256_loadu_si256(
                      reinterpret_cast<const __m256i *>(v + i)));
    std::uint8_t best = horizontalMaxU8Avx2(vmax);
    for (; i < n; ++i)
        if (v[i] > best)
            best = v[i];
    return best;
}

CHIRP_AVX2 void
addToLanesAvx2(std::uint8_t *v, std::size_t n, std::uint8_t delta)
{
    const __m256i d = _mm256_set1_epi8(static_cast<char>(delta));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i *p = reinterpret_cast<__m256i *>(v + i);
        _mm256_storeu_si256(p, _mm256_add_epi8(_mm256_loadu_si256(p), d));
    }
    addToLanesSse2(v + i, n - i, delta);
}

CHIRP_AVX2 std::size_t
matchTagAvx2(const Addr *tags, const std::uint8_t *valid,
             std::size_t n, Addr tag)
{
    const __m256i want =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + i));
        unsigned hit = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(t, want))));
        while (hit != 0) {
            const std::size_t lane =
                i + static_cast<unsigned>(__builtin_ctz(hit));
            if (valid[lane] != 0)
                return lane;
            hit &= hit - 1;
        }
    }
    for (; i < n; ++i)
        if (valid[i] != 0 && tags[i] == tag)
            return i;
    return n;
}

CHIRP_AVX2 void
shiftOrAvx2(std::uint64_t *v, const std::uint8_t *shifts,
            std::size_t n, std::uint8_t common_shift,
            std::uint64_t common_or, std::uint64_t other_or)
{
    // srlv gives a true per-lane variable shift, so mixed page sizes
    // stay branch-free on this path.
    const __m256i common =
        _mm256_set1_epi64x(static_cast<long long>(common_shift));
    const __m256i corv =
        _mm256_set1_epi64x(static_cast<long long>(common_or));
    const __m256i oorv =
        _mm256_set1_epi64x(static_cast<long long>(other_or));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        std::uint32_t packed;
        std::memcpy(&packed, shifts + i, sizeof(packed));
        const __m256i s = _mm256_cvtepu8_epi64(
            _mm_cvtsi32_si128(static_cast<int>(packed)));
        __m256i *p = reinterpret_cast<__m256i *>(v + i);
        const __m256i shifted =
            _mm256_srlv_epi64(_mm256_loadu_si256(p), s);
        const __m256i orv = _mm256_blendv_epi8(
            oorv, corv, _mm256_cmpeq_epi64(s, common));
        _mm256_storeu_si256(p, _mm256_or_si256(shifted, orv));
    }
    shiftOrSse2(v + i, shifts + i, n - i, common_shift, common_or,
                other_or);
}

CHIRP_AVX2 void
xorFoldAvx2(std::uint64_t *v, std::size_t n, unsigned nbits)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i *p = reinterpret_cast<__m256i *>(v + i);
        _mm256_storeu_si256(
            p, foldLadderAvx2(_mm256_loadu_si256(p), nbits));
    }
    xorFoldSse2(v + i, n - i, nbits);
}

CHIRP_AVX2 void
mulXorFoldAvx2(std::uint64_t *v, std::size_t n, std::uint64_t k,
               unsigned nbits)
{
    const __m256i kv = _mm256_set1_epi64x(static_cast<long long>(k));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i *p = reinterpret_cast<__m256i *>(v + i);
        _mm256_storeu_si256(
            p, foldLadderAvx2(mul64Avx2(_mm256_loadu_si256(p), kv),
                              nbits));
    }
    mulXorFoldSse2(v + i, n - i, k, nbits);
}

/** The precomputed ladder of a FoldPlan, four lanes at a time. */
CHIRP_AVX2 inline __m256i
foldPlanAvx2(__m256i v, const FoldPlan &plan)
{
    for (unsigned s = 0; s < plan.steps; ++s) {
        v = _mm256_xor_si256(
            v, _mm256_srli_epi64(v, static_cast<int>(plan.shift[s])));
        v = _mm256_and_si256(
            v, _mm256_set1_epi64x(
                   static_cast<long long>(plan.mask[s])));
    }
    return v;
}

CHIRP_AVX2 void
xorFoldPlanAvx2(std::uint64_t *v, std::size_t n, const FoldPlan &plan)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i *p = reinterpret_cast<__m256i *>(v + i);
        _mm256_storeu_si256(
            p, foldPlanAvx2(_mm256_loadu_si256(p), plan));
    }
    xorFoldPlanSse2(v + i, n - i, plan);
}

CHIRP_AVX2 void
mulXorFoldPlanAvx2(std::uint64_t *v, std::size_t n, std::uint64_t k,
                   const FoldPlan &plan)
{
    const __m256i kv = _mm256_set1_epi64x(static_cast<long long>(k));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i *p = reinterpret_cast<__m256i *>(v + i);
        _mm256_storeu_si256(
            p, foldPlanAvx2(mul64Avx2(_mm256_loadu_si256(p), kv),
                            plan));
    }
    mulXorFoldPlanSse2(v + i, n - i, k, plan);
}

namespace
{

/** Low 32 bits of each 64-bit lane, packed into the low 128 bits. */
CHIRP_AVX2 inline __m128i
packLow32Avx2(__m256i v)
{
    const __m256i pick =
        _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    return _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(v, pick));
}

} // namespace

CHIRP_AVX2 void
xorFoldSigAvx2(const std::uint64_t *base, std::size_t n,
               std::uint64_t xor_term, const FoldPlan &plan,
               std::uint16_t *sigs)
{
    const __m256i xv =
        _mm256_set1_epi64x(static_cast<long long>(xor_term));
    const __m256i low16 = _mm256_set1_epi64x(0xffff);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base + i));
        v = foldPlanAvx2(_mm256_xor_si256(v, xv), plan);
        // Lanes are masked to 16 bits before packing so the u32→u16
        // saturating pack is an exact truncation, matching the scalar
        // u16 cast.
        const __m128i lo = packLow32Avx2(_mm256_and_si256(v, low16));
        _mm_storel_epi64(reinterpret_cast<__m128i *>(sigs + i),
                         _mm_packus_epi32(lo, lo));
    }
    xorFoldSigSse2(base + i, n - i, xor_term, plan, sigs + i);
}

CHIRP_AVX2 void
sigIndexAvx2(const std::uint64_t *base, std::size_t n,
             std::uint64_t xor_term, const FoldPlan &sig_plan,
             std::uint64_t salt, std::uint64_t k,
             const FoldPlan &idx_plan, std::uint32_t idx_or,
             std::uint16_t *sigs, std::uint32_t *idxs)
{
    const __m256i xv =
        _mm256_set1_epi64x(static_cast<long long>(xor_term));
    const __m256i low16 = _mm256_set1_epi64x(0xffff);
    const __m256i saltv =
        _mm256_set1_epi64x(static_cast<long long>(salt));
    const __m256i kv = _mm256_set1_epi64x(static_cast<long long>(k));
    const __m128i orv =
        _mm_set1_epi32(static_cast<int>(idx_or));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base + i));
        v = foldPlanAvx2(_mm256_xor_si256(v, xv), sig_plan);
        // Truncate to u16 BEFORE the salt xor / multiply — the index
        // hash consumes the stored 16-bit signature, not the wider
        // fold result.
        v = _mm256_and_si256(v, low16);
        const __m128i lo = packLow32Avx2(v);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(sigs + i),
                         _mm_packus_epi32(lo, lo));
        const __m256i h = foldPlanAvx2(
            mul64Avx2(_mm256_xor_si256(v, saltv), kv), idx_plan);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(idxs + i),
                         _mm_or_si128(packLow32Avx2(h), orv));
    }
    sigIndexSse2(base + i, n - i, xor_term, sig_plan, salt, k,
                 idx_plan, idx_or, sigs + i, idxs + i);
}

#undef CHIRP_AVX2

} // namespace detail

#endif // CHIRP_SIMD_X86

} // namespace simd
} // namespace chirp
