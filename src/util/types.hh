/**
 * @file
 * Fundamental scalar types shared across the chirp-tlb library.
 *
 * The aliases mirror the vocabulary of the paper and of classic
 * architecture simulators: addresses, cycle counts and instruction
 * counts are all 64-bit unsigned quantities, named for intent.
 */

#ifndef CHIRP_UTIL_TYPES_HH
#define CHIRP_UTIL_TYPES_HH

#include <cstdint>

namespace chirp
{

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** A count of processor cycles. */
using Cycles = std::uint64_t;

/** A count of retired instructions. */
using InstCount = std::uint64_t;

/** An address-space identifier (process tag carried by TLB entries). */
using Asid = std::uint16_t;

/** Number of bytes in a (base) page and the matching shift/mask. */
constexpr unsigned kPageShift = 12;
constexpr Addr kPageSize = Addr{1} << kPageShift;
constexpr Addr kPageOffsetMask = kPageSize - 1;

/** Extract the virtual page number of an address (4KB base pages). */
constexpr Addr
pageNumber(Addr va)
{
    return va >> kPageShift;
}

/** Align an address down to its page base. */
constexpr Addr
pageBase(Addr va)
{
    return va & ~kPageOffsetMask;
}

} // namespace chirp

#endif // CHIRP_UTIL_TYPES_HH
