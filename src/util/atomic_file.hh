/**
 * @file
 * Crash-safe file publication: write a private temp file, then
 * commit() flushes, fsyncs, and renames it over the target in one
 * step.  Readers -- and reruns after a crash or Ctrl-C -- only ever
 * observe either the previous complete file or the new complete
 * file, never a truncated half-written one.  Every CSV/JSON emitter
 * in the tree goes through this class (directly or via CsvWriter) so
 * a suite run killed mid-write cannot clobber results already on
 * disk.
 */

#ifndef CHIRP_UTIL_ATOMIC_FILE_HH
#define CHIRP_UTIL_ATOMIC_FILE_HH

#include <cstdio>
#include <string>
#include <string_view>

namespace chirp
{

/**
 * One atomic write of a target path.  Errors are sticky and
 * reported, never ignored: any failed write() poisons the commit,
 * and commit() reports exactly why it could not publish.
 */
class AtomicFile
{
  public:
    /**
     * Open the temp file next to @p path.  Check valid() -- a
     * failure (unwritable directory, permissions) is reported via
     * error(), not thrown.
     */
    explicit AtomicFile(std::string path);

    /** Discards the temp file if commit() was never reached. */
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /** False when the temp file could not be opened or a write failed. */
    bool valid() const { return file_ != nullptr && error_.empty(); }

    /** Human-readable reason valid()/commit() went false ("" if none). */
    const std::string &error() const { return error_; }

    /** Buffered write; false (with error() set) on failure. */
    bool write(const void *data, std::size_t size);

    /** Convenience text write. */
    bool write(std::string_view text) { return write(text.data(), text.size()); }

    /**
     * Flush + fsync the temp file and rename it over the target.
     * False (with error() set, temp removed) on any failure; true
     * exactly when the complete content is durably at path().
     */
    bool commit();

    /** Drop the temp file without touching the target. */
    void discard();

    /** Final target path. */
    const std::string &path() const { return path_; }

    /** The private temp path being written ("" after commit/discard). */
    const std::string &tempPath() const { return temp_; }

  private:
    void fail(const std::string &what);

    std::string path_;
    std::string temp_;
    std::string error_;
    std::FILE *file_ = nullptr;
};

/**
 * Atomically replace @p path with @p content.  On failure returns
 * false and, when @p error is non-null, stores the reason.
 */
bool atomicWriteFile(const std::string &path, std::string_view content,
                     std::string *error = nullptr);

/**
 * fsync the directory containing @p path, making a just-created or
 * just-renamed entry durable.  An fsync'd file published by rename is
 * only crash-safe once the directory entry itself is on disk; a
 * power cut between the rename and the directory flush can otherwise
 * lose the file while the process already reported success.  Returns
 * false (harmless for callers that treat durability as best-effort)
 * when the directory cannot be opened or synced.
 */
bool fsyncParentDir(const std::string &path);

} // namespace chirp

#endif // CHIRP_UTIL_ATOMIC_FILE_HH
