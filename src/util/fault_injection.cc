#include "util/fault_injection.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "util/logging.hh"

namespace chirp
{

namespace
{

/** Parse a decimal u64; fatal with spec context on junk. */
std::uint64_t
parseNumber(const std::string &text, const std::string &spec)
{
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        chirp_fatal("CHIRP_FAULT: bad number '", text, "' in spec '",
                    spec, "'");
    return value;
}

void
truncateFile(const std::string &path, std::uint64_t bytes)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const std::uint64_t size = fs::file_size(path, ec);
    if (ec)
        return;
    if (bytes == 0 || bytes >= size)
        bytes = size / 2;
    fs::resize_file(path, size - bytes, ec);
    chirp_warn("fault injection: truncated '", path, "' by ", bytes,
               " bytes");
}

void
bitflipFile(const std::string &path, std::uint64_t offset, bool hasOffset)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const std::uint64_t size = fs::file_size(path, ec);
    if (ec || size == 0)
        return;
    if (!hasOffset || offset >= size)
        offset = size / 2;
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return;
    std::fseek(f, static_cast<long>(offset), SEEK_SET);
    const int c = std::fgetc(f);
    if (c != EOF) {
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0x01, f);
    }
    std::fclose(f);
    chirp_warn("fault injection: flipped a bit at offset ", offset,
               " of '", path, "'");
}

} // namespace

std::atomic<bool> FaultInjector::chunkArmed_{false};

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

FaultInjector::FaultInjector()
{
    if (const char *env = std::getenv("CHIRP_FAULT"); env && *env)
        configure(env);
}

bool
FaultInjector::isJobKind(Kind kind)
{
    return kind == Kind::Throw || kind == Kind::HardThrow ||
           kind == Kind::Slow || kind == Kind::Crash;
}

bool
FaultInjector::isWorkerKind(Kind kind)
{
    return kind == Kind::WorkerCrash || kind == Kind::WorkerStall ||
           kind == Kind::MsgTruncate;
}

void
FaultInjector::configure(const std::string &spec)
{
    std::vector<Action> actions;
    std::size_t begin = 0;
    while (begin < spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string token = spec.substr(begin, end - begin);
        begin = end + 1;
        if (token.empty())
            continue;
        const std::size_t at = token.find('@');
        if (at == std::string::npos)
            chirp_fatal("CHIRP_FAULT: action '", token,
                        "' is missing '@index'");
        const std::string kind = token.substr(0, at);
        std::string index = token.substr(at + 1);
        Action action;
        if (const std::size_t colon = index.find(':');
            colon != std::string::npos) {
            action.arg = parseNumber(index.substr(colon + 1), spec);
            action.hasArg = true;
            index.resize(colon);
        }
        action.at = parseNumber(index, spec);
        if (kind == "throw")
            action.kind = Kind::Throw;
        else if (kind == "hard-throw")
            action.kind = Kind::HardThrow;
        else if (kind == "slow")
            action.kind = Kind::Slow;
        else if (kind == "crash")
            action.kind = Kind::Crash;
        else if (kind == "cache-truncate")
            action.kind = Kind::CacheTruncate;
        else if (kind == "cache-bitflip")
            action.kind = Kind::CacheBitFlip;
        else if (kind == "worker-crash")
            action.kind = Kind::WorkerCrash;
        else if (kind == "worker-stall")
            action.kind = Kind::WorkerStall;
        else if (kind == "msg-truncate")
            action.kind = Kind::MsgTruncate;
        else if (kind == "chunk-throw")
            action.kind = Kind::ChunkThrow;
        else
            chirp_fatal("CHIRP_FAULT: unknown action '", kind,
                        "' (expected throw, hard-throw, slow, crash, "
                        "cache-truncate, cache-bitflip, worker-crash, "
                        "worker-stall, msg-truncate, or chunk-throw)");
        actions.push_back(action);
    }
    bool chunk_armed = false;
    for (const Action &action : actions)
        chunk_armed |= action.kind == Kind::ChunkThrow;
    std::lock_guard<std::mutex> lock(mutex_);
    actions_ = std::move(actions);
    jobEvents_ = 0;
    cacheEvents_ = 0;
    wireEvents_ = 0;
    chunkEvents_ = 0;
    chunkArmed_.store(chunk_armed, std::memory_order_relaxed);
}

bool
FaultInjector::active() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !actions_.empty();
}

std::uint64_t
FaultInjector::jobEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobEvents_;
}

std::uint64_t
FaultInjector::cacheEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cacheEvents_;
}

void
FaultInjector::onJobStart()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t event = jobEvents_++;
    // Worker-targeted crash/stall: @N selects a worker id, and the
    // action fires at that worker's third local job event (see the
    // header comment), so a shard is always mid-flight with at least
    // one result already streamed.
    for (Action &action : actions_) {
        if (action.fired || workerId_ < 0 || event != 2 ||
            action.at != static_cast<std::uint64_t>(workerId_))
            continue;
        if (action.kind == Kind::WorkerCrash) {
            action.fired = true;
            const std::uint64_t code = action.hasArg ? action.arg : 137;
            lock.unlock();
            std::fprintf(stderr,
                         "fault injection: worker %d crashing "
                         "mid-shard\n",
                         workerId_);
            std::_Exit(static_cast<int>(code));
        }
        if (action.kind == Kind::WorkerStall) {
            action.fired = true;
            const std::uint64_t ms = action.hasArg ? action.arg : 20000;
            lock.unlock();
            chirp_warn("fault injection: worker ", workerId_,
                       " stalling for ", ms, " ms");
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
            lock.lock();
        }
    }
    for (Action &action : actions_) {
        if (action.fired || !isJobKind(action.kind) ||
            action.at != event)
            continue;
        action.fired = true;
        const Action fired = action;
        lock.unlock(); // throw/sleep without blocking other workers
        switch (fired.kind) {
          case Kind::Throw:
            throw TransientError(detail::concat(
                "injected transient fault (job event ", event, ")"));
          case Kind::HardThrow:
            throw InjectedFault(detail::concat(
                "injected permanent fault (job event ", event, ")"));
          case Kind::Slow:
            std::this_thread::sleep_for(std::chrono::milliseconds(
                fired.hasArg ? fired.arg : 200));
            return;
          case Kind::Crash:
            // _Exit: no stdio flush, no destructors -- the closest
            // in-process stand-in for a SIGKILL mid-suite.
            std::fprintf(stderr,
                         "fault injection: crashing at job event %llu\n",
                         static_cast<unsigned long long>(event));
            std::_Exit(static_cast<int>(fired.hasArg ? fired.arg : 137));
          default:
            return;
        }
    }
}

void
FaultInjector::onBatchChunk()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t event = chunkEvents_++;
    for (Action &action : actions_) {
        if (action.fired || action.kind != Kind::ChunkThrow ||
            action.at != event)
            continue;
        action.fired = true;
        bool still_armed = false;
        for (const Action &other : actions_)
            still_armed |= !other.fired && other.kind == Kind::ChunkThrow;
        chunkArmed_.store(still_armed, std::memory_order_relaxed);
        lock.unlock();
        throw TransientError(detail::concat(
            "injected transient fault (batch chunk ", event, ")"));
    }
}

void
FaultInjector::setWorkerId(int id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    workerId_ = id;
}

int
FaultInjector::workerId() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return workerId_;
}

std::size_t
FaultInjector::onWireSend(std::size_t len)
{
    std::uint64_t event = 0;
    bool truncate = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        event = wireEvents_++;
        for (Action &action : actions_) {
            if (action.fired || action.kind != Kind::MsgTruncate ||
                workerId_ < 0 ||
                action.at != static_cast<std::uint64_t>(workerId_))
                continue;
            // @N picked this worker; :K (default 3) picks which of
            // its outgoing frames to cut short.
            if (event != (action.hasArg ? action.arg : 3))
                continue;
            action.fired = true;
            truncate = true;
            break;
        }
    }
    // Raw stderr, not chirp_warn: sendFrame calls this while holding
    // the fabric's send mutex, and a worker's log sink re-enters
    // sendFrame (and that mutex) to ship the warning.
    if (truncate) {
        std::fprintf(stderr,
                     "warn: fault injection: truncating wire frame %llu\n",
                     static_cast<unsigned long long>(event));
        return len / 2;
    }
    return len;
}

void
FaultInjector::onCachePublish(const std::string &path)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t event = cacheEvents_++;
    for (Action &action : actions_) {
        if (action.fired || isJobKind(action.kind) ||
            isWorkerKind(action.kind) || action.at != event)
            continue;
        action.fired = true;
        const Action fired = action;
        lock.unlock();
        if (fired.kind == Kind::CacheTruncate)
            truncateFile(path, fired.hasArg ? fired.arg : 0);
        else
            bitflipFile(path, fired.arg, fired.hasArg);
        return;
    }
}

} // namespace chirp
