/**
 * @file
 * Hash functions for prediction-table index formation.
 *
 * The paper's Algorithm 5 indexes the prediction table with
 * `Hash(signature) mod 2^16`.  Hardware predictors use cheap
 * XOR-fold / CRC style mixers; we provide several so the ablation
 * benches can show the choice is not load-bearing.
 */

#ifndef CHIRP_UTIL_HASHING_HH
#define CHIRP_UTIL_HASHING_HH

#include <cstdint>

#include "util/bitfield.hh"

namespace chirp
{

/**
 * A 64->64 bit finalizing mixer (splitmix64 finalizer).  Strong
 * avalanche; used where software-quality mixing is wanted, e.g. when
 * deriving per-workload RNG seeds.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two hashes (boost-style). */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ull + (seed << 6) +
                   (seed >> 2));
}

/**
 * The odd multiplicative constant of indexHash, exposed so callers
 * composing several indices in SIMD lanes (GHRP's per-table hashes)
 * can reproduce the hash exactly.
 */
constexpr std::uint64_t kIndexHashMultiplier = 0x9e3779b97f4a7c15ull;

/**
 * Hardware-plausible index hash: multiply by an odd constant and
 * XOR-fold to @p nbits.  This is the default `Hash` of Algorithm 5.
 * Inline: this sits on the prediction-table index path of every
 * predictor policy.
 */
inline std::uint64_t
indexHash(std::uint64_t value, unsigned nbits)
{
    // An odd multiplicative constant spreads nearby signatures across
    // the table; the fold keeps every input bit relevant to the index.
    return foldXor(value * kIndexHashMultiplier, nbits);
}

/** Pure XOR-fold index hash (no multiply), the cheapest option. */
inline std::uint64_t
foldHash(std::uint64_t value, unsigned nbits)
{
    return foldXor(value, nbits);
}

/** CRC-16/CCITT over the 8 bytes of @p value, truncated to @p nbits. */
std::uint64_t crcHash(std::uint64_t value, unsigned nbits);

/** Identifier for selecting a hash in policy configurations. */
enum class HashKind
{
    Index, //!< multiplicative + fold (default)
    Fold,  //!< XOR fold only
    Crc,   //!< CRC-16 based
};

/** Dispatch on @p kind; used by configurable predictor tables. */
inline std::uint64_t
hashBy(HashKind kind, std::uint64_t value, unsigned nbits)
{
    switch (kind) {
      case HashKind::Index:
        return indexHash(value, nbits);
      case HashKind::Fold:
        return foldHash(value, nbits);
      case HashKind::Crc:
        return crcHash(value, nbits);
    }
    return indexHash(value, nbits);
}

/** Human-readable name for a HashKind (bench/report output). */
const char *hashKindName(HashKind kind);

} // namespace chirp

#endif // CHIRP_UTIL_HASHING_HH
