#include "util/hashing.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

std::uint64_t
indexHash(std::uint64_t value, unsigned nbits)
{
    // An odd multiplicative constant spreads nearby signatures across
    // the table; the fold keeps every input bit relevant to the index.
    const std::uint64_t mixed = value * 0x9e3779b97f4a7c15ull;
    return foldXor(mixed, nbits);
}

std::uint64_t
foldHash(std::uint64_t value, unsigned nbits)
{
    return foldXor(value, nbits);
}

namespace
{

/** Bitwise CRC-16/CCITT (poly 0x1021), byte at a time. */
std::uint16_t
crc16(std::uint64_t value)
{
    std::uint16_t crc = 0xffff;
    for (int i = 0; i < 8; ++i) {
        const std::uint8_t byte = (value >> (8 * i)) & 0xff;
        crc ^= static_cast<std::uint16_t>(byte) << 8;
        for (int b = 0; b < 8; ++b) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

} // namespace

std::uint64_t
crcHash(std::uint64_t value, unsigned nbits)
{
    const std::uint64_t crc = crc16(value);
    if (nbits >= 16)
        return crc;
    return foldXor(crc, nbits);
}

std::uint64_t
hashBy(HashKind kind, std::uint64_t value, unsigned nbits)
{
    switch (kind) {
      case HashKind::Index:
        return indexHash(value, nbits);
      case HashKind::Fold:
        return foldHash(value, nbits);
      case HashKind::Crc:
        return crcHash(value, nbits);
    }
    chirp_panic("unknown HashKind ", static_cast<int>(kind));
}

const char *
hashKindName(HashKind kind)
{
    switch (kind) {
      case HashKind::Index:
        return "index";
      case HashKind::Fold:
        return "fold";
      case HashKind::Crc:
        return "crc";
    }
    return "?";
}

} // namespace chirp
