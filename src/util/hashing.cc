#include "util/hashing.hh"

namespace chirp
{

namespace
{

/** Bitwise CRC-16/CCITT (poly 0x1021), byte at a time. */
std::uint16_t
crc16(std::uint64_t value)
{
    std::uint16_t crc = 0xffff;
    for (int i = 0; i < 8; ++i) {
        const std::uint8_t byte = (value >> (8 * i)) & 0xff;
        crc ^= static_cast<std::uint16_t>(byte) << 8;
        for (int b = 0; b < 8; ++b) {
            if (crc & 0x8000)
                crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<std::uint16_t>(crc << 1);
        }
    }
    return crc;
}

} // namespace

std::uint64_t
crcHash(std::uint64_t value, unsigned nbits)
{
    const std::uint64_t crc = crc16(value);
    if (nbits >= 16)
        return crc;
    return foldXor(crc, nbits);
}

const char *
hashKindName(HashKind kind)
{
    switch (kind) {
      case HashKind::Index:
        return "index";
      case HashKind::Fold:
        return "fold";
      case HashKind::Crc:
        return "crc";
    }
    return "?";
}

} // namespace chirp
