/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * `fatal` terminates on user error (bad configuration, bad trace
 * file); `panic` aborts on internal invariant violations; `warn` and
 * `inform` print and continue.
 */

#ifndef CHIRP_UTIL_LOGGING_HH
#define CHIRP_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace chirp
{

namespace detail
{

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Join a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Terminate with an error caused by the user of the library: bad
 * configuration, malformed trace files, impossible parameter
 * combinations.  Exits with status 1.
 */
#define chirp_fatal(...)                                                    \
    ::chirp::detail::fatalImpl(__FILE__, __LINE__,                          \
                               ::chirp::detail::concat(__VA_ARGS__))

/**
 * Terminate because the library itself is broken: an invariant that
 * must hold regardless of input has been violated.  Aborts (may dump
 * core).
 */
#define chirp_panic(...)                                                    \
    ::chirp::detail::panicImpl(__FILE__, __LINE__,                          \
                               ::chirp::detail::concat(__VA_ARGS__))

/** Print a warning about suspicious-but-survivable conditions. */
#define chirp_warn(...)                                                     \
    ::chirp::detail::warnImpl(::chirp::detail::concat(__VA_ARGS__))

/** Print an informational status message. */
#define chirp_inform(...)                                                   \
    ::chirp::detail::informImpl(::chirp::detail::concat(__VA_ARGS__))

} // namespace chirp

#endif // CHIRP_UTIL_LOGGING_HH
