/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * `fatal` terminates on user error (bad configuration, bad trace
 * file); `panic` aborts on internal invariant violations; `warn` and
 * `inform` print and continue.
 */

#ifndef CHIRP_UTIL_LOGGING_HH
#define CHIRP_UTIL_LOGGING_HH

#include <functional>
#include <sstream>
#include <string>

namespace chirp
{

/**
 * Receives one complete, newline-free log line ("warn: ..." /
 * "info: ...") in place of the default stderr write.
 */
using LogSink = std::function<void(const std::string &line)>;

/**
 * Install a process-wide log sink.  When set, warn/inform lines (and
 * the progress reporter's lines) are handed to the sink instead of
 * being written to stderr directly; fatal still writes stderr as well,
 * since the sink may not survive the exit path.  The distributed
 * sweep fabric installs a sink in worker processes so every worker
 * line travels to the coordinator, which prefixes it with the worker
 * id and serializes all workers onto one stderr stream.  Pass an
 * empty function to restore direct stderr output.
 */
void setLogSink(LogSink sink);

/** Whether a log sink is currently installed. */
bool logSinkInstalled();

namespace detail
{

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Route one finished line through the sink, or stderr without one. */
void emitLine(const std::string &line);

/** Join a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Terminate with an error caused by the user of the library: bad
 * configuration, malformed trace files, impossible parameter
 * combinations.  Exits with status 1.
 */
#define chirp_fatal(...)                                                    \
    ::chirp::detail::fatalImpl(__FILE__, __LINE__,                          \
                               ::chirp::detail::concat(__VA_ARGS__))

/**
 * Terminate because the library itself is broken: an invariant that
 * must hold regardless of input has been violated.  Aborts (may dump
 * core).
 */
#define chirp_panic(...)                                                    \
    ::chirp::detail::panicImpl(__FILE__, __LINE__,                          \
                               ::chirp::detail::concat(__VA_ARGS__))

/** Print a warning about suspicious-but-survivable conditions. */
#define chirp_warn(...)                                                     \
    ::chirp::detail::warnImpl(::chirp::detail::concat(__VA_ARGS__))

/** Print an informational status message. */
#define chirp_inform(...)                                                   \
    ::chirp::detail::informImpl(::chirp::detail::concat(__VA_ARGS__))

} // namespace chirp

#endif // CHIRP_UTIL_LOGGING_HH
