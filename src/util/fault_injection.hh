/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * Long suite runs fan hundreds of jobs across a thread pool and a
 * disk-backed trace cache; the failure-isolation, retry, resume, and
 * cache-quarantine machinery that protects them is only trustworthy
 * if it can be exercised on demand.  The injector arms a small set of
 * failure actions from a spec string (CHIRP_FAULT in the environment,
 * or configure() in tests) and fires them at two instrumented points:
 *
 *   job events    one per suite-job attempt (Runner's guarded jobs)
 *   cache events  one per trace-cache file published to disk
 *
 * Events are numbered from 0 in program order, so a given spec always
 * hits the same attempt with `--jobs 1`; with more workers the event
 * an action lands on is racy but the *kind* of failure is not, which
 * is all the crash/resume CI smoke needs.
 *
 * Spec grammar (comma-separated actions, each fired at most once):
 *
 *   throw@N           TransientError at job event N (retryable)
 *   hard-throw@N      InjectedFault at job event N (not retryable)
 *   slow@N[:MS]       sleep MS milliseconds (default 200) at job event N
 *   crash@N[:CODE]    _Exit(CODE) (default 137) at job event N -- no
 *                     flushes, no destructors, like a SIGKILL
 *   chunk-throw@N     TransientError halfway through the Nth batched
 *                     access chunk (retryable) -- fires inside
 *                     Tlb::accessBatch with a torn chunk in flight,
 *                     exercising the deferred-counter unwind path
 *   cache-truncate@N[:BYTES]  cut BYTES (default half) off the Nth
 *                             published trace-cache file
 *   cache-bitflip@N[:OFFSET]  XOR one bit at OFFSET (default middle)
 *                             of the Nth published trace-cache file
 *
 * Worker-targeted actions (distributed sweeps): here @N selects a
 * *worker id*, not an event index.  They fire only in the process
 * whose fabric worker id (setWorkerId) equals N — since CHIRP_FAULT
 * is inherited by every spawned worker, one spec can single out one
 * worker of a fleet.  crash/stall fire at that worker's third local
 * job event — mid-shard, after the recorder and one replay have
 * completed, so at least one result has streamed back; truncate
 * fires on an outgoing wire frame.
 *
 *   worker-crash@N[:CODE]  worker N _Exit(CODE)s (default 137) as if
 *                          kill -9'd mid-shard
 *   worker-stall@N[:MS]    worker N sleeps MS ms (default 20000),
 *                          long enough to blow any sane lease
 *   msg-truncate@N[:K]     worker N truncates its Kth (default 3rd)
 *                          outgoing wire frame mid-write, desyncing
 *                          the stream so the coordinator drops it
 *
 * Example: CHIRP_FAULT=throw@3,cache-bitflip@0
 * Example: CHIRP_FAULT=worker-crash@1
 */

#ifndef CHIRP_UTIL_FAULT_INJECTION_HH
#define CHIRP_UTIL_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace chirp
{

/**
 * A failure worth retrying: transient I/O blips and injected
 * transient faults.  The suite runner's retry policy (--retries)
 * applies only to this family; anything else fails the job at once.
 */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A deterministic injected failure that must not be retried. */
class InjectedFault : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Process-wide injector; see the file comment for the spec grammar. */
class FaultInjector
{
  public:
    /** The singleton, armed from CHIRP_FAULT on first use. */
    static FaultInjector &instance();

    /**
     * Replace the armed actions with @p spec ("" disarms) and reset
     * the event counters.  Fatal on a malformed spec.
     */
    void configure(const std::string &spec);

    /** Disarm all actions and reset the event counters. */
    void reset() { configure(""); }

    /** Whether any action is armed (fired or not). */
    bool active() const;

    /**
     * Count one job-attempt event and fire any action armed for it.
     * May throw TransientError / InjectedFault, sleep, or _Exit.
     */
    void onJobStart();

    /**
     * Count one cache-publish event and corrupt @p path in place if
     * an action is armed for it.  Never throws.
     */
    void onCachePublish(const std::string &path);

    /**
     * Is any chunk-throw action armed and unfired?  A relaxed atomic
     * read with no lock: the batched access path consults this once
     * per chunk and must cost nothing when fault injection is idle.
     */
    static bool
    chunkFaultsArmed()
    {
        return chunkArmed_.load(std::memory_order_relaxed);
    }

    /**
     * Count one batched-chunk event and fire any chunk-throw action
     * armed for it (TransientError).  Only called from inside a
     * chunk when chunkFaultsArmed() was true at its start.
     */
    void onBatchChunk();

    /**
     * Identify this process as fabric worker @p id (-1: not a
     * worker).  Arms the worker-targeted action family.
     */
    void setWorkerId(int id);

    /** The fabric worker id, or -1 outside worker processes. */
    int workerId() const;

    /**
     * Count one outgoing wire frame of @p len bytes and return how
     * many of them to actually send: @p len normally, less when a
     * msg-truncate action targeting this worker fires.  Never throws.
     */
    std::size_t onWireSend(std::size_t len);

    /** Job-attempt events seen since the last configure(). */
    std::uint64_t jobEvents() const;

    /** Cache-publish events seen since the last configure(). */
    std::uint64_t cacheEvents() const;

  private:
    FaultInjector();

    enum class Kind
    {
        Throw,
        HardThrow,
        Slow,
        Crash,
        CacheTruncate,
        CacheBitFlip,
        WorkerCrash,
        WorkerStall,
        MsgTruncate,
        ChunkThrow,
    };

    struct Action
    {
        Kind kind;
        std::uint64_t at = 0;  //!< event index the action fires on
        std::uint64_t arg = 0; //!< ms / exit code / bytes / offset
        bool hasArg = false;
        bool fired = false;
    };

    static bool isJobKind(Kind kind);
    static bool isWorkerKind(Kind kind);

    mutable std::mutex mutex_;
    std::vector<Action> actions_;
    std::uint64_t jobEvents_ = 0;
    std::uint64_t cacheEvents_ = 0;
    std::uint64_t wireEvents_ = 0;
    std::uint64_t chunkEvents_ = 0;
    int workerId_ = -1;
    // Lock-free mirror of "a ChunkThrow is armed and unfired" for the
    // per-chunk hot-path check.
    static std::atomic<bool> chunkArmed_;
};

} // namespace chirp

#endif // CHIRP_UTIL_FAULT_INJECTION_HH
