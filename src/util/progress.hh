/**
 * @file
 * Thread-safe suite-progress ticker.
 *
 * Replaces the bare fprintf ticker the serial runner used: workers
 * completing jobs on any thread call tick(), and the reporter keeps a
 * single "\r  [label] done/total workloads" line updated on stderr
 * without interleaving.  A reporter with an empty label is silent, so
 * tests and library callers stay quiet.
 */

#ifndef CHIRP_UTIL_PROGRESS_HH
#define CHIRP_UTIL_PROGRESS_HH

#include <cstddef>
#include <mutex>
#include <string>

namespace chirp
{

/** One progress line for a batch of @p total jobs. */
class ProgressReporter
{
  public:
    /** Silent when @p label is empty. */
    ProgressReporter(std::string label, std::size_t total);

    /** Terminates the line if any ticks were printed. */
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** Record one finished job and redraw the line. */
    void tick();

    /** Jobs reported done so far. */
    std::size_t done() const;

  private:
    const std::string label_;
    const std::size_t total_;
    mutable std::mutex mutex_;
    std::size_t done_ = 0;
};

} // namespace chirp

#endif // CHIRP_UTIL_PROGRESS_HH
