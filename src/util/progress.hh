/**
 * @file
 * Thread-safe suite-progress ticker.
 *
 * Replaces the bare fprintf ticker the serial runner used: workers
 * completing jobs on any thread call tick(), and the reporter keeps a
 * single "\r  [label] done/total workloads" line updated on stderr
 * without interleaving.  When stderr is not a terminal (CI logs,
 * redirects) the carriage-return redraw would accumulate one line of
 * spam per tick, so the reporter falls back to printing a plain line
 * every ~10% of the batch plus one at completion.  A reporter with an
 * empty label is silent, so tests and library callers stay quiet.
 *
 * When a process-wide log sink is installed (setLogSink — worker
 * processes of a distributed sweep do this) the reporter always uses
 * line mode and emits through the sink, so progress from many workers
 * reaches the coordinator as complete lines it can prefix with the
 * worker id instead of interleaved \r fragments on a shared terminal.
 */

#ifndef CHIRP_UTIL_PROGRESS_HH
#define CHIRP_UTIL_PROGRESS_HH

#include <cstddef>
#include <mutex>
#include <string>

namespace chirp
{

/** One progress line for a batch of @p total jobs. */
class ProgressReporter
{
  public:
    /** How ticks are rendered on stderr. */
    enum class Mode
    {
        Auto,  //!< Tty when stderr is a terminal, Lines otherwise
        Tty,   //!< single line redrawn in place with \r
        Lines, //!< one plain line per ~10% of the batch (CI-safe)
    };

    /** Silent when @p label is empty. */
    ProgressReporter(std::string label, std::size_t total,
                     Mode mode = Mode::Auto);

    /** Terminates the line if any ticks were printed. */
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** Record one finished job and redraw the line. */
    void tick();

    /** Jobs reported done so far. */
    std::size_t done() const;

    /** The rendering mode in effect (after Auto resolution). */
    Mode mode() const { return mode_; }

  private:
    const std::string label_;
    const std::size_t total_;
    Mode mode_;
    std::size_t stride_;
    mutable std::mutex mutex_;
    std::size_t done_ = 0;
};

} // namespace chirp

#endif // CHIRP_UTIL_PROGRESS_HH
