#include "util/thread_pool.hh"

namespace chirp
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = defaultConcurrency();
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Abandon queued-but-unstarted work so a failed suite tears
        // down without simulating the remainder.
        queue_.clear();
    }
    ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

unsigned
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    ready_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // submit() routes user exceptions into the job's future via
        // packaged_task, so a throw escaping here would mean a raw
        // enqueue()d task; swallow it rather than terminate the
        // worker (and with it the process) mid-suite.
        try {
            task();
        } catch (...) {
        }
    }
}

} // namespace chirp
