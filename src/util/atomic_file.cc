#include "util/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace chirp
{

AtomicFile::AtomicFile(std::string path) : path_(std::move(path))
{
    // Pid-qualified temp name: concurrent processes targeting the
    // same file never write through each other's temp.
    temp_ = path_ + ".tmp." + std::to_string(::getpid());
    file_ = std::fopen(temp_.c_str(), "wb");
    if (!file_)
        fail("cannot open temp file '" + temp_ + "'");
}

AtomicFile::~AtomicFile()
{
    if (file_ || !temp_.empty())
        discard();
}

void
AtomicFile::fail(const std::string &what)
{
    if (!error_.empty())
        return; // first error wins
    error_ = what + ": " + std::strerror(errno);
}

bool
AtomicFile::write(const void *data, std::size_t size)
{
    if (!valid())
        return false;
    if (std::fwrite(data, 1, size, file_) != size) {
        fail("short write to '" + temp_ + "'");
        return false;
    }
    return true;
}

bool
AtomicFile::commit()
{
    if (!file_) {
        if (error_.empty())
            error_ = "commit after commit/discard of '" + path_ + "'";
        return false;
    }
    if (error_.empty() && std::fflush(file_) != 0)
        fail("cannot flush '" + temp_ + "'");
    // fsync before rename: the rename must never become visible
    // ahead of the data it names.
    if (error_.empty() && ::fsync(::fileno(file_)) != 0)
        fail("cannot fsync '" + temp_ + "'");
    if (std::fclose(file_) != 0 && error_.empty())
        fail("cannot close '" + temp_ + "'");
    file_ = nullptr;
    if (!error_.empty()) {
        std::remove(temp_.c_str());
        temp_.clear();
        return false;
    }
    if (std::rename(temp_.c_str(), path_.c_str()) != 0) {
        fail("cannot publish '" + path_ + "'");
        std::remove(temp_.c_str());
        temp_.clear();
        return false;
    }
    temp_.clear();
    // The rename is only durable once the directory entry is on
    // disk; without this a power cut can lose the published file
    // even though the data itself was fsync'd.
    fsyncParentDir(path_);
    return true;
}

void
AtomicFile::discard()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    if (!temp_.empty()) {
        std::remove(temp_.c_str());
        temp_.clear();
    }
}

bool
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                          O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool
atomicWriteFile(const std::string &path, std::string_view content,
                std::string *error)
{
    AtomicFile file(path);
    file.write(content);
    if (file.commit())
        return true;
    if (error)
        *error = file.error();
    return false;
}

} // namespace chirp
