#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace chirp
{

namespace
{

std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

LogSink &
sinkSlot()
{
    static LogSink sink;
    return sink;
}

} // namespace

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sinkSlot() = std::move(sink);
}

bool
logSinkInstalled()
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    return static_cast<bool>(sinkSlot());
}

namespace detail
{

void
emitLine(const std::string &line)
{
    // Copy the sink out under the lock so a slow sink (a socket send)
    // never serializes unrelated logging, and a concurrent
    // setLogSink() cannot invalidate the function mid-call.
    LogSink sink;
    {
        std::lock_guard<std::mutex> lock(sinkMutex());
        sink = sinkSlot();
    }
    if (sink) {
        sink(line);
        return;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Both routes on purpose: the sink forwards the reason to the
    // coordinator, stderr keeps a local trace in case the connection
    // is already gone.
    if (logSinkInstalled())
        emitLine("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (logSinkInstalled())
        emitLine("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn: " + msg);
}

void
informImpl(const std::string &msg)
{
    emitLine("info: " + msg);
}

} // namespace detail
} // namespace chirp
