/**
 * @file
 * Statistics kit: running moments, histograms, and the aggregate
 * reductions (arithmetic / geometric mean, percentiles) the paper's
 * evaluation section reports.
 */

#ifndef CHIRP_UTIL_STATS_HH
#define CHIRP_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace chirp
{

/**
 * Single-pass mean/variance accumulator (Welford).  Used for the
 * per-suite averages and the Fig 11 density summary.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void push(double x);

    /** Number of samples so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample seen. */
    double min() const { return min_; }

    /** Largest sample seen. */
    double max() const { return max_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi) with out-of-range samples clamped
 * to the edge bins; backs the Fig 11 density plot.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t nbins);

    /** Add one sample. */
    void push(double x);

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Center of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Total samples. */
    std::uint64_t total() const { return total_; }

    /** Fraction of samples in bin @p i (0 when empty). */
    double density(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** Arithmetic mean of @p xs (0 when empty). */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean of @p xs.  Values must be positive; the speedup
 * figures report geomeans as in the paper.
 */
double geomean(const std::vector<double> &xs);

/**
 * Geometric-mean speedup of per-workload ratios, i.e.
 * geomean(ipc_i / base_i), expressed as a percentage improvement.
 */
double geomeanSpeedupPct(const std::vector<double> &ipc,
                         const std::vector<double> &baseline_ipc);

/** Linear-interpolated percentile @p p in [0,100] of @p xs. */
double percentile(std::vector<double> xs, double p);

/**
 * Percent reduction of @p measured relative to @p baseline:
 * positive when @p measured is smaller (an improvement for MPKI).
 */
double pctReduction(double baseline, double measured);

} // namespace chirp

#endif // CHIRP_UTIL_STATS_HH
