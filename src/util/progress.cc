#include "util/progress.hh"

#include <algorithm>
#include <cstdio>

#include <unistd.h>

#include "util/logging.hh"

namespace chirp
{

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   Mode mode)
    : label_(std::move(label)), total_(total), mode_(mode),
      stride_(std::max<std::size_t>(1, total / 10))
{
    // A log sink means this process's stderr is not the terminal the
    // user is watching (worker of a distributed sweep): \r redraw
    // fragments from several processes would interleave, so always
    // emit complete lines through the sink.
    if (logSinkInstalled())
        mode_ = Mode::Lines;
    if (mode_ == Mode::Auto) {
        mode_ = ::isatty(::fileno(stderr)) ? Mode::Tty : Mode::Lines;
    }
}

ProgressReporter::~ProgressReporter()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!label_.empty() && done_ > 0 && mode_ == Mode::Tty)
        std::fprintf(stderr, "\n");
}

void
ProgressReporter::tick()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (label_.empty())
        return;
    if (mode_ == Mode::Tty) {
        std::fprintf(stderr, "\r  [%s] %zu/%zu workloads", label_.c_str(),
                     done_, total_);
        std::fflush(stderr);
        return;
    }
    // Line mode: one complete line every `stride_` ticks and one at
    // the end, so a full batch logs ~11 lines however large it is.
    if (done_ % stride_ == 0 || done_ == total_) {
        char line[160];
        std::snprintf(line, sizeof(line), "  [%s] %zu/%zu workloads",
                      label_.c_str(), done_, total_);
        detail::emitLine(line);
    }
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

} // namespace chirp
