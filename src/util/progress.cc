#include "util/progress.hh"

#include <algorithm>
#include <cstdio>

#include <unistd.h>

namespace chirp
{

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   Mode mode)
    : label_(std::move(label)), total_(total), mode_(mode),
      stride_(std::max<std::size_t>(1, total / 10))
{
    if (mode_ == Mode::Auto) {
        mode_ = ::isatty(::fileno(stderr)) ? Mode::Tty : Mode::Lines;
    }
}

ProgressReporter::~ProgressReporter()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!label_.empty() && done_ > 0 && mode_ == Mode::Tty)
        std::fprintf(stderr, "\n");
}

void
ProgressReporter::tick()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (label_.empty())
        return;
    if (mode_ == Mode::Tty) {
        std::fprintf(stderr, "\r  [%s] %zu/%zu workloads", label_.c_str(),
                     done_, total_);
        std::fflush(stderr);
        return;
    }
    // Line mode: one complete line every `stride_` ticks and one at
    // the end, so a full batch logs ~11 lines however large it is.
    if (done_ % stride_ == 0 || done_ == total_) {
        std::fprintf(stderr, "  [%s] %zu/%zu workloads\n", label_.c_str(),
                     done_, total_);
        std::fflush(stderr);
    }
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

} // namespace chirp
