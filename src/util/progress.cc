#include "util/progress.hh"

#include <cstdio>

namespace chirp
{

ProgressReporter::ProgressReporter(std::string label, std::size_t total)
    : label_(std::move(label)), total_(total)
{
}

ProgressReporter::~ProgressReporter()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!label_.empty() && done_ > 0)
        std::fprintf(stderr, "\n");
}

void
ProgressReporter::tick()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (label_.empty())
        return;
    std::fprintf(stderr, "\r  [%s] %zu/%zu workloads", label_.c_str(),
                 done_, total_);
    std::fflush(stderr);
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

} // namespace chirp
