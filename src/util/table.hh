/**
 * @file
 * Aligned console tables for bench/example output.
 *
 * Every figure-reproduction bench prints a human-readable table of
 * "paper vs measured" rows; this keeps that formatting in one place.
 */

#ifndef CHIRP_UTIL_TABLE_HH
#define CHIRP_UTIL_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace chirp
{

/** A simple column-aligned text table. */
class TableFormatter
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row; ragged rows are padded with empty cells. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

    /** Convenience: format an integer. */
    static std::string num(std::uint64_t v);

    /** Render to a string. */
    std::string str() const;

    /** Print to @p out (stdout by default). */
    void print(std::FILE *out = stdout) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace chirp

#endif // CHIRP_UTIL_TABLE_HH
