#include "util/random.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace chirp
{

Rng::Rng(std::uint64_t seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
{
}

std::uint64_t
Rng::next()
{
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    assert(bound != 0);
    // Rejection sampling to remove modulo bias; the loop terminates
    // with probability > 1/2 per iteration.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % bound;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng::Zipf::Zipf(std::size_t n, double s)
{
    assert(n > 0);
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
}

std::size_t
Rng::Zipf::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace chirp
