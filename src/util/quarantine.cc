#include "util/quarantine.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <mutex>

#include "util/logging.hh"

namespace chirp
{
namespace
{

std::mutex registryMutex;
std::vector<QuarantinedArtifact> registry;

/**
 * Drop older artifacts sharing @p sample's directory and suffix so at
 * most quarantineKeepCount() remain (newest by mtime are kept).
 */
void
pruneSiblings(const std::filesystem::path &sample)
{
    namespace fs = std::filesystem;
    const std::size_t keep = quarantineKeepCount();
    const std::string suffix = sample.extension().string();
    if (suffix.empty())
        return;
    std::error_code ec;
    std::vector<std::pair<fs::file_time_type, fs::path>> siblings;
    for (const auto &entry :
         fs::directory_iterator(sample.parent_path(), ec)) {
        if (ec)
            return;
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != suffix)
            continue;
        const auto mtime = entry.last_write_time(ec);
        if (!ec)
            siblings.emplace_back(mtime, entry.path());
    }
    if (siblings.size() <= keep)
        return;
    std::sort(siblings.begin(), siblings.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (std::size_t i = keep; i < siblings.size(); ++i) {
        fs::remove(siblings[i].second, ec);
        if (!ec) {
            chirp_inform("quarantine: pruned old artifact '",
                         siblings[i].second.string(), "'");
        }
    }
}

} // namespace

std::size_t
quarantineKeepCount()
{
    const char *value = std::getenv("CHIRP_QUARANTINE_KEEP");
    if (!value || !*value)
        return 3;
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0')
        chirp_fatal("CHIRP_QUARANTINE_KEEP must be a non-negative "
                    "integer, got '", value, "'");
    return parsed;
}

void
noteQuarantined(const std::string &path, const std::string &reason)
{
    {
        std::lock_guard<std::mutex> lock(registryMutex);
        registry.push_back({path, reason});
    }
    pruneSiblings(std::filesystem::path(path));
}

std::vector<QuarantinedArtifact>
quarantinedArtifacts()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    return registry;
}

std::size_t
quarantinedArtifactCount()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    return registry.size();
}

std::string
quarantineSummaryLine()
{
    const auto artifacts = quarantinedArtifacts();
    if (artifacts.empty())
        return "";
    std::string line = detail::concat("quarantined ", artifacts.size(),
                                      artifacts.size() == 1
                                          ? " artifact: "
                                          : " artifacts: ");
    constexpr std::size_t kMaxListed = 8;
    for (std::size_t i = 0; i < artifacts.size() && i < kMaxListed; ++i) {
        if (i > 0)
            line += ", ";
        line += std::filesystem::path(artifacts[i].path)
                    .filename()
                    .string();
    }
    if (artifacts.size() > kMaxListed)
        line += detail::concat(", ... (", artifacts.size() - kMaxListed,
                               " more)");
    return line;
}

void
resetQuarantineLog()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    registry.clear();
}

} // namespace chirp
