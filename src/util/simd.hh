/**
 * @file
 * Data-parallel kernels for the policy hot paths, behind runtime
 * backend dispatch.
 *
 * The victim scans (dead bits, RRPV values, recency ranks), the TLB
 * tag match and GHRP's per-table signature/index composition all walk
 * small contiguous lanes — exactly the shape the PR 3 SoA refactor
 * produced.  Each kernel here has one scalar reference implementation
 * (the semantic contract, including scan order and tie-breaking) plus
 * ISA-specific variants that must return bit-identical results; the
 * randomized equivalence tests drive every lane count and tail shape
 * against the scalar reference.
 *
 * Backend selection is runtime: the strongest ISA the host supports
 * is detected once (cpuid on x86-64, compile-time on aarch64) and
 * cached.  Two overrides exist:
 *  - `CHIRP_SIMD=OFF` at configure time compiles the vector variants
 *    out entirely (portable build);
 *  - `CHIRP_FORCE_SCALAR` in the environment (non-empty, not "0")
 *    forces the scalar reference at runtime, mirroring
 *    CHIRP_FORCE_VIRTUAL — the CI equality leg diffs full bench runs
 *    across the two settings.
 *
 * Dispatch layout: the kernels the TLB runs on *every* access scan a
 * handful of lanes (assoc is 4-16, GHRP composes 3 table lanes), so
 * an out-of-line call per kernel costs more than the scan itself.
 * The scalar reference and the baseline-ISA variants (SSE2 on x86-64,
 * NEON on aarch64 — both guaranteed by the ABI, so no target
 * attribute is needed) therefore live here as inline functions, and
 * the public kernels are inline two-way branches on a cached backend
 * global.  Only the AVX2 variants stay out of line (they require a
 * per-function target attribute, which blocks inlining into plain
 * callers) and are entered only when the input spans at least one
 * full 256-bit vector; below that the SSE2 body is used — the
 * results are bit-identical either way, so the threshold is purely a
 * latency choice.
 *
 * All kernels treat `n == 0` as an empty scan (the "not found"
 * sentinel is `n` itself, so it composes with any caller loop).
 */

#ifndef CHIRP_UTIL_SIMD_HH
#define CHIRP_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "util/bitfield.hh"
#include "util/types.hh"

#if defined(CHIRP_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
#define CHIRP_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(CHIRP_SIMD_ENABLED) && defined(__aarch64__)
#define CHIRP_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace chirp
{
namespace simd
{

/** The instruction set a kernel call will use. */
enum class Backend : std::uint8_t
{
    Scalar, //!< must stay 0: a zero-initialized backend is safe
    Sse2,
    Avx2,
    Neon,
};

/** Printable backend name ("avx2", "sse2", "neon", "scalar"). */
const char *backendName(Backend backend);

/** Re-detect the backend (after setenv/unsetenv in tests). */
void refreshBackend();

/**
 * Precomputed XOR-fold ladder for one fold width.
 *
 * foldXor(v, nbits) XORs the nbits-wide chunks of v together; by
 * associativity the same value falls out of a fixed ladder of
 * (v ^= v >> shift; v &= mask) steps that halves the live chunk
 * count each round.  The shifts and masks depend only on nbits, so a
 * caller folding many values at one width (GHRP folds every access
 * at its signature and index widths) builds the plan once and the
 * per-fold work is the ladder steps alone — no chunk-count division,
 * no mask formation.
 */
struct FoldPlan
{
    /** log2-bounded: 64/1-bit chunks halve to 1 in 6 rounds. */
    static constexpr unsigned kMaxSteps = 6;

    std::uint64_t mask[kMaxSteps] = {};
    std::uint8_t shift[kMaxSteps] = {};
    std::uint8_t steps = 0;

    constexpr FoldPlan() = default;

    /** The ladder for folds to @p nbits (1..64). */
    explicit constexpr FoldPlan(unsigned nbits)
    {
        unsigned chunks = (64 + nbits - 1) / nbits;
        while (chunks > 1) {
            const unsigned half = (chunks + 1) / 2;
            // half*nbits < 64 for every nbits in [1,64]: even chunk
            // counts give at most ceil(64/2) and odd ones at most
            // 32 + nbits with nbits <= 31.
            const unsigned s = half * nbits;
            shift[steps] = static_cast<std::uint8_t>(s);
            mask[steps] = maskBits(s);
            ++steps;
            chunks = half;
        }
    }

    /** Apply the ladder to one value (the scalar reference). */
    constexpr std::uint64_t
    apply(std::uint64_t v) const
    {
        for (unsigned s = 0; s < steps; ++s) {
            v ^= v >> shift[s];
            v &= mask[s];
        }
        return v;
    }
};

namespace detail
{

/**
 * The cached backend every kernel dispatches on.  Set by a dynamic
 * initializer in simd.cc; until that runs it reads as zero ==
 * Backend::Scalar, so kernels called from other translation units'
 * static initializers stay correct.
 */
extern Backend g_backend;

/*
 * Scalar reference kernels.  These define the contract — every vector
 * variant below must match them bit-for-bit, including scan order and
 * tie-breaking — and they are the only implementation compiled when
 * CHIRP_SIMD is OFF or the host ISA is unsupported.
 */

inline std::size_t
firstSetScalar(const std::uint8_t *v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (v[i] != 0)
            return i;
    return n;
}

inline std::size_t
firstClearScalar(const std::uint8_t *v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (v[i] == 0)
            return i;
    return n;
}

inline std::size_t
firstAtLeastScalar(const std::uint8_t *v, std::size_t n,
                   std::uint8_t limit)
{
    for (std::size_t i = 0; i < n; ++i)
        if (v[i] >= limit)
            return i;
    return n;
}

inline std::size_t
deepestSetScalar(const std::uint8_t *flags, const std::uint8_t *rank,
                 std::size_t n)
{
    std::size_t deepest = n;
    int best = -1;
    for (std::size_t i = 0; i < n; ++i) {
        if (flags[i] != 0 && static_cast<int>(rank[i]) > best) {
            best = rank[i];
            deepest = i;
        }
    }
    return deepest;
}

inline std::uint8_t
maxLaneScalar(const std::uint8_t *v, std::size_t n)
{
    std::uint8_t best = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (v[i] > best)
            best = v[i];
    return best;
}

inline void
addToLanesScalar(std::uint8_t *v, std::size_t n, std::uint8_t delta)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(v[i] + delta);
}

inline std::size_t
matchTagScalar(const Addr *tags, const std::uint8_t *valid,
               std::size_t n, Addr tag)
{
    for (std::size_t i = 0; i < n; ++i)
        if (valid[i] != 0 && tags[i] == tag)
            return i;
    return n;
}

inline void
shiftOrScalar(std::uint64_t *v, const std::uint8_t *shifts,
              std::size_t n, std::uint8_t common_shift,
              std::uint64_t common_or, std::uint64_t other_or)
{
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = (v[i] >> shifts[i]) |
               (shifts[i] == common_shift ? common_or : other_or);
    }
}

inline void
xorFoldScalar(std::uint64_t *v, std::size_t n, unsigned nbits)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] = foldXor(v[i], nbits);
}

inline void
mulXorFoldScalar(std::uint64_t *v, std::size_t n, std::uint64_t k,
                 unsigned nbits)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] = foldXor(v[i] * k, nbits);
}

inline void
xorFoldPlanScalar(std::uint64_t *v, std::size_t n,
                  const FoldPlan &plan)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] = plan.apply(v[i]);
}

inline void
mulXorFoldPlanScalar(std::uint64_t *v, std::size_t n, std::uint64_t k,
                     const FoldPlan &plan)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] = plan.apply(v[i] * k);
}

inline void
xorFoldSigScalar(const std::uint64_t *base, std::size_t n,
                 std::uint64_t xor_term, const FoldPlan &plan,
                 std::uint16_t *sigs)
{
    for (std::size_t i = 0; i < n; ++i)
        sigs[i] =
            static_cast<std::uint16_t>(plan.apply(base[i] ^ xor_term));
}

inline void
sigIndexScalar(const std::uint64_t *base, std::size_t n,
               std::uint64_t xor_term, const FoldPlan &sig_plan,
               std::uint64_t salt, std::uint64_t k,
               const FoldPlan &idx_plan, std::uint32_t idx_or,
               std::uint16_t *sigs, std::uint32_t *idxs)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint16_t sig = static_cast<std::uint16_t>(
            sig_plan.apply(base[i] ^ xor_term));
        sigs[i] = sig;
        idxs[i] =
            idx_or |
            static_cast<std::uint32_t>(idx_plan.apply(
                (static_cast<std::uint64_t>(sig) ^ salt) * k));
    }
}

#ifdef CHIRP_SIMD_X86

/*
 * SSE2 variants — baseline on every x86-64 host, so they carry no
 * cpuid check and inline into any caller.  The byte kernels process
 * 16 lanes per step with a scalar tail; tag matching works on two
 * 64-bit lanes per vector (SSE2 has no 64-bit compare, so equality is
 * the AND of the two 32-bit half compares).
 */

inline std::size_t
firstSetSse2(const std::uint8_t *v, std::size_t n)
{
    const __m128i zero = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(v + i));
        const unsigned zeros = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(x, zero)));
        const unsigned set = ~zeros & 0xffffu;
        if (set != 0)
            return i + static_cast<unsigned>(__builtin_ctz(set));
    }
    if (i + 8 <= n) {
        // Half-vector step: an 8-way set (the paper's L2 TLB assoc)
        // scans in one op instead of the scalar tail.
        const __m128i x = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(v + i));
        const unsigned zeros = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(x, zero)));
        const unsigned set = ~zeros & 0xffu;
        if (set != 0)
            return i + static_cast<unsigned>(__builtin_ctz(set));
        i += 8;
    }
    for (; i < n; ++i)
        if (v[i] != 0)
            return i;
    return n;
}

inline std::size_t
firstClearSse2(const std::uint8_t *v, std::size_t n)
{
    const __m128i zero = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(v + i));
        const unsigned zeros = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(x, zero)));
        if (zeros != 0)
            return i + static_cast<unsigned>(__builtin_ctz(zeros));
    }
    if (i + 8 <= n) {
        const __m128i x = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(v + i));
        const unsigned zeros =
            static_cast<unsigned>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(x, zero))) &
            0xffu;
        if (zeros != 0)
            return i + static_cast<unsigned>(__builtin_ctz(zeros));
        i += 8;
    }
    for (; i < n; ++i)
        if (v[i] == 0)
            return i;
    return n;
}

inline std::size_t
firstAtLeastSse2(const std::uint8_t *v, std::size_t n,
                 std::uint8_t limit)
{
    // max(x, limit) == x  <=>  x >= limit (unsigned bytes).
    const __m128i lim = _mm_set1_epi8(static_cast<char>(limit));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(v + i));
        const unsigned ge = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_max_epu8(x, lim), x)));
        if (ge != 0)
            return i + static_cast<unsigned>(__builtin_ctz(ge));
    }
    if (i + 8 <= n) {
        const __m128i x = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(v + i));
        const unsigned ge =
            static_cast<unsigned>(_mm_movemask_epi8(
                _mm_cmpeq_epi8(_mm_max_epu8(x, lim), x))) &
            0xffu;
        if (ge != 0)
            return i + static_cast<unsigned>(__builtin_ctz(ge));
        i += 8;
    }
    for (; i < n; ++i)
        if (v[i] >= limit)
            return i;
    return n;
}

inline std::uint8_t
horizontalMaxU8(__m128i x)
{
    x = _mm_max_epu8(x, _mm_srli_si128(x, 8));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 4));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 2));
    x = _mm_max_epu8(x, _mm_srli_si128(x, 1));
    return static_cast<std::uint8_t>(_mm_cvtsi128_si32(x));
}

/** flags[i] ? rank[i] + 1 : 0, the masked key deepestSetLane scans. */
inline __m128i
maskedRankSse2(const std::uint8_t *flags, const std::uint8_t *rank,
               std::size_t i)
{
    const __m128i f =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(flags + i));
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(rank + i));
    const __m128i dead = _mm_cmpeq_epi8(f, _mm_setzero_si128());
    return _mm_andnot_si128(dead,
                            _mm_add_epi8(r, _mm_set1_epi8(1)));
}

/** maskedRankSse2 over an 8-byte half vector (upper lanes zero). */
inline __m128i
maskedRank8Sse2(const std::uint8_t *flags, const std::uint8_t *rank,
                std::size_t i)
{
    const __m128i f = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(flags + i));
    const __m128i r = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(rank + i));
    const __m128i dead = _mm_cmpeq_epi8(f, _mm_setzero_si128());
    // The upper eight lanes load as zero flags, so the andnot zeroes
    // their keys — they can never win the max or match a nonzero
    // best.
    return _mm_andnot_si128(dead,
                            _mm_add_epi8(r, _mm_set1_epi8(1)));
}

inline std::size_t
deepestSetSse2(const std::uint8_t *flags, const std::uint8_t *rank,
               std::size_t n)
{
    // Pass 1: the maximum of rank+1 over flagged lanes (0 if none).
    // Ranks are <= 254 so the +1 bias cannot wrap.
    __m128i vmax = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        vmax = _mm_max_epu8(vmax, maskedRankSse2(flags, rank, i));
    if (i + 8 <= n) {
        vmax = _mm_max_epu8(vmax, maskedRank8Sse2(flags, rank, i));
        i += 8;
    }
    std::uint8_t best = horizontalMaxU8(vmax);
    for (; i < n; ++i) {
        const std::uint8_t key =
            flags[i] != 0 ? static_cast<std::uint8_t>(rank[i] + 1) : 0;
        if (key > best)
            best = key;
    }
    if (best == 0)
        return n;
    // Pass 2: the first lane holding that maximum — the same index
    // the scalar strictly-greater scan keeps.
    const __m128i want = _mm_set1_epi8(static_cast<char>(best));
    for (i = 0; i + 16 <= n; i += 16) {
        const unsigned hit =
            static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
                maskedRankSse2(flags, rank, i), want)));
        if (hit != 0)
            return i + static_cast<unsigned>(__builtin_ctz(hit));
    }
    if (i + 8 <= n) {
        const unsigned hit =
            static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
                maskedRank8Sse2(flags, rank, i), want))) &
            0xffu;
        if (hit != 0)
            return i + static_cast<unsigned>(__builtin_ctz(hit));
        i += 8;
    }
    for (; i < n; ++i) {
        const std::uint8_t key =
            flags[i] != 0 ? static_cast<std::uint8_t>(rank[i] + 1) : 0;
        if (key == best)
            return i;
    }
    return n;
}

inline std::uint8_t
maxLaneSse2(const std::uint8_t *v, std::size_t n)
{
    __m128i vmax = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        vmax = _mm_max_epu8(
            vmax,
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(v + i)));
    if (i + 8 <= n) {
        // Zero upper lanes cannot raise an unsigned max.
        vmax = _mm_max_epu8(
            vmax, _mm_loadl_epi64(
                      reinterpret_cast<const __m128i *>(v + i)));
        i += 8;
    }
    std::uint8_t best = horizontalMaxU8(vmax);
    for (; i < n; ++i)
        if (v[i] > best)
            best = v[i];
    return best;
}

inline void
addToLanesSse2(std::uint8_t *v, std::size_t n, std::uint8_t delta)
{
    const __m128i d = _mm_set1_epi8(static_cast<char>(delta));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m128i *p = reinterpret_cast<__m128i *>(v + i);
        _mm_storeu_si128(p, _mm_add_epi8(_mm_loadu_si128(p), d));
    }
    for (; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(v[i] + delta);
}

inline std::size_t
matchTagSse2(const Addr *tags, const std::uint8_t *valid,
             std::size_t n, Addr tag)
{
    const __m128i want = _mm_set1_epi64x(static_cast<long long>(tag));
    std::size_t i = 0;
    while (i + 2 <= n) {
        // Accumulate up to 64 lanes of match bits branch-free, then
        // resolve the set bits once: any real associativity fits one
        // pass, and skipping the per-vector early exit avoids a
        // mispredicted branch on every randomly-positioned hit.
        const std::size_t base = i;
        std::uint64_t hits = 0;
        for (; i + 2 <= n && i - base < 64; i += 2) {
            const __m128i t = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tags + i));
            // 64-bit equality from two 32-bit compares: a lane
            // matches only when both halves do.
            const __m128i eq32 = _mm_cmpeq_epi32(t, want);
            const __m128i eq64 = _mm_and_si128(
                eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
            const unsigned m = static_cast<unsigned>(
                _mm_movemask_pd(_mm_castsi128_pd(eq64)));
            hits |= static_cast<std::uint64_t>(m) << (i - base);
        }
        while (hits != 0) {
            const std::size_t lane =
                base + static_cast<unsigned>(__builtin_ctzll(hits));
            if (valid[lane] != 0)
                return lane;
            hits &= hits - 1;
        }
    }
    for (; i < n; ++i)
        if (valid[i] != 0 && tags[i] == tag)
            return i;
    return n;
}

inline void
shiftOrSse2(std::uint64_t *v, const std::uint8_t *shifts,
            std::size_t n, std::uint8_t common_shift,
            std::uint64_t common_or, std::uint64_t other_or)
{
    // SSE2 has no per-lane variable 64-bit shift; the vector body
    // handles the overwhelmingly common all-common-shift pair (one
    // page size) and odd pairs fall back to scalar lanes — exact
    // integer ops, so results are bit-identical either way.
    const __m128i count =
        _mm_cvtsi32_si128(static_cast<int>(common_shift));
    const __m128i orv =
        _mm_set1_epi64x(static_cast<long long>(common_or));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        if (shifts[i] == common_shift && shifts[i + 1] == common_shift) {
            __m128i *p = reinterpret_cast<__m128i *>(v + i);
            _mm_storeu_si128(
                p, _mm_or_si128(_mm_srl_epi64(_mm_loadu_si128(p), count),
                                orv));
        } else {
            v[i] = (v[i] >> shifts[i]) |
                   (shifts[i] == common_shift ? common_or : other_or);
            v[i + 1] =
                (v[i + 1] >> shifts[i + 1]) |
                (shifts[i + 1] == common_shift ? common_or : other_or);
        }
    }
    for (; i < n; ++i) {
        v[i] = (v[i] >> shifts[i]) |
               (shifts[i] == common_shift ? common_or : other_or);
    }
}

/** Low 64 bits of a 64x64 multiply, per lane (SSE2 has no mullo64). */
inline __m128i
mul64Sse2(__m128i a, __m128i b)
{
    const __m128i ll = _mm_mul_epu32(a, b);
    const __m128i hl = _mm_mul_epu32(_mm_srli_epi64(a, 32), b);
    const __m128i lh = _mm_mul_epu32(a, _mm_srli_epi64(b, 32));
    return _mm_add_epi64(
        ll, _mm_slli_epi64(_mm_add_epi64(hl, lh), 32));
}

/**
 * Lane-wise ladder XOR-fold.  foldXor is an XOR of nbits-wide chunks;
 * XOR is associative, so halving the live chunk count each step
 * (v ^= v >> half*nbits, then mask) lands on the identical value in
 * log steps.  The shift counts depend only on nbits, so one sequence
 * serves every lane.
 */
inline __m128i
foldLadderSse2(__m128i v, unsigned nbits)
{
    unsigned chunks = (64 + nbits - 1) / nbits;
    while (chunks > 1) {
        const unsigned half = (chunks + 1) / 2;
        const unsigned shift = half * nbits;
        const __m128i mask =
            _mm_set1_epi64x(static_cast<long long>(maskBits(shift)));
        if (shift < 64)
            v = _mm_xor_si128(v, _mm_srli_epi64(v, shift));
        v = _mm_and_si128(v, mask);
        chunks = half;
    }
    return v;
}

inline void
xorFoldSse2(std::uint64_t *v, std::size_t n, unsigned nbits)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m128i *p = reinterpret_cast<__m128i *>(v + i);
        _mm_storeu_si128(p, foldLadderSse2(_mm_loadu_si128(p), nbits));
    }
    for (; i < n; ++i)
        v[i] = foldXor(v[i], nbits);
}

inline void
mulXorFoldSse2(std::uint64_t *v, std::size_t n, std::uint64_t k,
               unsigned nbits)
{
    const __m128i kv = _mm_set1_epi64x(static_cast<long long>(k));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m128i *p = reinterpret_cast<__m128i *>(v + i);
        _mm_storeu_si128(
            p, foldLadderSse2(mul64Sse2(_mm_loadu_si128(p), kv), nbits));
    }
    for (; i < n; ++i)
        v[i] = foldXor(v[i] * k, nbits);
}

/** The precomputed ladder of a FoldPlan, two lanes at a time. */
inline __m128i
foldPlanSse2(__m128i v, const FoldPlan &plan)
{
    for (unsigned s = 0; s < plan.steps; ++s) {
        v = _mm_xor_si128(
            v, _mm_srli_epi64(v, static_cast<int>(plan.shift[s])));
        v = _mm_and_si128(
            v, _mm_set1_epi64x(
                   static_cast<long long>(plan.mask[s])));
    }
    return v;
}

inline void
xorFoldPlanSse2(std::uint64_t *v, std::size_t n, const FoldPlan &plan)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m128i *p = reinterpret_cast<__m128i *>(v + i);
        _mm_storeu_si128(p, foldPlanSse2(_mm_loadu_si128(p), plan));
    }
    for (; i < n; ++i)
        v[i] = plan.apply(v[i]);
}

inline void
mulXorFoldPlanSse2(std::uint64_t *v, std::size_t n, std::uint64_t k,
                   const FoldPlan &plan)
{
    const __m128i kv = _mm_set1_epi64x(static_cast<long long>(k));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m128i *p = reinterpret_cast<__m128i *>(v + i);
        _mm_storeu_si128(
            p, foldPlanSse2(mul64Sse2(_mm_loadu_si128(p), kv), plan));
    }
    for (; i < n; ++i)
        v[i] = plan.apply(v[i] * k);
}

inline void
xorFoldSigSse2(const std::uint64_t *base, std::size_t n,
               std::uint64_t xor_term, const FoldPlan &plan,
               std::uint16_t *sigs)
{
    const __m128i xv = _mm_set1_epi64x(static_cast<long long>(xor_term));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i v = foldPlanSse2(
            _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i *>(
                              base + i)),
                          xv),
            plan);
        sigs[i] = static_cast<std::uint16_t>(
            static_cast<std::uint64_t>(_mm_cvtsi128_si64(v)));
        sigs[i + 1] = static_cast<std::uint16_t>(
            static_cast<std::uint64_t>(
                _mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v))));
    }
    for (; i < n; ++i)
        sigs[i] =
            static_cast<std::uint16_t>(plan.apply(base[i] ^ xor_term));
}

inline void
sigIndexSse2(const std::uint64_t *base, std::size_t n,
             std::uint64_t xor_term, const FoldPlan &sig_plan,
             std::uint64_t salt, std::uint64_t k,
             const FoldPlan &idx_plan, std::uint32_t idx_or,
             std::uint16_t *sigs, std::uint32_t *idxs)
{
    const __m128i xv = _mm_set1_epi64x(static_cast<long long>(xor_term));
    const __m128i saltv = _mm_set1_epi64x(static_cast<long long>(salt));
    const __m128i kv = _mm_set1_epi64x(static_cast<long long>(k));
    const __m128i low16 = _mm_set1_epi64x(0xffff);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m128i v = foldPlanSse2(
            _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i *>(
                              base + i)),
                          xv),
            sig_plan);
        // Index formation sees the u16-truncated stored signature.
        v = _mm_and_si128(v, low16);
        sigs[i] = static_cast<std::uint16_t>(
            static_cast<std::uint64_t>(_mm_cvtsi128_si64(v)));
        sigs[i + 1] = static_cast<std::uint16_t>(
            static_cast<std::uint64_t>(
                _mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v))));
        v = foldPlanSse2(mul64Sse2(_mm_xor_si128(v, saltv), kv),
                         idx_plan);
        idxs[i] = idx_or |
                  static_cast<std::uint32_t>(static_cast<std::uint64_t>(
                      _mm_cvtsi128_si64(v)));
        idxs[i + 1] =
            idx_or |
            static_cast<std::uint32_t>(static_cast<std::uint64_t>(
                _mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v))));
    }
    for (; i < n; ++i) {
        const std::uint16_t sig = static_cast<std::uint16_t>(
            sig_plan.apply(base[i] ^ xor_term));
        sigs[i] = sig;
        idxs[i] =
            idx_or |
            static_cast<std::uint32_t>(idx_plan.apply(
                (static_cast<std::uint64_t>(sig) ^ salt) * k));
    }
}

/*
 * AVX2 variants — out of line in simd.cc (a per-function target
 * attribute blocks inlining into plain callers), entered by the
 * dispatchers below only when the input fills at least one 256-bit
 * vector; their tails delegate back to the SSE2 bodies, so results
 * are bit-identical at every size.
 */

std::size_t firstSetAvx2(const std::uint8_t *v, std::size_t n);
std::size_t firstClearAvx2(const std::uint8_t *v, std::size_t n);
std::size_t firstAtLeastAvx2(const std::uint8_t *v, std::size_t n,
                             std::uint8_t limit);
std::size_t deepestSetAvx2(const std::uint8_t *flags,
                           const std::uint8_t *rank, std::size_t n);
std::uint8_t maxLaneAvx2(const std::uint8_t *v, std::size_t n);
void addToLanesAvx2(std::uint8_t *v, std::size_t n,
                    std::uint8_t delta);
std::size_t matchTagAvx2(const Addr *tags, const std::uint8_t *valid,
                         std::size_t n, Addr tag);
void shiftOrAvx2(std::uint64_t *v, const std::uint8_t *shifts,
                 std::size_t n, std::uint8_t common_shift,
                 std::uint64_t common_or, std::uint64_t other_or);
void xorFoldAvx2(std::uint64_t *v, std::size_t n, unsigned nbits);
void mulXorFoldAvx2(std::uint64_t *v, std::size_t n, std::uint64_t k,
                    unsigned nbits);
void xorFoldPlanAvx2(std::uint64_t *v, std::size_t n,
                     const FoldPlan &plan);
void mulXorFoldPlanAvx2(std::uint64_t *v, std::size_t n,
                        std::uint64_t k, const FoldPlan &plan);
void xorFoldSigAvx2(const std::uint64_t *base, std::size_t n,
                    std::uint64_t xor_term, const FoldPlan &plan,
                    std::uint16_t *sigs);
void sigIndexAvx2(const std::uint64_t *base, std::size_t n,
                  std::uint64_t xor_term, const FoldPlan &sig_plan,
                  std::uint64_t salt, std::uint64_t k,
                  const FoldPlan &idx_plan, std::uint32_t idx_or,
                  std::uint16_t *sigs, std::uint32_t *idxs);

/** Lanes an AVX2 byte kernel needs before the 256-bit loop runs. */
inline constexpr std::size_t kAvx2Bytes = 32;
/** 64-bit lanes an AVX2 u64 kernel needs (one full vector). */
inline constexpr std::size_t kAvx2Words = 4;

#endif // CHIRP_SIMD_X86

#ifdef CHIRP_SIMD_NEON

/* NEON variants — baseline on aarch64, no runtime check needed. */

inline std::uint64_t
laneMask64(uint8x16_t cmp)
{
    // Compress the 16 byte-lanes of a compare result to a nibble-per
    // lane bitmask (NEON has no movemask; shrn by 4 is the idiom).
    const uint8x8_t narrowed =
        vshrn_n_u16(vreinterpretq_u16_u8(cmp), 4);
    return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline std::size_t
firstSetNeon(const std::uint8_t *v, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t x = vld1q_u8(v + i);
        const std::uint64_t set =
            ~laneMask64(vceqq_u8(x, vdupq_n_u8(0)));
        if (set != 0)
            return i + static_cast<unsigned>(__builtin_ctzll(set)) / 4;
    }
    for (; i < n; ++i)
        if (v[i] != 0)
            return i;
    return n;
}

inline std::size_t
firstClearNeon(const std::uint8_t *v, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t x = vld1q_u8(v + i);
        const std::uint64_t zeros =
            laneMask64(vceqq_u8(x, vdupq_n_u8(0)));
        if (zeros != 0)
            return i +
                   static_cast<unsigned>(__builtin_ctzll(zeros)) / 4;
    }
    for (; i < n; ++i)
        if (v[i] == 0)
            return i;
    return n;
}

inline std::size_t
firstAtLeastNeon(const std::uint8_t *v, std::size_t n,
                 std::uint8_t limit)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t x = vld1q_u8(v + i);
        const std::uint64_t ge =
            laneMask64(vcgeq_u8(x, vdupq_n_u8(limit)));
        if (ge != 0)
            return i + static_cast<unsigned>(__builtin_ctzll(ge)) / 4;
    }
    for (; i < n; ++i)
        if (v[i] >= limit)
            return i;
    return n;
}

inline uint8x16_t
maskedRankNeon(const std::uint8_t *flags, const std::uint8_t *rank,
               std::size_t i)
{
    const uint8x16_t live = vtstq_u8(vld1q_u8(flags + i),
                                     vdupq_n_u8(0xff));
    return vandq_u8(live, vaddq_u8(vld1q_u8(rank + i), vdupq_n_u8(1)));
}

inline std::size_t
deepestSetNeon(const std::uint8_t *flags, const std::uint8_t *rank,
               std::size_t n)
{
    uint8x16_t vmax = vdupq_n_u8(0);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        vmax = vmaxq_u8(vmax, maskedRankNeon(flags, rank, i));
    std::uint8_t best = vmaxvq_u8(vmax);
    for (std::size_t j = i; j < n; ++j) {
        const std::uint8_t key =
            flags[j] != 0 ? static_cast<std::uint8_t>(rank[j] + 1) : 0;
        if (key > best)
            best = key;
    }
    if (best == 0)
        return n;
    for (i = 0; i + 16 <= n; i += 16) {
        const std::uint64_t hit = laneMask64(
            vceqq_u8(maskedRankNeon(flags, rank, i), vdupq_n_u8(best)));
        if (hit != 0)
            return i + static_cast<unsigned>(__builtin_ctzll(hit)) / 4;
    }
    for (; i < n; ++i) {
        const std::uint8_t key =
            flags[i] != 0 ? static_cast<std::uint8_t>(rank[i] + 1) : 0;
        if (key == best)
            return i;
    }
    return n;
}

inline std::uint8_t
maxLaneNeon(const std::uint8_t *v, std::size_t n)
{
    uint8x16_t vmax = vdupq_n_u8(0);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        vmax = vmaxq_u8(vmax, vld1q_u8(v + i));
    std::uint8_t best = vmaxvq_u8(vmax);
    for (; i < n; ++i)
        if (v[i] > best)
            best = v[i];
    return best;
}

inline void
addToLanesNeon(std::uint8_t *v, std::size_t n, std::uint8_t delta)
{
    const uint8x16_t d = vdupq_n_u8(delta);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        vst1q_u8(v + i, vaddq_u8(vld1q_u8(v + i), d));
    for (; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(v[i] + delta);
}

inline std::size_t
matchTagNeon(const Addr *tags, const std::uint8_t *valid,
             std::size_t n, Addr tag)
{
    const uint64x2_t want = vdupq_n_u64(tag);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(tags + i), want);
        if (vgetq_lane_u64(eq, 0) != 0 && valid[i] != 0)
            return i;
        if (vgetq_lane_u64(eq, 1) != 0 && valid[i + 1] != 0)
            return i + 1;
    }
    for (; i < n; ++i)
        if (valid[i] != 0 && tags[i] == tag)
            return i;
    return n;
}

inline void
shiftOrNeon(std::uint64_t *v, const std::uint8_t *shifts,
            std::size_t n, std::uint8_t common_shift,
            std::uint64_t common_or, std::uint64_t other_or)
{
    // vshlq with negative per-lane counts is a per-lane right shift,
    // so mixed page sizes stay on the vector path.
    const uint64x2_t cshift = vdupq_n_u64(common_shift);
    const uint64x2_t corv = vdupq_n_u64(common_or);
    const uint64x2_t oorv = vdupq_n_u64(other_or);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t s = vcombine_u64(vcreate_u64(shifts[i]),
                                          vcreate_u64(shifts[i + 1]));
        const int64x2_t neg =
            vnegq_s64(vreinterpretq_s64_u64(s));
        const uint64x2_t shifted = vshlq_u64(vld1q_u64(v + i), neg);
        const uint64x2_t is_common = vceqq_u64(s, cshift);
        const uint64x2_t orv = vbslq_u64(is_common, corv, oorv);
        vst1q_u64(v + i, vorrq_u64(shifted, orv));
    }
    for (; i < n; ++i) {
        v[i] = (v[i] >> shifts[i]) |
               (shifts[i] == common_shift ? common_or : other_or);
    }
}

inline uint64x2_t
foldLadderNeon(uint64x2_t v, unsigned nbits)
{
    unsigned chunks = (64 + nbits - 1) / nbits;
    while (chunks > 1) {
        const unsigned half = (chunks + 1) / 2;
        const unsigned shift = half * nbits;
        const uint64x2_t mask = vdupq_n_u64(maskBits(shift));
        if (shift < 64)
            v = veorq_u64(
                v, vshlq_u64(v, vdupq_n_s64(
                                    -static_cast<std::int64_t>(shift))));
        v = vandq_u64(v, mask);
        chunks = half;
    }
    return v;
}

inline void
xorFoldNeon(std::uint64_t *v, std::size_t n, unsigned nbits)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(v + i, foldLadderNeon(vld1q_u64(v + i), nbits));
    for (; i < n; ++i)
        v[i] = foldXor(v[i], nbits);
}

inline void
mulXorFoldNeon(std::uint64_t *v, std::size_t n, std::uint64_t k,
               unsigned nbits)
{
    // NEON has no 64-bit lane multiply; the scalar multiply feeds the
    // vector ladder two lanes at a time.
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        std::uint64_t prod[2] = {v[i] * k, v[i + 1] * k};
        vst1q_u64(v + i, foldLadderNeon(vld1q_u64(prod), nbits));
    }
    for (; i < n; ++i)
        v[i] = foldXor(v[i] * k, nbits);
}

/** The precomputed ladder of a FoldPlan, two lanes at a time. */
inline uint64x2_t
foldPlanNeon(uint64x2_t v, const FoldPlan &plan)
{
    for (unsigned s = 0; s < plan.steps; ++s) {
        v = veorq_u64(
            v, vshlq_u64(
                   v, vdupq_n_s64(-static_cast<std::int64_t>(
                          plan.shift[s]))));
        v = vandq_u64(v, vdupq_n_u64(plan.mask[s]));
    }
    return v;
}

inline void
xorFoldPlanNeon(std::uint64_t *v, std::size_t n, const FoldPlan &plan)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(v + i, foldPlanNeon(vld1q_u64(v + i), plan));
    for (; i < n; ++i)
        v[i] = plan.apply(v[i]);
}

inline void
mulXorFoldPlanNeon(std::uint64_t *v, std::size_t n, std::uint64_t k,
                   const FoldPlan &plan)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        std::uint64_t prod[2] = {v[i] * k, v[i + 1] * k};
        vst1q_u64(v + i, foldPlanNeon(vld1q_u64(prod), plan));
    }
    for (; i < n; ++i)
        v[i] = plan.apply(v[i] * k);
}

inline void
xorFoldSigNeon(const std::uint64_t *base, std::size_t n,
               std::uint64_t xor_term, const FoldPlan &plan,
               std::uint16_t *sigs)
{
    const uint64x2_t xv = vdupq_n_u64(xor_term);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v =
            foldPlanNeon(veorq_u64(vld1q_u64(base + i), xv), plan);
        sigs[i] = static_cast<std::uint16_t>(vgetq_lane_u64(v, 0));
        sigs[i + 1] = static_cast<std::uint16_t>(vgetq_lane_u64(v, 1));
    }
    for (; i < n; ++i)
        sigs[i] =
            static_cast<std::uint16_t>(plan.apply(base[i] ^ xor_term));
}

inline void
sigIndexNeon(const std::uint64_t *base, std::size_t n,
             std::uint64_t xor_term, const FoldPlan &sig_plan,
             std::uint64_t salt, std::uint64_t k,
             const FoldPlan &idx_plan, std::uint32_t idx_or,
             std::uint16_t *sigs, std::uint32_t *idxs)
{
    // As in mulXorFoldPlanNeon, the 64-bit multiply is scalar (no
    // 64-bit lane multiply on NEON) and the ladders run two lanes at
    // a time.
    const uint64x2_t xv = vdupq_n_u64(xor_term);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v =
            foldPlanNeon(veorq_u64(vld1q_u64(base + i), xv), sig_plan);
        const std::uint16_t s0 =
            static_cast<std::uint16_t>(vgetq_lane_u64(v, 0));
        const std::uint16_t s1 =
            static_cast<std::uint16_t>(vgetq_lane_u64(v, 1));
        sigs[i] = s0;
        sigs[i + 1] = s1;
        std::uint64_t prod[2] = {
            (static_cast<std::uint64_t>(s0) ^ salt) * k,
            (static_cast<std::uint64_t>(s1) ^ salt) * k};
        const uint64x2_t x = foldPlanNeon(vld1q_u64(prod), idx_plan);
        idxs[i] = idx_or | static_cast<std::uint32_t>(
                               vgetq_lane_u64(x, 0));
        idxs[i + 1] = idx_or | static_cast<std::uint32_t>(
                                   vgetq_lane_u64(x, 1));
    }
    for (; i < n; ++i) {
        const std::uint16_t sig = static_cast<std::uint16_t>(
            sig_plan.apply(base[i] ^ xor_term));
        sigs[i] = sig;
        idxs[i] =
            idx_or |
            static_cast<std::uint32_t>(idx_plan.apply(
                (static_cast<std::uint64_t>(sig) ^ salt) * k));
    }
}

#endif // CHIRP_SIMD_NEON

} // namespace detail

/**
 * The backend every kernel dispatches to: the strongest ISA compiled
 * in and supported by this host, unless CHIRP_FORCE_SCALAR demotes it
 * to Scalar.  Detected once and cached; tests that flip the
 * environment at runtime call refreshBackend().
 */
inline Backend
activeBackend()
{
    return detail::g_backend;
}

/** Index of the first nonzero lane of @p v, or @p n (dead-bit scan). */
inline std::size_t
firstSetLane(const std::uint8_t *v, std::size_t n)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::firstSetScalar(v, n);
    if (b == Backend::Avx2 && n >= detail::kAvx2Bytes)
        return detail::firstSetAvx2(v, n);
    return detail::firstSetSse2(v, n);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::firstSetScalar(v, n);
    return detail::firstSetNeon(v, n);
#else
    return detail::firstSetScalar(v, n);
#endif
}

/** Index of the first zero lane of @p v, or @p n (invalid-way scan). */
inline std::size_t
firstClearLane(const std::uint8_t *v, std::size_t n)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::firstClearScalar(v, n);
    if (b == Backend::Avx2 && n >= detail::kAvx2Bytes)
        return detail::firstClearAvx2(v, n);
    return detail::firstClearSse2(v, n);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::firstClearScalar(v, n);
    return detail::firstClearNeon(v, n);
#else
    return detail::firstClearScalar(v, n);
#endif
}

/** Index of the first lane with v[i] >= limit, or @p n (RRPV scan). */
inline std::size_t
firstLaneAtLeast(const std::uint8_t *v, std::size_t n,
                 std::uint8_t limit)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::firstAtLeastScalar(v, n, limit);
    if (b == Backend::Avx2 && n >= detail::kAvx2Bytes)
        return detail::firstAtLeastAvx2(v, n, limit);
    return detail::firstAtLeastSse2(v, n, limit);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::firstAtLeastScalar(v, n, limit);
    return detail::firstAtLeastNeon(v, n, limit);
#else
    return detail::firstAtLeastScalar(v, n, limit);
#endif
}

/**
 * Among lanes with flags[i] != 0, the index of the first lane whose
 * rank[i] is maximal (strictly-greater updates, so the earliest
 * maximum wins — the CHiRP deepest-dead victim contract); @p n when
 * no flag is set.  Ranks must be <= 254 (they are recency positions,
 * bounded by the associativity).
 */
inline std::size_t
deepestSetLane(const std::uint8_t *flags, const std::uint8_t *rank,
               std::size_t n)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::deepestSetScalar(flags, rank, n);
    if (b == Backend::Avx2 && n >= detail::kAvx2Bytes)
        return detail::deepestSetAvx2(flags, rank, n);
    return detail::deepestSetSse2(flags, rank, n);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::deepestSetScalar(flags, rank, n);
    return detail::deepestSetNeon(flags, rank, n);
#else
    return detail::deepestSetScalar(flags, rank, n);
#endif
}

/** Maximum lane value, 0 when @p n == 0 (RRIP aging deficit). */
inline std::uint8_t
maxLane(const std::uint8_t *v, std::size_t n)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::maxLaneScalar(v, n);
    if (b == Backend::Avx2 && n >= detail::kAvx2Bytes)
        return detail::maxLaneAvx2(v, n);
    return detail::maxLaneSse2(v, n);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::maxLaneScalar(v, n);
    return detail::maxLaneNeon(v, n);
#else
    return detail::maxLaneScalar(v, n);
#endif
}

/** Add @p delta to every lane (no saturation; caller bounds it). */
inline void
addToLanes(std::uint8_t *v, std::size_t n, std::uint8_t delta)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::addToLanesScalar(v, n, delta);
    if (b == Backend::Avx2 && n >= detail::kAvx2Bytes)
        return detail::addToLanesAvx2(v, n, delta);
    return detail::addToLanesSse2(v, n, delta);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::addToLanesScalar(v, n, delta);
    return detail::addToLanesNeon(v, n, delta);
#else
    return detail::addToLanesScalar(v, n, delta);
#endif
}

/**
 * Index of the first lane with valid[i] != 0 and tags[i] == tag, or
 * @p n — the set-associative tag match.
 */
inline std::size_t
matchTagLane(const Addr *tags, const std::uint8_t *valid,
             std::size_t n, Addr tag)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::matchTagScalar(tags, valid, n, tag);
    if (b == Backend::Avx2 && n >= detail::kAvx2Words)
        return detail::matchTagAvx2(tags, valid, n, tag);
    return detail::matchTagSse2(tags, valid, n, tag);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::matchTagScalar(tags, valid, n, tag);
    return detail::matchTagNeon(tags, valid, n, tag);
#else
    return detail::matchTagScalar(tags, valid, n, tag);
#endif
}

/**
 * Lane-wise shift-then-or: v[i] = (v[i] >> shifts[i]) |
 * (shifts[i] == common_shift ? common_or : other_or) — the TLB key
 * composition (VPN extract plus size-class/ASID tag bits) over a lane
 * of virtual addresses.  @p common_shift is the page shift the caller
 * expects to dominate (the base page size); lanes using any other
 * shift get @p other_or instead.
 */
inline void
shiftOrLanes(std::uint64_t *v, const std::uint8_t *shifts,
             std::size_t n, std::uint8_t common_shift,
             std::uint64_t common_or, std::uint64_t other_or)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::shiftOrScalar(v, shifts, n, common_shift,
                                     common_or, other_or);
    if (b == Backend::Avx2 && n >= detail::kAvx2Words)
        return detail::shiftOrAvx2(v, shifts, n, common_shift,
                                   common_or, other_or);
    return detail::shiftOrSse2(v, shifts, n, common_shift, common_or,
                               other_or);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::shiftOrScalar(v, shifts, n, common_shift,
                                     common_or, other_or);
    return detail::shiftOrNeon(v, shifts, n, common_shift, common_or,
                               other_or);
#else
    return detail::shiftOrScalar(v, shifts, n, common_shift, common_or,
                                 other_or);
#endif
}

/**
 * Lane-wise foldXor: v[i] = foldXor(v[i], nbits) for every lane —
 * GHRP's per-table signature composition (one lane per table).
 */
inline void
xorFoldLanes(std::uint64_t *v, std::size_t n, unsigned nbits)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::xorFoldScalar(v, n, nbits);
    if (b == Backend::Avx2 && n >= detail::kAvx2Words)
        return detail::xorFoldAvx2(v, n, nbits);
    return detail::xorFoldSse2(v, n, nbits);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::xorFoldScalar(v, n, nbits);
    return detail::xorFoldNeon(v, n, nbits);
#else
    return detail::xorFoldScalar(v, n, nbits);
#endif
}

/**
 * Lane-wise multiplicative index hash: v[i] = foldXor(v[i] * k,
 * nbits) — the indexHash of every prediction table, applied to all
 * lanes at once (GHRP's three table indices per access).
 */
inline void
mulXorFoldLanes(std::uint64_t *v, std::size_t n, std::uint64_t k,
                unsigned nbits)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::mulXorFoldScalar(v, n, k, nbits);
    if (b == Backend::Avx2 && n >= detail::kAvx2Words)
        return detail::mulXorFoldAvx2(v, n, k, nbits);
    return detail::mulXorFoldSse2(v, n, k, nbits);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::mulXorFoldScalar(v, n, k, nbits);
    return detail::mulXorFoldNeon(v, n, k, nbits);
#else
    return detail::mulXorFoldScalar(v, n, k, nbits);
#endif
}

/**
 * xorFoldLanes with the ladder precomputed: identical results to the
 * nbits overload for plan = FoldPlan(nbits), without the per-call
 * chunk-count division and mask formation — the form the per-access
 * GHRP composition uses.
 */
inline void
xorFoldLanes(std::uint64_t *v, std::size_t n, const FoldPlan &plan)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::xorFoldPlanScalar(v, n, plan);
    if (b == Backend::Avx2 && n >= detail::kAvx2Words)
        return detail::xorFoldPlanAvx2(v, n, plan);
    return detail::xorFoldPlanSse2(v, n, plan);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::xorFoldPlanScalar(v, n, plan);
    return detail::xorFoldPlanNeon(v, n, plan);
#else
    return detail::xorFoldPlanScalar(v, n, plan);
#endif
}

/** mulXorFoldLanes with the ladder precomputed (see above). */
inline void
mulXorFoldLanes(std::uint64_t *v, std::size_t n, std::uint64_t k,
                const FoldPlan &plan)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::mulXorFoldPlanScalar(v, n, k, plan);
    if (b == Backend::Avx2 && n >= detail::kAvx2Words)
        return detail::mulXorFoldPlanAvx2(v, n, k, plan);
    return detail::mulXorFoldPlanSse2(v, n, k, plan);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::mulXorFoldPlanScalar(v, n, k, plan);
    return detail::mulXorFoldPlanNeon(v, n, k, plan);
#else
    return detail::mulXorFoldPlanScalar(v, n, k, plan);
#endif
}

/**
 * Fused signature composition: sigs[i] = u16(plan.apply(base[i] ^
 * xor_term)) — the xor, fold ladder and u16 truncation of a whole
 * chunk in one pass over @p base (unmodified), with no intermediate
 * lane array round trips.  CHiRP's batched chunk compose.
 */
inline void
xorFoldSigLanes(const std::uint64_t *base, std::size_t n,
                std::uint64_t xor_term, const FoldPlan &plan,
                std::uint16_t *sigs)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::xorFoldSigScalar(base, n, xor_term, plan, sigs);
    if (b == Backend::Avx2 && n >= detail::kAvx2Words)
        return detail::xorFoldSigAvx2(base, n, xor_term, plan, sigs);
    return detail::xorFoldSigSse2(base, n, xor_term, plan, sigs);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::xorFoldSigScalar(base, n, xor_term, plan, sigs);
    return detail::xorFoldSigNeon(base, n, xor_term, plan, sigs);
#else
    return detail::xorFoldSigScalar(base, n, xor_term, plan, sigs);
#endif
}

/**
 * Fused signature + table-index composition over one chunk:
 *
 *   sig     = u16(sig_plan.apply(base[i] ^ xor_term))
 *   sigs[i] = sig
 *   idxs[i] = idx_or | u32(idx_plan.apply((u64(sig) ^ salt) * k))
 *
 * — the whole signature-then-multiplicative-index-hash pipeline of a
 * prediction table (GHRP's per-table composition, PredictionTable::
 * indexOf's math) in registers, one pass over @p base (unmodified),
 * instead of separate fill/fold/truncate/salt/hash passes each
 * streaming the chunk through memory.  @p idx_or is OR-ed into every
 * index (a caller's table-bank base); pass 0 for none.
 */
inline void
sigIndexLanes(const std::uint64_t *base, std::size_t n,
              std::uint64_t xor_term, const FoldPlan &sig_plan,
              std::uint64_t salt, std::uint64_t k,
              const FoldPlan &idx_plan, std::uint32_t idx_or,
              std::uint16_t *sigs, std::uint32_t *idxs)
{
#if defined(CHIRP_SIMD_X86)
    const Backend b = detail::g_backend;
    if (b == Backend::Scalar)
        return detail::sigIndexScalar(base, n, xor_term, sig_plan, salt,
                                      k, idx_plan, idx_or, sigs, idxs);
    if (b == Backend::Avx2 && n >= detail::kAvx2Words)
        return detail::sigIndexAvx2(base, n, xor_term, sig_plan, salt,
                                    k, idx_plan, idx_or, sigs, idxs);
    return detail::sigIndexSse2(base, n, xor_term, sig_plan, salt, k,
                                idx_plan, idx_or, sigs, idxs);
#elif defined(CHIRP_SIMD_NEON)
    if (detail::g_backend == Backend::Scalar)
        return detail::sigIndexScalar(base, n, xor_term, sig_plan, salt,
                                      k, idx_plan, idx_or, sigs, idxs);
    return detail::sigIndexNeon(base, n, xor_term, sig_plan, salt, k,
                                idx_plan, idx_or, sigs, idxs);
#else
    return detail::sigIndexScalar(base, n, xor_term, sig_plan, salt, k,
                                  idx_plan, idx_or, sigs, idxs);
#endif
}

} // namespace simd
} // namespace chirp

#endif // CHIRP_UTIL_SIMD_HH
