/**
 * @file
 * Bit-packed array of small saturating-counter values.
 *
 * The prediction tables store thousands of 2- and 3-bit counters; as
 * plain uint16_t a 4K-entry table is 8KB, spilling the predictor
 * working set out of L1 once three tables and the TLB metadata
 * compete for it.  Packing counters at their natural width keeps the
 * same table in 1-2KB.  Lanes are widened to the next power of two so
 * no counter ever straddles a word — get/set are one shift+mask on a
 * single uint64, with no cross-word carry cases.
 *
 * This models the hardware budget too: storageBits() of a table is
 * entries * counterBits regardless of the packing, so the packing is
 * purely a simulation-speed layout choice.
 */

#ifndef CHIRP_UTIL_PACKED_COUNTERS_HH
#define CHIRP_UTIL_PACKED_COUNTERS_HH

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/bitfield.hh"

namespace chirp
{

/** A fixed-size array of @c n unsigned values of @c counterBits each. */
class PackedCounterArray
{
  public:
    PackedCounterArray() = default;

    PackedCounterArray(std::size_t n, unsigned counter_bits)
        : size_(n), laneBits_(lanesFor(counter_bits)),
          laneMask_(maskBits(lanesFor(counter_bits))),
          lanesPerWordLog2_(floorLog2(64 / lanesFor(counter_bits))),
          laneIndexMask_((64 / lanesFor(counter_bits)) - 1),
          words_((n + (64 / lanesFor(counter_bits)) - 1) /
                 (64 / lanesFor(counter_bits)))
    {
        assert(counter_bits > 0 && counter_bits <= 16);
    }

    std::uint16_t
    get(std::size_t i) const
    {
        assert(i < size_);
        if (laneBits_ == 8)
            return bytes()[i];
        return static_cast<std::uint16_t>(
            (words_[i >> lanesPerWordLog2_] >> shiftOf(i)) & laneMask_);
    }

    void
    set(std::size_t i, std::uint16_t value)
    {
        assert(i < size_ && value <= laneMask_);
        if (laneBits_ == 8) {
            bytes()[i] = static_cast<std::uint8_t>(value);
            return;
        }
        std::uint64_t &word = words_[i >> lanesPerWordLog2_];
        const unsigned shift = shiftOf(i);
        word = (word & ~(laneMask_ << shift)) |
               (static_cast<std::uint64_t>(value) << shift);
    }

    /** Zero every counter. */
    void
    reset()
    {
        std::fill(words_.begin(), words_.end(), 0);
    }

    std::size_t size() const { return size_; }

    /** Bits a counter occupies in the packed layout (power of two). */
    unsigned laneBits() const { return laneBits_; }

    /** Bytes of simulator memory backing the array. */
    std::size_t footprintBytes() const { return words_.size() * 8; }

  private:
    static constexpr unsigned
    lanesFor(unsigned counter_bits)
    {
        unsigned lane = 1;
        while (lane < counter_bits)
            lane *= 2;
        return lane < 8 ? 8 : lane;
    }

    unsigned
    shiftOf(std::size_t i) const
    {
        return static_cast<unsigned>(i & laneIndexMask_) * laneBits_;
    }

    /** Byte-lane view of words_ (valid only when laneBits_ == 8). */
    std::uint8_t *
    bytes()
    {
        return reinterpret_cast<std::uint8_t *>(words_.data());
    }
    const std::uint8_t *
    bytes() const
    {
        return reinterpret_cast<const std::uint8_t *>(words_.data());
    }

    std::size_t size_ = 0;
    unsigned laneBits_ = 1;
    std::uint64_t laneMask_ = 1;
    unsigned lanesPerWordLog2_ = 6;
    std::size_t laneIndexMask_ = 63;
    std::vector<std::uint64_t> words_;
};

} // namespace chirp

#endif // CHIRP_UTIL_PACKED_COUNTERS_HH
