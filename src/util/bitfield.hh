/**
 * @file
 * Bit-manipulation helpers used when composing prediction signatures.
 *
 * CHiRP's signature construction is defined bit-by-bit in the paper
 * (PC[3:2] shifted into the path history, PC[11:4] into the branch
 * histories, zero injection between path-history chunks).  These
 * helpers keep that arithmetic readable at the call sites.
 */

#ifndef CHIRP_UTIL_BITFIELD_HH
#define CHIRP_UTIL_BITFIELD_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace chirp
{

/**
 * A mask with the low @p nbits bits set.  `maskBits(0) == 0` and
 * `maskBits(64)` is all ones.
 */
constexpr std::uint64_t
maskBits(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << nbits) - 1);
}

/**
 * Extract bits [hi:lo] of @p value, inclusive on both ends, shifted
 * down to bit 0.  Matches the paper's VA_{2..3} / VA_{4..11} notation.
 */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned hi, unsigned lo)
{
    assert(hi >= lo && hi < 64);
    return (value >> lo) & maskBits(hi - lo + 1);
}

/** Extract a single bit of @p value. */
constexpr std::uint64_t
bit(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/**
 * Replace bits [hi:lo] of @p dst with the low bits of @p src and
 * return the result.
 */
constexpr std::uint64_t
insertBits(std::uint64_t dst, unsigned hi, unsigned lo, std::uint64_t src)
{
    assert(hi >= lo && hi < 64);
    const std::uint64_t m = maskBits(hi - lo + 1);
    return (dst & ~(m << lo)) | ((src & m) << lo);
}

/** True when @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; @p value must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    assert(value != 0);
    return 63 - std::countl_zero(value);
}

/** Ceiling of log2; `ceilLog2(1) == 0`. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    assert(value != 0);
    return value == 1 ? 0 : floorLog2(value - 1) + 1;
}

/**
 * Fold a 64-bit value down to @p nbits by XOR of @p nbits-wide
 * chunks.  This is the cheap hardware-style hash the predictor tables
 * use for index formation.
 *
 * Evaluated as a shift ladder: each step XORs the upper half of the
 * live chunks onto the lower half, halving the chunk count, so the
 * whole fold is log2(64/nbits) steps with no loop-carried shift of
 * the value itself.  XOR associativity makes this bit-identical to
 * the naive walk over all chunks — the SIMD lane kernels use the same
 * ladder, so scalar and vector hashes agree by construction.
 */
constexpr std::uint64_t
foldXor(std::uint64_t value, unsigned nbits)
{
    assert(nbits > 0 && nbits < 64);
    unsigned chunks = (64 + nbits - 1) / nbits;
    while (chunks > 1) {
        const unsigned half = (chunks + 1) / 2;
        const unsigned shift = half * nbits;
        if (shift < 64)
            value ^= value >> shift;
        value &= maskBits(shift);
        chunks = half;
    }
    return value;
}

} // namespace chirp

#endif // CHIRP_UTIL_BITFIELD_HH
