/**
 * @file
 * Process and socket plumbing for the distributed sweep fabric.
 *
 * Thin POSIX wrappers with error strings instead of errno spelunking:
 * connected AF_UNIX socket pairs for coordinator<->worker wires,
 * fork/exec of worker processes that inherit exactly one descriptor,
 * and listen/connect helpers for attaching external workers over a
 * filesystem socket.  Everything is CLOEXEC by default so spawned
 * workers never leak unrelated descriptors.
 */

#ifndef CHIRP_UTIL_SUBPROCESS_HH
#define CHIRP_UTIL_SUBPROCESS_HH

#include <string>
#include <vector>

#include <sys/types.h>

namespace chirp
{

/**
 * Create a connected AF_UNIX stream pair (both ends CLOEXEC).
 * Returns false and sets @p error on failure.
 */
bool makeSocketPair(int fds[2], std::string *error);

/**
 * fork/exec @p argv with @p child_fd kept open across the exec (its
 * CLOEXEC flag is cleared in the child) and the child's stdout
 * redirected to /dev/null — worker processes re-execute a bench
 * binary whose stdout tables are meaningless garbage; only the wire
 * and stderr matter.  Returns the child pid, or -1 with @p error set.
 */
pid_t spawnWithFd(const std::vector<std::string> &argv, int child_fd,
                  std::string *error);

/**
 * Ignore SIGPIPE process-wide so writes to a dead peer fail with
 * EPIPE instead of killing the process.  Idempotent.
 */
void ignoreSigpipe();

/**
 * Let the kernel auto-reap exited children (SIGCHLD -> SIG_IGN), so a
 * coordinator never blocks on a wedged worker at shutdown and leaves
 * no zombies behind.  Idempotent.
 */
void autoReapChildren();

/**
 * Listen on AF_UNIX @p path (unlinking any stale socket first).
 * Returns the listening fd (CLOEXEC), or -1 with @p error set.
 */
int listenUnix(const std::string &path, std::string *error);

/**
 * Connect to AF_UNIX @p path, retrying for up to @p timeout_ms while
 * the socket does not exist yet (the coordinator may still be
 * starting).  Returns the connected fd (CLOEXEC), or -1 with
 * @p error set.
 */
int connectUnix(const std::string &path, unsigned timeout_ms,
                std::string *error);

} // namespace chirp

#endif // CHIRP_UTIL_SUBPROCESS_HH
