/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (workload generators, the
 * Random replacement policy, dataset shuffling) draws from Xorshift64Star
 * seeded explicitly, so a (seed, configuration) pair fully determines a
 * simulation.  std::mt19937 is avoided to keep results stable across
 * standard-library versions.
 */

#ifndef CHIRP_UTIL_RANDOM_HH
#define CHIRP_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace chirp
{

/**
 * Xorshift64* generator: tiny state, good statistical quality for
 * simulation purposes, and identical output on every platform.
 */
class Rng
{
  public:
    /** Seed the generator; a zero seed is remapped to a fixed value. */
    explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); @p bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p);

    /**
     * Zipf-distributed rank in [0, n) with exponent @p s, computed by
     * inversion against a lazily built CDF.  Used for hot/cold page
     * popularity in the synthetic workloads.
     */
    class Zipf
    {
      public:
        Zipf(std::size_t n, double s);

        /** Draw a rank (0 = most popular). */
        std::size_t operator()(Rng &rng) const;

        std::size_t size() const { return cdf_.size(); }

      private:
        std::vector<double> cdf_;
    };

    /** Fisher-Yates shuffle of @p values. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j = below(i);
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Current internal state (for checkpoint-style tests). */
    std::uint64_t state() const { return state_; }

  private:
    std::uint64_t state_;
};

} // namespace chirp

#endif // CHIRP_UTIL_RANDOM_HH
