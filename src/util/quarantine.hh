/**
 * @file
 * Process-wide registry of quarantined artifacts.
 *
 * Several subsystems move evidence of corruption aside instead of
 * deleting it: the trace cache renames bad cache files to
 * "<file>.corrupt", the run journal renames mismatched sidecars to
 * "<file>.stale".  Left alone those accumulate forever in cache and
 * bench directories.  Every rename now reports here, which (a)
 * prunes older artifacts with the same suffix in the same directory
 * down to a bounded count (CHIRP_QUARANTINE_KEEP, default 3 -- the
 * newest are the useful evidence), and (b) feeds a one-line suite-end
 * summary so operators notice quarantines without grepping logs.
 */

#ifndef CHIRP_UTIL_QUARANTINE_HH
#define CHIRP_UTIL_QUARANTINE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace chirp
{

/** One artifact moved aside during this process's lifetime. */
struct QuarantinedArtifact
{
    std::string path;   //!< where the evidence now lives
    std::string reason; //!< why it was quarantined
};

/**
 * Record that @p path now holds quarantined evidence (because of
 * @p reason) and prune older artifacts with the same suffix in the
 * same directory beyond the retention bound.  Thread-safe.
 */
void noteQuarantined(const std::string &path, const std::string &reason);

/** Artifacts recorded by this process, in order. */
std::vector<QuarantinedArtifact> quarantinedArtifacts();

/** Count of artifacts recorded by this process. */
std::size_t quarantinedArtifactCount();

/**
 * One suite-end summary line ("quarantined 2 artifacts: a.corrupt,
 * b.stale"), or "" when nothing was quarantined.
 */
std::string quarantineSummaryLine();

/** Retention bound per directory+suffix (CHIRP_QUARANTINE_KEEP). */
std::size_t quarantineKeepCount();

/** Forget recorded artifacts (tests only; files are not restored). */
void resetQuarantineLog();

} // namespace chirp

#endif // CHIRP_UTIL_QUARANTINE_HH
