#include "util/table.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace chirp
{

void
TableFormatter::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TableFormatter::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TableFormatter::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TableFormatter::num(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
TableFormatter::str() const
{
    // Column widths across header and all rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto render = [&](const std::vector<std::string> &cells,
                      std::string &out) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i]
                                                       : std::string();
            out += cell;
            if (i + 1 < widths.size())
                out += std::string(widths[i] - cell.size() + 2, ' ');
        }
        out += '\n';
    };

    std::string out;
    if (!header_.empty()) {
        render(header_, out);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        out += std::string(total > 2 ? total - 2 : total, '-');
        out += '\n';
    }
    for (const auto &r : rows_)
        render(r, out);
    return out;
}

void
TableFormatter::print(std::FILE *out) const
{
    const std::string s = str();
    std::fwrite(s.data(), 1, s.size(), out);
}

} // namespace chirp
