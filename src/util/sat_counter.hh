/**
 * @file
 * Saturating counters, the storage element of every predictor table.
 */

#ifndef CHIRP_UTIL_SAT_COUNTER_HH
#define CHIRP_UTIL_SAT_COUNTER_HH

#include <cassert>
#include <cstdint>

namespace chirp
{

/**
 * An n-bit unsigned saturating counter.  The width is a runtime
 * parameter because the benches sweep counter widths.
 */
class SatCounter
{
  public:
    /** @param nbits counter width in bits, 1..16. */
    explicit SatCounter(unsigned nbits = 2, std::uint16_t initial = 0)
        : value_(initial),
          max_(static_cast<std::uint16_t>((1u << nbits) - 1))
    {
        assert(nbits >= 1 && nbits <= 16);
        if (value_ > max_)
            value_ = max_;
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Current value. */
    std::uint16_t value() const { return value_; }

    /** Maximum representable value. */
    std::uint16_t max() const { return max_; }

    /** True when the counter has saturated high. */
    bool saturatedHigh() const { return value_ == max_; }

    /** Reset to @p v (clamped). */
    void
    set(std::uint16_t v)
    {
        value_ = v > max_ ? max_ : v;
    }

  private:
    std::uint16_t value_;
    std::uint16_t max_;
};

} // namespace chirp

#endif // CHIRP_UTIL_SAT_COUNTER_HH
