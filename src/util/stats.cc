#include "util/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/logging.hh"

namespace chirp
{

void
RunningStat::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::mean() const
{
    return n_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t nbins)
    : lo_(lo), hi_(hi), counts_(nbins, 0)
{
    assert(hi > lo && nbins > 0);
}

void
Histogram::push(double x)
{
    const double span = hi_ - lo_;
    double idx = (x - lo_) / span * static_cast<double>(counts_.size());
    std::size_t i;
    if (idx < 0.0)
        i = 0;
    else if (idx >= static_cast<double>(counts_.size()))
        i = counts_.size() - 1;
    else
        i = static_cast<std::size_t>(idx);
    ++counts_[i];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * (static_cast<double>(i) + 0.5);
}

double
Histogram::density(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            chirp_fatal("geomean requires positive values, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
geomeanSpeedupPct(const std::vector<double> &ipc,
                  const std::vector<double> &baseline_ipc)
{
    if (ipc.size() != baseline_ipc.size())
        chirp_fatal("speedup vectors differ in length: ", ipc.size(), " vs ",
                    baseline_ipc.size());
    std::vector<double> ratios;
    ratios.reserve(ipc.size());
    for (std::size_t i = 0; i < ipc.size(); ++i)
        ratios.push_back(ipc[i] / baseline_ipc[i]);
    return (geomean(ratios) - 1.0) * 100.0;
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    assert(p >= 0.0 && p <= 100.0);
    std::sort(xs.begin(), xs.end());
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
pctReduction(double baseline, double measured)
{
    if (baseline == 0.0)
        return 0.0;
    return (baseline - measured) / baseline * 100.0;
}

} // namespace chirp
