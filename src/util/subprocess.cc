#include "util/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace chirp
{

namespace
{

std::string
errnoText(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

bool
setCloexec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD);
    return flags >= 0 && ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

} // namespace

bool
makeSocketPair(int fds[2], std::string *error)
{
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        if (error)
            *error = errnoText("socketpair");
        return false;
    }
    if (!setCloexec(fds[0]) || !setCloexec(fds[1])) {
        if (error)
            *error = errnoText("fcntl(FD_CLOEXEC)");
        ::close(fds[0]);
        ::close(fds[1]);
        return false;
    }
    return true;
}

pid_t
spawnWithFd(const std::vector<std::string> &argv, int child_fd,
            std::string *error)
{
    if (argv.empty()) {
        if (error)
            *error = "spawnWithFd: empty argv";
        return -1;
    }
    std::vector<char *> args;
    args.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        args.push_back(const_cast<char *>(arg.c_str()));
    args.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (error)
            *error = errnoText("fork");
        return -1;
    }
    if (pid == 0) {
        // Child: only async-signal-safe calls between fork and exec.
        const int flags = ::fcntl(child_fd, F_GETFD);
        if (flags >= 0)
            ::fcntl(child_fd, F_SETFD, flags & ~FD_CLOEXEC);
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            ::dup2(devnull, STDOUT_FILENO);
            if (devnull != STDOUT_FILENO)
                ::close(devnull);
        }
        ::execv(args[0], args.data());
        // exec failed: nothing sensible to do but die loudly.  137
        // keeps the coordinator's "worker lost" handling uniform.
        const char msg[] = "worker exec failed\n";
        ssize_t ignored = ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
        (void)ignored;
        ::_exit(127);
    }
    return pid;
}

void
ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

void
autoReapChildren()
{
    ::signal(SIGCHLD, SIG_IGN);
}

int
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error)
            *error = errnoText("socket");
        return -1;
    }
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        if (error)
            *error = errnoText("bind/listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, unsigned timeout_ms,
            std::string *error)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + path;
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            if (error)
                *error = errnoText("socket");
            return -1;
        }
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        const int saved = errno;
        ::close(fd);
        // ENOENT/ECONNREFUSED while the coordinator is still coming
        // up are retryable; anything else is a real failure.
        if ((saved != ENOENT && saved != ECONNREFUSED) ||
            std::chrono::steady_clock::now() >= deadline) {
            if (error) {
                errno = saved;
                *error = errnoText(("connect '" + path + "'").c_str());
            }
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

} // namespace chirp
