/**
 * @file
 * Open-addressing hash map from 64-bit keys to small saturating
 * counters.
 *
 * SHiP's unlimited-SHCT mode used to keep one SatCounter per distinct
 * signature in a std::unordered_map, which costs a node allocation
 * per new signature and a rehash of the whole node graph as the
 * working set grows.  This map stores keys and counter values in two
 * flat arrays with linear probing, reserves its capacity up front,
 * and grows by doubling — no per-entry allocation, and clear() keeps
 * the capacity so a policy reset never re-allocates.
 *
 * Only the operations the predictors need exist: read a counter
 * (absent keys read as zero) and increment/decrement with saturation.
 */

#ifndef CHIRP_UTIL_FLAT_COUNTER_MAP_HH
#define CHIRP_UTIL_FLAT_COUNTER_MAP_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/bitfield.hh"
#include "util/hashing.hh"

namespace chirp
{

/** Flat hash table of n-bit saturating counters keyed by uint64. */
class FlatCounterMap
{
  public:
    /**
     * @param counter_bits width of each counter (1..16)
     * @param initial_capacity starting slot count (rounded up to a
     *        power of two; the table grows past it by doubling)
     */
    explicit FlatCounterMap(unsigned counter_bits,
                            std::size_t initial_capacity = 4096)
        : max_(static_cast<std::uint16_t>((1u << counter_bits) - 1))
    {
        std::size_t capacity = 16;
        while (capacity < initial_capacity)
            capacity *= 2;
        keys_.assign(capacity, 0);
        values_.assign(capacity, 0);
        used_.assign(capacity, 0);
    }

    /** Counter value for @p key; absent keys read as zero. */
    std::uint16_t
    value(std::uint64_t key) const
    {
        const std::size_t slot = find(key);
        return used_[slot] ? values_[slot] : 0;
    }

    /** Increment @p key's counter, saturating at the maximum. */
    void
    increment(std::uint64_t key)
    {
        std::uint16_t &value = slotFor(key);
        if (value < max_)
            ++value;
    }

    /** Decrement @p key's counter, saturating at zero. */
    void
    decrement(std::uint64_t key)
    {
        std::uint16_t &value = slotFor(key);
        if (value > 0)
            --value;
    }

    /** Drop every entry; capacity (and so reservations) is kept. */
    void
    clear()
    {
        std::fill(used_.begin(), used_.end(), 0);
        size_ = 0;
    }

    /** Number of distinct keys present. */
    std::size_t size() const { return size_; }

    /** Current slot count. */
    std::size_t capacity() const { return keys_.size(); }

    /** Maximum counter value. */
    std::uint16_t counterMax() const { return max_; }

  private:
    /** Slot of @p key, or the empty slot where it would be inserted. */
    std::size_t
    find(std::uint64_t key) const
    {
        const std::size_t mask = keys_.size() - 1;
        std::size_t slot = static_cast<std::size_t>(mix64(key)) & mask;
        while (used_[slot] && keys_[slot] != key)
            slot = (slot + 1) & mask;
        return slot;
    }

    /** Value slot for @p key, inserting (at zero) when absent. */
    std::uint16_t &
    slotFor(std::uint64_t key)
    {
        std::size_t slot = find(key);
        if (!used_[slot]) {
            // Keep load factor below 3/4 so probe chains stay short.
            if ((size_ + 1) * 4 > keys_.size() * 3) {
                grow();
                slot = find(key);
            }
            used_[slot] = 1;
            keys_[slot] = key;
            values_[slot] = 0;
            ++size_;
        }
        return values_[slot];
    }

    void
    grow()
    {
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<std::uint16_t> old_values = std::move(values_);
        std::vector<std::uint8_t> old_used = std::move(used_);
        const std::size_t capacity = old_keys.size() * 2;
        keys_.assign(capacity, 0);
        values_.assign(capacity, 0);
        used_.assign(capacity, 0);
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (!old_used[i])
                continue;
            const std::size_t slot = find(old_keys[i]);
            used_[slot] = 1;
            keys_[slot] = old_keys[i];
            values_[slot] = old_values[i];
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint16_t> values_;
    std::vector<std::uint8_t> used_;
    std::size_t size_ = 0;
    std::uint16_t max_;
};

} // namespace chirp

#endif // CHIRP_UTIL_FLAT_COUNTER_MAP_HH
