/**
 * @file
 * CSV emission for bench results (machine-readable companion to the
 * console tables).
 */

#ifndef CHIRP_UTIL_CSV_HH
#define CHIRP_UTIL_CSV_HH

#include <cstdio>
#include <string>
#include <vector>

namespace chirp
{

/**
 * Writes RFC-4180-ish CSV: cells containing commas, quotes, or
 * newlines are quoted with internal quotes doubled.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit CsvWriter(const std::string &path);
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write one row. */
    void row(const std::vector<std::string> &cells);

    /** Path this writer targets. */
    const std::string &path() const { return path_; }

  private:
    static std::string escape(const std::string &cell);

    std::string path_;
    std::FILE *file_;
};

} // namespace chirp

#endif // CHIRP_UTIL_CSV_HH
