/**
 * @file
 * CSV emission for bench results (machine-readable companion to the
 * console tables).
 */

#ifndef CHIRP_UTIL_CSV_HH
#define CHIRP_UTIL_CSV_HH

#include <memory>
#include <string>
#include <vector>

#include "util/atomic_file.hh"

namespace chirp
{

/**
 * Writes RFC-4180-ish CSV: cells containing commas, quotes, or
 * newlines are quoted with internal quotes doubled.
 *
 * Rows accumulate in a private temp file and are published to the
 * target path in one atomic rename at close() (or destruction), so a
 * crashed run leaves any previous CSV intact instead of a truncated
 * one.  Open, write, and publish failures are all fatal with the OS
 * reason -- a bench must never exit 0 having silently dropped its
 * results.
 */
class CsvWriter
{
  public:
    /** Open the temp file for @p path; fatal on failure. */
    explicit CsvWriter(const std::string &path);

    /** Publishes via close() if still open (fatal on failure). */
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Write one row; fatal on I/O failure. */
    void row(const std::vector<std::string> &cells);

    /** Flush, fsync, and atomically publish; fatal on failure. */
    void close();

    /** Path this writer targets. */
    const std::string &path() const { return path_; }

  private:
    static std::string escape(const std::string &cell);

    std::string path_;
    std::unique_ptr<AtomicFile> file_;
};

} // namespace chirp

#endif // CHIRP_UTIL_CSV_HH
