#include "learn/adaline.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace chirp
{

Adaline::Adaline(const AdalineConfig &config)
    : config_(config), weights_(config.inputs, 0.0)
{
    if (config.inputs == 0)
        chirp_fatal("adaline needs at least one input");
}

double
Adaline::output(const std::vector<double> &x) const
{
    if (x.size() != weights_.size())
        chirp_fatal("adaline input width ", x.size(), " != ",
                    weights_.size());
    double sum = bias_;
    for (std::size_t i = 0; i < x.size(); ++i)
        sum += weights_[i] * x[i];
    return sum;
}

bool
Adaline::predict(const std::vector<double> &x) const
{
    return output(x) >= 0.0;
}

void
Adaline::train(const std::vector<double> &x, double d)
{
    const double error = d - output(x);
    const double step = config_.learningRate * error;
    bias_ += step;
    for (std::size_t i = 0; i < x.size(); ++i) {
        weights_[i] += step * x[i];
        // L1 shrinkage: uninformative weights decay to exactly zero.
        const double decay = config_.l1Decay;
        if (weights_[i] > decay)
            weights_[i] -= decay;
        else if (weights_[i] < -decay)
            weights_[i] += decay;
        else
            weights_[i] = 0.0;
    }
}

void
Adaline::reset()
{
    std::fill(weights_.begin(), weights_.end(), 0.0);
    bias_ = 0.0;
}

std::vector<double>
Adaline::normalizedImportance() const
{
    std::vector<double> importance(weights_.size());
    double max_abs = 0.0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        importance[i] = std::fabs(weights_[i]);
        max_abs = std::max(max_abs, importance[i]);
    }
    if (max_abs > 0.0) {
        for (auto &v : importance)
            v /= max_abs;
    }
    return importance;
}

} // namespace chirp
