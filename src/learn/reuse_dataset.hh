/**
 * @file
 * Extraction of (PC bits -> reuse outcome) training samples for the
 * Fig 3 ADALINE study.
 *
 * The collector replays a trace through a compact functional model
 * of the Table II TLB hierarchy (LRU everywhere).  Every completed
 * L2-TLB-entry generation yields one sample: the PC of the filling
 * access, labeled +1 when the entry was hit again before eviction
 * and -1 when it died untouched.
 */

#ifndef CHIRP_LEARN_REUSE_DATASET_HH
#define CHIRP_LEARN_REUSE_DATASET_HH

#include <cstdint>
#include <vector>

#include "trace/trace_source.hh"
#include "util/types.hh"

namespace chirp
{

/** One training sample. */
struct ReuseSample
{
    Addr fillPc = 0; //!< PC of the access that installed the entry
    bool reused = false;
};

/** Geometry of the functional hierarchy used for extraction. */
struct ReuseCollectorConfig
{
    std::uint32_t l1Entries = 64;
    std::uint32_t l1Assoc = 8;
    std::uint32_t l2Entries = 1024;
    std::uint32_t l2Assoc = 8;
    /** Stop after this many samples (0 = consume the whole trace). */
    std::size_t maxSamples = 0;
};

/**
 * Replay @p source and return the collected samples, including the
 * final state of still-resident entries (labeled by whether they
 * were hit).
 */
std::vector<ReuseSample> collectReuseSamples(
    TraceSource &source, const ReuseCollectorConfig &config = {});

/**
 * Convert a sample PC into the ADALINE input vector: bit i of the PC
 * mapped to +/-1, for i in [0, inputs).
 */
std::vector<double> pcBitsToInputs(Addr pc, std::size_t inputs);

} // namespace chirp

#endif // CHIRP_LEARN_REUSE_DATASET_HH
