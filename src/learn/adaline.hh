/**
 * @file
 * ADALINE (Widrow & Hoff), the offline learning model the paper uses
 * to score which PC bits correlate with TLB-entry reuse (§II-D,
 * Fig 3).
 *
 * Weights are updated by the delta rule
 *     w(n+1) = w(n) + mu * [d(n) - y(n)] * x(n)
 * with an L1 regularization term that pulls the weights of
 * uninformative inputs toward zero, as the paper describes.
 */

#ifndef CHIRP_LEARN_ADALINE_HH
#define CHIRP_LEARN_ADALINE_HH

#include <cstddef>
#include <vector>

namespace chirp
{

/** ADALINE hyperparameters. */
struct AdalineConfig
{
    std::size_t inputs = 24;    //!< input vector width
    double learningRate = 0.02; //!< mu
    double l1Decay = 5e-4;      //!< per-update L1 shrinkage
};

/** A single adaptive linear element. */
class Adaline
{
  public:
    explicit Adaline(const AdalineConfig &config);

    /** Weighted sum w.x + bias for inputs in {-1, +1}. */
    double output(const std::vector<double> &x) const;

    /** Classify: output >= 0. */
    bool predict(const std::vector<double> &x) const;

    /**
     * One delta-rule update toward target d in {-1, +1}, followed by
     * L1 shrinkage of all weights.
     */
    void train(const std::vector<double> &x, double d);

    /** Trained weights (bias excluded). */
    const std::vector<double> &weights() const { return weights_; }

    double bias() const { return bias_; }

    /** Zero all weights. */
    void reset();

    /** |w| per input, normalized so the largest is 1 (Fig 3 rows). */
    std::vector<double> normalizedImportance() const;

  private:
    AdalineConfig config_;
    std::vector<double> weights_;
    double bias_ = 0.0;
};

} // namespace chirp

#endif // CHIRP_LEARN_ADALINE_HH
