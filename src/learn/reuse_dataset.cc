#include "learn/reuse_dataset.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

namespace
{

/**
 * Minimal set-associative LRU TLB tracking the metadata the dataset
 * needs (filling PC, reuse flag).  Deliberately independent of the
 * main Tlb class so the extraction tool has no policy dependencies.
 */
class MiniTlb
{
  public:
    MiniTlb(std::uint32_t entries, std::uint32_t assoc,
            std::vector<ReuseSample> *samples)
        : sets_(entries / assoc), assoc_(assoc),
          slots_(static_cast<std::size_t>(entries)), samples_(samples)
    {
        if (!isPowerOfTwo(sets_))
            chirp_fatal("mini-tlb set count must be a power of two");
    }

    /** Access; allocates on miss. @return true on hit. */
    bool
    access(Addr vpn, Addr pc)
    {
        ++tick_;
        const std::uint32_t set = vpn & (sets_ - 1);
        const Addr tag = vpn >> floorLog2(sets_);
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;

        std::size_t victim = base;
        std::uint64_t oldest = ~std::uint64_t{0};
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            Slot &slot = slots_[base + w];
            if (slot.valid && slot.tag == tag) {
                slot.reused = true;
                slot.lastUse = tick_;
                return true;
            }
            if (!slot.valid) {
                victim = base + w;
                oldest = 0;
            } else if (slot.lastUse < oldest) {
                victim = base + w;
                oldest = slot.lastUse;
            }
        }

        Slot &slot = slots_[victim];
        if (slot.valid)
            emit(slot);
        slot.valid = true;
        slot.tag = tag;
        slot.fillPc = pc;
        slot.reused = false;
        slot.lastUse = tick_;
        return false;
    }

    /** Emit samples for entries still resident at trace end. */
    void
    drain()
    {
        for (auto &slot : slots_) {
            if (slot.valid)
                emit(slot);
        }
    }

  private:
    struct Slot
    {
        bool valid = false;
        Addr tag = 0;
        Addr fillPc = 0;
        bool reused = false;
        std::uint64_t lastUse = 0;
    };

    void
    emit(const Slot &slot)
    {
        if (samples_)
            samples_->push_back({slot.fillPc, slot.reused});
    }

    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::vector<Slot> slots_;
    std::vector<ReuseSample> *samples_;
    std::uint64_t tick_ = 0;
};

} // namespace

std::vector<ReuseSample>
collectReuseSamples(TraceSource &source, const ReuseCollectorConfig &config)
{
    std::vector<ReuseSample> samples;
    // L1 TLBs filter the L2 stream but produce no samples themselves.
    MiniTlb l1i(config.l1Entries, config.l1Assoc, nullptr);
    MiniTlb l1d(config.l1Entries, config.l1Assoc, nullptr);
    MiniTlb l2(config.l2Entries, config.l2Assoc, &samples);

    TraceRecord rec;
    while (source.next(rec)) {
        if (!l1i.access(pageNumber(rec.pc), rec.pc))
            l2.access(pageNumber(rec.pc), rec.pc);
        if (isMemory(rec.cls)) {
            if (!l1d.access(pageNumber(rec.effAddr), rec.pc))
                l2.access(pageNumber(rec.effAddr), rec.pc);
        }
        if (config.maxSamples && samples.size() >= config.maxSamples)
            return samples;
    }
    l2.drain();
    return samples;
}

std::vector<double>
pcBitsToInputs(Addr pc, std::size_t inputs)
{
    std::vector<double> x(inputs);
    for (std::size_t i = 0; i < inputs; ++i)
        x[i] = bit(pc, static_cast<unsigned>(i)) ? 1.0 : -1.0;
    return x;
}

} // namespace chirp
