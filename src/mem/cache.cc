#include "mem/cache.hh"

namespace chirp
{

namespace
{

std::uint32_t
setsFor(const CacheConfig &config)
{
    const std::uint64_t lines = config.sizeBytes / config.lineBytes;
    if (lines == 0 || lines % config.assoc != 0)
        chirp_fatal("cache '", config.name, "': size ", config.sizeBytes,
                    " not divisible into ", config.assoc, "-way sets of ",
                    config.lineBytes, "B lines");
    return static_cast<std::uint32_t>(lines / config.assoc);
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config), array_(setsFor(config), config.assoc)
{
    if (!isPowerOfTwo(config.lineBytes))
        chirp_fatal("cache '", config.name, "': line size must be a power "
                    "of two");
}

Addr
Cache::lineKey(Addr addr) const
{
    return addr / config_.lineBytes;
}

bool
Cache::access(Addr addr, bool write)
{
    (void)write; // allocate-on-write; no dirty-state modeling needed
    ++tick_;
    const Addr key = lineKey(addr);
    const std::uint32_t set = array_.setIndex(key);
    const Addr tag = array_.tagOf(key);

    const int way = array_.findWay(set, tag);
    if (way >= 0) {
        array_.dataAt(set, way).lastUse = tick_;
        ++hits_;
        return true;
    }

    ++misses_;
    int victim = array_.invalidWay(set);
    if (victim < 0) {
        // LRU by recency tick.
        std::uint64_t oldest = ~std::uint64_t{0};
        for (std::uint32_t w = 0; w < array_.assoc(); ++w) {
            const std::uint64_t t = array_.dataAt(set, w).lastUse;
            if (t < oldest) {
                oldest = t;
                victim = static_cast<int>(w);
            }
        }
    }
    array_.fill(set, static_cast<std::uint32_t>(victim), tag);
    array_.dataAt(set, victim).lastUse = tick_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const Addr key = lineKey(addr);
    return array_.findWay(array_.setIndex(key), array_.tagOf(key)) >= 0;
}

void
Cache::reset()
{
    array_.invalidateAll();
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace chirp
