#include "mem/cache_hierarchy.hh"

namespace chirp
{

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2),
      l3_(config.l3)
{
}

Cycles
CacheHierarchy::missBeyondL1(Addr addr, bool write)
{
    if (l2_.access(addr, write))
        return l2_.latency();
    if (l3_.access(addr, write))
        return l2_.latency() + l3_.latency();
    return l2_.latency() + l3_.latency() + config_.dramLatency;
}

void
CacheHierarchy::prefetchAfterMiss(Cache &l1, Addr addr)
{
    if (!config_.nextLinePrefetch)
        return;
    const Addr line_bytes = config_.l2.lineBytes;
    for (unsigned d = 1; d <= config_.prefetchDegree; ++d) {
        const Addr next = addr + d * line_bytes;
        // Stay inside the page: a cross-page prefetch would need its
        // own translation, which hardware prefetchers avoid.
        if (pageBase(next) != pageBase(addr))
            break;
        if (l1.probe(next))
            continue;
        // Prefetch latency is overlapped with the demand miss.
        l1.access(next, false);
        if (!l2_.probe(next))
            l2_.access(next, false);
        if (!l3_.probe(next))
            l3_.access(next, false);
        ++prefetches_;
    }
}

Cycles
CacheHierarchy::accessInstr(Addr pc)
{
    if (l1i_.access(pc, false))
        return 0; // L1 hit latency is hidden by the pipeline
    const Cycles stall = missBeyondL1(pc, false);
    prefetchAfterMiss(l1i_, pc);
    return stall;
}

Cycles
CacheHierarchy::accessData(Addr addr, bool write)
{
    if (l1d_.access(addr, write))
        return 0;
    const Cycles stall = missBeyondL1(addr, write);
    prefetchAfterMiss(l1d_, addr);
    return stall;
}

void
CacheHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    l3_.reset();
    prefetches_ = 0;
}

} // namespace chirp
