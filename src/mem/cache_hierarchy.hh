/**
 * @file
 * Three-level cache hierarchy + DRAM latency model (Table II).
 *
 * The hierarchy returns the *stall cycles beyond a first-level hit*
 * for each access; the in-order pipeline adds them to its cycle
 * count.  Inclusive allocation: a miss fills every level on the way
 * back.
 */

#ifndef CHIRP_MEM_CACHE_HIERARCHY_HH
#define CHIRP_MEM_CACHE_HIERARCHY_HH

#include "mem/cache.hh"

namespace chirp
{

/** Configuration of the full hierarchy; defaults are Table II. */
struct CacheHierarchyConfig
{
    CacheConfig l1i{"l1i", 64 * 1024, 8, 64, 4};
    CacheConfig l1d{"l1d", 64 * 1024, 8, 64, 4};
    CacheConfig l2{"l2", 256 * 1024, 16, 64, 12};
    CacheConfig l3{"l3", 8 * 1024 * 1024, 16, 64, 42};
    Cycles dramLatency = 240;
    /**
     * Next-line prefetch on L1 misses (degree lines ahead, same
     * 4KB page only so the prefetcher never needs a translation).
     * Models the hardware prefetchers every Table II-class machine
     * has; without it streaming workloads pay DRAM latency per line
     * and cache stalls swamp the TLB effects under study.
     */
    bool nextLinePrefetch = true;
    unsigned prefetchDegree = 8;
};

/** L1i/L1d + unified L2/L3 + DRAM. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CacheHierarchyConfig &config = {});

    /** Instruction fetch of @p pc; returns stall cycles beyond L1. */
    Cycles accessInstr(Addr pc);

    /** Data access; returns stall cycles beyond L1. */
    Cycles accessData(Addr addr, bool write);

    /** Drop all state. */
    void reset();

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &l3() const { return l3_; }

    /** Lines brought in by the prefetcher. */
    std::uint64_t prefetches() const { return prefetches_; }

  private:
    /** Walk L2/L3/DRAM after an L1 miss; returns stall cycles. */
    Cycles missBeyondL1(Addr addr, bool write);

    /** Same-page next-line prefetch into @p l1 after a miss. */
    void prefetchAfterMiss(Cache &l1, Addr addr);

    CacheHierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache l3_;
    std::uint64_t prefetches_ = 0;
};

} // namespace chirp

#endif // CHIRP_MEM_CACHE_HIERARCHY_HH
