/**
 * @file
 * Generic set-associative array shared by caches and TLBs.
 *
 * The array manages tags, valid bits and a per-slot payload; callers
 * layer replacement on top (caches use the built-in recency tick,
 * TLBs delegate to a ReplacementPolicy).
 *
 * Storage is structure-of-arrays: the valid bytes and tags of a set
 * are contiguous runs, so the per-access tag match and invalid-way
 * probe are single SIMD kernel calls over the set's lanes instead of
 * a strided walk over Slot records.  The payload lives in its own
 * parallel array and is only touched on the matched way.
 */

#ifndef CHIRP_MEM_SET_ASSOC_HH
#define CHIRP_MEM_SET_ASSOC_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/types.hh"

namespace chirp
{

/** A tagged, set-associative storage array with payload @p Entry. */
template <typename Entry>
class SetAssocArray
{
  public:
    SetAssocArray(std::uint32_t num_sets, std::uint32_t assoc)
        : numSets_(num_sets), assoc_(assoc),
          valid_(static_cast<std::size_t>(num_sets) * assoc, 0),
          tags_(static_cast<std::size_t>(num_sets) * assoc, 0),
          data_(static_cast<std::size_t>(num_sets) * assoc)
    {
        if (num_sets == 0 || assoc == 0)
            chirp_fatal("set-assoc array needs nonzero geometry");
        if (!isPowerOfTwo(num_sets))
            chirp_fatal("set count ", num_sets, " must be a power of two");
        setMask_ = num_sets - 1;
    }

    /** Set index for a key (its low bits). */
    std::uint32_t
    setIndex(Addr key) const
    {
        return static_cast<std::uint32_t>(key & setMask_);
    }

    /** Tag for a key (the bits above the set index). */
    Addr
    tagOf(Addr key) const
    {
        return key >> floorLog2(static_cast<std::uint64_t>(numSets_));
    }

    /** Way holding @p tag in @p set, or -1. */
    int
    findWay(std::uint32_t set, Addr tag) const
    {
        const std::size_t base = baseOf(set);
        const std::size_t way = simd::matchTagLane(
            tags_.data() + base, valid_.data() + base, assoc_, tag);
        return way < assoc_ ? static_cast<int>(way) : -1;
    }

    /** First invalid way in @p set, or -1 when the set is full. */
    int
    invalidWay(std::uint32_t set) const
    {
        const std::size_t way =
            simd::firstClearLane(valid_.data() + baseOf(set), assoc_);
        return way < assoc_ ? static_cast<int>(way) : -1;
    }

    /**
     * Hint @p set's metadata toward the caches.  The batched access
     * pipeline issues this one chunk-slot ahead of the access that
     * will scan the set, hiding the (random-indexed) tag/valid loads
     * behind the in-flight accesses.  Purely a hint: no architectural
     * state changes.
     */
    void
    prefetchSet(std::uint32_t set) const
    {
#if defined(__GNUC__) || defined(__clang__)
        const std::size_t base = baseOf(set);
        __builtin_prefetch(valid_.data() + base, 0, 3);
        __builtin_prefetch(tags_.data() + base, 0, 3);
        __builtin_prefetch(data_.data() + base, 1, 3);
#else
        (void)set;
#endif
    }

    bool
    valid(std::uint32_t set, std::uint32_t way) const
    {
        return valid_[baseOf(set) + way] != 0;
    }

    Addr
    tag(std::uint32_t set, std::uint32_t way) const
    {
        return tags_[baseOf(set) + way];
    }

    /** Payload of one way (valid or not). */
    Entry &
    dataAt(std::uint32_t set, std::uint32_t way)
    {
        return data_[baseOf(set) + way];
    }

    const Entry &
    dataAt(std::uint32_t set, std::uint32_t way) const
    {
        return data_[baseOf(set) + way];
    }

    /** Mark @p way valid and holding @p tag; payload is untouched. */
    void
    fill(std::uint32_t set, std::uint32_t way, Addr tag)
    {
        const std::size_t i = baseOf(set) + way;
        valid_[i] = 1;
        tags_[i] = tag;
    }

    /** Invalidate one way and reset its payload. */
    void
    invalidate(std::uint32_t set, std::uint32_t way)
    {
        const std::size_t i = baseOf(set) + way;
        valid_[i] = 0;
        tags_[i] = 0;
        data_[i] = Entry{};
    }

    /** Invalidate every slot. */
    void
    invalidateAll()
    {
        std::fill(valid_.begin(), valid_.end(), 0);
        std::fill(tags_.begin(), tags_.end(), 0);
        std::fill(data_.begin(), data_.end(), Entry{});
    }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    /** Count of currently valid slots (tests/efficiency). */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const std::uint8_t v : valid_)
            n += v != 0 ? 1 : 0;
        return n;
    }

  private:
    std::size_t
    baseOf(std::uint32_t set) const
    {
        return static_cast<std::size_t>(set) * assoc_;
    }

    std::uint32_t numSets_;
    std::uint32_t assoc_;
    Addr setMask_;
    std::vector<std::uint8_t> valid_;
    std::vector<Addr> tags_;
    std::vector<Entry> data_;
};

} // namespace chirp

#endif // CHIRP_MEM_SET_ASSOC_HH
