/**
 * @file
 * Generic set-associative array shared by caches and TLBs.
 *
 * The array manages tags, valid bits and a per-slot payload; callers
 * layer replacement on top (caches use the built-in recency tick,
 * TLBs delegate to a ReplacementPolicy).
 */

#ifndef CHIRP_MEM_SET_ASSOC_HH
#define CHIRP_MEM_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace chirp
{

/** A tagged, set-associative storage array with payload @p Entry. */
template <typename Entry>
class SetAssocArray
{
  public:
    /** One way of one set. */
    struct Slot
    {
        bool valid = false;
        Addr tag = 0;
        Entry data{};
    };

    SetAssocArray(std::uint32_t num_sets, std::uint32_t assoc)
        : numSets_(num_sets), assoc_(assoc),
          slots_(static_cast<std::size_t>(num_sets) * assoc)
    {
        if (num_sets == 0 || assoc == 0)
            chirp_fatal("set-assoc array needs nonzero geometry");
        if (!isPowerOfTwo(num_sets))
            chirp_fatal("set count ", num_sets, " must be a power of two");
        setMask_ = num_sets - 1;
    }

    /** Set index for a key (its low bits). */
    std::uint32_t
    setIndex(Addr key) const
    {
        return static_cast<std::uint32_t>(key & setMask_);
    }

    /** Tag for a key (the bits above the set index). */
    Addr
    tagOf(Addr key) const
    {
        return key >> floorLog2(static_cast<std::uint64_t>(numSets_));
    }

    /** Way holding @p tag in @p set, or -1. */
    int
    findWay(std::uint32_t set, Addr tag) const
    {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const Slot &slot = slots_[base + w];
            if (slot.valid && slot.tag == tag)
                return static_cast<int>(w);
        }
        return -1;
    }

    /** First invalid way in @p set, or -1 when the set is full. */
    int
    invalidWay(std::uint32_t set) const
    {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (!slots_[base + w].valid)
                return static_cast<int>(w);
        }
        return -1;
    }

    Slot &
    at(std::uint32_t set, std::uint32_t way)
    {
        return slots_[static_cast<std::size_t>(set) * assoc_ + way];
    }

    const Slot &
    at(std::uint32_t set, std::uint32_t way) const
    {
        return slots_[static_cast<std::size_t>(set) * assoc_ + way];
    }

    /** Invalidate every slot. */
    void
    invalidateAll()
    {
        for (auto &slot : slots_)
            slot = Slot{};
    }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    /** Count of currently valid slots (tests/efficiency). */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto &slot : slots_)
            n += slot.valid ? 1 : 0;
        return n;
    }

  private:
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    Addr setMask_;
    std::vector<Slot> slots_;
};

} // namespace chirp

#endif // CHIRP_MEM_SET_ASSOC_HH
