/**
 * @file
 * A simple set-associative cache model with LRU replacement, used
 * for the L1i/L1d/L2/L3 levels of the timing-approximate simulator
 * (Table II).  Timing, not data, is modeled: an access either hits
 * or misses-and-fills.
 */

#ifndef CHIRP_MEM_CACHE_HH
#define CHIRP_MEM_CACHE_HH

#include <string>

#include "mem/set_assoc.hh"
#include "util/types.hh"

namespace chirp
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;
    Cycles latency = 4; //!< access latency when this level hits
};

/** One level of cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p addr; on a miss the line is allocated (evicting
     * LRU).
     * @return true on hit.
     */
    bool access(Addr addr, bool write);

    /** Hit check without any state change (tests). */
    bool probe(Addr addr) const;

    /** Drop all lines and zero statistics. */
    void reset();

    const CacheConfig &config() const { return config_; }
    Cycles latency() const { return config_.latency; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    /** Per-line payload: recency tick for LRU. */
    struct Line
    {
        std::uint64_t lastUse = 0;
    };

    Addr lineKey(Addr addr) const;

    CacheConfig config_;
    SetAssocArray<Line> array_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace chirp

#endif // CHIRP_MEM_CACHE_HH
