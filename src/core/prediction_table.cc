#include "core/prediction_table.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

PredictionTable::PredictionTable(std::size_t entries, unsigned counter_bits,
                                 HashKind kind, std::uint64_t salt)
    : counters_(entries, SatCounter(counter_bits)),
      counterBits_(counter_bits), kind_(kind), salt_(salt)
{
    if (!isPowerOfTwo(entries))
        chirp_fatal("prediction table size ", entries,
                    " must be a power of two");
    indexBits_ = floorLog2(entries);
}

std::size_t
PredictionTable::indexOf(std::uint64_t signature) const
{
    return static_cast<std::size_t>(
        hashBy(kind_, signature ^ salt_, indexBits_));
}

std::uint16_t
PredictionTable::read(std::uint64_t signature) const
{
    return counters_[indexOf(signature)].value();
}

void
PredictionTable::increment(std::uint64_t signature)
{
    counters_[indexOf(signature)].increment();
}

void
PredictionTable::decrement(std::uint64_t signature)
{
    counters_[indexOf(signature)].decrement();
}

void
PredictionTable::reset()
{
    for (auto &c : counters_)
        c.set(0);
}

std::uint16_t
PredictionTable::counterMax() const
{
    return counters_.empty() ? 0 : counters_.front().max();
}

std::uint64_t
PredictionTable::storageBits() const
{
    return static_cast<std::uint64_t>(counters_.size()) * counterBits_;
}

} // namespace chirp
