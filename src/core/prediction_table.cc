#include "core/prediction_table.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

PredictionTable::PredictionTable(std::size_t entries, unsigned counter_bits,
                                 HashKind kind, std::uint64_t salt)
    : counters_(entries, counter_bits),
      max_(static_cast<std::uint16_t>((1u << counter_bits) - 1)),
      counterBits_(counter_bits), kind_(kind), salt_(salt)
{
    if (!isPowerOfTwo(entries))
        chirp_fatal("prediction table size ", entries,
                    " must be a power of two");
    if (counter_bits == 0 || counter_bits > 16)
        chirp_fatal("prediction table counters must be 1..16 bits");
    indexBits_ = floorLog2(entries);
    idxPlan_ = simd::FoldPlan(indexBits_);
}

void
PredictionTable::reset()
{
    counters_.reset();
}

std::uint64_t
PredictionTable::storageBits() const
{
    // The modeled hardware budget: counterBits per entry, independent
    // of the power-of-two lane width the packed array rounds up to.
    return static_cast<std::uint64_t>(counters_.size()) * counterBits_;
}

} // namespace chirp
