#include "core/srrip.hh"

#include "util/logging.hh"

namespace chirp
{

SrripPolicy::SrripPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                         unsigned rrpv_bits)
    : ReplacementPolicy("srrip", num_sets, assoc),
      rrpvBits_(rrpv_bits),
      maxRrpv_(static_cast<std::uint8_t>((1u << rrpv_bits) - 1)),
      rrpv_(static_cast<std::size_t>(num_sets) * assoc, 0)
{
    if (rrpv_bits == 0 || rrpv_bits > 8)
        chirp_fatal("srrip: rrpv width ", rrpv_bits, " out of range");
    reset();
}

void
SrripPolicy::reset()
{
    // All entries start at the distant value so invalid ways are
    // naturally preferred before any real aging happens.
    for (auto &v : rrpv_)
        v = maxRrpv_;
    resetTableCounters();
}

std::uint64_t
SrripPolicy::storageBits() const
{
    return static_cast<std::uint64_t>(numSets()) * assoc() * rrpvBits_;
}

} // namespace chirp
