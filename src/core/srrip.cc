#include "core/srrip.hh"

#include "util/logging.hh"

namespace chirp
{

SrripPolicy::SrripPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                         unsigned rrpv_bits)
    : SrripPolicy("srrip", num_sets, assoc, rrpv_bits)
{
}

SrripPolicy::SrripPolicy(std::string name, std::uint32_t num_sets,
                         std::uint32_t assoc, unsigned rrpv_bits)
    : ReplacementPolicy(std::move(name), num_sets, assoc),
      rrpvBits_(rrpv_bits),
      maxRrpv_(static_cast<std::uint8_t>((1u << rrpv_bits) - 1)),
      rrpv_(static_cast<std::size_t>(num_sets) * assoc, 0)
{
    if (rrpv_bits == 0 || rrpv_bits > 8)
        chirp_fatal("srrip: rrpv width ", rrpv_bits, " out of range");
    reset();
}

void
SrripPolicy::reset()
{
    // All entries start at the distant value so invalid ways are
    // naturally preferred before any real aging happens.
    for (auto &v : rrpv_)
        v = maxRrpv_;
    resetTableCounters();
}

void
SrripPolicy::onHit(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    // Hit promotion: near-immediate re-reference.
    rrpv_[idx(set, way)] = 0;
}

std::uint32_t
SrripPolicy::selectVictim(std::uint32_t set, const AccessInfo &)
{
    // Find a distant entry; if none, age the whole set and retry.
    // Termination: each aging pass increments every RRPV below max,
    // so at most maxRrpv_ passes are needed.
    for (;;) {
        for (std::uint32_t way = 0; way < assoc(); ++way) {
            if (rrpv_[idx(set, way)] >= maxRrpv_)
                return way;
        }
        for (std::uint32_t way = 0; way < assoc(); ++way)
            ++rrpv_[idx(set, way)];
    }
}

void
SrripPolicy::onFill(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    fillWithRrpv(set, way, longRrpv());
}

void
SrripPolicy::onInvalidate(std::uint32_t set, std::uint32_t way)
{
    rrpv_[idx(set, way)] = maxRrpv_;
}

std::uint64_t
SrripPolicy::storageBits() const
{
    return static_cast<std::uint64_t>(numSets()) * assoc() * rrpvBits_;
}

} // namespace chirp
