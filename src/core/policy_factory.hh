/**
 * @file
 * Construction of configured replacement policies by name — the
 * single place benches, examples and the simulator instantiate
 * policies from.
 */

#ifndef CHIRP_CORE_POLICY_FACTORY_HH
#define CHIRP_CORE_POLICY_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/chirp.hh"
#include "core/ghrp.hh"
#include "core/replacement_policy.hh"
#include "core/ship.hh"

namespace chirp
{

/** The policy set the paper evaluates, in its reporting order. */
enum class PolicyKind
{
    Lru,
    Random,
    Srrip,
    Ship,
    Ghrp,
    Chirp,
};

/** Printable name ("lru", "random", ...). */
const char *policyKindName(PolicyKind kind);

/** All six paper policies in reporting order. */
const std::vector<PolicyKind> &allPolicyKinds();

/**
 * Names of the extra policies this library provides beyond the
 * paper's set ("drrip", "plru", ...); constructible through the
 * name-based makePolicy overload.
 */
const std::vector<std::string> &extraPolicyNames();

/** Build a default-configured policy of @p kind. */
std::unique_ptr<ReplacementPolicy> makePolicy(PolicyKind kind,
                                              std::uint32_t num_sets,
                                              std::uint32_t assoc);

/**
 * Build a policy by name; accepts the names from policyKindName.
 * Fatal on unknown names (user error).
 */
std::unique_ptr<ReplacementPolicy> makePolicy(const std::string &name,
                                              std::uint32_t num_sets,
                                              std::uint32_t assoc);

/** Build a CHiRP instance with an explicit configuration. */
std::unique_ptr<ChirpPolicy> makeChirp(std::uint32_t num_sets,
                                       std::uint32_t assoc,
                                       const ChirpConfig &config);

/** Build a SHiP instance with an explicit configuration. */
std::unique_ptr<ShipPolicy> makeShip(std::uint32_t num_sets,
                                     std::uint32_t assoc,
                                     const ShipConfig &config);

/** Build a GHRP instance with an explicit configuration. */
std::unique_ptr<GhrpPolicy> makeGhrp(std::uint32_t num_sets,
                                     std::uint32_t assoc,
                                     const GhrpConfig &config);

} // namespace chirp

#endif // CHIRP_CORE_POLICY_FACTORY_HH
