/**
 * @file
 * Table of saturating counters indexed by a hashed signature — the
 * storage structure shared by SHiP's SHCT, GHRP's tables and CHiRP's
 * single prediction table.
 */

#ifndef CHIRP_CORE_PREDICTION_TABLE_HH
#define CHIRP_CORE_PREDICTION_TABLE_HH

#include "util/hashing.hh"
#include "util/packed_counters.hh"

namespace chirp
{

/**
 * A power-of-two table of n-bit saturating counters.  Indexing hashes
 * the caller's signature down to log2(entries) bits; callers that
 * want distinct hash behavior (GHRP's three tables) pass a salt.
 *
 * Counters are bit-packed at their natural width (a 4K x 2-bit table
 * is 1KB of simulator memory instead of 8KB of uint16, keeping all of
 * a predictor's tables L1-resident) and the read/train operations are
 * inline: they sit on the per-access path of every predictor policy.
 *
 * Callers that retain a signature across events (GHRP keeps one per
 * entry per table) can capture indexOf() once and use the *At
 * accessors, skipping the hash recomputation on every later
 * train/read of the same stored signature.
 */
class PredictionTable
{
  public:
    /**
     * @param entries number of counters (power of two)
     * @param counter_bits counter width
     * @param kind index hash selection
     * @param salt mixed into the hash (distinguishes multiple tables)
     */
    PredictionTable(std::size_t entries, unsigned counter_bits,
                    HashKind kind = HashKind::Index,
                    std::uint64_t salt = 0);

    /** Index for @p signature. */
    std::size_t
    indexOf(std::uint64_t signature) const
    {
        return static_cast<std::size_t>(
            hashBy(kind_, signature ^ salt_, indexBits_));
    }

    /** Counter value at @p signature's slot. */
    std::uint16_t
    read(std::uint64_t signature) const
    {
        return readAt(indexOf(signature));
    }

    /** Increment (dead evidence) the slot for @p signature. */
    void
    increment(std::uint64_t signature)
    {
        incrementAt(indexOf(signature));
    }

    /** Decrement (live evidence) the slot for @p signature. */
    void
    decrement(std::uint64_t signature)
    {
        decrementAt(indexOf(signature));
    }

    /** Counter value at a previously computed index. */
    std::uint16_t
    readAt(std::size_t index) const
    {
        return counters_.get(index);
    }

    /** Saturating increment at a previously computed index. */
    void
    incrementAt(std::size_t index)
    {
        const std::uint16_t value = counters_.get(index);
        if (value < max_)
            counters_.set(index, value + 1);
    }

    /** Saturating decrement at a previously computed index. */
    void
    decrementAt(std::size_t index)
    {
        const std::uint16_t value = counters_.get(index);
        if (value > 0)
            counters_.set(index, value - 1);
    }

    /** Zero all counters. */
    void reset();

    std::size_t entries() const { return counters_.size(); }
    unsigned counterBits() const { return counterBits_; }

    /** Maximum counter value. */
    std::uint16_t counterMax() const { return max_; }

    /** Total storage in bits. */
    std::uint64_t storageBits() const;

  private:
    PackedCounterArray counters_;
    std::uint16_t max_;
    unsigned counterBits_;
    unsigned indexBits_;
    HashKind kind_;
    std::uint64_t salt_;
};

} // namespace chirp

#endif // CHIRP_CORE_PREDICTION_TABLE_HH
