/**
 * @file
 * Table of saturating counters indexed by a hashed signature — the
 * storage structure shared by SHiP's SHCT, GHRP's tables and CHiRP's
 * single prediction table.
 */

#ifndef CHIRP_CORE_PREDICTION_TABLE_HH
#define CHIRP_CORE_PREDICTION_TABLE_HH

#include <vector>

#include "util/hashing.hh"

namespace chirp
{

/**
 * A power-of-two table of n-bit saturating counters.  Indexing hashes
 * the caller's signature down to log2(entries) bits; callers that
 * want distinct hash behavior (GHRP's three tables) pass a salt.
 *
 * Counters are stored as raw values in one contiguous array (all
 * counters share a width, so the saturation bound lives once in the
 * table, not per counter) and the read/train operations are inline:
 * they sit on the per-access path of every predictor policy.
 */
class PredictionTable
{
  public:
    /**
     * @param entries number of counters (power of two)
     * @param counter_bits counter width
     * @param kind index hash selection
     * @param salt mixed into the hash (distinguishes multiple tables)
     */
    PredictionTable(std::size_t entries, unsigned counter_bits,
                    HashKind kind = HashKind::Index,
                    std::uint64_t salt = 0);

    /** Index for @p signature. */
    std::size_t
    indexOf(std::uint64_t signature) const
    {
        return static_cast<std::size_t>(
            hashBy(kind_, signature ^ salt_, indexBits_));
    }

    /** Counter value at @p signature's slot. */
    std::uint16_t
    read(std::uint64_t signature) const
    {
        return values_[indexOf(signature)];
    }

    /** Increment (dead evidence) the slot for @p signature. */
    void
    increment(std::uint64_t signature)
    {
        std::uint16_t &value = values_[indexOf(signature)];
        if (value < max_)
            ++value;
    }

    /** Decrement (live evidence) the slot for @p signature. */
    void
    decrement(std::uint64_t signature)
    {
        std::uint16_t &value = values_[indexOf(signature)];
        if (value > 0)
            --value;
    }

    /** Zero all counters. */
    void reset();

    std::size_t entries() const { return values_.size(); }
    unsigned counterBits() const { return counterBits_; }

    /** Maximum counter value. */
    std::uint16_t counterMax() const { return max_; }

    /** Total storage in bits. */
    std::uint64_t storageBits() const;

  private:
    std::vector<std::uint16_t> values_;
    std::uint16_t max_;
    unsigned counterBits_;
    unsigned indexBits_;
    HashKind kind_;
    std::uint64_t salt_;
};

} // namespace chirp

#endif // CHIRP_CORE_PREDICTION_TABLE_HH
