/**
 * @file
 * Table of saturating counters indexed by a hashed signature — the
 * storage structure shared by SHiP's SHCT, GHRP's tables and CHiRP's
 * single prediction table.
 */

#ifndef CHIRP_CORE_PREDICTION_TABLE_HH
#define CHIRP_CORE_PREDICTION_TABLE_HH

#include "util/hashing.hh"
#include "util/packed_counters.hh"
#include "util/simd.hh"

namespace chirp
{

/**
 * A power-of-two table of n-bit saturating counters.  Indexing hashes
 * the caller's signature down to log2(entries) bits; callers that
 * want distinct hash behavior (GHRP's three tables) pass a salt.
 *
 * Counters are bit-packed at their natural width (a 4K x 2-bit table
 * is 1KB of simulator memory instead of 8KB of uint16, keeping all of
 * a predictor's tables L1-resident) and the read/train operations are
 * inline: they sit on the per-access path of every predictor policy.
 *
 * Callers that retain a signature across events (GHRP keeps one per
 * entry per table) can capture indexOf() once and use the *At
 * accessors, skipping the hash recomputation on every later
 * train/read of the same stored signature.
 */
class PredictionTable
{
  public:
    /**
     * @param entries number of counters (power of two)
     * @param counter_bits counter width
     * @param kind index hash selection
     * @param salt mixed into the hash (distinguishes multiple tables)
     */
    PredictionTable(std::size_t entries, unsigned counter_bits,
                    HashKind kind = HashKind::Index,
                    std::uint64_t salt = 0);

    /** Index for @p signature. */
    std::size_t
    indexOf(std::uint64_t signature) const
    {
        return static_cast<std::size_t>(
            hashBy(kind_, signature ^ salt_, indexBits_));
    }

    /**
     * indexOf() over a column: idxs[i] = indexOf(sigs[i]), using
     * @p lanes (caller scratch, >= n u64s) as the working column so
     * the hash multiply and fold ladder run lane-parallel over the
     * chunk.  The batched miss path precomputes a chunk's table
     * indices through here — one pass per table per chunk instead of
     * a pointer-chasing hash per miss.
     */
    void
    indexStream(const std::uint16_t *sigs, std::size_t n,
                std::uint64_t *lanes, std::uint32_t *idxs) const
    {
        if (kind_ == HashKind::Index) {
            for (std::size_t i = 0; i < n; ++i)
                lanes[i] = static_cast<std::uint64_t>(sigs[i]) ^ salt_;
            simd::mulXorFoldLanes(lanes, n, kIndexHashMultiplier,
                                  idxPlan_);
            for (std::size_t i = 0; i < n; ++i)
                idxs[i] = static_cast<std::uint32_t>(lanes[i]);
            return;
        }
        // Fold/Crc have no lane kernels; the scalar hash per element
        // is still one pass with the dispatch hoisted out.
        for (std::size_t i = 0; i < n; ++i)
            idxs[i] = static_cast<std::uint32_t>(indexOf(sigs[i]));
    }

    /**
     * Fused signature + index composition over a chunk: sigs[i] =
     * u16(sig_plan.apply(base[i])) and idxs[i] = indexOf(sigs[i]),
     * with the fold ladder and the index hash kept in registers for
     * one pass over @p base (the salt stays encapsulated here).
     * Fold/Crc hash kinds have no lane form and fall back to the
     * per-element hash.
     */
    void
    sigIndexStream(const std::uint64_t *base, std::size_t n,
                   const simd::FoldPlan &sig_plan, std::uint16_t *sigs,
                   std::uint32_t *idxs) const
    {
        if (kind_ == HashKind::Index) {
            simd::sigIndexLanes(base, n, 0, sig_plan, salt_,
                                kIndexHashMultiplier, idxPlan_, 0,
                                sigs, idxs);
            return;
        }
        for (std::size_t i = 0; i < n; ++i) {
            sigs[i] =
                static_cast<std::uint16_t>(sig_plan.apply(base[i]));
            idxs[i] = static_cast<std::uint32_t>(indexOf(sigs[i]));
        }
    }

    /** Counter value at @p signature's slot. */
    std::uint16_t
    read(std::uint64_t signature) const
    {
        return readAt(indexOf(signature));
    }

    /** Increment (dead evidence) the slot for @p signature. */
    void
    increment(std::uint64_t signature)
    {
        incrementAt(indexOf(signature));
    }

    /** Decrement (live evidence) the slot for @p signature. */
    void
    decrement(std::uint64_t signature)
    {
        decrementAt(indexOf(signature));
    }

    /** Counter value at a previously computed index. */
    std::uint16_t
    readAt(std::size_t index) const
    {
        return counters_.get(index);
    }

    /**
     * Saturating increment at a previously computed index.
     * Branchless: the saturated/unsaturated branch is data-dependent
     * (counters hover at the rails), so it is folded into the store
     * instead of fed to the branch predictor; a saturated counter
     * rewrites its own value.
     */
    void
    incrementAt(std::size_t index)
    {
        const std::uint16_t value = counters_.get(index);
        counters_.set(index, static_cast<std::uint16_t>(
                                 value + (value < max_ ? 1 : 0)));
    }

    /** Saturating decrement at a previously computed index (branchless). */
    void
    decrementAt(std::size_t index)
    {
        const std::uint16_t value = counters_.get(index);
        counters_.set(index, static_cast<std::uint16_t>(
                                 value - (value > 0 ? 1 : 0)));
    }

    /** Zero all counters. */
    void reset();

    std::size_t entries() const { return counters_.size(); }
    unsigned counterBits() const { return counterBits_; }

    /** Maximum counter value. */
    std::uint16_t counterMax() const { return max_; }

    /** Total storage in bits. */
    std::uint64_t storageBits() const;

  private:
    PackedCounterArray counters_;
    std::uint16_t max_;
    unsigned counterBits_;
    unsigned indexBits_;
    HashKind kind_;
    std::uint64_t salt_;
    // Precomputed fold ladder for indexBits_; indexStream's lane
    // kernel applies it in place of the per-element foldXor.
    simd::FoldPlan idxPlan_;
};

} // namespace chirp

#endif // CHIRP_CORE_PREDICTION_TABLE_HH
