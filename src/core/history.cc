#include "core/history.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

WideShiftHistory::WideShiftHistory(unsigned events, unsigned shift_per_event)
    : events_(events), shift_(shift_per_event),
      widthBits_(events * shift_per_event)
{
    if (events == 0 || shift_per_event == 0 || shift_per_event > 32)
        chirp_fatal("history register needs events >= 1 and a shift of "
                    "1..32 bits, got ", events, " x ", shift_per_event);
    words_.assign((widthBits_ + 63) / 64, 0);
}

void
WideShiftHistory::push(std::uint64_t value)
{
    // Multi-word left shift by shift_ bits, oldest bits fall off the
    // top word.
    std::uint64_t carry = value & maskBits(shift_);
    for (auto &word : words_) {
        const std::uint64_t next_carry =
            shift_ < 64 ? (word >> (64 - shift_)) : word;
        word = (word << shift_) | carry;
        carry = next_carry;
    }
    // Trim the top word to the register width.
    const unsigned top_bits = widthBits_ % 64;
    if (top_bits != 0)
        words_.back() &= maskBits(top_bits);
}

std::uint64_t
WideShiftHistory::folded() const
{
    std::uint64_t folded = 0;
    for (std::uint64_t word : words_)
        folded ^= word;
    return folded;
}

void
WideShiftHistory::reset()
{
    for (auto &word : words_)
        word = 0;
}

ControlFlowHistory::ControlFlowHistory(const HistoryConfig &config)
    : config_(config),
      path_(config.pathEvents, config.pathPcBits + config.pathZeroBits),
      cond_(config.branchEvents, config.branchPcBits),
      uncond_(config.branchEvents, config.branchPcBits)
{
}

void
ControlFlowHistory::onAccess(Addr pc)
{
    // Shift in PC[lo+n-1 : lo]; the injected zeros come from the
    // register shifting further than the pushed value is wide.
    const std::uint64_t chunk =
        bits(pc, config_.pathPcLowBit + config_.pathPcBits - 1,
             config_.pathPcLowBit);
    path_.push(chunk);
}

void
ControlFlowHistory::onCondBranch(Addr pc)
{
    if (!config_.useCondHist)
        return;
    cond_.push(bits(pc, config_.branchPcLowBit + config_.branchPcBits - 1,
                    config_.branchPcLowBit));
}

void
ControlFlowHistory::onUncondIndirectBranch(Addr pc)
{
    if (!config_.useUncondHist)
        return;
    uncond_.push(bits(pc,
                      config_.branchPcLowBit + config_.branchPcBits - 1,
                      config_.branchPcLowBit));
}

std::uint64_t
ControlFlowHistory::signature(Addr pc) const
{
    std::uint64_t sign = pc >> 2;
    sign ^= path_.folded();
    if (config_.useCondHist)
        sign ^= cond_.folded();
    if (config_.useUncondHist)
        sign ^= uncond_.folded();
    return sign;
}

void
ControlFlowHistory::reset()
{
    path_.reset();
    cond_.reset();
    uncond_.reset();
}

std::uint64_t
ControlFlowHistory::storageBits() const
{
    std::uint64_t bits = path_.widthBits();
    if (config_.useCondHist)
        bits += cond_.widthBits();
    if (config_.useUncondHist)
        bits += uncond_.widthBits();
    return bits;
}

} // namespace chirp
