#include "core/history.hh"

#include "util/logging.hh"

namespace chirp
{

WideShiftHistory::WideShiftHistory(unsigned events, unsigned shift_per_event)
    : events_(events), shift_(shift_per_event),
      widthBits_(events * shift_per_event), single_(widthBits_ <= 64),
      widthMask_(maskBits(widthBits_ % 64 == 0 ? 64 : widthBits_ % 64)),
      shiftMask_(maskBits(shift_per_event))
{
    if (events == 0 || shift_per_event == 0 || shift_per_event > 32)
        chirp_fatal("history register needs events >= 1 and a shift of "
                    "1..32 bits, got ", events, " x ", shift_per_event);
    words_.assign((widthBits_ + 63) / 64, 0);
}

void
WideShiftHistory::pushWide(std::uint64_t value)
{
    // Multi-word left shift by shift_ bits, oldest bits fall off the
    // top word.  The fold is re-derived in the same pass over words_,
    // so folded() stays a plain load afterwards.
    std::uint64_t carry = value & shiftMask_;
    std::uint64_t folded = 0;
    for (auto &word : words_) {
        const std::uint64_t next_carry =
            shift_ < 64 ? (word >> (64 - shift_)) : word;
        word = (word << shift_) | carry;
        carry = next_carry;
        folded ^= word;
    }
    // Trim the top word to the register width; the fold must drop the
    // trimmed bits as well.
    const std::uint64_t top = words_.back();
    words_.back() &= widthMask_;
    folded_ = folded ^ top ^ words_.back();
}

void
WideShiftHistory::reset()
{
    for (auto &word : words_)
        word = 0;
    folded_ = 0;
}

ControlFlowHistory::ControlFlowHistory(const HistoryConfig &config)
    : config_(config),
      path_(config.pathEvents, config.pathPcBits + config.pathZeroBits),
      cond_(config.branchEvents, config.branchPcBits),
      uncond_(config.branchEvents, config.branchPcBits),
      pathLow_(config.pathPcLowBit), branchLow_(config.branchPcLowBit),
      pathMask_(maskBits(config.pathPcBits)),
      branchMask_(maskBits(config.branchPcBits))
{
}

void
ControlFlowHistory::reset()
{
    path_.reset();
    cond_.reset();
    uncond_.reset();
}

std::uint64_t
ControlFlowHistory::storageBits() const
{
    std::uint64_t bits = path_.widthBits();
    if (config_.useCondHist)
        bits += cond_.widthBits();
    if (config_.useUncondHist)
        bits += uncond_.widthBits();
    return bits;
}

} // namespace chirp
