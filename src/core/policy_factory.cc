#include "core/policy_factory.hh"

#include "core/drrip.hh"
#include "core/lru.hh"
#include "core/plru.hh"
#include "core/random_repl.hh"
#include "core/srrip.hh"
#include "util/logging.hh"

namespace chirp
{

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "lru";
      case PolicyKind::Random:
        return "random";
      case PolicyKind::Srrip:
        return "srrip";
      case PolicyKind::Ship:
        return "ship";
      case PolicyKind::Ghrp:
        return "ghrp";
      case PolicyKind::Chirp:
        return "chirp";
    }
    return "?";
}

const std::vector<PolicyKind> &
allPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Lru,  PolicyKind::Random, PolicyKind::Srrip,
        PolicyKind::Ship, PolicyKind::Ghrp,   PolicyKind::Chirp,
    };
    return kinds;
}

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, std::uint32_t num_sets, std::uint32_t assoc)
{
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>(num_sets, assoc);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(num_sets, assoc);
      case PolicyKind::Srrip:
        return std::make_unique<SrripPolicy>(num_sets, assoc);
      case PolicyKind::Ship:
        return std::make_unique<ShipPolicy>(num_sets, assoc);
      case PolicyKind::Ghrp:
        return std::make_unique<GhrpPolicy>(num_sets, assoc);
      case PolicyKind::Chirp:
        return std::make_unique<ChirpPolicy>(num_sets, assoc);
    }
    chirp_panic("unhandled policy kind");
}

const std::vector<std::string> &
extraPolicyNames()
{
    static const std::vector<std::string> names = {"drrip", "plru"};
    return names;
}

std::unique_ptr<ReplacementPolicy>
makePolicy(const std::string &name, std::uint32_t num_sets,
           std::uint32_t assoc)
{
    for (PolicyKind kind : allPolicyKinds()) {
        if (name == policyKindName(kind))
            return makePolicy(kind, num_sets, assoc);
    }
    if (name == "drrip")
        return std::make_unique<DrripPolicy>(num_sets, assoc);
    if (name == "plru")
        return std::make_unique<PlruPolicy>(num_sets, assoc);
    chirp_fatal("unknown replacement policy '", name,
                "' (expected lru/random/srrip/ship/ghrp/chirp/"
                "drrip/plru)");
}

std::unique_ptr<ChirpPolicy>
makeChirp(std::uint32_t num_sets, std::uint32_t assoc,
          const ChirpConfig &config)
{
    return std::make_unique<ChirpPolicy>(num_sets, assoc, config);
}

std::unique_ptr<ShipPolicy>
makeShip(std::uint32_t num_sets, std::uint32_t assoc,
         const ShipConfig &config)
{
    return std::make_unique<ShipPolicy>(num_sets, assoc, config);
}

std::unique_ptr<GhrpPolicy>
makeGhrp(std::uint32_t num_sets, std::uint32_t assoc,
         const GhrpConfig &config)
{
    return std::make_unique<GhrpPolicy>(num_sets, assoc, config);
}

} // namespace chirp
