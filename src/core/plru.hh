/**
 * @file
 * Tree-PLRU replacement — the pseudo-LRU hardware actually ships in
 * most set-associative structures.  An extension beyond the paper's
 * policy set: it quantifies how much of "LRU"'s behaviour the paper's
 * baseline owes to being *true* LRU.
 */

#ifndef CHIRP_CORE_PLRU_HH
#define CHIRP_CORE_PLRU_HH

#include <vector>

#include "core/replacement_policy.hh"

namespace chirp
{

/**
 * Tree-based pseudo-LRU: assoc-1 direction bits per set arranged as
 * a binary tree; a touch flips the path bits away from the touched
 * way, the victim follows the bits.  Associativity must be a power
 * of two.
 */
class PlruPolicy : public ReplacementPolicy
{
  public:
    PlruPolicy(std::uint32_t num_sets, std::uint32_t assoc);

    void reset() override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t selectVictim(std::uint32_t set,
                               const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    std::uint64_t storageBits() const override;
    bool wantsRetireEvents() const override { return false; }

  private:
    /** Point the tree away from @p way (it was just used). */
    void touch(std::uint32_t set, std::uint32_t way);

    unsigned levels_;
    // tree_[set * (assoc-1) + node]: false = left subtree is older.
    std::vector<bool> tree_;
};

} // namespace chirp

#endif // CHIRP_CORE_PLRU_HH
