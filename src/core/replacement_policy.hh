/**
 * @file
 * The replacement-policy interface for cache-like structures.
 *
 * A policy owns per-entry metadata for a numSets x assoc structure
 * and is driven by the structure through the event hooks below.  The
 * call sequence for one access is:
 *
 *   hit : onAccessBegin -> onHit(set, way)  -> onAccessEnd(set)
 *   miss: onAccessBegin -> selectVictim(set) [if the set is full]
 *         -> onFill(set, way)               -> onAccessEnd(set)
 *
 * onBranchRetired is delivered by the simulator for *every* retired
 * branch instruction, independent of structure accesses — CHiRP and
 * GHRP build their branch histories from it.
 *
 * Policies also account their prediction-table traffic (tableReads /
 * tableWrites), the quantity Fig 11 of the paper reports, and their
 * metadata storage (storageBits), the quantity of Table I.
 */

#ifndef CHIRP_CORE_REPLACEMENT_POLICY_HH
#define CHIRP_CORE_REPLACEMENT_POLICY_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "trace/trace_record.hh"
#include "util/types.hh"

namespace chirp
{

/** Everything a policy may know about one access. */
struct AccessInfo
{
    Addr pc = 0;      //!< address of the accessing instruction
    Addr vaddr = 0;   //!< virtual address being translated
    InstClass cls = InstClass::Alu;
    bool isInstr = false; //!< instruction-side (i-TLB refill) access?
};

/** Abstract replacement policy. */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(std::string name, std::uint32_t num_sets,
                      std::uint32_t assoc);
    virtual ~ReplacementPolicy() = default;

    /** Clear all metadata and histories. */
    virtual void reset() = 0;

    /** A branch retired somewhere in the instruction stream. */
    virtual void
    onBranchRetired(Addr pc, InstClass cls, bool taken)
    {
        (void)pc;
        (void)cls;
        (void)taken;
    }

    /**
     * Any instruction retired.  CHiRP's global path history shifts
     * in PC bits of the retired instruction stream (the
     * branch-predictor notion of a path), so policies that need it
     * hook this; the default ignores it.
     */
    virtual void
    onInstRetired(Addr pc, InstClass cls)
    {
        (void)pc;
        (void)cls;
    }

    /**
     * Does this policy consume the retired-instruction stream
     * (onInstRetired / onBranchRetired)?  The TLB hierarchy skips
     * the per-instruction virtual dispatch entirely when false.
     * Defaults to true so a policy overriding the retire hooks can
     * never be silently muted; policies that ignore the stream
     * (LRU, PLRU, Random, SRRIP, DRRIP, SHiP) opt out.
     */
    virtual bool wantsRetireEvents() const { return true; }

    /**
     * Called once per access before hit/miss handling.  Signature
     * policies use it to compose their per-access signature exactly
     * once and reuse it across the onHit / selectVictim / onFill
     * hooks of the same access; the default does nothing.
     */
    virtual void
    onAccessBegin(const AccessInfo &info)
    {
        (void)info;
    }

    /**
     * The structure is about to drive @p n accesses (@p infos, in
     * order) back to back with no retire events in between — the
     * batched miss path's contract.  Signature policies use the call
     * to precompute their whole chunk of per-access signatures and
     * prediction-table indices in one pass of the fold-plan lane
     * kernels (the histories are frozen, or stream-provided, for the
     * duration), so onAccessBegin degenerates to a stream read.  The
     * access hooks between begin and end must leave exactly the state
     * n un-batched accesses would; the default pair does nothing.
     * endAccessBatch() is guaranteed even when an access throws.
     */
    virtual void
    beginAccessBatch(const AccessInfo *infos, std::size_t n)
    {
        (void)infos;
        (void)n;
    }

    /** Close a beginAccessBatch() window (see above). */
    virtual void endAccessBatch() { }

    /** The access hit way @p way of set @p set. */
    virtual void onHit(std::uint32_t set, std::uint32_t way,
                       const AccessInfo &info) = 0;

    /**
     * Choose a victim in a full set.  Policies may train their
     * predictors here (the victim is being evicted).
     */
    virtual std::uint32_t selectVictim(std::uint32_t set,
                                       const AccessInfo &info) = 0;

    /** A new entry was installed at (set, way). */
    virtual void onFill(std::uint32_t set, std::uint32_t way,
                        const AccessInfo &info) = 0;

    /** Entry (set, way) was invalidated (flush). */
    virtual void
    onInvalidate(std::uint32_t set, std::uint32_t way)
    {
        (void)set;
        (void)way;
    }

    /** Called once per access after hit/miss handling completed. */
    virtual void
    onAccessEnd(std::uint32_t set, const AccessInfo &info)
    {
        (void)set;
        (void)info;
    }

    /**
     * Prefetch hint: the per-set metadata of @p set will be scanned a
     * few accesses from now.  Deliberately NOT virtual — the batched
     * access loop is instantiated per concrete policy type, so each
     * final policy shadows this with an inline hint at its own SoA
     * rows and the generic instantiation keeps the free no-op.
     */
    void
    prefetchMeta(std::uint32_t set) const
    {
        (void)set;
    }

    /** Metadata + table storage in bits (Table I accounting). */
    virtual std::uint64_t storageBits() const = 0;

    /** Policy display name. */
    const std::string &name() const { return name_; }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    /** Prediction-table read count since reset (Fig 11). */
    std::uint64_t tableReads() const { return tableReads_; }

    /** Prediction-table write count since reset (Fig 11). */
    std::uint64_t tableWrites() const { return tableWrites_; }

  protected:
    void countTableRead() { ++tableReads_; }
    void countTableWrite() { ++tableWrites_; }
    /** Bulk accounting for loops with a known table-op count. */
    void countTableReads(unsigned n) { tableReads_ += n; }
    void countTableWrites(unsigned n) { tableWrites_ += n; }

    /** Reset the table traffic counters (called from reset()). */
    void
    resetTableCounters()
    {
        tableReads_ = 0;
        tableWrites_ = 0;
    }

    /** Flat metadata index of (set, way). */
    std::size_t
    idx(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * assoc_ + way;
    }

  private:
    std::string name_;
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    std::uint64_t tableReads_ = 0;
    std::uint64_t tableWrites_ = 0;
};

/**
 * Shared true-LRU recency bookkeeping: a stack position per entry,
 * log2(assoc) bits each.  Several policies (LRU itself, GHRP and
 * CHiRP fallback victims) embed one.
 */
class LruStack
{
  public:
    LruStack(std::uint32_t num_sets, std::uint32_t assoc);

    /** Make @p way the most recently used in @p set. */
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        const std::uint8_t old_pos = position_[base + way];
        if (old_pos == 0)
            return; // already MRU: the shift below would be a no-op
        if (swar()) {
            // All eight positions live in one word; bump every byte
            // below old_pos and zero the touched way in O(1).
            std::uint64_t word = loadSet(base);
            word += lanesBelow(word, old_pos);
            word &= ~(std::uint64_t{0xFF} << (8 * way));
            storeSet(base, word);
            return;
        }
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (position_[base + w] < old_pos)
                ++position_[base + w];
        }
        position_[base + way] = 0;
    }

    /** Way currently least recently used in @p set. */
    std::uint32_t
    lruWay(std::uint32_t set) const
    {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        const std::uint8_t want = static_cast<std::uint8_t>(assoc_ - 1);
        if (swar()) {
            // Exactly one lane holds rank 7; find its zero after XOR.
            constexpr std::uint64_t kLo = 0x0101010101010101ULL;
            constexpr std::uint64_t kHi = 0x8080808080808080ULL;
            const std::uint64_t diff = loadSet(base) ^ (kLo * want);
            const std::uint64_t zero = (diff - kLo) & ~diff & kHi;
            if (zero)
                return static_cast<std::uint32_t>(
                    std::countr_zero(zero) / 8);
            return lostBottom(set);
        }
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (position_[base + w] == want)
                return w;
        }
        return lostBottom(set);
    }

    /** Stack position of @p way (0 = MRU). */
    std::uint32_t
    position(std::uint32_t set, std::uint32_t way) const
    {
        return position_[static_cast<std::size_t>(set) * assoc_ + way];
    }

    /**
     * The contiguous rank run of @p set: assoc bytes, way w's rank at
     * offset w, 0 == MRU.  Victim scans hand this straight to the
     * SIMD lane kernels.
     */
    const std::uint8_t *
    positions(std::uint32_t set) const
    {
        return position_.data() + static_cast<std::size_t>(set) * assoc_;
    }

    /** Force @p way to LRU position (used on invalidation). */
    void
    demote(std::uint32_t set, std::uint32_t way)
    {
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        const std::uint8_t old_pos = position_[base + way];
        if (old_pos == assoc_ - 1)
            return; // already LRU: the shift below would be a no-op
        if (swar()) {
            std::uint64_t word = loadSet(base);
            word -= lanesAbove(word, old_pos);
            word |= std::uint64_t{0x07} << (8 * way);
            storeSet(base, word);
            return;
        }
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (position_[base + w] > old_pos)
                --position_[base + w];
        }
        position_[base + way] = static_cast<std::uint8_t>(assoc_ - 1);
    }

    /** Reset all positions to a fixed initial order. */
    void reset();

    /** Bits of storage used (3 bits/entry for 8 ways). */
    std::uint64_t storageBits() const;

  private:
    /** Can this stack use the packed-word fast path?  Eight 8-bit
     *  ranks are exactly one little-endian uint64; every rank is
     *  < 8, so no lane ever carries into its neighbour.  Inline (and
     *  half compile-time) so touch()'s dispatch folds to one member
     *  compare instead of a function call per access. */
    bool
    swar() const
    {
        return assoc_ == 8 && std::endian::native == std::endian::little;
    }

    /** Invariant-violation exit for lruWay (out of line: cold). */
    [[noreturn]] std::uint32_t lostBottom(std::uint32_t set) const;

    /** The eight ranks of the set starting at @p base, packed with
     *  way w in bits [8w, 8w+8). */
    std::uint64_t
    loadSet(std::size_t base) const
    {
        std::uint64_t word;
        std::memcpy(&word, position_.data() + base, sizeof(word));
        return word;
    }

    void
    storeSet(std::size_t base, std::uint64_t word)
    {
        std::memcpy(position_.data() + base, &word, sizeof(word));
    }

    /** 0x01 in every lane whose rank is < @p limit (ranks and limit
     *  both < 0x80, so the borrow trick is exact). */
    static std::uint64_t
    lanesBelow(std::uint64_t word, std::uint8_t limit)
    {
        constexpr std::uint64_t kLo = 0x0101010101010101ULL;
        constexpr std::uint64_t kHi = 0x8080808080808080ULL;
        const std::uint64_t ge = ((word | kHi) - kLo * limit) & kHi;
        return (~ge & kHi) >> 7;
    }

    /** 0x01 in every lane whose rank is > @p limit. */
    static std::uint64_t
    lanesAbove(std::uint64_t word, std::uint8_t limit)
    {
        constexpr std::uint64_t kLo = 0x0101010101010101ULL;
        constexpr std::uint64_t kHi = 0x8080808080808080ULL;
        const std::uint64_t ge =
            ((word | kHi) - kLo * (limit + 1u)) & kHi;
        return ge >> 7;
    }

    std::uint32_t numSets_;
    std::uint32_t assoc_;
    // position_[set*assoc + way] = recency rank, 0 == MRU.
    std::vector<std::uint8_t> position_;
};

} // namespace chirp

#endif // CHIRP_CORE_REPLACEMENT_POLICY_HH
