/**
 * @file
 * Signature-based Hit Prediction (Wu et al., MICRO 2011) adapted to
 * the L2 TLB per §II-B/§III of the paper.
 *
 * Classic SHiP samples a few sets; the paper shows sampling cannot
 * generalize for TLBs, so this adaptation keeps the PC signature as
 * metadata in *every* TLB entry ("a sampler the same size as the
 * structure").  Because the TLB's incumbent policy is LRU, the
 * prediction steers *insertion into the recency stack*: entries
 * whose signature counter has collapsed to zero are inserted at the
 * LRU position (immediately evictable), everything else at MRU.
 * When the predictor is ineffective the policy therefore degenerates
 * to plain LRU — which is exactly the paper's SHiP result (+0.88%
 * over LRU).
 *
 * The configuration exposes the knobs used by the paper's §III
 * diagnosis of why PC-only prediction fails: an unlimited prediction
 * table (no aliasing), prediction restricted to a subset of sets,
 * and the Selective Hit Update training filter.
 *
 * Hot-path layout: per-entry metadata is structure-of-arrays (the
 * 16-bit signature, wide signature and outcome bit each live in
 * their own contiguous array), the unlimited-mode table is a
 * reserved open-addressing FlatCounterMap instead of an
 * unordered_map, and the hook bodies are inline so the TLB's
 * devirtualized dispatch can flatten them into its access loop.
 */

#ifndef CHIRP_CORE_SHIP_HH
#define CHIRP_CORE_SHIP_HH

#include <cassert>
#include <vector>

#include "core/prediction_table.hh"
#include "core/replacement_policy.hh"
#include "util/flat_counter_map.hh"
#include "util/simd.hh"

namespace chirp
{

/** Training filter applied to hits (§III Selective Hit Update). */
enum class HitUpdateMode
{
    Every,           //!< train on every hit (classic SHiP/GHRP)
    FirstHit,        //!< train only on an entry's first hit
    FirstHitDiffSet, //!< first hit, and only when the access targets
                     //!< a different set than the previous access
};

/** Printable name of a HitUpdateMode. */
const char *hitUpdateModeName(HitUpdateMode mode);

/** SHiP configuration. */
struct ShipConfig
{
    /** PC-signature width stored per entry. */
    unsigned signatureBits = 14;
    /** Signature History Counter Table entries (power of two). */
    std::size_t shctEntries = 16384;
    /** SHCT counter width. */
    unsigned counterBits = 3;
    /** Use an unbounded (no-aliasing) table instead of the SHCT. */
    bool unlimitedTable = false;
    /**
     * Fraction of sets the predictor manages; the remainder falls
     * back to plain LRU (§III set-subset study).  1.0 = all sets.
     */
    double predictedSetsFraction = 1.0;
    /** Hit-training filter. */
    HitUpdateMode hitUpdate = HitUpdateMode::Every;
};

/** SHiP replacement for the TLB (LRU base + insertion steering). */
class ShipPolicy final : public ReplacementPolicy
{
  public:
    ShipPolicy(std::uint32_t num_sets, std::uint32_t assoc,
               const ShipConfig &config = {});

    void reset() override;

    // No batched chunk compose for SHiP: unlike CHiRP/GHRP, the hit
    // path trains at the ENTRY's stored SHCT slot and never needs the
    // current access's signature — only fills (the misses) do.  An
    // eager per-chunk signature/index column would spend one fused
    // pass plus a per-access column pick on every access to save a
    // fold+hash on the ~miss fraction, a measured net loss at typical
    // hit rates.  The fills compose lazily through the same fold-plan
    // kernels (signatureOf/indexOf), so the batched loop's remaining
    // wins (deferred accounting, shared prefetch) apply unchanged and
    // the batched path can never be slower than the scalar loop.

    /**
     * Batched-loop metadata hint (shadows the base no-op; resolved
     * statically under devirtualized dispatch): pull the set's
     * outcome bits, LRU ranks and cached SHCT indices toward the
     * caches one chunk slot ahead of its scan.
     */
    void
    prefetchMeta(std::uint32_t set) const
    {
#if defined(__GNUC__) || defined(__clang__)
        const std::size_t base = idx(set, 0);
        __builtin_prefetch(outcome_.data() + base, 0, 3);
        __builtin_prefetch(stack_.positions(set), 0, 3);
        __builtin_prefetch(shctIdx_.data() + base, 0, 3);
#else
        (void)set;
#endif
    }

    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &info) override
    {
        (void)info;
        stack_.touch(set, way);
        if (!predicted(set))
            return;

        const std::size_t entry = idx(set, way);
        bool train = false;
        switch (config_.hitUpdate) {
          case HitUpdateMode::Every:
            train = true;
            break;
          case HitUpdateMode::FirstHit:
            train = !outcome_[entry];
            break;
          case HitUpdateMode::FirstHitDiffSet:
            train = !outcome_[entry] && set != lastSet_;
            break;
        }
        if (train)
            trainLive(entry);
        outcome_[entry] = 1;
    }

    std::uint32_t
    selectVictim(std::uint32_t set, const AccessInfo &) override
    {
        const std::uint32_t way = stack_.lruWay(set);
        if (predicted(set)) {
            const std::size_t entry = idx(set, way);
            // Eviction without re-reference is the dead-signature
            // evidence.
            if (!outcome_[entry])
                trainDead(entry);
        }
        return way;
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        outcome_[entry] = 0;
        if (config_.unlimitedTable) {
            wideSig_[entry] = signatureOf(info.pc);
        } else {
            const std::uint16_t sig =
                static_cast<std::uint16_t>(signatureOf(info.pc));
            sig_[entry] = sig;
            shctIdx_[entry] =
                static_cast<std::uint32_t>(shct_.indexOf(sig));
        }

        if (!predicted(set))
            return;
        // Placement steering: a collapsed counter predicts no
        // re-reference, so the entry goes straight to the LRU position
        // where it is the next victim; everything else inserts at MRU.
        const std::uint16_t counter = readCounter(entry);
        if (counter == 0)
            stack_.demote(set, way);
    }

    void
    onInvalidate(std::uint32_t set, std::uint32_t way) override
    {
        stack_.demote(set, way);
        const std::size_t entry = idx(set, way);
        sig_[entry] = 0;
        shctIdx_[entry] =
            static_cast<std::uint32_t>(shct_.indexOf(0));
        outcome_[entry] = 0;
        if (!wideSig_.empty())
            wideSig_[entry] = 0;
    }

    void
    onAccessEnd(std::uint32_t set, const AccessInfo &) override
    {
        lastSet_ = set;
    }

    std::uint64_t storageBits() const override;
    bool wantsRetireEvents() const override { return false; }

    const ShipConfig &config() const { return config_; }

    /** Current SHCT counter for @p pc's signature (tests). */
    std::uint16_t counterFor(Addr pc) const;

    /** Recency rank of a way (0 = MRU); exposed for tests. */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return stack_.position(set, way);
    }

  private:
    /** Is @p set managed by the predictor (vs the LRU fallback)? */
    bool predicted(std::uint32_t set) const { return set < predictedSets_; }

    std::uint64_t
    signatureOf(Addr pc) const
    {
        if (config_.unlimitedTable)
            return pc >> 2;
        return foldXor(pc >> 2, config_.signatureBits);
    }

    // In SHCT mode every table op goes through the per-entry cached
    // index (shctIdx_ always mirrors indexOf(sig_[entry]): fills and
    // invalidates write both together), so trained hits and victim
    // training skip the hash entirely.

    std::uint16_t
    readCounter(std::size_t entry)
    {
        countTableRead();
        if (config_.unlimitedTable)
            return unlimited_.value(wideSig_[entry]);
        return shct_.readAt(shctIdx_[entry]);
    }

    void
    trainLive(std::size_t entry)
    {
        countTableWrite();
        if (config_.unlimitedTable)
            unlimited_.increment(wideSig_[entry]);
        else
            shct_.incrementAt(shctIdx_[entry]);
    }

    void
    trainDead(std::size_t entry)
    {
        countTableWrite();
        if (config_.unlimitedTable)
            unlimited_.decrement(wideSig_[entry]);
        else
            shct_.decrementAt(shctIdx_[entry]);
    }

    ShipConfig config_;
    PredictionTable shct_;
    FlatCounterMap unlimited_;
    // Structure-of-arrays entry metadata, indexed by idx(set, way).
    // wideSig_ (full signatures, unlimited mode only) stays empty in
    // the common SHCT mode.
    std::vector<std::uint16_t> sig_;
    std::vector<std::uint64_t> wideSig_;
    std::vector<std::uint8_t> outcome_; //!< re-referenced since fill?
    // Cached SHCT index of each entry's stored signature (SHCT mode):
    // simulation-speed state, not modeled storage.
    std::vector<std::uint32_t> shctIdx_;
    LruStack stack_;
    std::uint32_t predictedSets_;
    std::uint32_t lastSet_ = ~0u;
    // Fold ladder for the signature width, built once.
    simd::FoldPlan sigPlan_;
};

} // namespace chirp

#endif // CHIRP_CORE_SHIP_HH
