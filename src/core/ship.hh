/**
 * @file
 * Signature-based Hit Prediction (Wu et al., MICRO 2011) adapted to
 * the L2 TLB per §II-B/§III of the paper.
 *
 * Classic SHiP samples a few sets; the paper shows sampling cannot
 * generalize for TLBs, so this adaptation keeps the PC signature as
 * metadata in *every* TLB entry ("a sampler the same size as the
 * structure").  Because the TLB's incumbent policy is LRU, the
 * prediction steers *insertion into the recency stack*: entries
 * whose signature counter has collapsed to zero are inserted at the
 * LRU position (immediately evictable), everything else at MRU.
 * When the predictor is ineffective the policy therefore degenerates
 * to plain LRU — which is exactly the paper's SHiP result (+0.88%
 * over LRU).
 *
 * The configuration exposes the knobs used by the paper's §III
 * diagnosis of why PC-only prediction fails: an unlimited prediction
 * table (no aliasing), prediction restricted to a subset of sets,
 * and the Selective Hit Update training filter.
 */

#ifndef CHIRP_CORE_SHIP_HH
#define CHIRP_CORE_SHIP_HH

#include <unordered_map>
#include <vector>

#include "core/prediction_table.hh"
#include "core/replacement_policy.hh"

namespace chirp
{

/** Training filter applied to hits (§III Selective Hit Update). */
enum class HitUpdateMode
{
    Every,           //!< train on every hit (classic SHiP/GHRP)
    FirstHit,        //!< train only on an entry's first hit
    FirstHitDiffSet, //!< first hit, and only when the access targets
                     //!< a different set than the previous access
};

/** Printable name of a HitUpdateMode. */
const char *hitUpdateModeName(HitUpdateMode mode);

/** SHiP configuration. */
struct ShipConfig
{
    /** PC-signature width stored per entry. */
    unsigned signatureBits = 14;
    /** Signature History Counter Table entries (power of two). */
    std::size_t shctEntries = 16384;
    /** SHCT counter width. */
    unsigned counterBits = 3;
    /** Use an unbounded (no-aliasing) table instead of the SHCT. */
    bool unlimitedTable = false;
    /**
     * Fraction of sets the predictor manages; the remainder falls
     * back to plain LRU (§III set-subset study).  1.0 = all sets.
     */
    double predictedSetsFraction = 1.0;
    /** Hit-training filter. */
    HitUpdateMode hitUpdate = HitUpdateMode::Every;
};

/** SHiP replacement for the TLB (LRU base + insertion steering). */
class ShipPolicy : public ReplacementPolicy
{
  public:
    ShipPolicy(std::uint32_t num_sets, std::uint32_t assoc,
               const ShipConfig &config = {});

    void reset() override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t selectVictim(std::uint32_t set,
                               const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onInvalidate(std::uint32_t set, std::uint32_t way) override;
    void onAccessEnd(std::uint32_t set, const AccessInfo &info) override;
    std::uint64_t storageBits() const override;
    bool wantsRetireEvents() const override { return false; }

    const ShipConfig &config() const { return config_; }

    /** Current SHCT counter for @p pc's signature (tests). */
    std::uint16_t counterFor(Addr pc) const;

    /** Recency rank of a way (0 = MRU); exposed for tests. */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return stack_.position(set, way);
    }

  private:
    struct Meta
    {
        std::uint16_t sig = 0;
        std::uint64_t wideSig = 0; //!< full signature (unlimited mode)
        bool outcome = false;      //!< re-referenced since insertion?
    };

    /** Is @p set managed by the predictor (vs the LRU fallback)? */
    bool predicted(std::uint32_t set) const;

    std::uint64_t signatureOf(Addr pc) const;
    std::uint16_t readCounter(const Meta &meta);
    void trainLive(const Meta &meta);
    void trainDead(const Meta &meta);

    ShipConfig config_;
    PredictionTable shct_;
    std::unordered_map<std::uint64_t, SatCounter> unlimited_;
    std::vector<Meta> meta_;
    LruStack stack_;
    std::uint32_t predictedSets_;
    std::uint32_t lastSet_ = ~0u;
};

} // namespace chirp

#endif // CHIRP_CORE_SHIP_HH
