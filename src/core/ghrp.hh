/**
 * @file
 * Global History Reuse Prediction (Mirbagher-Ajorpaz et al., ISCA
 * 2018), adapted from instruction cache / BTB replacement to the L2
 * TLB (§II-C of the paper).
 *
 * GHRP forms a signature from the accessing PC and a global history
 * register fed by conditional-branch outcomes and low-order branch
 * address bits.  Three prediction tables, indexed by three different
 * hashes of the signature, vote via a thresholded counter sum; dead
 * entries are preferred victims.  Unlike CHiRP, GHRP reads and
 * trains its tables on *every* access, which is what Fig 11
 * measures.
 */

#ifndef CHIRP_CORE_GHRP_HH
#define CHIRP_CORE_GHRP_HH

#include <vector>

#include "core/prediction_table.hh"
#include "core/replacement_policy.hh"

namespace chirp
{

/** GHRP configuration. */
struct GhrpConfig
{
    /** Number of prediction tables (votes). */
    unsigned numTables = 3;
    /** Entries per table (power of two). */
    std::size_t tableEntries = 4096;
    /** Counter width. */
    unsigned counterBits = 2;
    /**
     * Dead when the counter sum exceeds this.  With 3 x 2-bit
     * counters the sum ranges 0..9.
     */
    unsigned deadThreshold = 4;
    /** Stored signature width per entry. */
    unsigned signatureBits = 16;
    /** Bits shifted into the history per conditional branch (one
     *  outcome bit + historyShift-1 branch-address bits). */
    unsigned historyShift = 5;
    /**
     * History bits each table sees (TAGE-style length spread): the
     * zero-length table is a stable PC-only fallback, the longer
     * ones add control-flow context.
     */
    std::vector<unsigned> tableHistoryBits = {0, 5, 10};
};

/** GHRP replacement for the TLB. */
class GhrpPolicy : public ReplacementPolicy
{
  public:
    GhrpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
               const GhrpConfig &config = {});

    void reset() override;
    void onBranchRetired(Addr pc, InstClass cls, bool taken) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t selectVictim(std::uint32_t set,
                               const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onInvalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint64_t storageBits() const override;

    const GhrpConfig &config() const { return config_; }

    /** Current global history register value (tests). */
    std::uint64_t history() const { return history_; }

    /** Dead bit of an entry (tests). */
    bool
    isDead(std::uint32_t set, std::uint32_t way) const
    {
        return meta_[idx(set, way)].dead;
    }

  private:
    struct Meta
    {
        /** One stored signature per table (different history lengths). */
        std::vector<std::uint16_t> sig;
        bool dead = false;
    };

    std::uint16_t signatureOf(Addr pc, unsigned table) const;
    std::vector<std::uint16_t> signaturesOf(Addr pc) const;
    unsigned readSum(const std::vector<std::uint16_t> &sigs);
    void trainLive(const std::vector<std::uint16_t> &sigs);
    void trainDead(const std::vector<std::uint16_t> &sigs);

    GhrpConfig config_;
    std::vector<PredictionTable> tables_;
    std::vector<Meta> meta_;
    LruStack stack_;
    std::uint64_t history_ = 0;
};

} // namespace chirp

#endif // CHIRP_CORE_GHRP_HH
