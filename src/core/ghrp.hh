/**
 * @file
 * Global History Reuse Prediction (Mirbagher-Ajorpaz et al., ISCA
 * 2018), adapted from instruction cache / BTB replacement to the L2
 * TLB (§II-C of the paper).
 *
 * GHRP forms a signature from the accessing PC and a global history
 * register fed by conditional-branch outcomes and low-order branch
 * address bits.  Three prediction tables, indexed by three different
 * hashes of the signature, vote via a thresholded counter sum; dead
 * entries are preferred victims.  Unlike CHiRP, GHRP reads and
 * trains its tables on *every* access, which is what Fig 11
 * measures.
 *
 * Hot-path layout: the per-entry signatures (one per table) are
 * flattened into a single contiguous array instead of a
 * vector-per-entry, the dead bits form their own per-set runs, and
 * the per-access signatures are composed once in onAccessBegin and
 * memoized across the hit/victim/fill hooks.  Alongside each stored
 * signature the policy caches the table index it hashes to, so
 * training and voting on a stored signature is a direct packed-
 * counter access with no hash recomputation — the per-access hash
 * work drops from ~4 table-index computations per event to one
 * vectorized composition (all tables' signatures and indices in SIMD
 * lanes) in onAccessBegin.  The cached indices are simulation-speed
 * state, not modeled storage: storageBits() counts only the
 * architected signatures, flags and tables.  The hook bodies are
 * inline so the TLB's devirtualized dispatch can flatten them into
 * its access loop.
 */

#ifndef CHIRP_CORE_GHRP_HH
#define CHIRP_CORE_GHRP_HH

#include <array>
#include <vector>

#include "core/replacement_policy.hh"
#include "util/bitfield.hh"
#include "util/hashing.hh"
#include "util/packed_counters.hh"
#include "util/simd.hh"

namespace chirp
{

/** Upper bound on GHRP tables (sizes the fixed per-access memo). */
inline constexpr unsigned kGhrpMaxTables = 8;

/** GHRP configuration. */
struct GhrpConfig
{
    /** Number of prediction tables (votes). */
    unsigned numTables = 3;
    /** Entries per table (power of two). */
    std::size_t tableEntries = 4096;
    /** Counter width. */
    unsigned counterBits = 2;
    /**
     * Dead when the counter sum exceeds this.  With 3 x 2-bit
     * counters the sum ranges 0..9.
     */
    unsigned deadThreshold = 4;
    /** Stored signature width per entry. */
    unsigned signatureBits = 16;
    /** Bits shifted into the history per conditional branch (one
     *  outcome bit + historyShift-1 branch-address bits). */
    unsigned historyShift = 5;
    /**
     * History bits each table sees (TAGE-style length spread): the
     * zero-length table is a stable PC-only fallback, the longer
     * ones add control-flow context.
     */
    std::vector<unsigned> tableHistoryBits = {0, 5, 10};
};

/** GHRP replacement for the TLB. */
class GhrpPolicy final : public ReplacementPolicy
{
  public:
    GhrpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
               const GhrpConfig &config = {});

    void reset() override;

    void
    onBranchRetired(Addr pc, InstClass cls, bool taken) override
    {
        if (cls != InstClass::CondBranch)
            return;
        // Outcome bit plus low-order branch address bits, as in the
        // original GHRP history.
        const std::uint64_t event =
            (bits(pc, config_.historyShift, 2) << 1) | (taken ? 1 : 0);
        history_ = (history_ << config_.historyShift) | event;
        memoValid_ = false;
    }

    void
    onAccessBegin(const AccessInfo &info) override
    {
        if (batchActive_) {
            // Batched miss path: every table's signature and index
            // for this access were composed in beginAccessBatch; the
            // memo is a column pick, not a hash.  The history
            // register still advances per access so mid-chunk state
            // (and a mid-chunk unwind) matches the scalar path.
            if (histStream_)
                history_ = histStream_[histIdx_++];
            const std::size_t i = batchPos_++;
            const unsigned n = config_.numTables;
            for (unsigned t = 0; t < n; ++t) {
                memoSigs_[t] = batchSigs_[t * batchN_ + i];
                memoIdxs_[t] = batchIdxs_[t * batchN_ + i];
            }
            memoPc_ = info.pc;
            memoValid_ = true;
            return;
        }
        if (histStream_) {
            // Replay mode: the history register values this policy
            // would have accumulated from the retire stream were
            // precomputed, one per access in order, so the retire
            // stream need not be walked at all.  The memo only goes
            // stale when the value actually moves; an unchanged
            // register recomposes to bit-identical signatures, so
            // keeping the memo is unobservable.
            const std::uint64_t h = histStream_[histIdx_++];
            if (h != history_) {
                history_ = h;
                memoValid_ = false;
            }
        }
        // Compose the per-table signatures and table indices once;
        // the hit/fill hooks of this access reuse them.
        memoize(info.pc);
    }

    /**
     * Batched miss path (see ReplacementPolicy::beginAccessBatch):
     * compose the whole chunk's per-table signatures and table
     * indices as n-lane columns through the fused sigIndexLanes
     * kernel — base → fold → signature → salt → multiply → fold →
     * bank index in registers, one pass over the chunk per table,
     * instead of separate fill/fold/truncate/salt/hash passes each
     * streaming the chunk through memory.  In live-history mode the
     * register is frozen for the chunk, so each table's history term
     * is the kernel's xor constant and the pc lanes are shared by all
     * tables; in replay mode the stream supplies each access's
     * register value, one extra xor pass per table.
     */
    void
    beginAccessBatch(const AccessInfo *infos, std::size_t n) override
    {
        const unsigned tables = config_.numTables;
        // [0, n) holds the shared pc>>2 lanes; [n, 2n) is scratch for
        // the replay-mode per-access history xor.
        if (batchLanes_.size() < 2 * n) {
            batchLanes_.resize(2 * n);
            batchSigs_.resize(n * tables);
            batchIdxs_.resize(n * tables);
        } else if (batchSigs_.size() < n * tables) {
            batchSigs_.resize(n * tables);
            batchIdxs_.resize(n * tables);
        }
        std::uint64_t *lanes = batchLanes_.data();
        std::uint64_t *scratch = lanes + n;
        for (std::size_t i = 0; i < n; ++i)
            lanes[i] = infos[i].pc >> 2;
        for (unsigned t = 0; t < tables; ++t) {
            std::uint16_t *sigs = batchSigs_.data() + t * n;
            std::uint32_t *idxs = batchIdxs_.data() + t * n;
            const std::uint32_t bank = static_cast<std::uint32_t>(t)
                                       << indexBits_;
            if (histStream_) {
                const std::uint64_t mask = histMasks_[t];
                for (std::size_t i = 0; i < n; ++i)
                    scratch[i] =
                        lanes[i] ^ (histStream_[histIdx_ + i] & mask);
                simd::sigIndexLanes(scratch, n, 0, sigPlan_, salts_[t],
                                    kIndexHashMultiplier, idxPlan_,
                                    bank, sigs, idxs);
            } else {
                simd::sigIndexLanes(lanes, n, history_ & histMasks_[t],
                                    sigPlan_, salts_[t],
                                    kIndexHashMultiplier, idxPlan_,
                                    bank, sigs, idxs);
            }
        }
#ifndef NDEBUG
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t h =
                histStream_ ? histStream_[histIdx_ + i] : history_;
            for (unsigned t = 0; t < tables; ++t) {
                const std::uint16_t want = static_cast<std::uint16_t>(
                    foldXor((infos[i].pc >> 2) ^ (h & histMasks_[t]),
                            config_.signatureBits));
                assert(batchSigs_[t * n + i] == want);
                assert(batchIdxs_[t * n + i] ==
                       bankIndex(t, hashBy(HashKind::Index,
                                           static_cast<std::uint64_t>(
                                               want) ^
                                               salts_[t],
                                           indexBits_)));
            }
        }
#endif
        batchN_ = n;
        batchPos_ = 0;
        batchActive_ = true;
    }

    void
    endAccessBatch() override
    {
        // The memo keeps the last completed access's values, exactly
        // where a scalar onAccessBegin sequence would have left it.
        batchActive_ = false;
    }

    /**
     * Batched-loop metadata hint (shadows the base no-op; resolved
     * statically under devirtualized dispatch): pull the set's dead
     * bits, LRU ranks and cached table indices toward the caches one
     * chunk slot ahead of its scan.
     */
    void
    prefetchMeta(std::uint32_t set) const
    {
#if defined(__GNUC__) || defined(__clang__)
        const std::size_t base = idx(set, 0);
        __builtin_prefetch(dead_.data() + base, 0, 3);
        __builtin_prefetch(stack_.positions(set), 0, 3);
        __builtin_prefetch(
            sigIdxs_.data() + base * config_.numTables, 0, 3);
#else
        (void)set;
#endif
    }

    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        memoize(info.pc);
        // One fused pass per table: train live at the previous
        // signature's index, re-tag with the current context, and
        // read the vote under the new index.  Equivalent to the
        // separate train/retag/vote loops — each table only ever
        // sees its own old index (decrement) before its new one
        // (read), in that order either way.
        std::uint16_t *sigs = storedSigs(entry);
        std::uint32_t *idxs = storedIdxs(entry);
        const bool was_valid = sigValid_[entry] != 0;
        const unsigned n = config_.numTables;
        unsigned sum = 0;
        if (was_valid) {
            // The entry proved live under its previous signature.
            countTableWrites(n);
            for (unsigned t = 0; t < n; ++t)
                bankDecrementAt(idxs[t]);
        }
        countTableReads(n);
        for (unsigned t = 0; t < n; ++t) {
            sigs[t] = memoSigs_[t];
            idxs[t] = memoIdxs_[t];
            sum += bank_.get(memoIdxs_[t]);
        }
        sigValid_[entry] = 1;
        // A hit is direct evidence of liveness: predictions may only
        // clear the dead bit here, never set it on an entry in active
        // use (refreshing to dead on hits churns hot entries).
        if (sum <= config_.deadThreshold)
            dead_[entry] = false;
    }

    std::uint32_t
    selectVictim(std::uint32_t set, const AccessInfo &) override
    {
        // The dead bits of the set are one contiguous assoc-byte run:
        // the first-dead scan is a single SIMD kernel call.
        const std::size_t way =
            simd::firstSetLane(dead_.data() + idx(set, 0), assoc());
        const std::uint32_t victim = way < assoc()
                                         ? static_cast<std::uint32_t>(way)
                                         : stack_.lruWay(set);
        // The victim is leaving the TLB: dead evidence for its
        // signature.  Entries the predictor itself chose are skipped
        // so its own decisions do not self-reinforce (SDBP-style
        // training).
        const std::size_t entry = idx(set, victim);
        if (!dead_[entry] && sigValid_[entry])
            trainDead(entry);
        return victim;
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        memoize(info.pc);
        // Fused retag + vote, as in onHit (no training on fills).
        std::uint16_t *sigs = storedSigs(entry);
        std::uint32_t *idxs = storedIdxs(entry);
        const unsigned n = config_.numTables;
        unsigned sum = 0;
        countTableReads(n);
        for (unsigned t = 0; t < n; ++t) {
            sigs[t] = memoSigs_[t];
            idxs[t] = memoIdxs_[t];
            sum += bank_.get(memoIdxs_[t]);
        }
        sigValid_[entry] = 1;
        dead_[entry] = sum > config_.deadThreshold;
    }

    void
    onInvalidate(std::uint32_t set, std::uint32_t way) override
    {
        stack_.demote(set, way);
        const std::size_t entry = idx(set, way);
        std::uint16_t *stored = storedSigs(entry);
        for (unsigned t = 0; t < config_.numTables; ++t)
            stored[t] = 0;
        sigValid_[entry] = 0;
        dead_[entry] = false;
    }

    std::uint64_t storageBits() const override;

    const GhrpConfig &config() const { return config_; }

    /** Current global history register value (tests). */
    std::uint64_t history() const { return history_; }

    /** Dead bit of an entry (tests). */
    bool
    isDead(std::uint32_t set, std::uint32_t way) const
    {
        return dead_[idx(set, way)];
    }

    /**
     * Event-replay support: take the global history register value
     * at each access from @p hist (one per access, in access order)
     * instead of evolving it from retired branches, which then need
     * not be delivered.  The values must equal what the live
     * onBranchRetired sequence would have accumulated before each
     * access; the stream depends only on historyShift, so variants
     * sharing it share one stream.  The array must outlive the
     * policy's use; reset() rewinds to its start.  Null reverts to
     * the live register.
     */
    void
    setHistoryStream(const std::uint64_t *hist)
    {
        histStream_ = hist;
        histIdx_ = 0;
    }

    /** Is a replay history stream attached? */
    bool hasHistoryStream() const { return histStream_ != nullptr; }

  private:
    /** Scalar reference signature composition (debug checks/tests). */
    std::uint16_t
    signatureOf(Addr pc, unsigned table) const
    {
        const std::uint64_t hist =
            history_ & maskBits(config_.tableHistoryBits[table]);
        return static_cast<std::uint16_t>(
            foldXor((pc >> 2) ^ hist, config_.signatureBits));
    }

    /**
     * Compose every table's signature and table index for @p pc into
     * the memo arrays, one SIMD lane per table: the history mask and
     * XOR-fold for the signatures, then the multiplicative index hash
     * of sig ^ salt for the indices — the same math PredictionTable::
     * indexOf performs per call, done once for all tables.
     */
    void
    composeSignatures(Addr pc)
    {
        const unsigned n = config_.numTables;
        const std::uint64_t base = pc >> 2;
        if (n <= 4) {
            // For a handful of tables (the paper's three) one fused
            // scalar pass beats the lane kernels: no lane-array round
            // trips, no dispatch, and the per-table chains overlap in
            // the pipeline.  Bit-identical to the lane path —
            // FoldPlan::apply IS foldXor of the same widths.
            for (unsigned t = 0; t < n; ++t) {
                // Index formation sees the stored (16-bit truncated)
                // signature, exactly as indexOf(storedSig) would.
                const std::uint16_t sig = static_cast<std::uint16_t>(
                    sigPlan_.apply(base ^ (history_ & histMasks_[t])));
                memoSigs_[t] = sig;
                memoIdxs_[t] = bankIndex(
                    t, idxPlan_.apply(
                           (static_cast<std::uint64_t>(sig) ^
                            salts_[t]) *
                           kIndexHashMultiplier));
            }
        } else {
            std::uint64_t *lanes = memoLanes_.data();
            for (unsigned t = 0; t < n; ++t)
                lanes[t] = base ^ (history_ & histMasks_[t]);
            simd::xorFoldLanes(lanes, n, sigPlan_);
            for (unsigned t = 0; t < n; ++t)
                memoSigs_[t] = static_cast<std::uint16_t>(lanes[t]);
            for (unsigned t = 0; t < n; ++t)
                lanes[t] = static_cast<std::uint64_t>(memoSigs_[t]) ^
                           salts_[t];
            simd::mulXorFoldLanes(lanes, n, kIndexHashMultiplier,
                                  idxPlan_);
            for (unsigned t = 0; t < n; ++t)
                memoIdxs_[t] = bankIndex(t, lanes[t]);
        }
#ifndef NDEBUG
        for (unsigned t = 0; t < n; ++t) {
            assert(memoSigs_[t] == signatureOf(pc, t));
            assert(memoIdxs_[t] ==
                   bankIndex(t, hashBy(HashKind::Index,
                                       static_cast<std::uint64_t>(
                                           memoSigs_[t]) ^
                                           salts_[t],
                                       indexBits_)));
        }
#endif
    }

    /**
     * Refresh the per-access memo for @p pc unless it is already
     * valid (the history has not advanced since and the PC matches —
     * tests drive hooks directly, so the hooks revalidate).
     */
    void
    memoize(Addr pc)
    {
        if (!memoValid_ || memoPc_ != pc) {
            composeSignatures(pc);
            memoPc_ = pc;
            memoValid_ = true;
        }
    }

    /** The flattened stored-signature run of one entry. */
    std::uint16_t *
    storedSigs(std::size_t entry)
    {
        return sigs_.data() + entry * config_.numTables;
    }

    /** The cached table indices of one entry's stored signatures. */
    std::uint32_t *
    storedIdxs(std::size_t entry)
    {
        return sigIdxs_.data() + entry * config_.numTables;
    }

    void
    trainDead(std::size_t entry)
    {
        const std::uint32_t *idxs = storedIdxs(entry);
        countTableWrites(config_.numTables);
        for (unsigned t = 0; t < config_.numTables; ++t)
            bankIncrementAt(idxs[t]);
    }

    /**
     * Flat bank index of table @p t's counter @p idx.  The memo and
     * the per-entry index cache store these table-global indices so
     * the train/vote loops address one contiguous array with no
     * per-table base arithmetic.
     */
    std::uint32_t
    bankIndex(unsigned t, std::uint64_t idx) const
    {
        return static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(t) << indexBits_) | idx);
    }

    /**
     * Saturating increment of one bank counter.  Branchless: the
     * saturation test compiles to a flag add, so the data-dependent
     * (and hence unpredictable) saturated/unsaturated branch never
     * reaches the branch predictor.  A saturated counter stores its
     * own value back — no state change.
     */
    void
    bankIncrementAt(std::uint32_t flat)
    {
        const std::uint16_t value = bank_.get(flat);
        bank_.set(flat, static_cast<std::uint16_t>(
                            value + (value < counterMax_ ? 1 : 0)));
    }

    /** Saturating decrement of one bank counter (branchless). */
    void
    bankDecrementAt(std::uint32_t flat)
    {
        const std::uint16_t value = bank_.get(flat);
        bank_.set(flat, static_cast<std::uint16_t>(
                            value - (value > 0 ? 1 : 0)));
    }

    GhrpConfig config_;
    // All tables' counters in one contiguous packed array: table t's
    // counter i lives at flat index (t << indexBits_) | i.  One base
    // pointer serves every train/vote op — no per-table object or
    // per-table heap block on the hot path.  The modeled budget is
    // unchanged: storageBits() counts numTables * entries counters.
    PackedCounterArray bank_;
    std::uint16_t counterMax_ = 0;
    // Structure-of-arrays entry metadata: the stored signatures of
    // entry e occupy sigs_[e*numTables .. e*numTables+numTables), the
    // cached table indices the matching u32 run, and the
    // has-signature and dead flags their own byte arrays.  The index
    // cache mirrors indexOf(stored sig) and is simulator state only
    // (not counted in storageBits).
    std::vector<std::uint16_t> sigs_;
    std::vector<std::uint32_t> sigIdxs_;
    std::vector<std::uint8_t> sigValid_;
    std::vector<std::uint8_t> dead_;
    LruStack stack_;
    std::uint64_t history_ = 0;
    unsigned indexBits_ = 0;
    // Fold ladders for the signature and index widths, built once.
    simd::FoldPlan sigPlan_;
    simd::FoldPlan idxPlan_;
    // Per-table constants and the per-access signature/index memo
    // (see onAccessBegin), all fixed-size arrays so the per-access
    // composition runs with no heap indirection.
    std::array<std::uint64_t, kGhrpMaxTables> histMasks_{};
    std::array<std::uint64_t, kGhrpMaxTables> salts_{};
    std::array<std::uint16_t, kGhrpMaxTables> memoSigs_{};
    std::array<std::uint32_t, kGhrpMaxTables> memoIdxs_{};
    std::array<std::uint64_t, kGhrpMaxTables> memoLanes_{};
    bool memoValid_ = false;
    Addr memoPc_ = 0;
    // Replay history stream (see setHistoryStream).
    const std::uint64_t *histStream_ = nullptr;
    std::size_t histIdx_ = 0;
    // Batched miss path: per-table chunk columns (table t's lane i at
    // t * batchN_ + i) and the u64 scratch the kernels fold over (see
    // beginAccessBatch).
    std::vector<std::uint16_t> batchSigs_;
    std::vector<std::uint32_t> batchIdxs_;
    std::vector<std::uint64_t> batchLanes_;
    std::size_t batchN_ = 0;
    std::size_t batchPos_ = 0;
    bool batchActive_ = false;
};

} // namespace chirp

#endif // CHIRP_CORE_GHRP_HH
