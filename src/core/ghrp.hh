/**
 * @file
 * Global History Reuse Prediction (Mirbagher-Ajorpaz et al., ISCA
 * 2018), adapted from instruction cache / BTB replacement to the L2
 * TLB (§II-C of the paper).
 *
 * GHRP forms a signature from the accessing PC and a global history
 * register fed by conditional-branch outcomes and low-order branch
 * address bits.  Three prediction tables, indexed by three different
 * hashes of the signature, vote via a thresholded counter sum; dead
 * entries are preferred victims.  Unlike CHiRP, GHRP reads and
 * trains its tables on *every* access, which is what Fig 11
 * measures.
 *
 * Hot-path layout: the per-entry signatures (one per table) are
 * flattened into a single contiguous array instead of a
 * vector-per-entry, the dead bits form their own per-set runs, and
 * the per-access signatures are composed once in onAccessBegin and
 * memoized across the hit/victim/fill hooks.  The hook bodies are
 * inline so the TLB's devirtualized dispatch can flatten them into
 * its access loop.
 */

#ifndef CHIRP_CORE_GHRP_HH
#define CHIRP_CORE_GHRP_HH

#include <vector>

#include "core/prediction_table.hh"
#include "core/replacement_policy.hh"
#include "util/bitfield.hh"

namespace chirp
{

/** GHRP configuration. */
struct GhrpConfig
{
    /** Number of prediction tables (votes). */
    unsigned numTables = 3;
    /** Entries per table (power of two). */
    std::size_t tableEntries = 4096;
    /** Counter width. */
    unsigned counterBits = 2;
    /**
     * Dead when the counter sum exceeds this.  With 3 x 2-bit
     * counters the sum ranges 0..9.
     */
    unsigned deadThreshold = 4;
    /** Stored signature width per entry. */
    unsigned signatureBits = 16;
    /** Bits shifted into the history per conditional branch (one
     *  outcome bit + historyShift-1 branch-address bits). */
    unsigned historyShift = 5;
    /**
     * History bits each table sees (TAGE-style length spread): the
     * zero-length table is a stable PC-only fallback, the longer
     * ones add control-flow context.
     */
    std::vector<unsigned> tableHistoryBits = {0, 5, 10};
};

/** GHRP replacement for the TLB. */
class GhrpPolicy final : public ReplacementPolicy
{
  public:
    GhrpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
               const GhrpConfig &config = {});

    void reset() override;

    void
    onBranchRetired(Addr pc, InstClass cls, bool taken) override
    {
        if (cls != InstClass::CondBranch)
            return;
        // Outcome bit plus low-order branch address bits, as in the
        // original GHRP history.
        const std::uint64_t event =
            (bits(pc, config_.historyShift, 2) << 1) | (taken ? 1 : 0);
        history_ = (history_ << config_.historyShift) | event;
        memoValid_ = false;
    }

    void
    onAccessBegin(const AccessInfo &info) override
    {
        // Compose the per-table signatures once; the hit/fill hooks
        // of this access reuse them.
        computeSignatures(info.pc, memoSigs_.data());
        memoPc_ = info.pc;
        memoValid_ = true;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        std::uint16_t *stored = storedSigs(entry);
        // The entry proved live under its previous signature.
        if (sigValid_[entry])
            trainLive(stored);
        // Re-tag with the current context and refresh the prediction.
        setSigs(entry, memoizedSignatures(info.pc));
        const bool dead = readSum(stored) > config_.deadThreshold;
        // A hit is direct evidence of liveness: predictions may only
        // clear the dead bit here, never set it on an entry in active
        // use (refreshing to dead on hits churns hot entries).
        if (!dead)
            dead_[entry] = false;
    }

    std::uint32_t
    selectVictim(std::uint32_t set, const AccessInfo &) override
    {
        std::uint32_t victim = ~0u;
        // The dead bits of the set are one contiguous assoc-byte run,
        // so this scan touches a single cache line.
        const std::uint8_t *dead = dead_.data() + idx(set, 0);
        for (std::uint32_t way = 0; way < assoc(); ++way) {
            if (dead[way]) {
                victim = way;
                break;
            }
        }
        if (victim == ~0u)
            victim = stack_.lruWay(set);
        // The victim is leaving the TLB: dead evidence for its
        // signature.  Entries the predictor itself chose are skipped
        // so its own decisions do not self-reinforce (SDBP-style
        // training).
        const std::size_t entry = idx(set, victim);
        if (!dead_[entry] && sigValid_[entry])
            trainDead(storedSigs(entry));
        return victim;
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        setSigs(entry, memoizedSignatures(info.pc));
        dead_[entry] = readSum(storedSigs(entry)) > config_.deadThreshold;
    }

    void
    onInvalidate(std::uint32_t set, std::uint32_t way) override
    {
        stack_.demote(set, way);
        const std::size_t entry = idx(set, way);
        std::uint16_t *stored = storedSigs(entry);
        for (unsigned t = 0; t < config_.numTables; ++t)
            stored[t] = 0;
        sigValid_[entry] = 0;
        dead_[entry] = false;
    }

    std::uint64_t storageBits() const override;

    const GhrpConfig &config() const { return config_; }

    /** Current global history register value (tests). */
    std::uint64_t history() const { return history_; }

    /** Dead bit of an entry (tests). */
    bool
    isDead(std::uint32_t set, std::uint32_t way) const
    {
        return dead_[idx(set, way)];
    }

  private:
    std::uint16_t
    signatureOf(Addr pc, unsigned table) const
    {
        const std::uint64_t hist =
            history_ & maskBits(config_.tableHistoryBits[table]);
        return static_cast<std::uint16_t>(
            foldXor((pc >> 2) ^ hist, config_.signatureBits));
    }

    /** Compose all per-table signatures for @p pc into @p out. */
    void
    computeSignatures(Addr pc, std::uint16_t *out) const
    {
        for (unsigned t = 0; t < config_.numTables; ++t)
            out[t] = signatureOf(pc, t);
    }

    /**
     * The per-access signatures: the onAccessBegin memo when it is
     * valid for @p pc (the history has not advanced since), a fresh
     * composition otherwise (tests drive hooks directly).
     */
    const std::uint16_t *
    memoizedSignatures(Addr pc)
    {
        if (!memoValid_ || memoPc_ != pc) {
            computeSignatures(pc, memoSigs_.data());
            memoPc_ = pc;
            memoValid_ = true;
        }
        return memoSigs_.data();
    }

    /** The flattened stored-signature run of one entry. */
    std::uint16_t *
    storedSigs(std::size_t entry)
    {
        return sigs_.data() + entry * config_.numTables;
    }

    void
    setSigs(std::size_t entry, const std::uint16_t *sigs)
    {
        std::uint16_t *stored = storedSigs(entry);
        for (unsigned t = 0; t < config_.numTables; ++t)
            stored[t] = sigs[t];
        sigValid_[entry] = 1;
    }

    unsigned
    readSum(const std::uint16_t *sigs)
    {
        unsigned sum = 0;
        for (unsigned t = 0; t < tables_.size(); ++t) {
            countTableRead();
            sum += tables_[t].read(sigs[t]);
        }
        return sum;
    }

    void
    trainLive(const std::uint16_t *sigs)
    {
        for (unsigned t = 0; t < tables_.size(); ++t) {
            countTableWrite();
            tables_[t].decrement(sigs[t]);
        }
    }

    void
    trainDead(const std::uint16_t *sigs)
    {
        for (unsigned t = 0; t < tables_.size(); ++t) {
            countTableWrite();
            tables_[t].increment(sigs[t]);
        }
    }

    GhrpConfig config_;
    std::vector<PredictionTable> tables_;
    // Structure-of-arrays entry metadata: the stored signatures of
    // entry e occupy sigs_[e*numTables .. e*numTables+numTables), the
    // has-signature and dead flags their own byte arrays.
    std::vector<std::uint16_t> sigs_;
    std::vector<std::uint8_t> sigValid_;
    std::vector<std::uint8_t> dead_;
    LruStack stack_;
    std::uint64_t history_ = 0;
    // Per-access signature memo (see onAccessBegin).
    std::vector<std::uint16_t> memoSigs_;
    bool memoValid_ = false;
    Addr memoPc_ = 0;
};

} // namespace chirp

#endif // CHIRP_CORE_GHRP_HH
