#include "core/chirp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chirp
{

ChirpPolicy::ChirpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                         const ChirpConfig &config)
    : ReplacementPolicy("chirp", num_sets, assoc), config_(config),
      history_(config.history),
      table_(config.tableEntries, config.counterBits, config.hash),
      sigPlan_(config.signatureBits),
      sig_(static_cast<std::size_t>(num_sets) * assoc, 0),
      dead_(static_cast<std::size_t>(num_sets) * assoc, 0),
      firstHit_(static_cast<std::size_t>(num_sets) * assoc, 0),
      sigIdxVal_(static_cast<std::size_t>(num_sets) * assoc, 0),
      sigIdxOk_(static_cast<std::size_t>(num_sets) * assoc, 0),
      stack_(num_sets, assoc)
{
    if (config.signatureBits == 0 || config.signatureBits > 32)
        chirp_fatal("chirp: signature width out of range");
}

void
ChirpPolicy::reset()
{
    history_.reset();
    table_.reset();
    std::fill(sig_.begin(), sig_.end(), 0);
    std::fill(dead_.begin(), dead_.end(), 0);
    std::fill(firstHit_.begin(), firstHit_.end(), 0);
    std::fill(sigIdxVal_.begin(), sigIdxVal_.end(), 0);
    std::fill(sigIdxOk_.begin(), sigIdxOk_.end(), 0);
    stack_.reset();
    lastSet_ = ~0u;
    deadVictims_ = 0;
    lruVictims_ = 0;
    memoValid_ = false;
    memoIdxValid_ = false;
    sigIdx_ = 0; // an attached signature stream restarts with us
    batchPos_ = 0;
    batchActive_ = false;
    resetTableCounters();
}

std::uint64_t
ChirpPolicy::storageBits() const
{
    const std::uint64_t entries =
        static_cast<std::uint64_t>(numSets()) * assoc();
    // Table I accounting: prediction bit + signature per entry, the
    // three history registers, the counter table, LRU stack bits,
    // plus the first-hit bit the algorithm's training filter needs
    // (not itemized in Table I; see EXPERIMENTS.md).
    std::uint64_t bits = entries * (1 + config_.signatureBits + 1);
    bits += stack_.storageBits();
    bits += history_.storageBits();
    bits += table_.storageBits();
    return bits;
}

} // namespace chirp
