#include "core/chirp.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

ChirpPolicy::ChirpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                         const ChirpConfig &config)
    : ReplacementPolicy("chirp", num_sets, assoc), config_(config),
      history_(config.history),
      table_(config.tableEntries, config.counterBits, config.hash),
      meta_(static_cast<std::size_t>(num_sets) * assoc),
      stack_(num_sets, assoc)
{
    if (config.signatureBits == 0 || config.signatureBits > 32)
        chirp_fatal("chirp: signature width out of range");
}

void
ChirpPolicy::reset()
{
    history_.reset();
    table_.reset();
    for (auto &m : meta_)
        m = Meta{};
    stack_.reset();
    lastSet_ = ~0u;
    deadVictims_ = 0;
    lruVictims_ = 0;
    resetTableCounters();
}

void
ChirpPolicy::onBranchRetired(Addr pc, InstClass cls, bool taken)
{
    (void)taken; // CHiRP uses branch PCs, not outcomes (§IV-B).
    if (cls == InstClass::CondBranch)
        history_.onCondBranch(pc);
    else if (cls == InstClass::UncondIndirect)
        history_.onUncondIndirectBranch(pc);
}

void
ChirpPolicy::onInstRetired(Addr pc, InstClass cls)
{
    // The global path history follows the retired-instruction path
    // (Algorithm 5 line 22 / UpdatePathHist), filtered to the
    // configured instruction classes.
    switch (config_.history.pathFilter) {
      case PathFilter::All:
        break;
      case PathFilter::Memory:
        if (!isMemory(cls))
            return;
        break;
      case PathFilter::Branch:
        if (!isBranch(cls))
            return;
        break;
    }
    history_.onAccess(pc);
}

std::uint16_t
ChirpPolicy::currentSignature(Addr pc) const
{
    return static_cast<std::uint16_t>(
        foldXor(history_.signature(pc), config_.signatureBits));
}

bool
ChirpPolicy::hitShouldTrain(const Meta &meta, std::uint32_t set) const
{
    switch (config_.hitUpdate) {
      case HitUpdateMode::Every:
        return true;
      case HitUpdateMode::FirstHit:
        return meta.firstHit;
      case HitUpdateMode::FirstHitDiffSet:
        return meta.firstHit && set != lastSet_;
    }
    return false;
}

void
ChirpPolicy::onHit(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &info)
{
    stack_.touch(set, way);
    Meta &meta = meta_[idx(set, way)];
    const std::uint16_t new_sig = currentSignature(info.pc);

    if (config_.victimPrefersDead && hitShouldTrain(meta, set)) {
        // The entry proved live: decrement at its stored signature
        // (Algorithm 5 lines 16-17) ...
        countTableWrite();
        table_.decrement(meta.sig);
        // ... and refresh the dead prediction under the new context
        // (lines 7 and 18).
        countTableRead();
        meta.dead = table_.read(new_sig) > config_.deadThreshold;
        meta.firstHit = false;
    }
    // The signature always tracks the most recent context (line 20);
    // this costs no table access, only entry metadata.
    meta.sig = new_sig;
}

std::uint32_t
ChirpPolicy::selectVictim(std::uint32_t set, const AccessInfo &)
{
    std::uint32_t victim = ~0u;
    if (config_.victimPrefersDead) {
        // Among dead-predicted entries, take the least recently used
        // one: a freshly inserted entry flagged dead may still see a
        // near-term touch, while a dead entry deep in the stack has
        // had every chance.
        std::uint32_t deepest = 0;
        for (std::uint32_t way = 0; way < assoc(); ++way) {
            if (!meta_[idx(set, way)].dead)
                continue;
            const std::uint32_t pos = stack_.position(set, way);
            if (victim == ~0u || pos > deepest) {
                victim = way;
                deepest = pos;
            }
        }
    }
    const bool lru_fallback = victim == ~0u;
    if (lru_fallback) {
        victim = stack_.lruWay(set);
        ++lruVictims_;
    } else {
        ++deadVictims_;
    }

    if (config_.victimPrefersDead &&
        (lru_fallback || !config_.trainOnLruEvictionOnly)) {
        // An entry the predictor believed live is being evicted:
        // dead evidence at its stored signature (lines 10-12).
        countTableWrite();
        table_.increment(meta_[idx(set, victim)].sig);
    }
    return victim;
}

void
ChirpPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info)
{
    stack_.touch(set, way);
    Meta &meta = meta_[idx(set, way)];
    meta.sig = currentSignature(info.pc);
    meta.firstHit = true;
    if (config_.victimPrefersDead) {
        // Prediction metadata update for the incoming entry: read the
        // counter under the new signature and threshold it.
        countTableRead();
        meta.dead = table_.read(meta.sig) > config_.deadThreshold;
    } else {
        meta.dead = false;
    }
}

void
ChirpPolicy::onInvalidate(std::uint32_t set, std::uint32_t way)
{
    stack_.demote(set, way);
    meta_[idx(set, way)] = Meta{};
}

void
ChirpPolicy::onAccessEnd(std::uint32_t set, const AccessInfo &info)
{
    (void)info;
    lastSet_ = set;
}

std::uint64_t
ChirpPolicy::storageBits() const
{
    const std::uint64_t entries =
        static_cast<std::uint64_t>(numSets()) * assoc();
    // Table I accounting: prediction bit + signature per entry, the
    // three history registers, the counter table, LRU stack bits,
    // plus the first-hit bit the algorithm's training filter needs
    // (not itemized in Table I; see EXPERIMENTS.md).
    std::uint64_t bits = entries * (1 + config_.signatureBits + 1);
    bits += stack_.storageBits();
    bits += history_.storageBits();
    bits += table_.storageBits();
    return bits;
}

} // namespace chirp
