/**
 * @file
 * Control-flow history registers (§IV-B of the paper).
 *
 * CHiRP tracks three shift-register histories:
 *
 *  - the global path history: PC bits [3:2] of each L2 TLB access,
 *    shifted in 4 positions at a time (2 PC bits followed by 2
 *    injected zeros — the paper's shifting/scaling transformation);
 *  - the conditional branch history: PC bits [11:4] of every retired
 *    conditional branch, 8 bits per event;
 *  - the unconditional-indirect branch history: same slice, for
 *    indirect branches.
 *
 * The paper's registers are 64 bits (16 accesses / 8 branches).  The
 * Fig 2 study sweeps path-history *length*, so WideShiftHistory
 * generalizes the register to arbitrary bit widths while remaining
 * bit-identical to a 64-bit register at the paper's configuration.
 */

#ifndef CHIRP_CORE_HISTORY_HH
#define CHIRP_CORE_HISTORY_HH

#include <cstdint>
#include <vector>

#include "util/bitfield.hh"
#include "util/types.hh"

namespace chirp
{

/**
 * A left-shifting history register of arbitrary width, folded to
 * 64 bits on demand for signature composition.
 *
 * The 64-bit XOR-fold is maintained *incrementally*: push() updates
 * it while it already has every word in hand, so folded() is a plain
 * load on the signature-composition hot path instead of a fresh
 * reduction over words_.  Registers no wider than 64 bits (every
 * paper configuration) take a branch-free single-word path.
 */
class WideShiftHistory
{
  public:
    /**
     * @param events number of events retained
     * @param shift_per_event bit positions shifted per event
     */
    WideShiftHistory(unsigned events, unsigned shift_per_event);

    /** Shift in the low @p shift bits of @p value. */
    void
    push(std::uint64_t value)
    {
        if (single_) {
            // Whole register in one word: the fold of one word is the
            // word itself, so folded_ IS the register and the push is
            // a member shift/mask with no words_ indirection.
            // shiftMask_ is maskBits(shift_) precomputed: push sits
            // on the per-retired-instruction path, so the mask must
            // not be re-derived per event.
            folded_ = ((folded_ << shift_) | (value & shiftMask_)) &
                      widthMask_;
            return;
        }
        pushWide(value);
    }

    /** XOR-fold of all words: the 64-bit view used in signatures. */
    std::uint64_t folded() const { return folded_; }

    /** Lowest 64 bits (exact register value when width <= 64). */
    std::uint64_t
    low64() const
    {
        if (single_)
            return folded_; // words_[0] is not maintained (see push)
        return words_.empty() ? 0 : words_[0];
    }

    /** Clear the register. */
    void reset();

    /** Total width in bits. */
    unsigned widthBits() const { return widthBits_; }

    unsigned events() const { return events_; }
    unsigned shiftPerEvent() const { return shift_; }

  private:
    /** Multi-word shift for registers wider than 64 bits. */
    void pushWide(std::uint64_t value);

    unsigned events_;
    unsigned shift_;
    unsigned widthBits_;
    bool single_;             //!< widthBits_ <= 64: one-word fast path
    std::uint64_t widthMask_; //!< mask of the top (partial) word
    std::uint64_t shiftMask_; //!< maskBits(shift_), precomputed
    std::uint64_t folded_ = 0;
    std::vector<std::uint64_t> words_;
};

/** Which retired instructions shift into the path history. */
enum class PathFilter
{
    All,    //!< every retired instruction
    Memory, //!< loads and stores only
    Branch, //!< branches only
};

/** Configuration for the full control-flow history set. */
struct HistoryConfig
{
    /** Path-history events retained (paper: 16). */
    unsigned pathEvents = 16;
    /** Instruction classes feeding the path register. */
    PathFilter pathFilter = PathFilter::All;
    /** PC bits shifted into the path history per access (paper: 2). */
    unsigned pathPcBits = 2;
    /** Lowest PC bit captured (paper: bit 2). */
    unsigned pathPcLowBit = 2;
    /**
     * Injected zero bits per access (paper: 2).  Zero disables the
     * shifting/scaling optimization for the Fig 6 ablation.
     */
    unsigned pathZeroBits = 2;
    /** Use the conditional-branch history? */
    bool useCondHist = true;
    /** Use the unconditional-indirect-branch history? */
    bool useUncondHist = true;
    /** Branch-history events retained (paper: 8). */
    unsigned branchEvents = 8;
    /** Branch PC slice: bits [11:4] (paper). */
    unsigned branchPcLowBit = 4;
    unsigned branchPcBits = 8;

    /**
     * Equal configurations evolve identical history state from the
     * same retire stream — the property replay signature-stream
     * sharing rests on.
     */
    bool operator==(const HistoryConfig &) const = default;
};

/**
 * The three history registers plus signature composition
 * (Algorithm 5 line 5): sign = (PC >> 2) ^ path ^ cond ^ uncond.
 */
class ControlFlowHistory
{
  public:
    explicit ControlFlowHistory(const HistoryConfig &config);

    /**
     * An L2 TLB access by the instruction at @p pc retired.  The PC
     * slice bounds are precomputed shift/mask members: this hook (and
     * the branch hooks below) runs once per retired instruction, so
     * the slice must not re-derive its mask per event.
     */
    void
    onAccess(Addr pc)
    {
        // Shift in PC[lo+n-1 : lo]; the injected zeros come from the
        // register shifting further than the pushed value is wide.
        path_.push((pc >> pathLow_) & pathMask_);
    }

    /** A conditional branch at @p pc retired. */
    void
    onCondBranch(Addr pc)
    {
        if (!config_.useCondHist)
            return;
        cond_.push((pc >> branchLow_) & branchMask_);
    }

    /** An unconditional indirect branch at @p pc retired. */
    void
    onUncondIndirectBranch(Addr pc)
    {
        if (!config_.useUncondHist)
            return;
        uncond_.push((pc >> branchLow_) & branchMask_);
    }

    /**
     * Compose the 64-bit signature for an access by @p pc using the
     * *current* (pre-update) history contents.  With incremental
     * folds this is three loads and three XORs.
     */
    std::uint64_t
    signature(Addr pc) const
    {
        std::uint64_t sign = pc >> 2;
        sign ^= path_.folded();
        if (config_.useCondHist)
            sign ^= cond_.folded();
        if (config_.useUncondHist)
            sign ^= uncond_.folded();
        return sign;
    }

    /** Clear all three registers. */
    void reset();

    /** Storage of the three registers in bits (Table I). */
    std::uint64_t storageBits() const;

    const WideShiftHistory &path() const { return path_; }
    const WideShiftHistory &cond() const { return cond_; }
    const WideShiftHistory &uncond() const { return uncond_; }

    const HistoryConfig &config() const { return config_; }

  private:
    HistoryConfig config_;
    WideShiftHistory path_;
    WideShiftHistory cond_;
    WideShiftHistory uncond_;
    // Precomputed PC-slice extraction (see onAccess).
    unsigned pathLow_;
    unsigned branchLow_;
    std::uint64_t pathMask_;
    std::uint64_t branchMask_;
};

} // namespace chirp

#endif // CHIRP_CORE_HISTORY_HH
