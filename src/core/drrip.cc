#include "core/drrip.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

DrripPolicy::DrripPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                         const DrripConfig &config)
    : ReplacementPolicy("drrip", num_sets, assoc), config_(config),
      maxRrpv_(static_cast<std::uint8_t>((1u << config.rrpvBits) - 1)),
      rrpv_(static_cast<std::size_t>(num_sets) * assoc, 0),
      psel_(config.pselBits, (1u << config.pselBits) / 2)
{
    if (config.leaderSets * 2 > num_sets)
        chirp_fatal("drrip: ", config.leaderSets,
                    " leader sets per policy do not fit ", num_sets,
                    " sets");
    reset();
}

void
DrripPolicy::reset()
{
    for (auto &v : rrpv_)
        v = maxRrpv_;
    psel_.set((1u << config_.pselBits) / 2);
    fillCount_ = 0;
    resetTableCounters();
}

DrripPolicy::SetRole
DrripPolicy::roleOf(std::uint32_t set) const
{
    // Leaders are spread evenly: every numSets/leaders-th set is an
    // SRRIP leader; the set right after it is a BRRIP leader.
    const std::uint32_t stride = numSets() / config_.leaderSets;
    if (stride == 0)
        return SetRole::Follower;
    if (set % stride == 0)
        return SetRole::SrripLeader;
    if (set % stride == 1)
        return SetRole::BrripLeader;
    return SetRole::Follower;
}

bool
DrripPolicy::useBrrip(std::uint32_t set) const
{
    switch (roleOf(set)) {
      case SetRole::SrripLeader:
        return false;
      case SetRole::BrripLeader:
        return true;
      case SetRole::Follower:
        // High PSEL means SRRIP leaders missed more -> follow BRRIP.
        return psel_.value() > (1u << config_.pselBits) / 2;
    }
    return false;
}

void
DrripPolicy::onHit(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &)
{
    rrpv_[idx(set, way)] = 0;
}

std::uint32_t
DrripPolicy::selectVictim(std::uint32_t set, const AccessInfo &)
{
    // A miss in a leader set votes against that leader's policy.
    switch (roleOf(set)) {
      case SetRole::SrripLeader:
        psel_.increment();
        break;
      case SetRole::BrripLeader:
        psel_.decrement();
        break;
      case SetRole::Follower:
        break;
    }
    for (;;) {
        for (std::uint32_t way = 0; way < assoc(); ++way) {
            if (rrpv_[idx(set, way)] >= maxRrpv_)
                return way;
        }
        for (std::uint32_t way = 0; way < assoc(); ++way)
            ++rrpv_[idx(set, way)];
    }
}

void
DrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &)
{
    ++fillCount_;
    std::uint8_t insertion;
    if (useBrrip(set)) {
        // Bimodal: distant almost always, long occasionally.
        insertion = (fillCount_ % config_.bimodalThrottle == 0)
                        ? static_cast<std::uint8_t>(maxRrpv_ - 1)
                        : maxRrpv_;
    } else {
        insertion = static_cast<std::uint8_t>(maxRrpv_ - 1);
    }
    rrpv_[idx(set, way)] = insertion;
}

void
DrripPolicy::onInvalidate(std::uint32_t set, std::uint32_t way)
{
    rrpv_[idx(set, way)] = maxRrpv_;
}

std::uint64_t
DrripPolicy::storageBits() const
{
    return static_cast<std::uint64_t>(numSets()) * assoc() *
               config_.rrpvBits +
           config_.pselBits;
}

} // namespace chirp
