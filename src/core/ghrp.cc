#include "core/ghrp.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

GhrpPolicy::GhrpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                       const GhrpConfig &config)
    : ReplacementPolicy("ghrp", num_sets, assoc), config_(config),
      meta_(static_cast<std::size_t>(num_sets) * assoc),
      stack_(num_sets, assoc)
{
    if (config.numTables == 0)
        chirp_fatal("ghrp needs at least one table");
    if (config.tableHistoryBits.size() != config.numTables)
        chirp_fatal("ghrp needs one history length per table");
    tables_.reserve(config.numTables);
    for (unsigned t = 0; t < config.numTables; ++t) {
        // Distinct salts make the three hashes independent, as in
        // the original skewed-table design.
        tables_.emplace_back(config.tableEntries, config.counterBits,
                             HashKind::Index,
                             0x9b97f4a7c15ull * (t + 1));
    }
}

void
GhrpPolicy::reset()
{
    for (auto &t : tables_)
        t.reset();
    for (auto &m : meta_)
        m = Meta{};
    stack_.reset();
    history_ = 0;
    resetTableCounters();
}

void
GhrpPolicy::onBranchRetired(Addr pc, InstClass cls, bool taken)
{
    if (cls != InstClass::CondBranch)
        return;
    // Outcome bit plus low-order branch address bits, as in the
    // original GHRP history.
    const std::uint64_t event =
        (bits(pc, config_.historyShift, 2) << 1) | (taken ? 1 : 0);
    history_ = (history_ << config_.historyShift) | event;
}

std::uint16_t
GhrpPolicy::signatureOf(Addr pc, unsigned table) const
{
    const std::uint64_t hist =
        history_ & maskBits(config_.tableHistoryBits[table]);
    return static_cast<std::uint16_t>(
        foldXor((pc >> 2) ^ hist, config_.signatureBits));
}

std::vector<std::uint16_t>
GhrpPolicy::signaturesOf(Addr pc) const
{
    std::vector<std::uint16_t> sigs(config_.numTables);
    for (unsigned t = 0; t < config_.numTables; ++t)
        sigs[t] = signatureOf(pc, t);
    return sigs;
}

unsigned
GhrpPolicy::readSum(const std::vector<std::uint16_t> &sigs)
{
    unsigned sum = 0;
    for (unsigned t = 0; t < tables_.size(); ++t) {
        countTableRead();
        sum += tables_[t].read(sigs[t]);
    }
    return sum;
}

void
GhrpPolicy::trainLive(const std::vector<std::uint16_t> &sigs)
{
    for (unsigned t = 0; t < tables_.size(); ++t) {
        countTableWrite();
        tables_[t].decrement(sigs[t]);
    }
}

void
GhrpPolicy::trainDead(const std::vector<std::uint16_t> &sigs)
{
    for (unsigned t = 0; t < tables_.size(); ++t) {
        countTableWrite();
        tables_[t].increment(sigs[t]);
    }
}

void
GhrpPolicy::onHit(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info)
{
    stack_.touch(set, way);
    Meta &meta = meta_[idx(set, way)];
    // The entry proved live under its previous signature.
    if (!meta.sig.empty())
        trainLive(meta.sig);
    // Re-tag with the current context and refresh the prediction.
    meta.sig = signaturesOf(info.pc);
    const bool dead = readSum(meta.sig) > config_.deadThreshold;
    // A hit is direct evidence of liveness: predictions may only
    // clear the dead bit here, never set it on an entry in active
    // use (refreshing to dead on hits churns hot entries).
    if (!dead)
        meta.dead = false;
}

std::uint32_t
GhrpPolicy::selectVictim(std::uint32_t set, const AccessInfo &)
{
    std::uint32_t victim = ~0u;
    for (std::uint32_t way = 0; way < assoc(); ++way) {
        if (meta_[idx(set, way)].dead) {
            victim = way;
            break;
        }
    }
    if (victim == ~0u)
        victim = stack_.lruWay(set);
    // The victim is leaving the TLB: dead evidence for its signature.
    // Entries the predictor itself chose are skipped so its own
    // decisions do not self-reinforce (SDBP-style training).
    const Meta &meta = meta_[idx(set, victim)];
    if (!meta.dead && !meta.sig.empty())
        trainDead(meta.sig);
    return victim;
}

void
GhrpPolicy::onFill(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &info)
{
    stack_.touch(set, way);
    Meta &meta = meta_[idx(set, way)];
    meta.sig = signaturesOf(info.pc);
    meta.dead = readSum(meta.sig) > config_.deadThreshold;
}

void
GhrpPolicy::onInvalidate(std::uint32_t set, std::uint32_t way)
{
    stack_.demote(set, way);
    meta_[idx(set, way)] = Meta{};
}

std::uint64_t
GhrpPolicy::storageBits() const
{
    const std::uint64_t entries =
        static_cast<std::uint64_t>(numSets()) * assoc();
    std::uint64_t bits =
        entries * (config_.numTables * config_.signatureBits + 1);
    bits += stack_.storageBits();
    for (const auto &t : tables_)
        bits += t.storageBits();
    bits += 64; // history register
    return bits;
}

} // namespace chirp
