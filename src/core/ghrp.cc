#include "core/ghrp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chirp
{

GhrpPolicy::GhrpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                       const GhrpConfig &config)
    : ReplacementPolicy("ghrp", num_sets, assoc), config_(config),
      sigs_(static_cast<std::size_t>(num_sets) * assoc * config.numTables,
            0),
      sigValid_(static_cast<std::size_t>(num_sets) * assoc, 0),
      dead_(static_cast<std::size_t>(num_sets) * assoc, 0),
      stack_(num_sets, assoc), memoSigs_(config.numTables, 0)
{
    if (config.numTables == 0)
        chirp_fatal("ghrp needs at least one table");
    if (config.tableHistoryBits.size() != config.numTables)
        chirp_fatal("ghrp needs one history length per table");
    tables_.reserve(config.numTables);
    for (unsigned t = 0; t < config.numTables; ++t) {
        // Distinct salts make the three hashes independent, as in
        // the original skewed-table design.
        tables_.emplace_back(config.tableEntries, config.counterBits,
                             HashKind::Index,
                             0x9b97f4a7c15ull * (t + 1));
    }
}

void
GhrpPolicy::reset()
{
    for (auto &t : tables_)
        t.reset();
    std::fill(sigs_.begin(), sigs_.end(), 0);
    std::fill(sigValid_.begin(), sigValid_.end(), 0);
    std::fill(dead_.begin(), dead_.end(), 0);
    stack_.reset();
    history_ = 0;
    memoValid_ = false;
    resetTableCounters();
}

std::uint64_t
GhrpPolicy::storageBits() const
{
    const std::uint64_t entries =
        static_cast<std::uint64_t>(numSets()) * assoc();
    std::uint64_t bits =
        entries * (config_.numTables * config_.signatureBits + 1);
    bits += stack_.storageBits();
    for (const auto &t : tables_)
        bits += t.storageBits();
    bits += 64; // history register
    return bits;
}

} // namespace chirp
