#include "core/ghrp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chirp
{

GhrpPolicy::GhrpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                       const GhrpConfig &config)
    : ReplacementPolicy("ghrp", num_sets, assoc), config_(config),
      sigs_(static_cast<std::size_t>(num_sets) * assoc * config.numTables,
            0),
      sigIdxs_(static_cast<std::size_t>(num_sets) * assoc *
                   config.numTables,
               0),
      sigValid_(static_cast<std::size_t>(num_sets) * assoc, 0),
      dead_(static_cast<std::size_t>(num_sets) * assoc, 0),
      stack_(num_sets, assoc)
{
    if (config.numTables == 0)
        chirp_fatal("ghrp needs at least one table");
    if (config.numTables > kGhrpMaxTables)
        chirp_fatal("ghrp supports at most ", kGhrpMaxTables,
                    " tables, got ", config.numTables);
    if (config.tableHistoryBits.size() != config.numTables)
        chirp_fatal("ghrp needs one history length per table");
    if (!isPowerOfTwo(config.tableEntries))
        chirp_fatal("ghrp table size ", config.tableEntries,
                    " must be a power of two");
    if (config.counterBits == 0 || config.counterBits > 16)
        chirp_fatal("ghrp counters must be 1..16 bits");
    for (unsigned t = 0; t < config.numTables; ++t) {
        // Distinct salts make the three hashes independent, as in
        // the original skewed-table design.
        salts_[t] = 0x9b97f4a7c15ull * (t + 1);
        histMasks_[t] = maskBits(config.tableHistoryBits[t]);
    }
    bank_ = PackedCounterArray(
        static_cast<std::size_t>(config.numTables) * config.tableEntries,
        config.counterBits);
    counterMax_ =
        static_cast<std::uint16_t>((1u << config.counterBits) - 1);
    indexBits_ = floorLog2(config.tableEntries);
    sigPlan_ = simd::FoldPlan(config.signatureBits);
    idxPlan_ = simd::FoldPlan(indexBits_);
}

void
GhrpPolicy::reset()
{
    bank_.reset();
    std::fill(sigs_.begin(), sigs_.end(), 0);
    std::fill(sigIdxs_.begin(), sigIdxs_.end(), 0);
    std::fill(sigValid_.begin(), sigValid_.end(), 0);
    std::fill(dead_.begin(), dead_.end(), 0);
    stack_.reset();
    history_ = 0;
    memoValid_ = false;
    histIdx_ = 0;
    batchPos_ = 0;
    batchActive_ = false;
    resetTableCounters();
}

std::uint64_t
GhrpPolicy::storageBits() const
{
    const std::uint64_t entries =
        static_cast<std::uint64_t>(numSets()) * assoc();
    std::uint64_t bits =
        entries * (config_.numTables * config_.signatureBits + 1);
    bits += stack_.storageBits();
    // The modeled table budget: counterBits per counter across all
    // tables, independent of the packed bank's lane rounding.
    bits += static_cast<std::uint64_t>(config_.numTables) *
            config_.tableEntries * config_.counterBits;
    bits += 64; // history register
    return bits;
}

} // namespace chirp
