/**
 * @file
 * Static Re-Reference Interval Prediction (Jaleel et al., ISCA 2010),
 * adapted to TLB entries (§II-A of the paper).
 *
 * Each entry carries an n-bit re-reference prediction value (RRPV).
 * New entries are inserted with a "long" re-reference prediction
 * (RRPV = max-1), hits promote to "near-immediate" (RRPV = 0), and
 * victims are entries with "distant" prediction (RRPV = max); when
 * none exists all RRPVs in the set age until one does.
 */

#ifndef CHIRP_CORE_SRRIP_HH
#define CHIRP_CORE_SRRIP_HH

#include <vector>

#include "core/replacement_policy.hh"

namespace chirp
{

/** SRRIP replacement. */
class SrripPolicy : public ReplacementPolicy
{
  public:
    /** @param rrpv_bits width of the re-reference prediction value. */
    SrripPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                unsigned rrpv_bits = 2);

    void reset() override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t selectVictim(std::uint32_t set,
                               const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onInvalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint64_t storageBits() const override;
    bool wantsRetireEvents() const override { return false; }

    /** RRPV of a way, for tests. */
    std::uint8_t
    rrpv(std::uint32_t set, std::uint32_t way) const
    {
        return rrpv_[idx(set, way)];
    }

    /** The "distant future" RRPV value (2^bits - 1). */
    std::uint8_t maxRrpv() const { return maxRrpv_; }

  protected:
    /** For subclasses (SHiP) that reuse the RRIP machinery. */
    SrripPolicy(std::string name, std::uint32_t num_sets,
                std::uint32_t assoc, unsigned rrpv_bits);

    /** Insertion RRPV hook so SHiP can override per-prediction. */
    void
    fillWithRrpv(std::uint32_t set, std::uint32_t way, std::uint8_t value)
    {
        rrpv_[idx(set, way)] = value;
    }

    /** The default long-re-reference insertion value (max - 1). */
    std::uint8_t longRrpv() const { return maxRrpv_ - 1; }

  private:
    unsigned rrpvBits_;
    std::uint8_t maxRrpv_;
    std::vector<std::uint8_t> rrpv_;
};

} // namespace chirp

#endif // CHIRP_CORE_SRRIP_HH
