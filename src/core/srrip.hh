/**
 * @file
 * Static Re-Reference Interval Prediction (Jaleel et al., ISCA 2010),
 * adapted to TLB entries (§II-A of the paper).
 *
 * Each entry carries an n-bit re-reference prediction value (RRPV).
 * New entries are inserted with a "long" re-reference prediction
 * (RRPV = max-1), hits promote to "near-immediate" (RRPV = 0), and
 * victims are entries with "distant" prediction (RRPV = max); when
 * none exists all RRPVs in the set age until one does.
 *
 * The RRPVs of a set are one contiguous assoc-byte run, so the victim
 * scan is a SIMD kernel call, and the textbook age-and-retry loop is
 * collapsed into a single aging step: the first pass that terminates
 * is the one lifting the set's maximum RRPV to the distant value, so
 * adding (max - set_maximum) to every way in one shot leaves the set
 * in the identical state and the identical way wins.  The hot hooks
 * are inline and the class is final so the TLB's devirtualized
 * dispatch can flatten them into its access loop.
 */

#ifndef CHIRP_CORE_SRRIP_HH
#define CHIRP_CORE_SRRIP_HH

#include <vector>

#include "core/replacement_policy.hh"
#include "util/simd.hh"

namespace chirp
{

/** SRRIP replacement. */
class SrripPolicy final : public ReplacementPolicy
{
  public:
    /** @param rrpv_bits width of the re-reference prediction value. */
    SrripPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                unsigned rrpv_bits = 2);

    void reset() override;

    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &) override
    {
        // Hit promotion: near-immediate re-reference.
        rrpv_[idx(set, way)] = 0;
    }

    std::uint32_t
    selectVictim(std::uint32_t set, const AccessInfo &) override
    {
        std::uint8_t *rrpv = rrpv_.data() + idx(set, 0);
        const std::size_t n = assoc();
        const std::size_t way =
            simd::firstLaneAtLeast(rrpv, n, maxRrpv_);
        if (way < n)
            return static_cast<std::uint32_t>(way);
        // No distant entry: age every way by the shared deficit (the
        // number of +1 rounds the retry loop would have run) and take
        // the first way reaching distant — the first holder of the
        // set's old maximum, as in the per-round scan.
        const std::uint8_t deficit =
            static_cast<std::uint8_t>(maxRrpv_ - simd::maxLane(rrpv, n));
        simd::addToLanes(rrpv, n, deficit);
        return static_cast<std::uint32_t>(
            simd::firstLaneAtLeast(rrpv, n, maxRrpv_));
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &) override
    {
        rrpv_[idx(set, way)] = longRrpv();
    }

    void
    onInvalidate(std::uint32_t set, std::uint32_t way) override
    {
        rrpv_[idx(set, way)] = maxRrpv_;
    }

    /**
     * Batched-loop metadata hint (shadows the base no-op; resolved
     * statically under devirtualized dispatch): pull the set's RRPV
     * run toward the caches one chunk slot ahead of its scan.
     */
    void
    prefetchMeta(std::uint32_t set) const
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(rrpv_.data() + idx(set, 0), 1, 3);
#else
        (void)set;
#endif
    }

    std::uint64_t storageBits() const override;
    bool wantsRetireEvents() const override { return false; }

    /** RRPV of a way, for tests. */
    std::uint8_t
    rrpv(std::uint32_t set, std::uint32_t way) const
    {
        return rrpv_[idx(set, way)];
    }

    /** The "distant future" RRPV value (2^bits - 1). */
    std::uint8_t maxRrpv() const { return maxRrpv_; }

    /** The default long-re-reference insertion value (max - 1). */
    std::uint8_t longRrpv() const { return maxRrpv_ - 1; }

  private:
    unsigned rrpvBits_;
    std::uint8_t maxRrpv_;
    std::vector<std::uint8_t> rrpv_;
};

} // namespace chirp

#endif // CHIRP_CORE_SRRIP_HH
