/**
 * @file
 * Dynamic RRIP (Jaleel et al., ISCA 2010) — an extension beyond the
 * paper's policy set.
 *
 * DRRIP set-duels SRRIP against BRRIP (bimodal RRIP, which inserts
 * at distant re-reference most of the time) and steers follower sets
 * with a policy-selection counter.  The paper evaluates only static
 * RRIP; DRRIP is the natural "what if the prior art were stronger"
 * comparison point, and the set-dueling machinery is reusable.
 */

#ifndef CHIRP_CORE_DRRIP_HH
#define CHIRP_CORE_DRRIP_HH

#include <vector>

#include "core/replacement_policy.hh"
#include "util/random.hh"
#include "util/sat_counter.hh"

namespace chirp
{

/** DRRIP configuration. */
struct DrripConfig
{
    unsigned rrpvBits = 2;
    /** Leader sets per policy (SRRIP leaders + BRRIP leaders). */
    std::uint32_t leaderSets = 8;
    /** BRRIP inserts at long re-reference once every this many fills. */
    unsigned bimodalThrottle = 32;
    /** Policy-selection counter width. */
    unsigned pselBits = 10;
};

/** Dynamic RRIP with set dueling. */
class DrripPolicy : public ReplacementPolicy
{
  public:
    DrripPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                const DrripConfig &config = {});

    void reset() override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t selectVictim(std::uint32_t set,
                               const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onInvalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint64_t storageBits() const override;
    bool wantsRetireEvents() const override { return false; }

    /** Set roles, for tests. */
    enum class SetRole
    {
        SrripLeader,
        BrripLeader,
        Follower
    };

    SetRole roleOf(std::uint32_t set) const;

    /** Current policy-selection counter (tests). */
    std::uint16_t psel() const { return psel_.value(); }

  private:
    /** Should a fill in @p set use BRRIP insertion? */
    bool useBrrip(std::uint32_t set) const;

    DrripConfig config_;
    std::uint8_t maxRrpv_;
    std::vector<std::uint8_t> rrpv_;
    SatCounter psel_;
    std::uint64_t fillCount_ = 0;
};

} // namespace chirp

#endif // CHIRP_CORE_DRRIP_HH
