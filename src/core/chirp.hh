/**
 * @file
 * Control-flow History Reuse Prediction — the paper's contribution
 * (§IV, Algorithm 5).
 *
 * Per-entry metadata: a 16-bit signature, a dead-prediction bit, a
 * first-hit bit and a 3-bit LRU stack position (Table I).  A single
 * table of 2-bit saturating counters, indexed by a hash of the
 * signature, provides dead predictions.
 *
 * Signature (computed from the PRE-update histories, line 5):
 *     sign = (PC >> 2) ^ pathHist ^ condBrHist ^ uncondBrHist
 *
 * Training is deliberately rare (§IV-E):
 *  - on a miss, the table is written only when the victim was chosen
 *    by LRU (no dead candidate): increment at the victim's stored
 *    signature;
 *  - on a hit, the table is touched only on the entry's *first* hit,
 *    and — Selective Hit Update — only when the access targets a
 *    different set than the previous access: decrement at the old
 *    stored signature, then read at the new signature to refresh the
 *    dead bit.
 *
 * Victim selection prefers the first dead-predicted entry and falls
 * back to LRU.  Every deviation from this default (history
 * components, zero injection, update filters, table geometry) is a
 * ChirpConfig knob so the Fig 2/6/9 ablations are configuration-only.
 */

#ifndef CHIRP_CORE_CHIRP_HH
#define CHIRP_CORE_CHIRP_HH

#include <vector>

#include "core/history.hh"
#include "core/prediction_table.hh"
#include "core/replacement_policy.hh"
#include "core/ship.hh" // HitUpdateMode

namespace chirp
{

/** CHiRP configuration (defaults = the paper's main configuration). */
struct ChirpConfig
{
    /** History-register shapes and components. */
    HistoryConfig history;
    /** Prediction-table counters (power of two); 4096 x 2b = 1KB. */
    std::size_t tableEntries = 4096;
    /** Counter width. */
    unsigned counterBits = 2;
    /** Dead when counter > threshold. */
    unsigned deadThreshold = 0;
    /** Stored signature width. */
    unsigned signatureBits = 16;
    /** Index hash. */
    HashKind hash = HashKind::Index;
    /** Hit-training filter (paper: first hit to a different set). */
    HitUpdateMode hitUpdate = HitUpdateMode::FirstHitDiffSet;
    /** Train on LRU-selected victims only (paper) vs all evictions. */
    bool trainOnLruEvictionOnly = true;
    /**
     * Prefer dead-predicted victims.  Disabling this (and with it all
     * table traffic) degenerates CHiRP into exact LRU — a property
     * the tests verify.
     */
    bool victimPrefersDead = true;
};

/** The CHiRP replacement policy. */
class ChirpPolicy : public ReplacementPolicy
{
  public:
    ChirpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                const ChirpConfig &config = {});

    void reset() override;
    void onBranchRetired(Addr pc, InstClass cls, bool taken) override;
    void onInstRetired(Addr pc, InstClass cls) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t selectVictim(std::uint32_t set,
                               const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onInvalidate(std::uint32_t set, std::uint32_t way) override;
    void onAccessEnd(std::uint32_t set, const AccessInfo &info) override;
    std::uint64_t storageBits() const override;

    const ChirpConfig &config() const { return config_; }

    /** The histories (tests and the ADALINE extraction hook). */
    const ControlFlowHistory &histories() const { return history_; }

    /** 16-bit signature CHiRP would assign to an access by @p pc now. */
    std::uint16_t currentSignature(Addr pc) const;

    /** Dead bit of an entry (tests, efficiency analysis). */
    bool
    isDead(std::uint32_t set, std::uint32_t way) const
    {
        return meta_[idx(set, way)].dead;
    }

    /** Stored signature of an entry (tests). */
    std::uint16_t
    storedSignature(std::uint32_t set, std::uint32_t way) const
    {
        return meta_[idx(set, way)].sig;
    }

    /** Evictions that used a dead-predicted victim (diagnostics). */
    std::uint64_t deadVictims() const { return deadVictims_; }

    /** Evictions that fell back to the LRU victim (diagnostics). */
    std::uint64_t lruVictims() const { return lruVictims_; }

    /** LRU stack position of an entry (tests). */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return stack_.position(set, way);
    }

  private:
    struct Meta
    {
        std::uint16_t sig = 0;
        bool dead = false;
        bool firstHit = false;
    };

    /** Should this hit touch the prediction table? */
    bool hitShouldTrain(const Meta &meta, std::uint32_t set) const;

    ChirpConfig config_;
    ControlFlowHistory history_;
    PredictionTable table_;
    std::vector<Meta> meta_;
    LruStack stack_;
    std::uint32_t lastSet_ = ~0u;
    std::uint64_t deadVictims_ = 0;
    std::uint64_t lruVictims_ = 0;
};

} // namespace chirp

#endif // CHIRP_CORE_CHIRP_HH
