/**
 * @file
 * Control-flow History Reuse Prediction — the paper's contribution
 * (§IV, Algorithm 5).
 *
 * Per-entry metadata: a 16-bit signature, a dead-prediction bit, a
 * first-hit bit and a 3-bit LRU stack position (Table I).  A single
 * table of 2-bit saturating counters, indexed by a hash of the
 * signature, provides dead predictions.
 *
 * Signature (computed from the PRE-update histories, line 5):
 *     sign = (PC >> 2) ^ pathHist ^ condBrHist ^ uncondBrHist
 *
 * Training is deliberately rare (§IV-E):
 *  - on a miss, the table is written only when the victim was chosen
 *    by LRU (no dead candidate): increment at the victim's stored
 *    signature;
 *  - on a hit, the table is touched only on the entry's *first* hit,
 *    and — Selective Hit Update — only when the access targets a
 *    different set than the previous access: decrement at the old
 *    stored signature, then read at the new signature to refresh the
 *    dead bit.
 *
 * Victim selection prefers the first dead-predicted entry and falls
 * back to LRU.  Every deviation from this default (history
 * components, zero injection, update filters, table geometry) is a
 * ChirpConfig knob so the Fig 2/6/9 ablations are configuration-only.
 *
 * Hot-path layout: per-entry metadata is stored structure-of-arrays
 * (signatures, dead bits and first-hit bits each in their own
 * contiguous per-set run) so the victim scan walks one small array,
 * and the per-access signature is composed once in onAccessBegin and
 * memoized across the hit/victim/fill hooks of the same access.  The
 * hook bodies are inline so the TLB's devirtualized dispatch can
 * flatten the whole event sequence into its access loop.
 */

#ifndef CHIRP_CORE_CHIRP_HH
#define CHIRP_CORE_CHIRP_HH

#include <vector>

#include "core/history.hh"
#include "core/prediction_table.hh"
#include "core/replacement_policy.hh"
#include "core/ship.hh" // HitUpdateMode
#include "util/simd.hh"

namespace chirp
{

/** CHiRP configuration (defaults = the paper's main configuration). */
struct ChirpConfig
{
    /** History-register shapes and components. */
    HistoryConfig history;
    /** Prediction-table counters (power of two); 4096 x 2b = 1KB. */
    std::size_t tableEntries = 4096;
    /** Counter width. */
    unsigned counterBits = 2;
    /** Dead when counter > threshold. */
    unsigned deadThreshold = 0;
    /** Stored signature width. */
    unsigned signatureBits = 16;
    /** Index hash. */
    HashKind hash = HashKind::Index;
    /** Hit-training filter (paper: first hit to a different set). */
    HitUpdateMode hitUpdate = HitUpdateMode::FirstHitDiffSet;
    /** Train on LRU-selected victims only (paper) vs all evictions. */
    bool trainOnLruEvictionOnly = true;
    /**
     * Prefer dead-predicted victims.  Disabling this (and with it all
     * table traffic) degenerates CHiRP into exact LRU — a property
     * the tests verify.
     */
    bool victimPrefersDead = true;
};

/** The CHiRP replacement policy. */
class ChirpPolicy final : public ReplacementPolicy
{
  public:
    ChirpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                const ChirpConfig &config = {});

    void reset() override;

    void
    onBranchRetired(Addr pc, InstClass cls, bool taken) override
    {
        (void)taken; // CHiRP uses branch PCs, not outcomes (§IV-B).
        if (cls == InstClass::CondBranch) {
            history_.onCondBranch(pc);
            memoValid_ = false;
        } else if (cls == InstClass::UncondIndirect) {
            history_.onUncondIndirectBranch(pc);
            memoValid_ = false;
        }
    }

    void
    onInstRetired(Addr pc, InstClass cls) override
    {
        // The global path history follows the retired-instruction path
        // (Algorithm 5 line 22 / UpdatePathHist), filtered to the
        // configured instruction classes.
        switch (config_.history.pathFilter) {
          case PathFilter::All:
            break;
          case PathFilter::Memory:
            if (!isMemory(cls))
                return;
            break;
          case PathFilter::Branch:
            if (!isBranch(cls))
                return;
            break;
        }
        history_.onAccess(pc);
        memoValid_ = false;
    }

    void
    onAccessBegin(const AccessInfo &info) override
    {
        // Compose the signature once; the hit/victim/fill hooks of
        // this access reuse it instead of re-reducing the histories.
        if (sigStream_) {
            // Replay mode: the signatures this policy would compose
            // were precomputed from the retire stream, one per access
            // in order, so the histories need not be evolved at all.
            memoSig_ = sigStream_[sigIdx_++];
        } else {
            memoSig_ = computeSignature(info.pc);
        }
        memoPc_ = info.pc;
        memoValid_ = true;
    }

    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        const std::uint16_t new_sig = memoizedSignature(info.pc);

        if (config_.victimPrefersDead && hitShouldTrain(entry, set)) {
            // The entry proved live: decrement at its stored signature
            // (Algorithm 5 lines 16-17) ...
            countTableWrite();
            table_.decrement(sig_[entry]);
            // ... and refresh the dead prediction under the new
            // context (lines 7 and 18).
            countTableRead();
            dead_[entry] = table_.read(new_sig) > config_.deadThreshold;
            firstHit_[entry] = false;
        }
        // The signature always tracks the most recent context (line
        // 20); this costs no table access, only entry metadata.
        sig_[entry] = new_sig;
    }

    std::uint32_t
    selectVictim(std::uint32_t set, const AccessInfo &) override
    {
        std::uint32_t victim = ~0u;
        if (config_.victimPrefersDead) {
            // Among dead-predicted entries, take the least recently
            // used one: a freshly inserted entry flagged dead may
            // still see a near-term touch, while a dead entry deep in
            // the stack has had every chance.  The dead bits and LRU
            // ranks of the set are contiguous assoc-byte runs, so the
            // whole scan is one SIMD kernel call over two cache-line
            // resident arrays.
            const std::size_t way = simd::deepestSetLane(
                dead_.data() + idx(set, 0), stack_.positions(set),
                assoc());
            if (way < assoc())
                victim = static_cast<std::uint32_t>(way);
        }
        const bool lru_fallback = victim == ~0u;
        if (lru_fallback) {
            victim = stack_.lruWay(set);
            ++lruVictims_;
        } else {
            ++deadVictims_;
        }

        if (config_.victimPrefersDead &&
            (lru_fallback || !config_.trainOnLruEvictionOnly)) {
            // An entry the predictor believed live is being evicted:
            // dead evidence at its stored signature (lines 10-12).
            countTableWrite();
            table_.increment(sig_[idx(set, victim)]);
        }
        return victim;
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        const std::uint16_t sig = memoizedSignature(info.pc);
        sig_[entry] = sig;
        firstHit_[entry] = true;
        if (config_.victimPrefersDead) {
            // Prediction metadata update for the incoming entry: read
            // the counter under the new signature and threshold it.
            countTableRead();
            dead_[entry] = table_.read(sig) > config_.deadThreshold;
        } else {
            dead_[entry] = false;
        }
    }

    void
    onInvalidate(std::uint32_t set, std::uint32_t way) override
    {
        stack_.demote(set, way);
        const std::size_t entry = idx(set, way);
        sig_[entry] = 0;
        dead_[entry] = false;
        firstHit_[entry] = false;
    }

    void
    onAccessEnd(std::uint32_t set, const AccessInfo &info) override
    {
        (void)info;
        lastSet_ = set;
    }

    std::uint64_t storageBits() const override;

    const ChirpConfig &config() const { return config_; }

    /** The histories (tests and the ADALINE extraction hook). */
    const ControlFlowHistory &histories() const { return history_; }

    /** 16-bit signature CHiRP would assign to an access by @p pc now. */
    std::uint16_t
    currentSignature(Addr pc) const
    {
        return computeSignature(pc);
    }

    /** Dead bit of an entry (tests, efficiency analysis). */
    bool
    isDead(std::uint32_t set, std::uint32_t way) const
    {
        return dead_[idx(set, way)];
    }

    /** Stored signature of an entry (tests). */
    std::uint16_t
    storedSignature(std::uint32_t set, std::uint32_t way) const
    {
        return sig_[idx(set, way)];
    }

    /** Evictions that used a dead-predicted victim (diagnostics). */
    std::uint64_t deadVictims() const { return deadVictims_; }

    /** Evictions that fell back to the LRU victim (diagnostics). */
    std::uint64_t lruVictims() const { return lruVictims_; }

    /** LRU stack position of an entry (tests). */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return stack_.position(set, way);
    }

    /**
     * Event-replay support: take per-access signatures from @p sigs
     * (one per access, in access order) instead of composing them
     * from the live histories, which then need not be fed the retire
     * stream.  The values must equal what computeSignature would have
     * produced at each access; signature-config-equal variants can
     * share one stream.  The array must outlive the policy's use;
     * reset() rewinds to its start.  Null reverts to live histories.
     */
    void
    setSignatureStream(const std::uint16_t *sigs)
    {
        sigStream_ = sigs;
        sigIdx_ = 0;
    }

    /** Is a replay signature stream attached? */
    bool hasSignatureStream() const { return sigStream_ != nullptr; }

  private:
    std::uint16_t
    computeSignature(Addr pc) const
    {
        // sigPlan_ is FoldPlan(signatureBits): identical to
        // foldXor(.., signatureBits) with the ladder precomputed.
        return static_cast<std::uint16_t>(
            sigPlan_.apply(history_.signature(pc)));
    }

    /**
     * The per-access signature: the onAccessBegin memo when it is
     * valid for @p pc (the histories have not advanced since), a
     * fresh composition otherwise (tests drive hooks directly).
     */
    std::uint16_t
    memoizedSignature(Addr pc) const
    {
        if (memoValid_ && memoPc_ == pc)
            return memoSig_;
        return computeSignature(pc);
    }

    /** Should this hit touch the prediction table? */
    bool
    hitShouldTrain(std::size_t entry, std::uint32_t set) const
    {
        switch (config_.hitUpdate) {
          case HitUpdateMode::Every:
            return true;
          case HitUpdateMode::FirstHit:
            return firstHit_[entry];
          case HitUpdateMode::FirstHitDiffSet:
            return firstHit_[entry] && set != lastSet_;
        }
        return false;
    }

    ChirpConfig config_;
    ControlFlowHistory history_;
    PredictionTable table_;
    // Fold ladder for the signature width, built once.
    simd::FoldPlan sigPlan_;
    // Structure-of-arrays entry metadata, each indexed by idx(set,
    // way): 16-bit stored signature, dead bit, first-hit bit.
    std::vector<std::uint16_t> sig_;
    std::vector<std::uint8_t> dead_;
    std::vector<std::uint8_t> firstHit_;
    LruStack stack_;
    std::uint32_t lastSet_ = ~0u;
    std::uint64_t deadVictims_ = 0;
    std::uint64_t lruVictims_ = 0;
    // Per-access signature memo (see onAccessBegin).
    bool memoValid_ = false;
    Addr memoPc_ = 0;
    std::uint16_t memoSig_ = 0;
    // Replay signature stream (see setSignatureStream).
    const std::uint16_t *sigStream_ = nullptr;
    std::size_t sigIdx_ = 0;
};

} // namespace chirp

#endif // CHIRP_CORE_CHIRP_HH
