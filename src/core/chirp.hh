/**
 * @file
 * Control-flow History Reuse Prediction — the paper's contribution
 * (§IV, Algorithm 5).
 *
 * Per-entry metadata: a 16-bit signature, a dead-prediction bit, a
 * first-hit bit and a 3-bit LRU stack position (Table I).  A single
 * table of 2-bit saturating counters, indexed by a hash of the
 * signature, provides dead predictions.
 *
 * Signature (computed from the PRE-update histories, line 5):
 *     sign = (PC >> 2) ^ pathHist ^ condBrHist ^ uncondBrHist
 *
 * Training is deliberately rare (§IV-E):
 *  - on a miss, the table is written only when the victim was chosen
 *    by LRU (no dead candidate): increment at the victim's stored
 *    signature;
 *  - on a hit, the table is touched only on the entry's *first* hit,
 *    and — Selective Hit Update — only when the access targets a
 *    different set than the previous access: decrement at the old
 *    stored signature, then read at the new signature to refresh the
 *    dead bit.
 *
 * Victim selection prefers the first dead-predicted entry and falls
 * back to LRU.  Every deviation from this default (history
 * components, zero injection, update filters, table geometry) is a
 * ChirpConfig knob so the Fig 2/6/9 ablations are configuration-only.
 *
 * Hot-path layout: per-entry metadata is stored structure-of-arrays
 * (signatures, dead bits and first-hit bits each in their own
 * contiguous per-set run) so the victim scan walks one small array,
 * and the per-access signature is composed once in onAccessBegin and
 * memoized across the hit/victim/fill hooks of the same access.  The
 * hook bodies are inline so the TLB's devirtualized dispatch can
 * flatten the whole event sequence into its access loop.
 */

#ifndef CHIRP_CORE_CHIRP_HH
#define CHIRP_CORE_CHIRP_HH

#include <cassert>
#include <vector>

#include "core/history.hh"
#include "core/prediction_table.hh"
#include "core/replacement_policy.hh"
#include "core/ship.hh" // HitUpdateMode
#include "util/simd.hh"

namespace chirp
{

/** CHiRP configuration (defaults = the paper's main configuration). */
struct ChirpConfig
{
    /** History-register shapes and components. */
    HistoryConfig history;
    /** Prediction-table counters (power of two); 4096 x 2b = 1KB. */
    std::size_t tableEntries = 4096;
    /** Counter width. */
    unsigned counterBits = 2;
    /** Dead when counter > threshold. */
    unsigned deadThreshold = 0;
    /** Stored signature width. */
    unsigned signatureBits = 16;
    /** Index hash. */
    HashKind hash = HashKind::Index;
    /** Hit-training filter (paper: first hit to a different set). */
    HitUpdateMode hitUpdate = HitUpdateMode::FirstHitDiffSet;
    /** Train on LRU-selected victims only (paper) vs all evictions. */
    bool trainOnLruEvictionOnly = true;
    /**
     * Prefer dead-predicted victims.  Disabling this (and with it all
     * table traffic) degenerates CHiRP into exact LRU — a property
     * the tests verify.
     */
    bool victimPrefersDead = true;
};

/** The CHiRP replacement policy. */
class ChirpPolicy final : public ReplacementPolicy
{
  public:
    ChirpPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                const ChirpConfig &config = {});

    void reset() override;

    void
    onBranchRetired(Addr pc, InstClass cls, bool taken) override
    {
        (void)taken; // CHiRP uses branch PCs, not outcomes (§IV-B).
        if (cls == InstClass::CondBranch) {
            history_.onCondBranch(pc);
            memoValid_ = false;
        } else if (cls == InstClass::UncondIndirect) {
            history_.onUncondIndirectBranch(pc);
            memoValid_ = false;
        }
    }

    void
    onInstRetired(Addr pc, InstClass cls) override
    {
        // The global path history follows the retired-instruction path
        // (Algorithm 5 line 22 / UpdatePathHist), filtered to the
        // configured instruction classes.
        switch (config_.history.pathFilter) {
          case PathFilter::All:
            break;
          case PathFilter::Memory:
            if (!isMemory(cls))
                return;
            break;
          case PathFilter::Branch:
            if (!isBranch(cls))
                return;
            break;
        }
        history_.onAccess(pc);
        memoValid_ = false;
    }

    void
    onAccessBegin(const AccessInfo &info) override
    {
        if (batchActive_) {
            // Batched miss path: the signature (and its table index)
            // was composed for the whole chunk in beginAccessBatch;
            // pick up this access's lane and advance the cursors.
            // The index column is consumed lazily by memoizedIndex —
            // the pick itself stays as cheap as scalar mode.
            const std::size_t i = batchPos_++;
            if (sigStream_)
                ++sigIdx_; // keep the replay cursor exact mid-chunk
            memoSig_ = batchSig_[i];
            memoPc_ = info.pc;
            memoValid_ = true;
            return;
        }
        // Compose the signature once; the hit/victim/fill hooks of
        // this access reuse it instead of re-reducing the histories.
        if (sigStream_) {
            // Replay mode: the signatures this policy would compose
            // were precomputed from the retire stream, one per access
            // in order, so the histories need not be evolved at all.
            memoSig_ = sigStream_[sigIdx_++];
        } else {
            memoSig_ = computeSignature(info.pc);
        }
        memoPc_ = info.pc;
        memoValid_ = true;
    }

    /**
     * Batched miss path (see ReplacementPolicy::beginAccessBatch):
     * compose the whole chunk's signatures in one lane-parallel pass
     * — the histories are frozen for the chunk, so every lane shares
     * one folded-history base — instead of a per-access fold.
     */
    void
    beginAccessBatch(const AccessInfo *infos, std::size_t n) override
    {
        if (batchSig_.size() < n) {
            batchSig_.resize(n);
            batchIdx_.resize(n);
            batchLanes_.resize(n);
        }
        if (sigStream_) {
            // Replay mode: the per-access signatures are already a
            // stream; the chunk's slice is a straight copy and the
            // index column one lane-parallel hash pass.  The cursor
            // advances per access (onAccessBegin), not here, so a
            // mid-chunk unwind leaves it exact.
            for (std::size_t i = 0; i < n; ++i)
                batchSig_[i] = sigStream_[sigIdx_ + i];
            table_.indexStream(batchSig_.data(), n, batchLanes_.data(),
                               batchIdx_.data());
        } else {
            // signature(pc) = (pc >> 2) ^ H with H the folded-history
            // XOR, constant across the chunk: folding H into the lane
            // fill lets the fused kernel produce the signature column
            // AND its table-index column in one register-resident
            // pass, so the fills of the chunk never hash.
            const std::uint64_t hbase = history_.signature(0);
            for (std::size_t i = 0; i < n; ++i)
                batchLanes_[i] = (infos[i].pc >> 2) ^ hbase;
            table_.sigIndexStream(batchLanes_.data(), n, sigPlan_,
                                  batchSig_.data(), batchIdx_.data());
        }
#ifndef NDEBUG
        for (std::size_t i = 0; i < n; ++i) {
            assert(batchSig_[i] ==
                   (sigStream_ ? sigStream_[sigIdx_ + i]
                               : computeSignature(infos[i].pc)));
            assert(batchIdx_[i] == table_.indexOf(batchSig_[i]));
        }
#endif
        batchPos_ = 0;
        batchActive_ = true;
    }

    void
    endAccessBatch() override
    {
        // The memos stay valid: they describe the last completed
        // access, exactly as a scalar onAccessBegin would have left
        // them.
        batchActive_ = false;
    }

    /**
     * Batched-loop metadata hint (shadows the base no-op; resolved
     * statically under devirtualized dispatch): pull the set's dead
     * bits, LRU ranks and stored signatures toward the caches one
     * chunk slot ahead of its scan.
     */
    void
    prefetchMeta(std::uint32_t set) const
    {
#if defined(__GNUC__) || defined(__clang__)
        const std::size_t base = idx(set, 0);
        __builtin_prefetch(dead_.data() + base, 0, 3);
        __builtin_prefetch(stack_.positions(set), 0, 3);
        __builtin_prefetch(sig_.data() + base, 1, 3);
#else
        (void)set;
#endif
    }

    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        const std::uint16_t new_sig = memoizedSignature(info.pc);

        if (config_.victimPrefersDead && hitShouldTrain(entry, set)) {
            // The entry proved live: decrement at its stored signature
            // (Algorithm 5 lines 16-17) ...
            countTableWrite();
            if (sigIdxOk_[entry])
                table_.decrementAt(sigIdxVal_[entry]);
            else
                table_.decrement(sig_[entry]);
            // ... and refresh the dead prediction under the new
            // context (lines 7 and 18).
            countTableRead();
            dead_[entry] =
                table_.readAt(memoizedIndex(new_sig)) >
                config_.deadThreshold;
            firstHit_[entry] = false;
        }
        // The signature always tracks the most recent context (line
        // 20); this costs no table access, only entry metadata.  The
        // cached index rides along when the access memo already holds
        // new_sig's slot; untrained hits stay hash-free and just
        // drop the cache.
        sig_[entry] = new_sig;
        if (memoIdxValid_ && memoIdxSig_ == new_sig) {
            sigIdxVal_[entry] = memoIdx_;
            sigIdxOk_[entry] = 1;
        } else {
            sigIdxOk_[entry] = 0;
        }
    }

    std::uint32_t
    selectVictim(std::uint32_t set, const AccessInfo &) override
    {
        std::uint32_t victim = ~0u;
        if (config_.victimPrefersDead) {
            // Among dead-predicted entries, take the least recently
            // used one: a freshly inserted entry flagged dead may
            // still see a near-term touch, while a dead entry deep in
            // the stack has had every chance.  The dead bits and LRU
            // ranks of the set are contiguous assoc-byte runs, so the
            // whole scan is one SIMD kernel call over two cache-line
            // resident arrays.
            const std::size_t way = simd::deepestSetLane(
                dead_.data() + idx(set, 0), stack_.positions(set),
                assoc());
            if (way < assoc())
                victim = static_cast<std::uint32_t>(way);
        }
        const bool lru_fallback = victim == ~0u;
        if (lru_fallback) {
            victim = stack_.lruWay(set);
            ++lruVictims_;
        } else {
            ++deadVictims_;
        }

        if (config_.victimPrefersDead &&
            (lru_fallback || !config_.trainOnLruEvictionOnly)) {
            // An entry the predictor believed live is being evicted:
            // dead evidence at its stored signature (lines 10-12).
            countTableWrite();
            const std::size_t entry = idx(set, victim);
            if (sigIdxOk_[entry])
                table_.incrementAt(sigIdxVal_[entry]);
            else
                table_.increment(sig_[entry]);
        }
        return victim;
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &info) override
    {
        stack_.touch(set, way);
        const std::size_t entry = idx(set, way);
        const std::uint16_t sig = memoizedSignature(info.pc);
        sig_[entry] = sig;
        firstHit_[entry] = true;
        if (config_.victimPrefersDead) {
            // Prediction metadata update for the incoming entry: read
            // the counter under the new signature and threshold it,
            // caching the slot for this entry's later train events.
            countTableRead();
            const std::size_t tidx = memoizedIndex(sig);
            dead_[entry] = table_.readAt(tidx) > config_.deadThreshold;
            sigIdxVal_[entry] = static_cast<std::uint32_t>(tidx);
            sigIdxOk_[entry] = 1;
        } else {
            dead_[entry] = false;
            sigIdxOk_[entry] = 0;
        }
    }

    void
    onInvalidate(std::uint32_t set, std::uint32_t way) override
    {
        stack_.demote(set, way);
        const std::size_t entry = idx(set, way);
        sig_[entry] = 0;
        dead_[entry] = false;
        firstHit_[entry] = false;
        sigIdxOk_[entry] = 0;
    }

    void
    onAccessEnd(std::uint32_t set, const AccessInfo &info) override
    {
        (void)info;
        lastSet_ = set;
    }

    std::uint64_t storageBits() const override;

    const ChirpConfig &config() const { return config_; }

    /** The histories (tests and the ADALINE extraction hook). */
    const ControlFlowHistory &histories() const { return history_; }

    /** 16-bit signature CHiRP would assign to an access by @p pc now. */
    std::uint16_t
    currentSignature(Addr pc) const
    {
        return computeSignature(pc);
    }

    /** Dead bit of an entry (tests, efficiency analysis). */
    bool
    isDead(std::uint32_t set, std::uint32_t way) const
    {
        return dead_[idx(set, way)];
    }

    /** Stored signature of an entry (tests). */
    std::uint16_t
    storedSignature(std::uint32_t set, std::uint32_t way) const
    {
        return sig_[idx(set, way)];
    }

    /** Evictions that used a dead-predicted victim (diagnostics). */
    std::uint64_t deadVictims() const { return deadVictims_; }

    /** Evictions that fell back to the LRU victim (diagnostics). */
    std::uint64_t lruVictims() const { return lruVictims_; }

    /** LRU stack position of an entry (tests). */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return stack_.position(set, way);
    }

    /**
     * Event-replay support: take per-access signatures from @p sigs
     * (one per access, in access order) instead of composing them
     * from the live histories, which then need not be fed the retire
     * stream.  The values must equal what computeSignature would have
     * produced at each access; signature-config-equal variants can
     * share one stream.  The array must outlive the policy's use;
     * reset() rewinds to its start.  Null reverts to live histories.
     */
    void
    setSignatureStream(const std::uint16_t *sigs)
    {
        sigStream_ = sigs;
        sigIdx_ = 0;
    }

    /** Is a replay signature stream attached? */
    bool hasSignatureStream() const { return sigStream_ != nullptr; }

  private:
    std::uint16_t
    computeSignature(Addr pc) const
    {
        // sigPlan_ is FoldPlan(signatureBits): identical to
        // foldXor(.., signatureBits) with the ladder precomputed.
        return static_cast<std::uint16_t>(
            sigPlan_.apply(history_.signature(pc)));
    }

    /**
     * The per-access signature: the onAccessBegin memo when it is
     * valid for @p pc (the histories have not advanced since), a
     * fresh composition otherwise (tests drive hooks directly).
     */
    std::uint16_t
    memoizedSignature(Addr pc) const
    {
        if (memoValid_ && memoPc_ == pc)
            return memoSig_;
        return computeSignature(pc);
    }

    /**
     * Table index for @p sig: the chunk's precomputed index column
     * when this is the in-flight batched access's own signature, else
     * the memo when it holds exactly this signature (a previous call
     * for the same signature), one hash otherwise.
     */
    std::size_t
    memoizedIndex(std::uint16_t sig) const
    {
        if (batchActive_ && sig == memoSig_)
            return batchIdx_[batchPos_ - 1];
        if (memoIdxValid_ && memoIdxSig_ == sig)
            return memoIdx_;
        const std::size_t tidx = table_.indexOf(sig);
        memoIdx_ = static_cast<std::uint32_t>(tidx);
        memoIdxSig_ = sig;
        memoIdxValid_ = true;
        return tidx;
    }

    /** Should this hit touch the prediction table? */
    bool
    hitShouldTrain(std::size_t entry, std::uint32_t set) const
    {
        switch (config_.hitUpdate) {
          case HitUpdateMode::Every:
            return true;
          case HitUpdateMode::FirstHit:
            return firstHit_[entry];
          case HitUpdateMode::FirstHitDiffSet:
            return firstHit_[entry] && set != lastSet_;
        }
        return false;
    }

    ChirpConfig config_;
    ControlFlowHistory history_;
    PredictionTable table_;
    // Fold ladder for the signature width, built once.
    simd::FoldPlan sigPlan_;
    // Structure-of-arrays entry metadata, each indexed by idx(set,
    // way): 16-bit stored signature, dead bit, first-hit bit, plus a
    // cached table index for the stored signature (valid when the
    // matching sigIdxOk_ byte is set) so train events at a stored
    // signature skip the hash.
    std::vector<std::uint16_t> sig_;
    std::vector<std::uint8_t> dead_;
    std::vector<std::uint8_t> firstHit_;
    std::vector<std::uint32_t> sigIdxVal_;
    std::vector<std::uint8_t> sigIdxOk_;
    LruStack stack_;
    std::uint32_t lastSet_ = ~0u;
    std::uint64_t deadVictims_ = 0;
    std::uint64_t lruVictims_ = 0;
    // Per-access signature memo (see onAccessBegin).
    bool memoValid_ = false;
    Addr memoPc_ = 0;
    std::uint16_t memoSig_ = 0;
    // Table-index memo: the last hashed signature's slot, filled
    // lazily by memoizedIndex.
    mutable bool memoIdxValid_ = false;
    mutable std::uint16_t memoIdxSig_ = 0;
    mutable std::uint32_t memoIdx_ = 0;
    // Replay signature stream (see setSignatureStream).
    const std::uint16_t *sigStream_ = nullptr;
    std::size_t sigIdx_ = 0;
    // Batched miss path: the chunk-wide signature and table-index
    // columns and the u64 lane scratch their fused fold kernel runs
    // over (see beginAccessBatch).
    std::vector<std::uint16_t> batchSig_;
    std::vector<std::uint32_t> batchIdx_;
    std::vector<std::uint64_t> batchLanes_;
    std::size_t batchPos_ = 0;
    bool batchActive_ = false;
};

} // namespace chirp

#endif // CHIRP_CORE_CHIRP_HH
