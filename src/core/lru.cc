#include "core/lru.hh"

namespace chirp
{

LruPolicy::LruPolicy(std::uint32_t num_sets, std::uint32_t assoc)
    : ReplacementPolicy("lru", num_sets, assoc), stack_(num_sets, assoc)
{
}

void
LruPolicy::reset()
{
    stack_.reset();
    resetTableCounters();
}

std::uint64_t
LruPolicy::storageBits() const
{
    return stack_.storageBits();
}

} // namespace chirp
