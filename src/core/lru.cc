#include "core/lru.hh"

namespace chirp
{

LruPolicy::LruPolicy(std::uint32_t num_sets, std::uint32_t assoc)
    : ReplacementPolicy("lru", num_sets, assoc), stack_(num_sets, assoc)
{
}

void
LruPolicy::reset()
{
    stack_.reset();
    resetTableCounters();
}

void
LruPolicy::onHit(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    stack_.touch(set, way);
}

std::uint32_t
LruPolicy::selectVictim(std::uint32_t set, const AccessInfo &)
{
    return stack_.lruWay(set);
}

void
LruPolicy::onFill(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    stack_.touch(set, way);
}

void
LruPolicy::onInvalidate(std::uint32_t set, std::uint32_t way)
{
    stack_.demote(set, way);
}

std::uint64_t
LruPolicy::storageBits() const
{
    return stack_.storageBits();
}

} // namespace chirp
