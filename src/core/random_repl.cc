#include "core/random_repl.hh"

namespace chirp
{

RandomPolicy::RandomPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                           std::uint64_t seed)
    : ReplacementPolicy("random", num_sets, assoc), seed_(seed), rng_(seed)
{
}

void
RandomPolicy::reset()
{
    rng_ = Rng(seed_);
    resetTableCounters();
}

void
RandomPolicy::onHit(std::uint32_t, std::uint32_t, const AccessInfo &)
{
}

std::uint32_t
RandomPolicy::selectVictim(std::uint32_t, const AccessInfo &)
{
    return static_cast<std::uint32_t>(rng_.below(assoc()));
}

void
RandomPolicy::onFill(std::uint32_t, std::uint32_t, const AccessInfo &)
{
}

std::uint64_t
RandomPolicy::storageBits() const
{
    // Only the LFSR driving victim choice.
    return 64;
}

} // namespace chirp
