/**
 * @file
 * Random replacement, the zero-metadata baseline.  The paper notes
 * Random slightly outperforms LRU on the TLB because scans make
 * LRU's recency assumption pathological.
 */

#ifndef CHIRP_CORE_RANDOM_REPL_HH
#define CHIRP_CORE_RANDOM_REPL_HH

#include "core/replacement_policy.hh"
#include "util/random.hh"

namespace chirp
{

/** Uniform-random victim selection. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                 std::uint64_t seed = 0xdecafbadull);

    void reset() override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t selectVictim(std::uint32_t set,
                               const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    std::uint64_t storageBits() const override;
    bool wantsRetireEvents() const override { return false; }

  private:
    std::uint64_t seed_;
    Rng rng_;
};

} // namespace chirp

#endif // CHIRP_CORE_RANDOM_REPL_HH
