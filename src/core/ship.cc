#include "core/ship.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace chirp
{

const char *
hitUpdateModeName(HitUpdateMode mode)
{
    switch (mode) {
      case HitUpdateMode::Every:
        return "every";
      case HitUpdateMode::FirstHit:
        return "firstHit";
      case HitUpdateMode::FirstHitDiffSet:
        return "firstHitDiffSet";
    }
    return "?";
}

ShipPolicy::ShipPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                       const ShipConfig &config)
    : ReplacementPolicy("ship", num_sets, assoc), config_(config),
      shct_(config.shctEntries, config.counterBits),
      unlimited_(config.counterBits),
      sig_(static_cast<std::size_t>(num_sets) * assoc, 0),
      outcome_(static_cast<std::size_t>(num_sets) * assoc, 0),
      shctIdx_(static_cast<std::size_t>(num_sets) * assoc,
               static_cast<std::uint32_t>(shct_.indexOf(0))),
      stack_(num_sets, assoc), sigPlan_(config.signatureBits)
{
    if (config.signatureBits == 0 || config.signatureBits > 32)
        chirp_fatal("ship: signature width out of range");
    if (config.unlimitedTable)
        wideSig_.assign(static_cast<std::size_t>(num_sets) * assoc, 0);
    const double fraction =
        std::clamp(config.predictedSetsFraction, 0.0, 1.0);
    predictedSets_ = static_cast<std::uint32_t>(
        std::llround(fraction * num_sets));
}

void
ShipPolicy::reset()
{
    shct_.reset();
    unlimited_.clear();
    std::fill(sig_.begin(), sig_.end(), 0);
    std::fill(wideSig_.begin(), wideSig_.end(), 0);
    std::fill(outcome_.begin(), outcome_.end(), 0);
    std::fill(shctIdx_.begin(), shctIdx_.end(),
              static_cast<std::uint32_t>(shct_.indexOf(0)));
    stack_.reset();
    lastSet_ = ~0u;
    resetTableCounters();
}

std::uint64_t
ShipPolicy::storageBits() const
{
    const std::uint64_t entries =
        static_cast<std::uint64_t>(numSets()) * assoc();
    std::uint64_t bits = entries * (config_.signatureBits + 1);
    bits += stack_.storageBits();
    if (!config_.unlimitedTable)
        bits += shct_.storageBits();
    return bits;
}

std::uint16_t
ShipPolicy::counterFor(Addr pc) const
{
    if (config_.unlimitedTable)
        return unlimited_.value(pc >> 2);
    return shct_.read(foldXor(pc >> 2, config_.signatureBits));
}

} // namespace chirp
