#include "core/ship.hh"

#include <algorithm>
#include <cmath>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

const char *
hitUpdateModeName(HitUpdateMode mode)
{
    switch (mode) {
      case HitUpdateMode::Every:
        return "every";
      case HitUpdateMode::FirstHit:
        return "firstHit";
      case HitUpdateMode::FirstHitDiffSet:
        return "firstHitDiffSet";
    }
    return "?";
}

ShipPolicy::ShipPolicy(std::uint32_t num_sets, std::uint32_t assoc,
                       const ShipConfig &config)
    : ReplacementPolicy("ship", num_sets, assoc), config_(config),
      shct_(config.shctEntries, config.counterBits),
      meta_(static_cast<std::size_t>(num_sets) * assoc),
      stack_(num_sets, assoc)
{
    if (config.signatureBits == 0 || config.signatureBits > 32)
        chirp_fatal("ship: signature width out of range");
    const double fraction =
        std::clamp(config.predictedSetsFraction, 0.0, 1.0);
    predictedSets_ = static_cast<std::uint32_t>(
        std::llround(fraction * num_sets));
}

void
ShipPolicy::reset()
{
    shct_.reset();
    unlimited_.clear();
    for (auto &m : meta_)
        m = Meta{};
    stack_.reset();
    lastSet_ = ~0u;
    resetTableCounters();
}

bool
ShipPolicy::predicted(std::uint32_t set) const
{
    return set < predictedSets_;
}

std::uint64_t
ShipPolicy::signatureOf(Addr pc) const
{
    if (config_.unlimitedTable)
        return pc >> 2;
    return foldXor(pc >> 2, config_.signatureBits);
}

std::uint16_t
ShipPolicy::readCounter(const Meta &meta)
{
    countTableRead();
    if (config_.unlimitedTable) {
        const auto it = unlimited_.find(meta.wideSig);
        return it == unlimited_.end() ? 0 : it->second.value();
    }
    return shct_.read(meta.sig);
}

void
ShipPolicy::trainLive(const Meta &meta)
{
    countTableWrite();
    if (config_.unlimitedTable) {
        auto [it, inserted] = unlimited_.try_emplace(
            meta.wideSig, SatCounter(config_.counterBits));
        it->second.increment();
        (void)inserted;
    } else {
        shct_.increment(meta.sig);
    }
}

void
ShipPolicy::trainDead(const Meta &meta)
{
    countTableWrite();
    if (config_.unlimitedTable) {
        auto [it, inserted] = unlimited_.try_emplace(
            meta.wideSig, SatCounter(config_.counterBits));
        it->second.decrement();
        (void)inserted;
    } else {
        shct_.decrement(meta.sig);
    }
}

void
ShipPolicy::onHit(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info)
{
    (void)info;
    stack_.touch(set, way);
    if (!predicted(set))
        return;

    Meta &meta = meta_[idx(set, way)];
    bool train = false;
    switch (config_.hitUpdate) {
      case HitUpdateMode::Every:
        train = true;
        break;
      case HitUpdateMode::FirstHit:
        train = !meta.outcome;
        break;
      case HitUpdateMode::FirstHitDiffSet:
        train = !meta.outcome && set != lastSet_;
        break;
    }
    if (train)
        trainLive(meta);
    meta.outcome = true;
}

std::uint32_t
ShipPolicy::selectVictim(std::uint32_t set, const AccessInfo &)
{
    const std::uint32_t way = stack_.lruWay(set);
    if (predicted(set)) {
        const Meta &meta = meta_[idx(set, way)];
        // Eviction without re-reference is the dead-signature
        // evidence.
        if (!meta.outcome)
            trainDead(meta);
    }
    return way;
}

void
ShipPolicy::onFill(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &info)
{
    stack_.touch(set, way);
    Meta &meta = meta_[idx(set, way)];
    meta.outcome = false;
    if (config_.unlimitedTable)
        meta.wideSig = signatureOf(info.pc);
    else
        meta.sig = static_cast<std::uint16_t>(signatureOf(info.pc));

    if (!predicted(set))
        return;
    // Placement steering: a collapsed counter predicts no
    // re-reference, so the entry goes straight to the LRU position
    // where it is the next victim; everything else inserts at MRU.
    const std::uint16_t counter = readCounter(meta);
    if (counter == 0)
        stack_.demote(set, way);
}

void
ShipPolicy::onInvalidate(std::uint32_t set, std::uint32_t way)
{
    stack_.demote(set, way);
    meta_[idx(set, way)] = Meta{};
}

void
ShipPolicy::onAccessEnd(std::uint32_t set, const AccessInfo &)
{
    lastSet_ = set;
}

std::uint64_t
ShipPolicy::storageBits() const
{
    const std::uint64_t entries =
        static_cast<std::uint64_t>(numSets()) * assoc();
    std::uint64_t bits = entries * (config_.signatureBits + 1);
    bits += stack_.storageBits();
    if (!config_.unlimitedTable)
        bits += shct_.storageBits();
    return bits;
}

std::uint16_t
ShipPolicy::counterFor(Addr pc) const
{
    if (config_.unlimitedTable) {
        const auto it = unlimited_.find(pc >> 2);
        return it == unlimited_.end() ? 0 : it->second.value();
    }
    return shct_.read(foldXor(pc >> 2, config_.signatureBits));
}

} // namespace chirp
