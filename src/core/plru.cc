#include "core/plru.hh"

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

PlruPolicy::PlruPolicy(std::uint32_t num_sets, std::uint32_t assoc)
    : ReplacementPolicy("plru", num_sets, assoc)
{
    if (!isPowerOfTwo(assoc))
        chirp_fatal("plru needs power-of-two associativity, got ", assoc);
    levels_ = floorLog2(assoc);
    tree_.assign(static_cast<std::size_t>(num_sets) * (assoc - 1), false);
}

void
PlruPolicy::reset()
{
    std::fill(tree_.begin(), tree_.end(), false);
    resetTableCounters();
}

void
PlruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    const std::size_t base = static_cast<std::size_t>(set) * (assoc() - 1);
    std::size_t node = 0;
    for (unsigned level = 0; level < levels_; ++level) {
        // The bit selecting this level's direction for `way`.
        const bool right = (way >> (levels_ - 1 - level)) & 1;
        // Point away from the touched way.
        tree_[base + node] = !right;
        node = 2 * node + 1 + (right ? 1 : 0);
    }
}

void
PlruPolicy::onHit(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    touch(set, way);
}

std::uint32_t
PlruPolicy::selectVictim(std::uint32_t set, const AccessInfo &)
{
    const std::size_t base = static_cast<std::size_t>(set) * (assoc() - 1);
    std::size_t node = 0;
    std::uint32_t way = 0;
    for (unsigned level = 0; level < levels_; ++level) {
        const bool right = tree_[base + node];
        way = (way << 1) | (right ? 1 : 0);
        node = 2 * node + 1 + (right ? 1 : 0);
    }
    return way;
}

void
PlruPolicy::onFill(std::uint32_t set, std::uint32_t way, const AccessInfo &)
{
    touch(set, way);
}

std::uint64_t
PlruPolicy::storageBits() const
{
    return static_cast<std::uint64_t>(numSets()) * (assoc() - 1);
}

} // namespace chirp
