#include "core/replacement_policy.hh"

#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

ReplacementPolicy::ReplacementPolicy(std::string name,
                                     std::uint32_t num_sets,
                                     std::uint32_t assoc)
    : name_(std::move(name)), numSets_(num_sets), assoc_(assoc)
{
    if (num_sets == 0 || assoc == 0)
        chirp_fatal("policy '", name_, "' needs nonzero geometry");
    if (!isPowerOfTwo(num_sets))
        chirp_fatal("policy '", name_, "': set count ", num_sets,
                    " must be a power of two");
}

LruStack::LruStack(std::uint32_t num_sets, std::uint32_t assoc)
    : numSets_(num_sets), assoc_(assoc),
      position_(static_cast<std::size_t>(num_sets) * assoc)
{
    if (assoc > 255)
        chirp_fatal("LruStack supports at most 255 ways");
    reset();
}

void
LruStack::reset()
{
    for (std::uint32_t set = 0; set < numSets_; ++set)
        for (std::uint32_t way = 0; way < assoc_; ++way)
            position_[static_cast<std::size_t>(set) * assoc_ + way] =
                static_cast<std::uint8_t>(way);
}

std::uint32_t
LruStack::lostBottom(std::uint32_t set) const
{
    chirp_panic("LRU stack of set ", set, " lost its bottom position");
}

std::uint64_t
LruStack::storageBits() const
{
    return static_cast<std::uint64_t>(numSets_) * assoc_ *
           ceilLog2(assoc_);
}

} // namespace chirp
