#include "core/replacement_policy.hh"

#include <vector>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace chirp
{

ReplacementPolicy::ReplacementPolicy(std::string name,
                                     std::uint32_t num_sets,
                                     std::uint32_t assoc)
    : name_(std::move(name)), numSets_(num_sets), assoc_(assoc)
{
    if (num_sets == 0 || assoc == 0)
        chirp_fatal("policy '", name_, "' needs nonzero geometry");
    if (!isPowerOfTwo(num_sets))
        chirp_fatal("policy '", name_, "': set count ", num_sets,
                    " must be a power of two");
}

LruStack::LruStack(std::uint32_t num_sets, std::uint32_t assoc)
    : numSets_(num_sets), assoc_(assoc),
      position_(static_cast<std::size_t>(num_sets) * assoc)
{
    if (assoc > 255)
        chirp_fatal("LruStack supports at most 255 ways");
    reset();
}

void
LruStack::reset()
{
    for (std::uint32_t set = 0; set < numSets_; ++set)
        for (std::uint32_t way = 0; way < assoc_; ++way)
            position_[static_cast<std::size_t>(set) * assoc_ + way] =
                static_cast<std::uint8_t>(way);
}

bool
LruStack::swar() const
{
    return assoc_ == 8 && std::endian::native == std::endian::little;
}

std::uint32_t
LruStack::lruWay(std::uint32_t set) const
{
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const std::uint8_t want = static_cast<std::uint8_t>(assoc_ - 1);
    if (swar()) {
        // Exactly one lane holds rank 7; find its zero after XOR.
        constexpr std::uint64_t kLo = 0x0101010101010101ULL;
        constexpr std::uint64_t kHi = 0x8080808080808080ULL;
        const std::uint64_t diff = loadSet(base) ^ (kLo * want);
        const std::uint64_t zero = (diff - kLo) & ~diff & kHi;
        if (zero)
            return static_cast<std::uint32_t>(
                std::countr_zero(zero) / 8);
        chirp_panic("LRU stack of set ", set,
                    " lost its bottom position");
    }
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (position_[base + w] == want)
            return w;
    }
    chirp_panic("LRU stack of set ", set, " lost its bottom position");
}

std::uint32_t
LruStack::position(std::uint32_t set, std::uint32_t way) const
{
    return position_[static_cast<std::size_t>(set) * assoc_ + way];
}

void
LruStack::demote(std::uint32_t set, std::uint32_t way)
{
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const std::uint8_t old_pos = position_[base + way];
    if (old_pos == assoc_ - 1)
        return; // already LRU: the shift below would be a no-op
    if (swar()) {
        std::uint64_t word = loadSet(base);
        word -= lanesAbove(word, old_pos);
        word |= std::uint64_t{0x07} << (8 * way);
        storeSet(base, word);
        return;
    }
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (position_[base + w] > old_pos)
            --position_[base + w];
    }
    position_[base + way] = static_cast<std::uint8_t>(assoc_ - 1);
}

std::uint64_t
LruStack::storageBits() const
{
    return static_cast<std::uint64_t>(numSets_) * assoc_ *
           ceilLog2(assoc_);
}

} // namespace chirp
