/**
 * @file
 * True-LRU replacement — the baseline every result in the paper is
 * normalized against.
 */

#ifndef CHIRP_CORE_LRU_HH
#define CHIRP_CORE_LRU_HH

#include "core/replacement_policy.hh"

namespace chirp
{

/** Least-recently-used replacement over exact recency stacks. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t num_sets, std::uint32_t assoc);

    void reset() override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t selectVictim(std::uint32_t set,
                               const AccessInfo &info) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const AccessInfo &info) override;
    void onInvalidate(std::uint32_t set, std::uint32_t way) override;
    std::uint64_t storageBits() const override;

    /** Recency rank of a way (0 = MRU); exposed for tests. */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return stack_.position(set, way);
    }

  private:
    LruStack stack_;
};

} // namespace chirp

#endif // CHIRP_CORE_LRU_HH
