/**
 * @file
 * True-LRU replacement — the baseline every result in the paper is
 * normalized against.
 */

#ifndef CHIRP_CORE_LRU_HH
#define CHIRP_CORE_LRU_HH

#include "core/replacement_policy.hh"

namespace chirp
{

/** Least-recently-used replacement over exact recency stacks. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint32_t num_sets, std::uint32_t assoc);

    void reset() override;

    // The hooks are inline: the TLB devirtualizes them on its
    // LRU fast path (qualified calls bypass the vtable).
    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &) override
    {
        stack_.touch(set, way);
    }

    std::uint32_t
    selectVictim(std::uint32_t set, const AccessInfo &) override
    {
        return stack_.lruWay(set);
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &) override
    {
        stack_.touch(set, way);
    }

    void
    onInvalidate(std::uint32_t set, std::uint32_t way) override
    {
        stack_.demote(set, way);
    }

    /**
     * Batched-loop metadata hint (shadows the base no-op; resolved
     * statically under devirtualized dispatch): pull the set's LRU
     * ranks toward the caches one chunk slot ahead of its scan.
     */
    void
    prefetchMeta(std::uint32_t set) const
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(stack_.positions(set), 1, 3);
#else
        (void)set;
#endif
    }

    std::uint64_t storageBits() const override;
    bool wantsRetireEvents() const override { return false; }

    /** Recency rank of a way (0 = MRU); exposed for tests. */
    std::uint32_t
    stackPosition(std::uint32_t set, std::uint32_t way) const
    {
        return stack_.position(set, way);
    }

  private:
    LruStack stack_;
};

} // namespace chirp

#endif // CHIRP_CORE_LRU_HH
