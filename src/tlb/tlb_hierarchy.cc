#include "tlb/tlb_hierarchy.hh"

#include "core/lru.hh"
#include "util/logging.hh"

namespace chirp
{

std::unique_ptr<ReplacementPolicy>
TlbHierarchy::makeL1Policy(const TlbConfig &config)
{
    return std::make_unique<LruPolicy>(config.entries / config.assoc,
                                       config.assoc);
}

TlbHierarchy::TlbHierarchy(const TlbHierarchyConfig &config,
                           std::unique_ptr<ReplacementPolicy> l2_policy,
                           std::unique_ptr<PageWalker> walker)
    : config_(config), l1i_(config.l1i, makeL1Policy(config.l1i)),
      l1d_(config.l1d, makeL1Policy(config.l1d)),
      l2_(config.l2, std::move(l2_policy)), walker_(std::move(walker))
{
    if (!walker_)
        chirp_fatal("TLB hierarchy needs a page walker");
}

std::unique_ptr<TlbHierarchy>
TlbHierarchy::makeDefault(std::unique_ptr<ReplacementPolicy> l2_policy,
                          std::unique_ptr<PageWalker> walker)
{
    return std::make_unique<TlbHierarchy>(
        TlbHierarchyConfig{}, std::move(l2_policy), std::move(walker));
}

TranslateResult
TlbHierarchy::translate(const AccessInfo &info, Asid asid,
                        std::uint64_t now)
{
    TranslateResult result;
    Tlb &l1 = info.isInstr ? l1i_ : l1d_;
    const unsigned page_shift =
        pageMap_ ? pageMap_->pageShiftFor(info.vaddr) : kPageShift;

    if (l1.access(info, asid, now, page_shift)) {
        result.l1Hit = true;
        return result; // 1-cycle L1 hit is hidden by the pipeline
    }

    // L1 miss: probe the unified L2.
    result.stall += l2_.config().hitLatency;
    if (l2_.access(info, asid, now, page_shift)) {
        result.l2Hit = true;
        return result;
    }

    // L2 miss: walk the page table.
    result.stall += walker_->walk(info.vaddr);
    return result;
}

void
TlbHierarchy::onBranchRetired(Addr pc, InstClass cls, bool taken)
{
    l2_.policy().onBranchRetired(pc, cls, taken);
}

void
TlbHierarchy::onInstRetired(Addr pc, InstClass cls)
{
    l2_.policy().onInstRetired(pc, cls);
}

void
TlbHierarchy::finalizeEfficiency(std::uint64_t now)
{
    l2_.finalizeEfficiency(now);
}

void
TlbHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    walker_->reset();
}

} // namespace chirp
