#include "tlb/tlb_hierarchy.hh"

#include <typeinfo>

#include "core/lru.hh"
#include "util/logging.hh"

namespace chirp
{

std::unique_ptr<ReplacementPolicy>
TlbHierarchy::makeL1Policy(const TlbConfig &config)
{
    return std::make_unique<LruPolicy>(config.entries / config.assoc,
                                       config.assoc);
}

TlbHierarchy::TlbHierarchy(const TlbHierarchyConfig &config,
                           std::unique_ptr<ReplacementPolicy> l2_policy,
                           std::unique_ptr<PageWalker> walker)
    : config_(config), l1i_(config.l1i, makeL1Policy(config.l1i)),
      l1d_(config.l1d, makeL1Policy(config.l1d)),
      l2_(config.l2, std::move(l2_policy)), walker_(std::move(walker))
{
    if (!walker_)
        chirp_fatal("TLB hierarchy needs a page walker");
    l2WantsRetire_ = l2_.policy().wantsRetireEvents();
    if (!forceVirtualDispatch()) {
        ReplacementPolicy &policy = l2_.policy();
        if (typeid(policy) == typeid(ChirpPolicy))
            l2Chirp_ = static_cast<ChirpPolicy *>(&policy);
        else if (typeid(policy) == typeid(GhrpPolicy))
            l2Ghrp_ = static_cast<GhrpPolicy *>(&policy);
    }
}

std::unique_ptr<TlbHierarchy>
TlbHierarchy::makeDefault(std::unique_ptr<ReplacementPolicy> l2_policy,
                          std::unique_ptr<PageWalker> walker)
{
    return std::make_unique<TlbHierarchy>(
        TlbHierarchyConfig{}, std::move(l2_policy), std::move(walker));
}

void
TlbHierarchy::finalizeEfficiency(std::uint64_t now)
{
    l2_.finalizeEfficiency(now);
}

void
TlbHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    walker_->reset();
}

} // namespace chirp
