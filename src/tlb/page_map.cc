#include "tlb/page_map.hh"

#include <algorithm>

#include "util/logging.hh"

namespace chirp
{

std::size_t
PageMap::mapHuge(Addr base, Addr bytes)
{
    constexpr Addr huge = Addr{1} << kHugePageShift;
    const Addr begin = (base + huge - 1) & ~(huge - 1);
    const Addr end = (base + bytes) & ~(huge - 1);
    if (end <= begin)
        return 0; // range too small to hold an aligned superpage

    // Keep ranges_ sorted; reject overlap (caller error).
    for (const Range &range : ranges_) {
        if (begin < range.end && range.begin < end)
            chirp_fatal("PageMap: overlapping superpage ranges");
    }
    ranges_.push_back({begin, end});
    std::sort(ranges_.begin(), ranges_.end(),
              [](const Range &a, const Range &b) {
                  return a.begin < b.begin;
              });
    return static_cast<std::size_t>((end - begin) >> kHugePageShift);
}

unsigned
PageMap::pageShiftFor(Addr vaddr) const
{
    // Binary search for the last range starting at or before vaddr.
    const auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), vaddr,
        [](Addr value, const Range &range) {
            return value < range.begin;
        });
    if (it != ranges_.begin()) {
        const Range &range = *(it - 1);
        if (vaddr < range.end)
            return kHugePageShift;
    }
    return kPageShift;
}

std::size_t
PageMap::hugePages() const
{
    std::size_t pages = 0;
    for (const Range &range : ranges_)
        pages += static_cast<std::size_t>(
            (range.end - range.begin) >> kHugePageShift);
    return pages;
}

} // namespace chirp
