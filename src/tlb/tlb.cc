#include "tlb/tlb.hh"

#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <typeinfo>

#include "core/chirp.hh"
#include "core/ghrp.hh"
#include "core/lru.hh"
#include "core/ship.hh"
#include "core/srrip.hh"
#include "util/fault_injection.hh"
#include "util/logging.hh"

namespace chirp
{

bool
forceVirtualDispatch()
{
    // Read fresh each call (construction-time only): the equality
    // tests setenv/unsetenv between simulator builds in one process.
    const char *value = std::getenv("CHIRP_FORCE_VIRTUAL");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
}

bool
batchMissPath()
{
    // Enabled unless CHIRP_BATCH_MISS=0.  Read fresh each call
    // (construction-time only), like forceVirtualDispatch().
    const char *value = std::getenv("CHIRP_BATCH_MISS");
    return value == nullptr || value[0] == '\0' ||
           !(value[0] == '0' && value[1] == '\0');
}

Tlb::Tlb(const TlbConfig &config,
         std::unique_ptr<ReplacementPolicy> policy)
    : config_(config),
      array_(config.entries / config.assoc, config.assoc),
      policy_(std::move(policy))
{
    if (config.entries % config.assoc != 0)
        chirp_fatal("tlb '", config.name, "': ", config.entries,
                    " entries not divisible into ", config.assoc,
                    "-way sets");
    if (!policy_)
        chirp_fatal("tlb '", config.name, "' needs a replacement policy");
    if (policy_->numSets() != array_.numSets() ||
        policy_->assoc() != array_.assoc()) {
        chirp_fatal("tlb '", config.name, "': policy geometry ",
                    policy_->numSets(), "x", policy_->assoc(),
                    " does not match TLB geometry ", array_.numSets(), "x",
                    array_.assoc());
    }
    batchMiss_ = batchMissPath();
    // Exact-type checks (the devirtualized instantiations assume the
    // dynamic type, and all four classes are final so no subclass can
    // slip through them anyway).
    if (!forceVirtualDispatch()) {
        const auto &id = typeid(*policy_);
        if (id == typeid(LruPolicy))
            kind_ = PolicyKind::Lru;
        else if (id == typeid(ChirpPolicy))
            kind_ = PolicyKind::Chirp;
        else if (id == typeid(ShipPolicy))
            kind_ = PolicyKind::Ship;
        else if (id == typeid(GhrpPolicy))
            kind_ = PolicyKind::Ghrp;
        else if (id == typeid(SrripPolicy))
            kind_ = PolicyKind::Srrip;
    }
}

/** Per-event statistics sink writing the TLB's members directly. */
struct Tlb::DirectAcct
{
    Tlb &tlb;

    void hit() { ++tlb.hits_; }
    void miss() { ++tlb.misses_; }
    void
    evict(std::uint64_t fill, std::uint64_t last_hit, std::uint64_t now)
    {
        ++tlb.evictions_;
        tlb.efficiency_.recordGeneration(fill, last_hit, now);
    }
};

/**
 * Chunk-local statistics sink: the batched miss path accumulates a
 * chunk's hit/miss/eviction counts and efficiency sums here and
 * flushes them in one bulk add at the chunk boundary (or on unwind).
 * The evict <= fill guard of recordGeneration() is applied per
 * generation before summing, so the flushed totals are bit-identical
 * to per-event accounting.
 */
struct Tlb::DeferredAcct
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t effLive = 0;
    std::uint64_t effResident = 0;
    std::uint64_t effGens = 0;

    void hit() { ++hits; }
    void miss() { ++misses; }
    void
    evict(std::uint64_t fill, std::uint64_t last_hit, std::uint64_t now)
    {
        ++evictions;
        if (now > fill) {
            effLive += last_hit - fill;
            effResident += now - fill;
            ++effGens;
        }
    }
};

/**
 * The full hit/miss sequence with every policy hook bound to Policy.
 * For the concrete (final) policy types the unqualified calls
 * devirtualize and inline; for Policy = ReplacementPolicy this is the
 * generic virtual-dispatch path.  The event order is identical in
 * every instantiation: onAccessBegin -> onHit|({selectVictim} ->
 * onFill) -> onAccessEnd.  Statistics go through @p acct so the
 * scalar path updates members per event while the batched miss path
 * defers a whole chunk into locals.
 */
template <typename Policy, typename Acct>
bool
Tlb::accessCore(Policy *policy, const AccessInfo &info, Asid asid,
                std::uint64_t now, Addr key, Acct &acct)
{
    constexpr bool kLru = std::is_same_v<Policy, LruPolicy>;
    const std::uint32_t set = array_.setIndex(key);
    const Addr tag = array_.tagOf(key);
    policy->onAccessBegin(info);

    int way = array_.findWay(set, tag);
    if (way >= 0) {
        acct.hit();
        array_.dataAt(set, way).lastHitTime = now;
        policy->onHit(set, static_cast<std::uint32_t>(way), info);
        policy->onAccessEnd(set, info);
        if constexpr (kLru) {
            hotKey_ = key;
            hotSet_ = set;
            hotWay_ = way;
        }
        return true;
    }

    acct.miss();
    // The fill below may evict any way, including the memoized one.
    if constexpr (kLru)
        hotWay_ = -1;
    way = array_.invalidWay(set);
    if (way < 0) {
        way = static_cast<int>(policy->selectVictim(set, info));
        if (way < 0 || static_cast<std::uint32_t>(way) >= array_.assoc())
            chirp_panic("tlb '", config_.name, "': policy '",
                        policy_->name(), "' chose invalid way ", way);
        const Entry &victim = array_.dataAt(set, way);
        acct.evict(victim.fillTime, victim.lastHitTime, now);
    }
    array_.fill(set, static_cast<std::uint32_t>(way), tag);
    Entry &entry = array_.dataAt(set, way);
    entry.asid = asid;
    entry.fillTime = now;
    entry.lastHitTime = now;
    policy->onFill(set, static_cast<std::uint32_t>(way), info);
    policy->onAccessEnd(set, info);
    return false;
}

template <typename Policy>
bool
Tlb::accessSlowImpl(Policy *policy, const AccessInfo &info, Asid asid,
                    std::uint64_t now, Addr key)
{
    DirectAcct acct{*this};
    return accessCore(policy, info, asid, now, key, acct);
}

bool
Tlb::accessSlow(const AccessInfo &info, Asid asid, std::uint64_t now,
                Addr key)
{
    switch (kind_) {
      case PolicyKind::Lru:
        return accessSlowImpl(static_cast<LruPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Chirp:
        return accessSlowImpl(static_cast<ChirpPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Ship:
        return accessSlowImpl(static_cast<ShipPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Ghrp:
        return accessSlowImpl(static_cast<GhrpPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Srrip:
        return accessSlowImpl(static_cast<SrripPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Generic:
        break;
    }
    return accessSlowImpl(policy_.get(), info, asid, now, key);
}

bool
Tlb::accessRun(const AccessInfo &info, Addr key, Asid asid,
               std::uint64_t now, std::size_t n)
{
    ++accesses_;
    bool first;
    if (hotWay_ >= 0 && key == hotKey_) {
        ++hits_;
        array_.dataAt(hotSet_, hotWay_).lastHitTime = now;
        first = true;
    } else {
        first = accessSlow(info, asid, now, key);
    }
    if (n > 1) {
        if (hotWay_ < 0) {
            // The first access missed (the fill clears the memo).
            // The entry is resident now, so re-point the memo at it
            // exactly where the next sequential access's slow-path
            // hit would have left it.
            const std::uint32_t set = array_.setIndex(key);
            hotWay_ = array_.findWay(set, array_.tagOf(key));
            hotSet_ = set;
            hotKey_ = key;
        }
        // Repeats 2..n: each is ++accesses_/++hits_ plus a
        // lastHitTime store the next one overwrites, so only the
        // final timestamp needs writing.
        accesses_ += n - 1;
        hits_ += n - 1;
        array_.dataAt(hotSet_, hotWay_).lastHitTime = now + (n - 1);
    }
    return first;
}

/**
 * Sequential-equivalent batch: same per-access sequence as the inline
 * access() (memo check first, then the full slow path), so counters
 * and policy state land exactly where n individual calls would leave
 * them.  The wins are batch-level: one policy dispatch per chunk
 * instead of per access, each access's set metadata (and the policy's
 * SoA rows) prefetched a few slots ahead so the random-indexed loads
 * overlap the in-flight accesses, the policy's signature/table-index
 * streams precomputed for the whole chunk in beginAccessBatch(), and
 * hit/miss/eviction/efficiency accounting deferred into chunk-local
 * sums flushed once at the boundary.
 *
 * CHIRP_BATCH_MISS=0 keeps the original scalar reference loop, which
 * the equality CI legs diff the batched path against.
 *
 * Unwind contract (chunk faults armed): if the injected chunk fault
 * throws after i full accesses, the flushed counters and all
 * TLB/policy state equal exactly i sequential access() calls, and
 * endAccessBatch() still runs so the policy leaves batch mode.  With
 * faults disarmed nothing in the loop throws, so the common case runs
 * the same body outside any EH region.
 */
template <typename Policy>
void
Tlb::accessBatchImpl(Policy *policy, const AccessInfo *infos,
                     const Addr *keys, const std::uint64_t *nows,
                     std::size_t n, Asid asid, std::uint8_t *hits)
{
    constexpr std::size_t kPrefetchAhead = 8;
    if (!batchMiss_) {
        // Scalar reference loop: one slow-path call per access with
        // per-event counter updates.
        for (std::size_t i = 0; i < n; ++i) {
            if (i + kPrefetchAhead < n)
                array_.prefetchSet(
                    array_.setIndex(keys[i + kPrefetchAhead]));
            ++accesses_;
            const Addr key = keys[i];
            if (hotWay_ >= 0 && key == hotKey_) {
                ++hits_;
                array_.dataAt(hotSet_, hotWay_).lastHitTime = nows[i];
                hits[i] = 1;
                continue;
            }
            hits[i] =
                accessSlowImpl(policy, infos[i], asid, nows[i], key)
                    ? 1
                    : 0;
        }
        return;
    }

    policy->beginAccessBatch(infos, n);
    DeferredAcct acct;
    if (!FaultInjector::chunkFaultsArmed()) {
        // Nothing in this loop throws (chirp_panic aborts, and the
        // chunk-fault hook is the only deliberate throw site), so the
        // common case runs free of the EH region and the per-access
        // fault compare; policies without chunk compose hooks see the
        // batched loop as pure win.
        for (std::size_t i = 0; i < n; ++i) {
            if (i + kPrefetchAhead < n)
                array_.prefetchSet(
                    array_.setIndex(keys[i + kPrefetchAhead]));
            const Addr key = keys[i];
            if (hotWay_ >= 0 && key == hotKey_) {
                acct.hit();
                array_.dataAt(hotSet_, hotWay_).lastHitTime = nows[i];
                hits[i] = 1;
                continue;
            }
            hits[i] =
                accessCore(policy, infos[i], asid, nows[i], key, acct)
                    ? 1
                    : 0;
        }
        accesses_ += n;
        hits_ += acct.hits;
        misses_ += acct.misses;
        evictions_ += acct.evictions;
        efficiency_.addBulk(acct.effLive, acct.effResident,
                            acct.effGens);
        policy->endAccessBatch();
        return;
    }

    // Chunk-fault injection armed: fire the per-chunk event halfway
    // through so the unwind path is exercised with a torn chunk
    // (deferred counters partially accumulated).
    const std::size_t fault_at = n / 2;
    std::size_t i = 0;
    try {
        for (; i < n; ++i) {
            if (i + kPrefetchAhead < n)
                array_.prefetchSet(
                    array_.setIndex(keys[i + kPrefetchAhead]));
            if (i == fault_at)
                FaultInjector::instance().onBatchChunk();
            const Addr key = keys[i];
            if (hotWay_ >= 0 && key == hotKey_) {
                acct.hit();
                array_.dataAt(hotSet_, hotWay_).lastHitTime = nows[i];
                hits[i] = 1;
                continue;
            }
            hits[i] =
                accessCore(policy, infos[i], asid, nows[i], key, acct)
                    ? 1
                    : 0;
        }
    } catch (...) {
        // i full accesses completed; flush exactly their counts so
        // state matches i sequential access() calls, then let the
        // policy drop out of batch mode before rethrowing.
        accesses_ += i;
        hits_ += acct.hits;
        misses_ += acct.misses;
        evictions_ += acct.evictions;
        efficiency_.addBulk(acct.effLive, acct.effResident,
                            acct.effGens);
        policy->endAccessBatch();
        throw;
    }
    accesses_ += n;
    hits_ += acct.hits;
    misses_ += acct.misses;
    evictions_ += acct.evictions;
    efficiency_.addBulk(acct.effLive, acct.effResident, acct.effGens);
    policy->endAccessBatch();
}

void
Tlb::accessBatch(const AccessInfo *infos, const Addr *keys,
                 const std::uint64_t *nows, std::size_t n, Asid asid,
                 std::uint8_t *hits)
{
    switch (kind_) {
      case PolicyKind::Lru:
        return accessBatchImpl(static_cast<LruPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Chirp:
        return accessBatchImpl(static_cast<ChirpPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Ship:
        return accessBatchImpl(static_cast<ShipPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Ghrp:
        return accessBatchImpl(static_cast<GhrpPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Srrip:
        return accessBatchImpl(static_cast<SrripPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Generic:
        break;
    }
    accessBatchImpl(policy_.get(), infos, keys, nows, n, asid, hits);
}

void
Tlb::keysOf(const Addr *vaddrs, const std::uint8_t *page_shifts,
            std::size_t n, Asid asid, Addr *keys)
{
    const Addr asid_bits = static_cast<Addr>(asid) << 52;
    std::memcpy(keys, vaddrs, n * sizeof(Addr));
    simd::shiftOrLanes(keys, page_shifts, n,
                       static_cast<std::uint8_t>(kPageShift), asid_bits,
                       asid_bits | (Addr{1} << 51));
}

bool
Tlb::probe(Addr vaddr, Asid asid, unsigned page_shift) const
{
    const Addr key = keyOf(vaddr, asid, page_shift);
    return array_.findWay(array_.setIndex(key), array_.tagOf(key)) >= 0;
}

void
Tlb::flushAll(std::uint64_t now)
{
    hotWay_ = -1;
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            if (!array_.valid(set, way))
                continue;
            const Entry &entry = array_.dataAt(set, way);
            efficiency_.recordGeneration(entry.fillTime,
                                         entry.lastHitTime, now);
            array_.invalidate(set, way);
            policy_->onInvalidate(set, way);
        }
    }
}

void
Tlb::flushAsid(Asid asid, std::uint64_t now)
{
    hotWay_ = -1;
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            if (!array_.valid(set, way) ||
                array_.dataAt(set, way).asid != asid)
                continue;
            const Entry &entry = array_.dataAt(set, way);
            efficiency_.recordGeneration(entry.fillTime,
                                         entry.lastHitTime, now);
            array_.invalidate(set, way);
            policy_->onInvalidate(set, way);
        }
    }
}

void
Tlb::finalizeEfficiency(std::uint64_t now)
{
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            if (!array_.valid(set, way))
                continue;
            const Entry &entry = array_.dataAt(set, way);
            efficiency_.recordGeneration(entry.fillTime,
                                         entry.lastHitTime, now);
        }
    }
}

void
Tlb::reset()
{
    hotWay_ = -1;
    array_.invalidateAll();
    policy_->reset();
    efficiency_.reset();
    accesses_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

} // namespace chirp
