#include "tlb/tlb.hh"

#include <typeinfo>

#include "core/lru.hh"
#include "util/logging.hh"

namespace chirp
{

Tlb::Tlb(const TlbConfig &config,
         std::unique_ptr<ReplacementPolicy> policy)
    : config_(config),
      array_(config.entries / config.assoc, config.assoc),
      policy_(std::move(policy))
{
    if (config.entries % config.assoc != 0)
        chirp_fatal("tlb '", config.name, "': ", config.entries,
                    " entries not divisible into ", config.assoc,
                    "-way sets");
    if (!policy_)
        chirp_fatal("tlb '", config.name, "' needs a replacement policy");
    if (policy_->numSets() != array_.numSets() ||
        policy_->assoc() != array_.assoc()) {
        chirp_fatal("tlb '", config.name, "': policy geometry ",
                    policy_->numSets(), "x", policy_->assoc(),
                    " does not match TLB geometry ", array_.numSets(), "x",
                    array_.assoc());
    }
    // Exact-type check: a subclass could override hooks the memo
    // fast path skips, so LruPolicy derivatives don't qualify.
    plainLru_ = typeid(*policy_) == typeid(LruPolicy);
}

bool
Tlb::accessSlow(const AccessInfo &info, Asid asid, std::uint64_t now,
                Addr key)
{
    const std::uint32_t set = array_.setIndex(key);
    const Addr tag = array_.tagOf(key);

    // Qualified calls on the exact type bypass the vtable (and let
    // the stack update inline) for the ubiquitous LRU case; the
    // onAccessEnd default is an empty body, so skipping it for plain
    // LRU changes nothing.
    LruPolicy *const lru =
        plainLru_ ? static_cast<LruPolicy *>(policy_.get()) : nullptr;

    int way = array_.findWay(set, tag);
    if (way >= 0) {
        ++hits_;
        auto &slot = array_.at(set, way);
        slot.data.lastHitTime = now;
        if (lru) {
            lru->LruPolicy::onHit(set, static_cast<std::uint32_t>(way),
                                  info);
            hotKey_ = key;
            hotSet_ = set;
            hotWay_ = way;
        } else {
            policy_->onHit(set, static_cast<std::uint32_t>(way), info);
            policy_->onAccessEnd(set, info);
        }
        return true;
    }

    ++misses_;
    // The fill below may evict any way, including the memoized one.
    hotWay_ = -1;
    way = array_.invalidWay(set);
    if (way < 0) {
        way = static_cast<int>(
            lru ? lru->LruPolicy::selectVictim(set, info)
                : policy_->selectVictim(set, info));
        if (way < 0 || static_cast<std::uint32_t>(way) >= array_.assoc())
            chirp_panic("tlb '", config_.name, "': policy '",
                        policy_->name(), "' chose invalid way ", way);
        auto &victim = array_.at(set, way);
        ++evictions_;
        efficiency_.recordGeneration(victim.data.fillTime,
                                     victim.data.lastHitTime, now);
    }
    auto &slot = array_.at(set, way);
    slot.valid = true;
    slot.tag = tag;
    slot.data.asid = asid;
    slot.data.fillTime = now;
    slot.data.lastHitTime = now;
    if (lru) {
        lru->LruPolicy::onFill(set, static_cast<std::uint32_t>(way),
                               info);
    } else {
        policy_->onFill(set, static_cast<std::uint32_t>(way), info);
        policy_->onAccessEnd(set, info);
    }
    return false;
}

bool
Tlb::probe(Addr vaddr, Asid asid, unsigned page_shift) const
{
    const Addr key = keyOf(vaddr, asid, page_shift);
    return array_.findWay(array_.setIndex(key), array_.tagOf(key)) >= 0;
}

void
Tlb::flushAll(std::uint64_t now)
{
    hotWay_ = -1;
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            auto &slot = array_.at(set, way);
            if (!slot.valid)
                continue;
            efficiency_.recordGeneration(slot.data.fillTime,
                                         slot.data.lastHitTime, now);
            slot = {};
            policy_->onInvalidate(set, way);
        }
    }
}

void
Tlb::flushAsid(Asid asid, std::uint64_t now)
{
    hotWay_ = -1;
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            auto &slot = array_.at(set, way);
            if (!slot.valid || slot.data.asid != asid)
                continue;
            efficiency_.recordGeneration(slot.data.fillTime,
                                         slot.data.lastHitTime, now);
            slot = {};
            policy_->onInvalidate(set, way);
        }
    }
}

void
Tlb::finalizeEfficiency(std::uint64_t now)
{
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            const auto &slot = array_.at(set, way);
            if (!slot.valid)
                continue;
            efficiency_.recordGeneration(slot.data.fillTime,
                                         slot.data.lastHitTime, now);
        }
    }
}

void
Tlb::reset()
{
    hotWay_ = -1;
    array_.invalidateAll();
    policy_->reset();
    efficiency_.reset();
    accesses_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

} // namespace chirp
