#include "tlb/tlb.hh"

#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <typeinfo>

#include "core/chirp.hh"
#include "core/ghrp.hh"
#include "core/lru.hh"
#include "core/ship.hh"
#include "core/srrip.hh"
#include "util/logging.hh"

namespace chirp
{

bool
forceVirtualDispatch()
{
    // Read fresh each call (construction-time only): the equality
    // tests setenv/unsetenv between simulator builds in one process.
    const char *value = std::getenv("CHIRP_FORCE_VIRTUAL");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
}

Tlb::Tlb(const TlbConfig &config,
         std::unique_ptr<ReplacementPolicy> policy)
    : config_(config),
      array_(config.entries / config.assoc, config.assoc),
      policy_(std::move(policy))
{
    if (config.entries % config.assoc != 0)
        chirp_fatal("tlb '", config.name, "': ", config.entries,
                    " entries not divisible into ", config.assoc,
                    "-way sets");
    if (!policy_)
        chirp_fatal("tlb '", config.name, "' needs a replacement policy");
    if (policy_->numSets() != array_.numSets() ||
        policy_->assoc() != array_.assoc()) {
        chirp_fatal("tlb '", config.name, "': policy geometry ",
                    policy_->numSets(), "x", policy_->assoc(),
                    " does not match TLB geometry ", array_.numSets(), "x",
                    array_.assoc());
    }
    // Exact-type checks (the devirtualized instantiations assume the
    // dynamic type, and all four classes are final so no subclass can
    // slip through them anyway).
    if (!forceVirtualDispatch()) {
        const auto &id = typeid(*policy_);
        if (id == typeid(LruPolicy))
            kind_ = PolicyKind::Lru;
        else if (id == typeid(ChirpPolicy))
            kind_ = PolicyKind::Chirp;
        else if (id == typeid(ShipPolicy))
            kind_ = PolicyKind::Ship;
        else if (id == typeid(GhrpPolicy))
            kind_ = PolicyKind::Ghrp;
        else if (id == typeid(SrripPolicy))
            kind_ = PolicyKind::Srrip;
    }
}

/**
 * The full hit/miss sequence with every policy hook bound to Policy.
 * For the concrete (final) policy types the unqualified calls
 * devirtualize and inline; for Policy = ReplacementPolicy this is the
 * generic virtual-dispatch path.  The event order is identical in
 * every instantiation: onAccessBegin -> onHit|({selectVictim} ->
 * onFill) -> onAccessEnd.
 */
template <typename Policy>
bool
Tlb::accessSlowImpl(Policy *policy, const AccessInfo &info, Asid asid,
                    std::uint64_t now, Addr key)
{
    constexpr bool kLru = std::is_same_v<Policy, LruPolicy>;
    const std::uint32_t set = array_.setIndex(key);
    const Addr tag = array_.tagOf(key);
    policy->onAccessBegin(info);

    int way = array_.findWay(set, tag);
    if (way >= 0) {
        ++hits_;
        array_.dataAt(set, way).lastHitTime = now;
        policy->onHit(set, static_cast<std::uint32_t>(way), info);
        policy->onAccessEnd(set, info);
        if constexpr (kLru) {
            hotKey_ = key;
            hotSet_ = set;
            hotWay_ = way;
        }
        return true;
    }

    ++misses_;
    // The fill below may evict any way, including the memoized one.
    if constexpr (kLru)
        hotWay_ = -1;
    way = array_.invalidWay(set);
    if (way < 0) {
        way = static_cast<int>(policy->selectVictim(set, info));
        if (way < 0 || static_cast<std::uint32_t>(way) >= array_.assoc())
            chirp_panic("tlb '", config_.name, "': policy '",
                        policy_->name(), "' chose invalid way ", way);
        const Entry &victim = array_.dataAt(set, way);
        ++evictions_;
        efficiency_.recordGeneration(victim.fillTime,
                                     victim.lastHitTime, now);
    }
    array_.fill(set, static_cast<std::uint32_t>(way), tag);
    Entry &entry = array_.dataAt(set, way);
    entry.asid = asid;
    entry.fillTime = now;
    entry.lastHitTime = now;
    policy->onFill(set, static_cast<std::uint32_t>(way), info);
    policy->onAccessEnd(set, info);
    return false;
}

bool
Tlb::accessSlow(const AccessInfo &info, Asid asid, std::uint64_t now,
                Addr key)
{
    switch (kind_) {
      case PolicyKind::Lru:
        return accessSlowImpl(static_cast<LruPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Chirp:
        return accessSlowImpl(static_cast<ChirpPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Ship:
        return accessSlowImpl(static_cast<ShipPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Ghrp:
        return accessSlowImpl(static_cast<GhrpPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Srrip:
        return accessSlowImpl(static_cast<SrripPolicy *>(policy_.get()),
                              info, asid, now, key);
      case PolicyKind::Generic:
        break;
    }
    return accessSlowImpl(policy_.get(), info, asid, now, key);
}

bool
Tlb::accessRun(const AccessInfo &info, Addr key, Asid asid,
               std::uint64_t now, std::size_t n)
{
    ++accesses_;
    bool first;
    if (hotWay_ >= 0 && key == hotKey_) {
        ++hits_;
        array_.dataAt(hotSet_, hotWay_).lastHitTime = now;
        first = true;
    } else {
        first = accessSlow(info, asid, now, key);
    }
    if (n > 1) {
        if (hotWay_ < 0) {
            // The first access missed (the fill clears the memo).
            // The entry is resident now, so re-point the memo at it
            // exactly where the next sequential access's slow-path
            // hit would have left it.
            const std::uint32_t set = array_.setIndex(key);
            hotWay_ = array_.findWay(set, array_.tagOf(key));
            hotSet_ = set;
            hotKey_ = key;
        }
        // Repeats 2..n: each is ++accesses_/++hits_ plus a
        // lastHitTime store the next one overwrites, so only the
        // final timestamp needs writing.
        accesses_ += n - 1;
        hits_ += n - 1;
        array_.dataAt(hotSet_, hotWay_).lastHitTime = now + (n - 1);
    }
    return first;
}

/**
 * Sequential-equivalent batch: same per-access sequence as the inline
 * access() (memo check first, then the full slow path), so counters
 * and policy state land exactly where n individual calls would leave
 * them.  The wins are batch-level: one policy dispatch per chunk
 * instead of per access, and each access's set metadata prefetched a
 * few slots ahead so the random-indexed tag/valid loads overlap the
 * in-flight accesses instead of stalling each scan.
 */
template <typename Policy>
void
Tlb::accessBatchImpl(Policy *policy, const AccessInfo *infos,
                     const Addr *keys, const std::uint64_t *nows,
                     std::size_t n, Asid asid, std::uint8_t *hits)
{
    constexpr std::size_t kPrefetchAhead = 8;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n)
            array_.prefetchSet(array_.setIndex(keys[i + kPrefetchAhead]));
        ++accesses_;
        const Addr key = keys[i];
        if (hotWay_ >= 0 && key == hotKey_) {
            ++hits_;
            array_.dataAt(hotSet_, hotWay_).lastHitTime = nows[i];
            hits[i] = 1;
            continue;
        }
        hits[i] =
            accessSlowImpl(policy, infos[i], asid, nows[i], key) ? 1 : 0;
    }
}

void
Tlb::accessBatch(const AccessInfo *infos, const Addr *keys,
                 const std::uint64_t *nows, std::size_t n, Asid asid,
                 std::uint8_t *hits)
{
    switch (kind_) {
      case PolicyKind::Lru:
        return accessBatchImpl(static_cast<LruPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Chirp:
        return accessBatchImpl(static_cast<ChirpPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Ship:
        return accessBatchImpl(static_cast<ShipPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Ghrp:
        return accessBatchImpl(static_cast<GhrpPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Srrip:
        return accessBatchImpl(static_cast<SrripPolicy *>(policy_.get()),
                               infos, keys, nows, n, asid, hits);
      case PolicyKind::Generic:
        break;
    }
    accessBatchImpl(policy_.get(), infos, keys, nows, n, asid, hits);
}

void
Tlb::keysOf(const Addr *vaddrs, const std::uint8_t *page_shifts,
            std::size_t n, Asid asid, Addr *keys)
{
    const Addr asid_bits = static_cast<Addr>(asid) << 52;
    std::memcpy(keys, vaddrs, n * sizeof(Addr));
    simd::shiftOrLanes(keys, page_shifts, n,
                       static_cast<std::uint8_t>(kPageShift), asid_bits,
                       asid_bits | (Addr{1} << 51));
}

bool
Tlb::probe(Addr vaddr, Asid asid, unsigned page_shift) const
{
    const Addr key = keyOf(vaddr, asid, page_shift);
    return array_.findWay(array_.setIndex(key), array_.tagOf(key)) >= 0;
}

void
Tlb::flushAll(std::uint64_t now)
{
    hotWay_ = -1;
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            if (!array_.valid(set, way))
                continue;
            const Entry &entry = array_.dataAt(set, way);
            efficiency_.recordGeneration(entry.fillTime,
                                         entry.lastHitTime, now);
            array_.invalidate(set, way);
            policy_->onInvalidate(set, way);
        }
    }
}

void
Tlb::flushAsid(Asid asid, std::uint64_t now)
{
    hotWay_ = -1;
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            if (!array_.valid(set, way) ||
                array_.dataAt(set, way).asid != asid)
                continue;
            const Entry &entry = array_.dataAt(set, way);
            efficiency_.recordGeneration(entry.fillTime,
                                         entry.lastHitTime, now);
            array_.invalidate(set, way);
            policy_->onInvalidate(set, way);
        }
    }
}

void
Tlb::finalizeEfficiency(std::uint64_t now)
{
    for (std::uint32_t set = 0; set < array_.numSets(); ++set) {
        for (std::uint32_t way = 0; way < array_.assoc(); ++way) {
            if (!array_.valid(set, way))
                continue;
            const Entry &entry = array_.dataAt(set, way);
            efficiency_.recordGeneration(entry.fillTime,
                                         entry.lastHitTime, now);
        }
    }
}

void
Tlb::reset()
{
    hotWay_ = -1;
    array_.invalidateAll();
    policy_->reset();
    efficiency_.reset();
    accesses_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

} // namespace chirp
