/**
 * @file
 * The two-level TLB hierarchy of Table II: 64-entry L1 i-TLB and
 * d-TLB (LRU, 1-cycle) backed by a unified 1024-entry 8-way L2 TLB
 * (8-cycle hit) whose replacement policy is the object of study,
 * backed by a page walker.
 */

#ifndef CHIRP_TLB_TLB_HIERARCHY_HH
#define CHIRP_TLB_TLB_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/chirp.hh"
#include "core/ghrp.hh"
#include "tlb/page_walker.hh"
#include "tlb/tlb.hh"

namespace chirp
{

/** Hierarchy geometry/latency configuration (Table II defaults). */
struct TlbHierarchyConfig
{
    TlbConfig l1i{"l1i-tlb", 64, 8, 1};
    TlbConfig l1d{"l1d-tlb", 64, 8, 1};
    TlbConfig l2{"l2-tlb", 1024, 8, 8};
};

/** Result of one translation. */
struct TranslateResult
{
    bool l1Hit = false;
    bool l2Hit = false; //!< meaningful when !l1Hit
    Cycles stall = 0;   //!< cycles beyond the hidden L1 hit latency
};

/**
 * One L2 TLB access as observed during a recording run: everything
 * translate() hands the L2 on an L1 miss, plus the instruction index
 * it happened at.
 *
 * The L1 TLBs are plain LRU and never consult the L2, so the L1-miss
 * sequence — and with it this event stream — depends only on the
 * trace, not on the L2 replacement policy.  Recording it once per
 * workload lets every further policy replay just these events (plus
 * the retire stream for history-based policies) instead of
 * re-simulating both L1 TLBs for every record.
 */
struct L2Event
{
    Addr pc = 0;             //!< accessing instruction
    Addr vaddr = 0;          //!< address being translated
    std::uint64_t now = 0;   //!< instruction index of the access
    InstClass cls = InstClass::Alu;
    std::uint8_t isInstr = 0;   //!< i-side (1) or d-side (0) access
    std::uint8_t pageShift = 0; //!< log2 page size of the mapping
};

/** L1 i/d TLBs + unified L2 TLB + page walker. */
class TlbHierarchy
{
  public:
    /**
     * @param l2_policy replacement policy for the L2 TLB (owned)
     * @param walker page-walk latency model (owned)
     */
    TlbHierarchy(const TlbHierarchyConfig &config,
                 std::unique_ptr<ReplacementPolicy> l2_policy,
                 std::unique_ptr<PageWalker> walker);

    /** Convenience: Table II geometry with the given policy/walker. */
    static std::unique_ptr<TlbHierarchy>
    makeDefault(std::unique_ptr<ReplacementPolicy> l2_policy,
                std::unique_ptr<PageWalker> walker);

    /**
     * Translate one access.  `info.isInstr` selects the L1 TLB;
     * `info.vaddr` is the address being translated (the PC itself
     * for instruction fetches).  Inline so the all-L1-hit common
     * case stays inside the simulation loop.
     */
    TranslateResult
    translate(const AccessInfo &info, Asid asid, std::uint64_t now)
    {
        TranslateResult result;
        Tlb &l1 = info.isInstr ? l1i_ : l1d_;
        const unsigned page_shift = pageShiftFor(info.vaddr);

        if (l1.access(info, asid, now, page_shift)) {
            result.l1Hit = true;
            return result; // 1-cycle L1 hit is hidden by the pipeline
        }

        // L1 miss: probe the unified L2.
        if (l2Sink_) {
            l2Sink_->push_back({info.pc, info.vaddr, now, info.cls,
                                static_cast<std::uint8_t>(info.isInstr),
                                static_cast<std::uint8_t>(page_shift)});
        }
        result.stall += l2_.config().hitLatency;
        if (l2_.access(info, asid, now, page_shift)) {
            result.l2Hit = true;
            return result;
        }

        // L2 miss: walk the page table.
        result.stall += walker_->walk(info.vaddr);
        return result;
    }

    /**
     * The L1-miss tail of translate(): record the L2 event, probe the
     * unified L2 and walk on a miss.  The batched pipeline runs the
     * L1 lookups of a whole chunk as one pre-pass (the L1 TLBs are
     * plain LRU and never consult the L2, so their evolution is
     * independent of everything below them) and then replays only the
     * missing accesses through this tail in original record order,
     * keeping the L2 access and event-sink sequences — and with them
     * every statistic — bit-identical to the one-at-a-time loop.
     */
    Cycles
    translateL1Miss(const AccessInfo &info, Asid asid,
                    std::uint64_t now, unsigned page_shift)
    {
        if (l2Sink_) {
            l2Sink_->push_back({info.pc, info.vaddr, now, info.cls,
                                static_cast<std::uint8_t>(info.isInstr),
                                static_cast<std::uint8_t>(page_shift)});
        }
        Cycles stall = l2_.config().hitLatency;
        if (!l2_.access(info, asid, now, page_shift))
            stall += walker_->walk(info.vaddr);
        return stall;
    }

    /** log2 page size backing @p vaddr (4KB unless a page map says
     *  otherwise). */
    unsigned
    pageShiftFor(Addr vaddr) const
    {
        return pageMap_ ? pageMap_->pageShiftFor(vaddr) : kPageShift;
    }

    /**
     * Use @p map to decide each address's backing page size (mixed
     * 4KB/2MB operation).  Null reverts to uniform 4KB pages.  The
     * map must outlive the hierarchy.  The simulation consults the
     * mapping directly where hardware would probe both sizes; the
     * probe-order timing difference is not modeled.
     */
    void setPageMap(const PageMap *map) { pageMap_ = map; }

    /**
     * Append every L2 access to @p sink (null disables).  Used by
     * recording runs to capture the policy-independent L2 event
     * stream; the check sits on the L1-miss path only, so ordinary
     * runs pay nothing for it.  The sink must outlive the run.
     */
    void setL2EventSink(std::vector<L2Event> *sink) { l2Sink_ = sink; }

    /**
     * Deliver a retired branch to the L2 policy (CHiRP/GHRP build
     * their branch histories from the full instruction stream).
     * Skipped entirely for retire-blind policies; delivered through
     * a typed pointer (devirtualized, hooks inline) when the policy
     * is known to be exactly CHiRP or GHRP.
     */
    void
    onBranchRetired(Addr pc, InstClass cls, bool taken)
    {
        if (l2Chirp_) {
            l2Chirp_->onBranchRetired(pc, cls, taken);
            return;
        }
        if (l2Ghrp_) {
            l2Ghrp_->onBranchRetired(pc, cls, taken);
            return;
        }
        if (l2WantsRetire_)
            l2_.policy().onBranchRetired(pc, cls, taken);
    }

    /** Deliver every retired instruction to the L2 policy (path
     *  history updates).  Skipped for retire-blind policies;
     *  devirtualized for CHiRP (GHRP ignores non-branch retires). */
    void
    onInstRetired(Addr pc, InstClass cls)
    {
        if (l2Chirp_) {
            l2Chirp_->onInstRetired(pc, cls);
            return;
        }
        if (l2Ghrp_)
            return; // GHRP only consumes onBranchRetired
        if (l2WantsRetire_)
            l2_.policy().onInstRetired(pc, cls);
    }

    /** Close out L2 efficiency accounting at observation end. */
    void finalizeEfficiency(std::uint64_t now);

    /** Reset all levels and the walker. */
    void reset();

    Tlb &l1i() { return l1i_; }
    Tlb &l1d() { return l1d_; }
    Tlb &l2() { return l2_; }
    const Tlb &l1i() const { return l1i_; }
    const Tlb &l1d() const { return l1d_; }
    const Tlb &l2() const { return l2_; }
    PageWalker &walker() { return *walker_; }

  private:
    static std::unique_ptr<ReplacementPolicy>
    makeL1Policy(const TlbConfig &config);

    TlbHierarchyConfig config_;
    const PageMap *pageMap_ = nullptr;
    std::vector<L2Event> *l2Sink_ = nullptr;
    //! Cached wantsRetireEvents() of the L2 policy: skips two virtual
    //! calls per retired instruction for retire-blind policies.
    bool l2WantsRetire_ = true;
    //! Exact-type L2 policy views for the retire fast paths (both
    //! classes are final, so the calls devirtualize).  Null when the
    //! policy is any other type or CHIRP_FORCE_VIRTUAL is set.
    ChirpPolicy *l2Chirp_ = nullptr;
    GhrpPolicy *l2Ghrp_ = nullptr;
    Tlb l1i_;
    Tlb l1d_;
    Tlb l2_;
    std::unique_ptr<PageWalker> walker_;
};

} // namespace chirp

#endif // CHIRP_TLB_TLB_HIERARCHY_HH
