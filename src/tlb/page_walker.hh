/**
 * @file
 * Page-walk latency models.
 *
 * The paper's methodology charges a configurable fixed penalty per
 * L2 TLB miss and sweeps it from 20 to 360 cycles (Fig 10);
 * FixedLatencyWalker implements exactly that.  RadixPageWalker is a
 * richer substrate: a four-level radix walk with paging-structure
 * caches (PSCs) in the style of Intel's MMU caches, for examples and
 * studies that want walk latency to vary with locality.
 */

#ifndef CHIRP_TLB_PAGE_WALKER_HH
#define CHIRP_TLB_PAGE_WALKER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace chirp
{

/** Abstract provider of page-walk latencies. */
class PageWalker
{
  public:
    virtual ~PageWalker() = default;

    /** Cycles to resolve the translation of @p vaddr. */
    virtual Cycles walk(Addr vaddr) = 0;

    /** Clear internal state (PSCs). */
    virtual void reset() {}

    /** Walks performed. */
    std::uint64_t walks() const { return walks_; }

    /** Total cycles spent walking. */
    Cycles totalCycles() const { return totalCycles_; }

  protected:
    void
    account(Cycles latency)
    {
        ++walks_;
        totalCycles_ += latency;
    }

    void
    resetAccounting()
    {
        walks_ = 0;
        totalCycles_ = 0;
    }

  private:
    std::uint64_t walks_ = 0;
    Cycles totalCycles_ = 0;
};

/** Constant-latency walker (the paper's model). */
class FixedLatencyWalker : public PageWalker
{
  public:
    explicit FixedLatencyWalker(Cycles latency = 150);

    Cycles walk(Addr vaddr) override;
    void reset() override;

    Cycles latency() const { return latency_; }

    /** Change the penalty (Fig 10 sweeps reuse one walker). */
    void setLatency(Cycles latency) { latency_ = latency; }

  private:
    Cycles latency_;
};

/**
 * Four-level radix walk with paging-structure caches.  Each level
 * whose PSC misses costs one memory access of a configurable
 * latency; a PML4/PDPT/PD hit skips the levels above it.
 */
class RadixPageWalker : public PageWalker
{
  public:
    /** Per-level PSC sizes and the per-memory-access cost. */
    struct Config
    {
        unsigned pml4Entries = 2;   //!< caches 512GB regions
        unsigned pdptEntries = 4;   //!< caches 1GB regions
        unsigned pdEntries = 32;    //!< caches 2MB regions
        Cycles memAccessCycles = 40;
    };

    RadixPageWalker();
    explicit RadixPageWalker(const Config &config);

    Cycles walk(Addr vaddr) override;
    void reset() override;

    /** PSC hits per level, index 0 = PML4 (tests/diagnostics). */
    const std::array<std::uint64_t, 3> &pscHits() const { return hits_; }

  private:
    /** Tiny fully-associative LRU cache of region tags. */
    struct Psc
    {
        explicit Psc(unsigned entries) : tags(entries, ~Addr{0}) {}

        bool lookup(Addr tag);
        void insert(Addr tag);

        std::vector<Addr> tags; //!< MRU first
    };

    Config config_;
    Psc pml4_;
    Psc pdpt_;
    Psc pd_;
    std::array<std::uint64_t, 3> hits_{};
};

} // namespace chirp

#endif // CHIRP_TLB_PAGE_WALKER_HH
