/**
 * @file
 * A set-associative TLB with a pluggable replacement policy.
 *
 * The TLB is the structure under study: every policy event hook is
 * driven from here, and the per-entry efficiency accounting of Fig 1
 * hangs off the fill/hit/evict events.
 */

#ifndef CHIRP_TLB_TLB_HH
#define CHIRP_TLB_TLB_HH

#include <memory>
#include <string>

#include "core/replacement_policy.hh"
#include "mem/set_assoc.hh"
#include "tlb/efficiency.hh"
#include "tlb/page_map.hh"
#include "util/types.hh"

namespace chirp
{

/**
 * Is generic virtual policy dispatch forced via the
 * CHIRP_FORCE_VIRTUAL environment variable?  Read at construction
 * time by Tlb and TlbHierarchy; the equality tests flip it to prove
 * the devirtualized event sequences are state-identical to the
 * virtual ones.  Set (non-empty, not "0") means forced.
 */
bool forceVirtualDispatch();

/**
 * Is the batched miss path enabled (the default)?  CHIRP_BATCH_MISS=0
 * in the environment disables it, making accessBatch() run the scalar
 * one-access-at-a-time reference loop — the opt-out the equality CI
 * legs diff against.  Read at construction time by Tlb.
 */
bool batchMissPath();

/** Geometry and latency of one TLB level. */
struct TlbConfig
{
    std::string name = "tlb";
    std::uint32_t entries = 1024;
    std::uint32_t assoc = 8;
    Cycles hitLatency = 8;
};

/** One TLB level. */
class Tlb
{
  public:
    /** The policy is owned by the TLB. */
    Tlb(const TlbConfig &config,
        std::unique_ptr<ReplacementPolicy> policy);

    /**
     * Perform one access: drives the policy's onHit / selectVictim /
     * onFill / onAccessEnd hooks and allocates on miss.
     * @param info the access; the page comes from info.vaddr
     * @param asid address-space tag of the access
     * @param now current time (instruction index) for efficiency
     * @param page_shift log2 page size backing the address: one
     *        entry covers the whole 4KB or 2MB page
     * @return true on hit.
     *
     * The memo check lives inline so the dominant repeat-hit case
     * (sequential fetches within one page) resolves without leaving
     * the caller's loop; everything else goes out of line.
     */
    bool
    access(const AccessInfo &info, Asid asid, std::uint64_t now,
           unsigned page_shift = kPageShift)
    {
        ++accesses_;
        const Addr key = keyOf(info.vaddr, asid, page_shift);
        if (hotWay_ >= 0 && key == hotKey_) {
            // Repeat hit on the previous entry: counters and
            // timestamps advance exactly as in the general path; the
            // policy calls are no-ops by construction (see the memo
            // comment below).
            ++hits_;
            array_.dataAt(hotSet_, hotWay_).lastHitTime = now;
            return true;
        }
        return accessSlow(info, asid, now, key);
    }

    /**
     * Perform @p n accesses as one batch: exactly the state evolution
     * and counter updates of n sequential access() calls (hits[i]
     * mirrors each return value), with the policy dispatch resolved
     * once for the whole batch and each access's set metadata
     * prefetched a few slots ahead of its scan.  @p keys must hold
     * keysOf()/keyOf() of each access — callers precompute the column
     * so the key composition vectorizes over the chunk.
     */
    void accessBatch(const AccessInfo *infos, const Addr *keys,
                     const std::uint64_t *nows, std::size_t n,
                     Asid asid, std::uint8_t *hits);

    /**
     * Perform @p n consecutive accesses to the same page — @p key
     * precomputed, times now, now+1, ..., now+n-1 — with exactly the
     * state evolution and counters of n sequential access() calls.
     * Only valid when hasLruMemo() is true (devirtualized plain-LRU
     * dispatch): there every post-first access is a provable repeat
     * hit whose policy calls are no-ops (see the memo comment below),
     * so the n-1 repeats collapse to bulk counter and timestamp
     * updates.
     * @return the first access's hit result.
     */
    bool accessRun(const AccessInfo &info, Addr key, Asid asid,
                   std::uint64_t now, std::size_t n);

    /**
     * Does this TLB run the devirtualized plain-LRU dispatch (the
     * only kind whose repeat hits are provable policy no-ops)?
     * Callers gate accessRun() and same-page run compression on this;
     * CHIRP_FORCE_VIRTUAL turns it off, which keeps the forced-
     * virtual reference path exercising the uncompressed loop the
     * equality tests compare against.
     */
    bool hasLruMemo() const { return kind_ == PolicyKind::Lru; }

    /**
     * Does accessBatch() run the batched miss path (policy chunk
     * precompute + deferred bulk counters) rather than the scalar
     * reference loop?  Fixed at construction from CHIRP_BATCH_MISS;
     * the bench reports it so committed baselines are
     * self-describing.
     */
    bool missPathBatched() const { return batchMiss_; }

    /** Key combining page number, size class and ASID for set/tag
     *  mapping. */
    static Addr
    keyOf(Addr vaddr, Asid asid, unsigned page_shift)
    {
        // ASID and the size class mix into the tag bits only (the
        // set index stays a pure page-number slice, as in real L2
        // TLBs); the size bit keeps a 2MB entry from aliasing the
        // 4KB page sharing its number.
        const Addr size_bit =
            page_shift == kPageShift ? 0 : (Addr{1} << 51);
        return (vaddr >> page_shift) | size_bit |
               (static_cast<Addr>(asid) << 52);
    }

    /**
     * keyOf() over a column: keys[i] = keyOf(vaddrs[i], asid,
     * page_shifts[i]), composed by the lane-parallel simd kernel.
     */
    static void keysOf(const Addr *vaddrs,
                       const std::uint8_t *page_shifts, std::size_t n,
                       Asid asid, Addr *keys);

    /** Hit check with no state change. */
    bool probe(Addr vaddr, Asid asid,
               unsigned page_shift = kPageShift) const;

    /** Invalidate every entry (full flush). */
    void flushAll(std::uint64_t now);

    /** Invalidate all entries of @p asid (context flush). */
    void flushAsid(Asid asid, std::uint64_t now);

    /** Close out efficiency accounting for still-resident entries. */
    void finalizeEfficiency(std::uint64_t now);

    /** Reset entries, policy state and statistics. */
    void reset();

    const TlbConfig &config() const { return config_; }
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Evictions of valid entries (capacity/conflict turnover). */
    std::uint64_t evictions() const { return evictions_; }

    const EfficiencyTracker &efficiency() const { return efficiency_; }

    std::uint32_t numSets() const { return array_.numSets(); }
    std::uint32_t assoc() const { return array_.assoc(); }

    /** Valid-entry count (tests). */
    std::uint64_t validCount() const { return array_.validCount(); }

  private:
    /**
     * Resolved dynamic type of the policy, fixed at construction.
     * accessSlow branches on it once per access and then runs a
     * policy-specific instantiation whose hook calls the compiler
     * devirtualizes and inlines (all concrete policies are final and
     * keep their hot hooks in their headers).  Generic is the plain
     * virtual-dispatch path: subclasses of the known policies, and
     * every policy when CHIRP_FORCE_VIRTUAL is set.
     */
    enum class PolicyKind : std::uint8_t
    {
        Generic,
        Lru,
        Chirp,
        Ship,
        Ghrp,
        Srrip,
    };

    /** General hit/miss handling once the memo fast path declined. */
    bool accessSlow(const AccessInfo &info, Asid asid,
                    std::uint64_t now, Addr key);

    /**
     * Statistics sinks for accessCore: DirectAcct writes the member
     * counters and the efficiency tracker per event (the scalar
     * reference); DeferredAcct accumulates a chunk's worth into
     * locals the batched miss path flushes in bulk at the chunk
     * boundary.  Addition is associative, so both land on
     * bit-identical totals.
     */
    struct DirectAcct;
    struct DeferredAcct;

    /**
     * One access's hit/miss sequence with hooks bound to @p Policy
     * and hit/miss/eviction statistics routed through @p Acct.
     */
    template <typename Policy, typename Acct>
    bool accessCore(Policy *policy, const AccessInfo &info, Asid asid,
                    std::uint64_t now, Addr key, Acct &acct);

    /** The access sequence with hooks bound to @p Policy. */
    template <typename Policy>
    bool accessSlowImpl(Policy *policy, const AccessInfo &info,
                        Asid asid, std::uint64_t now, Addr key);

    /** The batch loop with hooks bound to @p Policy. */
    template <typename Policy>
    void accessBatchImpl(Policy *policy, const AccessInfo *infos,
                         const Addr *keys, const std::uint64_t *nows,
                         std::size_t n, Asid asid, std::uint8_t *hits);

    /** Per-entry payload. */
    struct Entry
    {
        Asid asid = 0;
        std::uint64_t fillTime = 0;
        std::uint64_t lastHitTime = 0;
    };

    TlbConfig config_;
    SetAssocArray<Entry> array_;
    std::unique_ptr<ReplacementPolicy> policy_;
    EfficiencyTracker efficiency_;
    PolicyKind kind_ = PolicyKind::Generic;
    // Batched miss path enabled (CHIRP_BATCH_MISS, construction-time).
    bool batchMiss_ = true;
    // Last-hit memo (LRU only): a repeat hit on the immediately-
    // preceding entry is a provable no-op for plain LRU (the way is
    // already MRU, so touch() does nothing and onAccessEnd is the
    // empty default), letting the hot sequential case skip the set
    // scan and all policy calls.  The memo holds the full key, so
    // ASID and page-size mismatches fall through.  Any miss, flush
    // or reset clears it, and only the Lru dispatch kind ever sets
    // it.
    int hotWay_ = -1; //!< <0 = no memo
    std::uint32_t hotSet_ = 0;
    Addr hotKey_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace chirp

#endif // CHIRP_TLB_TLB_HH
