#include "tlb/page_walker.hh"

#include <algorithm>

namespace chirp
{

FixedLatencyWalker::FixedLatencyWalker(Cycles latency)
    : latency_(latency)
{
}

Cycles
FixedLatencyWalker::walk(Addr)
{
    account(latency_);
    return latency_;
}

void
FixedLatencyWalker::reset()
{
    resetAccounting();
}

RadixPageWalker::RadixPageWalker()
    : RadixPageWalker(Config{})
{
}

RadixPageWalker::RadixPageWalker(const Config &config)
    : config_(config), pml4_(config.pml4Entries),
      pdpt_(config.pdptEntries), pd_(config.pdEntries)
{
}

bool
RadixPageWalker::Psc::lookup(Addr tag)
{
    const auto it = std::find(tags.begin(), tags.end(), tag);
    if (it == tags.end())
        return false;
    // Move to MRU position.
    std::rotate(tags.begin(), it, it + 1);
    return true;
}

void
RadixPageWalker::Psc::insert(Addr tag)
{
    tags.pop_back();
    tags.insert(tags.begin(), tag);
}

Cycles
RadixPageWalker::walk(Addr vaddr)
{
    // x86-64 4KB radix split: PML4[47:39] PDPT[38:30] PD[29:21]
    // PT[20:12].  The PD PSC caches 2MB regions, so a hit there
    // leaves only the leaf PTE access.
    const Addr pd_tag = vaddr >> 21;
    const Addr pdpt_tag = vaddr >> 30;
    const Addr pml4_tag = vaddr >> 39;

    Cycles latency = config_.memAccessCycles; // the leaf PTE access
    if (pd_.lookup(pd_tag)) {
        ++hits_[2];
    } else {
        latency += config_.memAccessCycles; // PD entry access
        if (pdpt_.lookup(pdpt_tag)) {
            ++hits_[1];
        } else {
            latency += config_.memAccessCycles; // PDPT entry access
            if (pml4_.lookup(pml4_tag)) {
                ++hits_[0];
            } else {
                latency += config_.memAccessCycles; // PML4 entry access
                pml4_.insert(pml4_tag);
            }
            pdpt_.insert(pdpt_tag);
        }
        pd_.insert(pd_tag);
    }
    account(latency);
    return latency;
}

void
RadixPageWalker::reset()
{
    pml4_ = Psc(config_.pml4Entries);
    pdpt_ = Psc(config_.pdptEntries);
    pd_ = Psc(config_.pdEntries);
    hits_ = {};
    resetAccounting();
}

} // namespace chirp
