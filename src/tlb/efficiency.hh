/**
 * @file
 * TLB-efficiency accounting (Fig 1 of the paper).
 *
 * Following Burger et al.'s cache-efficiency metric, an entry's
 * *live* time spans fill to last hit; the rest of its residency is
 * dead.  Efficiency is total live time over total residency time —
 * a policy that evicts dead entries promptly scores higher because
 * the entries that replace them go on to produce live time.
 */

#ifndef CHIRP_TLB_EFFICIENCY_HH
#define CHIRP_TLB_EFFICIENCY_HH

#include <cstdint>

namespace chirp
{

/** Accumulates per-generation live/residency times. */
class EfficiencyTracker
{
  public:
    /**
     * Record one completed generation of a TLB entry.
     * @param fill time the entry was installed
     * @param last_hit time of its final hit (== fill when never hit)
     * @param evict time it left the TLB (or observation end)
     */
    void
    recordGeneration(std::uint64_t fill, std::uint64_t last_hit,
                     std::uint64_t evict)
    {
        if (evict <= fill)
            return;
        liveTime_ += last_hit - fill;
        residentTime_ += evict - fill;
        ++generations_;
    }

    /**
     * Fold in @p gens generations accumulated elsewhere as running
     * sums: @p live = sum of (last_hit - fill), @p resident = sum of
     * (evict - fill), with the evict <= fill guard already applied
     * per generation by the accumulator.  Addition is associative, so
     * a chunk of deferred recordGeneration() calls flushed through
     * here lands on bit-identical totals.
     */
    void
    addBulk(std::uint64_t live, std::uint64_t resident,
            std::uint64_t gens)
    {
        liveTime_ += live;
        residentTime_ += resident;
        generations_ += gens;
    }

    /** Live-time fraction in [0, 1]; 0 when nothing was recorded. */
    double
    efficiency() const
    {
        if (residentTime_ == 0)
            return 0.0;
        return static_cast<double>(liveTime_) /
               static_cast<double>(residentTime_);
    }

    std::uint64_t generations() const { return generations_; }

    void
    reset()
    {
        liveTime_ = 0;
        residentTime_ = 0;
        generations_ = 0;
    }

  private:
    std::uint64_t liveTime_ = 0;
    std::uint64_t residentTime_ = 0;
    std::uint64_t generations_ = 0;
};

} // namespace chirp

#endif // CHIRP_TLB_EFFICIENCY_HH
