/**
 * @file
 * Virtual-address → page-size map: the OS-side model behind mixed
 * page sizes.
 *
 * The paper scopes its study to 4KB pages and names mixed-size
 * replacement as future work (§V, §VIII); this map plus the TLB's
 * dual-size entries implement the substrate that future work needs.
 * Ranges registered here are backed by 2MB superpages (subject to an
 * alignment trim); everything else uses 4KB base pages.
 */

#ifndef CHIRP_TLB_PAGE_MAP_HH
#define CHIRP_TLB_PAGE_MAP_HH

#include <vector>

#include "util/types.hh"

namespace chirp
{

/** log2 of the superpage size (2MB). */
constexpr unsigned kHugePageShift = 21;

/** Maps address ranges to their backing page size. */
class PageMap
{
  public:
    /**
     * Back the 2MB-aligned interior of [base, base + bytes) with
     * superpages; the unaligned head/tail stays on 4KB pages, as an
     * OS allocator would leave it.
     * @return number of superpages actually created.
     */
    std::size_t mapHuge(Addr base, Addr bytes);

    /** Page shift backing @p vaddr (12 or kHugePageShift). */
    unsigned pageShiftFor(Addr vaddr) const;

    /** Total superpages registered. */
    std::size_t hugePages() const;

    /** Drop all superpage mappings. */
    void clear() { ranges_.clear(); }

  private:
    struct Range
    {
        Addr begin; //!< 2MB aligned
        Addr end;   //!< 2MB aligned
    };

    std::vector<Range> ranges_; //!< sorted, non-overlapping
};

} // namespace chirp

#endif // CHIRP_TLB_PAGE_MAP_HH
