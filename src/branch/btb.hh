/**
 * @file
 * Branch target buffer (4K-entry per Table II) and an indirect
 * target predictor keyed on target-path history.
 */

#ifndef CHIRP_BRANCH_BTB_HH
#define CHIRP_BRANCH_BTB_HH

#include "mem/set_assoc.hh"
#include "util/types.hh"

namespace chirp
{

/** Set-associative branch target buffer. */
class Btb
{
  public:
    /**
     * @param entries total entries (power-of-two sets x assoc)
     * @param assoc ways per set
     */
    explicit Btb(std::uint32_t entries = 4096, std::uint32_t assoc = 4);

    /**
     * Look up the predicted target for the branch at @p pc.
     * @return 0 when the BTB has no entry.
     */
    Addr predict(Addr pc) const;

    /** Install/refresh the target of the branch at @p pc. */
    void update(Addr pc, Addr target);

    /** Drop all entries. */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Target
    {
        Addr target = 0;
        std::uint64_t lastUse = 0;
    };

    SetAssocArray<Target> array_;
    std::uint64_t tick_ = 0;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

/**
 * Indirect-branch target predictor: a tagged table indexed by PC
 * hashed with a folded history of recent indirect targets (an
 * ITTAGE-flavored single table).
 */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(std::uint32_t entries = 512);

    /** Predicted target for the indirect branch at @p pc (0 = none). */
    Addr predict(Addr pc) const;

    /** Train with the resolved target and update path history. */
    void update(Addr pc, Addr target);

    void reset();

  private:
    std::size_t indexFor(Addr pc) const;

    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
    };

    std::vector<Entry> table_;
    std::uint64_t pathHistory_ = 0;
};

} // namespace chirp

#endif // CHIRP_BRANCH_BTB_HH
