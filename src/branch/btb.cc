#include "branch/btb.hh"

#include "util/bitfield.hh"
#include "util/hashing.hh"

namespace chirp
{

Btb::Btb(std::uint32_t entries, std::uint32_t assoc)
    : array_(entries / assoc, assoc)
{
}

Addr
Btb::predict(Addr pc) const
{
    const Addr key = pc >> 2;
    const std::uint32_t set = array_.setIndex(key);
    const int way = array_.findWay(set, array_.tagOf(key));
    if (way < 0) {
        ++misses_;
        return 0;
    }
    ++hits_;
    return array_.dataAt(set, way).target;
}

void
Btb::update(Addr pc, Addr target)
{
    ++tick_;
    const Addr key = pc >> 2;
    const std::uint32_t set = array_.setIndex(key);
    const Addr tag = array_.tagOf(key);
    int way = array_.findWay(set, tag);
    if (way < 0) {
        way = array_.invalidWay(set);
        if (way < 0) {
            std::uint64_t oldest = ~std::uint64_t{0};
            for (std::uint32_t w = 0; w < array_.assoc(); ++w) {
                const std::uint64_t t = array_.dataAt(set, w).lastUse;
                if (t < oldest) {
                    oldest = t;
                    way = static_cast<int>(w);
                }
            }
        }
    }
    array_.fill(set, static_cast<std::uint32_t>(way), tag);
    auto &entry = array_.dataAt(set, way);
    entry.target = target;
    entry.lastUse = tick_;
}

void
Btb::reset()
{
    array_.invalidateAll();
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

IndirectPredictor::IndirectPredictor(std::uint32_t entries)
    : table_(entries)
{
    if (!isPowerOfTwo(entries))
        chirp_fatal("indirect predictor entries must be a power of two");
}

std::size_t
IndirectPredictor::indexFor(Addr pc) const
{
    const std::uint64_t mixed = (pc >> 2) ^ (pathHistory_ * 0x9e3779b1ull);
    return static_cast<std::size_t>(
        foldXor(mixed, floorLog2(table_.size())));
}

Addr
IndirectPredictor::predict(Addr pc) const
{
    const Entry &e = table_[indexFor(pc)];
    if (!e.valid || e.tag != (pc >> 2))
        return 0;
    return e.target;
}

void
IndirectPredictor::update(Addr pc, Addr target)
{
    Entry &e = table_[indexFor(pc)];
    e.valid = true;
    e.tag = pc >> 2;
    e.target = target;
    pathHistory_ = (pathHistory_ << 4) ^ (target >> 2);
}

void
IndirectPredictor::reset()
{
    for (auto &e : table_)
        e = Entry{};
    pathHistory_ = 0;
}

} // namespace chirp
