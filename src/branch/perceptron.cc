#include "branch/perceptron.hh"

#include <algorithm>
#include <cmath>

#include "util/bitfield.hh"
#include "util/hashing.hh"
#include "util/logging.hh"

namespace chirp
{

HashedPerceptron::HashedPerceptron(const PerceptronConfig &config)
    : config_(config)
{
    if (!isPowerOfTwo(config.tableEntries))
        chirp_fatal("perceptron table entries must be a power of two");
    const double hist_len =
        static_cast<double>(config.numTables) * config.historySegBits;
    // The classic perceptron threshold heuristic.
    theta_ = static_cast<int>(std::floor(1.93 * hist_len + 14.0));
    weights_.assign(
        static_cast<std::size_t>(config.numTables) * config.tableEntries,
        0);
    bias_.assign(config.tableEntries, 0);
}

std::size_t
HashedPerceptron::indexFor(Addr pc, unsigned table) const
{
    const unsigned seg_bits = config_.historySegBits;
    const std::uint64_t segment =
        (history_ >> (table * seg_bits)) & maskBits(seg_bits);
    const std::uint64_t mixed = (pc >> 2) ^ (segment * 0x9e3779b1ull) ^
                                (static_cast<std::uint64_t>(table) << 29);
    return static_cast<std::size_t>(
        foldXor(mixed, floorLog2(config_.tableEntries)));
}

int
HashedPerceptron::sumFor(Addr pc) const
{
    int sum = bias_[foldXor(pc >> 2, floorLog2(config_.tableEntries))];
    for (unsigned t = 0; t < config_.numTables; ++t) {
        sum += weights_[static_cast<std::size_t>(t) * config_.tableEntries +
                        indexFor(pc, t)];
    }
    return sum;
}

bool
HashedPerceptron::predict(Addr pc) const
{
    return sumFor(pc) >= 0;
}

void
HashedPerceptron::update(Addr pc, bool taken)
{
    const int sum = sumFor(pc);
    const bool predicted = sum >= 0;
    if (predicted != taken || std::abs(sum) <= theta_) {
        auto bump = [&](std::int8_t &w) {
            const int next = w + (taken ? 1 : -1);
            w = static_cast<std::int8_t>(
                std::clamp(next, -config_.weightMax, config_.weightMax));
        };
        bump(bias_[foldXor(pc >> 2, floorLog2(config_.tableEntries))]);
        for (unsigned t = 0; t < config_.numTables; ++t) {
            bump(weights_[static_cast<std::size_t>(t) *
                              config_.tableEntries +
                          indexFor(pc, t)]);
        }
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
HashedPerceptron::reset()
{
    std::fill(weights_.begin(), weights_.end(), 0);
    std::fill(bias_.begin(), bias_.end(), 0);
    history_ = 0;
}

} // namespace chirp
