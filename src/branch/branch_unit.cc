#include "branch/branch_unit.hh"

namespace chirp
{

BranchUnit::BranchUnit(const BranchUnitConfig &config)
    : config_(config), direction_(config.perceptron),
      btb_(config.btbEntries, config.btbAssoc),
      indirect_(config.indirectEntries)
{
}

Cycles
BranchUnit::onBranch(const TraceRecord &rec)
{
    ++branches_;
    bool mispredicted = false;

    switch (rec.cls) {
      case InstClass::CondBranch: {
        const bool predicted_taken = direction_.predict(rec.pc);
        if (predicted_taken != rec.taken) {
            mispredicted = true;
        } else if (rec.taken) {
            // Direction right, but the front end still needs the
            // target from the BTB to redirect without a bubble.
            if (btb_.predict(rec.pc) != rec.target)
                mispredicted = true;
        }
        direction_.update(rec.pc, rec.taken);
        if (rec.taken)
            btb_.update(rec.pc, rec.target);
        break;
      }
      case InstClass::UncondDirect: {
        if (btb_.predict(rec.pc) != rec.target)
            mispredicted = true;
        btb_.update(rec.pc, rec.target);
        break;
      }
      case InstClass::UncondIndirect: {
        if (indirect_.predict(rec.pc) != rec.target)
            mispredicted = true;
        indirect_.update(rec.pc, rec.target);
        break;
      }
      default:
        return 0; // not a branch
    }

    if (mispredicted) {
        ++mispredicts_;
        return config_.mispredictPenalty;
    }
    return 0;
}

void
BranchUnit::reset()
{
    direction_.reset();
    btb_.reset();
    indirect_.reset();
    branches_ = 0;
    mispredicts_ = 0;
}

double
BranchUnit::mispredictRate()const
{
    if (branches_ == 0)
        return 0.0;
    return static_cast<double>(mispredicts_) * 1000.0 /
           static_cast<double>(branches_);
}

} // namespace chirp
