/**
 * @file
 * Hashed perceptron conditional-branch direction predictor (Tarjan &
 * Skadron, TACO 2005) — the direction predictor Table II specifies.
 *
 * A set of weight tables is indexed by hashes of the branch PC
 * merged with segments of the global outcome history; the signed sum
 * of the selected weights gives the prediction, and training bumps
 * the weights on mispredictions or low-confidence predictions.
 */

#ifndef CHIRP_BRANCH_PERCEPTRON_HH
#define CHIRP_BRANCH_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace chirp
{

/** Hashed-perceptron configuration. */
struct PerceptronConfig
{
    unsigned numTables = 8;       //!< history-segment tables
    unsigned tableEntries = 1024; //!< weights per table (power of two)
    unsigned historySegBits = 8;  //!< global-history bits per table
    int weightMax = 127;          //!< weight saturation (int8)
};

/** The predictor. */
class HashedPerceptron
{
  public:
    explicit HashedPerceptron(const PerceptronConfig &config = {});

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Train with the resolved outcome and update the global history.
     * Call exactly once per conditional branch, after predict().
     */
    void update(Addr pc, bool taken);

    /** Clear weights and history. */
    void reset();

    /** Current global outcome history (tests). */
    std::uint64_t history() const { return history_; }

  private:
    int sumFor(Addr pc) const;
    std::size_t indexFor(Addr pc, unsigned table) const;

    PerceptronConfig config_;
    int theta_;
    std::vector<std::int8_t> weights_; //!< numTables x tableEntries
    std::vector<std::int8_t> bias_;    //!< per-PC bias table
    std::uint64_t history_ = 0;
};

} // namespace chirp

#endif // CHIRP_BRANCH_PERCEPTRON_HH
