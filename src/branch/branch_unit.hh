/**
 * @file
 * Branch prediction unit facade: perceptron direction predictor +
 * BTB + indirect predictor, with the Table II mispredict penalty.
 */

#ifndef CHIRP_BRANCH_BRANCH_UNIT_HH
#define CHIRP_BRANCH_BRANCH_UNIT_HH

#include "branch/btb.hh"
#include "branch/perceptron.hh"
#include "trace/trace_record.hh"

namespace chirp
{

/** Branch-unit configuration (Table II defaults). */
struct BranchUnitConfig
{
    PerceptronConfig perceptron;
    std::uint32_t btbEntries = 4096;
    std::uint32_t btbAssoc = 4;
    std::uint32_t indirectEntries = 512;
    Cycles mispredictPenalty = 20;
};

/** The front-end branch prediction unit. */
class BranchUnit
{
  public:
    explicit BranchUnit(const BranchUnitConfig &config = {});

    /**
     * Process one retired branch: predict, compare against the
     * trace's resolved outcome/target, train.
     * @return stall cycles (0 or the mispredict penalty).
     */
    Cycles onBranch(const TraceRecord &rec);

    /** Clear all predictor state. */
    void reset();

    std::uint64_t branches() const { return branches_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Mispredictions per 1000 branches (diagnostics). */
    double mispredictRate() const;

    const HashedPerceptron &direction() const { return direction_; }
    const Btb &btb() const { return btb_; }

  private:
    BranchUnitConfig config_;
    HashedPerceptron direction_;
    Btb btb_;
    IndirectPredictor indirect_;
    std::uint64_t branches_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace chirp

#endif // CHIRP_BRANCH_BRANCH_UNIT_HH
