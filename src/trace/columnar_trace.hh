/**
 * @file
 * Structure-of-arrays trace storage.
 *
 * A materialized trace used to be a vector of row-major TraceRecords;
 * every replay pass then streamed 26 bytes per instruction even when
 * it only needed the PC and class columns (the retire loops) or no
 * record data at all (pure event replays).  ColumnarTrace keeps the
 * same logical stream as four contiguous columns — pc[], effAddr[],
 * target[] plus a packed one-byte cls/taken lane — so hot loops touch
 * only the columns they read and the on-disk v2 format can be mapped
 * into memory and consumed in place.
 *
 * The columns are either owned (built from a generator or loaded from
 * a streaming reader) or borrowed from an externally managed region
 * (the mmap'd zero-copy disk tier); the borrowed form carries a
 * release callback that unmaps the region when the last SharedTrace
 * handle drops.
 */

#ifndef CHIRP_TRACE_COLUMNAR_TRACE_HH
#define CHIRP_TRACE_COLUMNAR_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "trace/trace_record.hh"

namespace chirp
{

/** An immutable instruction stream stored column-major. */
class ColumnarTrace
{
  public:
    //! Low bits of a meta byte: the InstClass (8 classes fit in 3).
    static constexpr std::uint8_t kClsMask = 0x07;
    //! Taken flag of a branch record.
    static constexpr std::uint8_t kTakenBit = 0x08;

    /** The packed cls/taken lane byte for one record. */
    static std::uint8_t
    packMeta(InstClass cls, bool taken)
    {
        return static_cast<std::uint8_t>(
            (static_cast<std::uint8_t>(cls) & kClsMask) |
            (taken ? kTakenBit : 0));
    }

    ColumnarTrace() = default;

    /** Transpose a row-major record stream into owned columns. */
    explicit ColumnarTrace(const std::vector<TraceRecord> &records);

    /**
     * Adopt already-columnar storage (the streaming disk loader
     * reads each v2 column straight into these vectors — no
     * row-major detour).  All four columns must be the same length.
     */
    ColumnarTrace(std::vector<Addr> pc, std::vector<Addr> eff_addr,
                  std::vector<Addr> target,
                  std::vector<std::uint8_t> meta);

    /**
     * Zero-copy view over externally owned columns (the mmap tier).
     * The pointers must stay valid for the trace's lifetime; @p
     * release runs exactly once at destruction (unmapping the file).
     */
    ColumnarTrace(const Addr *pc, const Addr *eff_addr,
                  const Addr *target, const std::uint8_t *meta,
                  std::size_t n, std::function<void()> release);

    ~ColumnarTrace();

    ColumnarTrace(const ColumnarTrace &) = delete;
    ColumnarTrace &operator=(const ColumnarTrace &) = delete;

    /** Reserve column capacity for @p n records. */
    void reserve(std::size_t n);

    /** Append one record (builder use; owned storage only). */
    void append(const TraceRecord &rec);

    /** Append @p n records as one column-wise scatter (builder use;
     *  owned storage only). */
    void appendBatch(const TraceRecord *recs, std::size_t n);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    // Column base pointers.
    const Addr *pc() const { return pc_; }
    const Addr *effAddr() const { return effAddr_; }
    const Addr *target() const { return target_; }
    const std::uint8_t *meta() const { return meta_; }

    InstClass
    cls(std::size_t i) const
    {
        return static_cast<InstClass>(meta_[i] & kClsMask);
    }

    bool
    taken(std::size_t i) const
    {
        return (meta_[i] & kTakenBit) != 0;
    }

    /** Gather one record back into row-major form. */
    TraceRecord
    record(std::size_t i) const
    {
        TraceRecord rec;
        rec.pc = pc_[i];
        rec.effAddr = effAddr_[i];
        rec.target = target_[i];
        rec.cls = cls(i);
        rec.taken = taken(i);
        return rec;
    }

    /** Gather records [pos, pos+n) into @p out. */
    void gather(std::size_t pos, std::size_t n, TraceRecord *out) const;

    /** The whole stream back in row-major form (tests, tools). */
    std::vector<TraceRecord> toRecords() const;

    /** Content equality (column-wise compare). */
    bool operator==(const ColumnarTrace &other) const;

  private:
    // Owned storage; empty for borrowed (mmap-backed) traces.  The
    // base pointers below are the single source of truth either way.
    std::vector<Addr> pcStore_;
    std::vector<Addr> effAddrStore_;
    std::vector<Addr> targetStore_;
    std::vector<std::uint8_t> metaStore_;

    const Addr *pc_ = nullptr;
    const Addr *effAddr_ = nullptr;
    const Addr *target_ = nullptr;
    const std::uint8_t *meta_ = nullptr;
    std::size_t size_ = 0;

    std::function<void()> release_;
};

/**
 * Content comparison against a row-major record vector, so tests can
 * diff a shared trace against materializeWorkload() directly.
 */
bool operator==(const ColumnarTrace &trace,
                const std::vector<TraceRecord> &records);
bool operator==(const std::vector<TraceRecord> &records,
                const ColumnarTrace &trace);

} // namespace chirp

#endif // CHIRP_TRACE_COLUMNAR_TRACE_HH
