/**
 * @file
 * Suite enumeration: the stand-in for the paper's 870-trace CVP-1
 * set.
 *
 * A suite is a deterministic list of WorkloadConfigs cycling through
 * the six categories with varying seeds and footprint scales.  The
 * default size keeps full-figure benches tractable on one core; the
 * environment variables below scale fidelity up to the paper's 870.
 *
 *   CHIRP_SUITE_SIZE  number of workloads          (default 96)
 *   CHIRP_TRACE_LEN   instructions per workload    (default 500000)
 *   CHIRP_SEED        master seed                  (default 42)
 *   CHIRP_CATEGORY    restrict to one category name (debugging aid)
 */

#ifndef CHIRP_TRACE_WORKLOAD_SUITE_HH
#define CHIRP_TRACE_WORKLOAD_SUITE_HH

#include <cstddef>
#include <vector>

#include "trace/synthetic/workload_factory.hh"

namespace chirp
{

/** Options controlling suite enumeration. */
struct SuiteOptions
{
    std::size_t size = 96;
    InstCount traceLength = 500'000;
    std::uint64_t baseSeed = 42;
    /** When >= 0, every workload uses this single category. */
    int onlyCategory = -1;
};

/** Read SuiteOptions from the CHIRP_* environment variables. */
SuiteOptions suiteOptionsFromEnv();

/** As suiteOptionsFromEnv, but with a different default size. */
SuiteOptions suiteOptionsFromEnv(std::size_t default_size);

/** Enumerate the suite for @p options. */
std::vector<WorkloadConfig> makeSuite(const SuiteOptions &options);

} // namespace chirp

#endif // CHIRP_TRACE_WORKLOAD_SUITE_HH
