/**
 * @file
 * The instruction record traces are made of.
 *
 * The fields mirror what the CVP-1 traces used by the paper provide
 * and what the CHiRP stack consumes: instruction address and class,
 * effective address for memory operations, and target/outcome for
 * branches.
 */

#ifndef CHIRP_TRACE_TRACE_RECORD_HH
#define CHIRP_TRACE_TRACE_RECORD_HH

#include <cstdint>

#include "util/types.hh"

namespace chirp
{

/**
 * Instruction classes, following the CVP-1 taxonomy.  The replacement
 * policies only distinguish loads/stores (data TLB traffic),
 * conditional branches and unconditional-indirect branches (history
 * updates); the rest exist so traces look like real instruction
 * streams and exercise the front-end model.
 */
enum class InstClass : std::uint8_t
{
    Alu = 0,             //!< integer ALU
    Load = 1,            //!< memory read
    Store = 2,           //!< memory write
    CondBranch = 3,      //!< conditional direct branch
    UncondDirect = 4,    //!< unconditional direct branch/call
    UncondIndirect = 5,  //!< indirect branch/call/return
    Fp = 6,              //!< floating point
    SlowAlu = 7,         //!< long-latency ALU (mul/div)

    NumClasses
};

/** Printable name of an instruction class. */
const char *instClassName(InstClass cls);

/** True for any branch class. */
constexpr bool
isBranch(InstClass cls)
{
    return cls == InstClass::CondBranch || cls == InstClass::UncondDirect ||
           cls == InstClass::UncondIndirect;
}

/** True for loads and stores. */
constexpr bool
isMemory(InstClass cls)
{
    return cls == InstClass::Load || cls == InstClass::Store;
}

/**
 * One retired instruction.  `effAddr` is meaningful for loads/stores,
 * `target`/`taken` for branches (non-taken conditional branches still
 * carry their would-be target).
 *
 * Packed: the struct is the unit of bulk buffers (replay batches,
 * wire frames), so the 6 bytes of tail padding a natural layout
 * would add are 23% of pure waste per record.  Members are only read
 * and written by value, so the unaligned 8-byte fields cost nothing
 * on the targets we build for; the static_assert below keeps the
 * 26-byte layout from silently regressing.
 */
#pragma pack(push, 1)
struct TraceRecord
{
    Addr pc = 0;
    Addr effAddr = 0;
    Addr target = 0;
    InstClass cls = InstClass::Alu;
    bool taken = false;

    bool operator==(const TraceRecord &) const = default;
};
#pragma pack(pop)

static_assert(sizeof(TraceRecord) == 26,
              "TraceRecord must stay at its packed 26-byte layout");

} // namespace chirp

#endif // CHIRP_TRACE_TRACE_RECORD_HH
