#include "trace/trace_store.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "trace/ingest/ingest.hh"
#include "trace/trace_file.hh"
#include "util/atomic_file.hh"
#include "util/fault_injection.hh"
#include "util/quarantine.hh"
#include "util/hashing.hh"
#include "util/logging.hh"

namespace chirp
{

TraceFormat
traceFormat()
{
    const char *value = std::getenv("CHIRP_TRACE_FORMAT");
    if (!value || !*value)
        return TraceFormat::Columnar;
    const std::string name(value);
    if (name == "legacy")
        return TraceFormat::Legacy;
    if (name == "columnar")
        return TraceFormat::Columnar;
    if (name == "mmap")
        return TraceFormat::Mmap;
    chirp_fatal("CHIRP_TRACE_FORMAT: unknown format '", name,
                "' (expected legacy, columnar or mmap)");
}

const char *
traceFormatName(TraceFormat format)
{
    switch (format) {
      case TraceFormat::Legacy:
        return "legacy";
      case TraceFormat::Columnar:
        return "columnar";
      case TraceFormat::Mmap:
        return "mmap";
    }
    return "?";
}

std::uint64_t
workloadTraceKey(const WorkloadConfig &config)
{
    std::uint64_t key =
        mix64(static_cast<std::uint64_t>(config.category) + 1);
    key = hashCombine(key, config.seed);
    key = hashCombine(key, config.length);
    std::uint64_t scale_bits = 0;
    static_assert(sizeof(scale_bits) == sizeof(config.scale));
    std::memcpy(&scale_bits, &config.scale, sizeof(scale_bits));
    key = hashCombine(key, scale_bits);
    if (!config.tracePath.empty()) {
        // External workloads: the file decides the stream, so two
        // paths must never share a materialization.
        std::uint64_t path_hash = 0xcbf29ce484222325ull; // FNV-1a
        for (const char c : config.tracePath) {
            path_hash ^= static_cast<std::uint8_t>(c);
            path_hash *= 0x100000001b3ull;
        }
        key = hashCombine(key, mix64(path_hash));
    }
    return key;
}

std::vector<TraceRecord>
materializeWorkload(const WorkloadConfig &config)
{
    const auto program = buildWorkload(config);
    std::vector<TraceRecord> records;
    records.reserve(static_cast<std::size_t>(program->length()));
    TraceRecord rec;
    while (program->next(rec))
        records.push_back(rec);
    return records;
}

namespace
{

/**
 * Run the generator straight into owned columns through a small
 * row-major bounce buffer: the records never materialize as one big
 * array-of-structs, so the columnar tiers skip both that allocation
 * and the full-trace transpose afterwards.  The legacy tier keeps
 * the materializeWorkload() + transpose pipeline as reference.
 */
std::shared_ptr<ColumnarTrace>
materializeColumnar(const WorkloadConfig &config)
{
    const auto program = buildWorkload(config);
    auto trace = std::make_shared<ColumnarTrace>();
    trace->reserve(static_cast<std::size_t>(program->length()));
    TraceRecord buf[4096];
    std::size_t got = 0;
    while ((got = program->nextBatch(buf, 4096)) > 0)
        trace->appendBatch(buf, got);
    return trace;
}

/** Materialize on the tier the active trace format selects. */
std::shared_ptr<ColumnarTrace>
materializeForFormat(const WorkloadConfig &config)
{
    if (traceFormat() == TraceFormat::Legacy)
        return std::make_shared<ColumnarTrace>(
            materializeWorkload(config));
    return materializeColumnar(config);
}

} // namespace

TraceStore::TraceStore()
{
    if (const char *env = std::getenv("CHIRP_TRACE_CACHE"); env && *env)
        cacheDir_ = env;
}

TraceStore::TraceStore(std::string cache_dir)
    : cacheDir_(std::move(cache_dir))
{
}

std::string
TraceStore::cachePath(const WorkloadConfig &config) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "chirp-%016llx.chtr",
                  static_cast<unsigned long long>(
                      workloadTraceKey(config)));
    return cacheDir_ + "/" + name;
}

SharedTrace
TraceStore::get(const WorkloadConfig &config)
{
    const std::uint64_t key = workloadTraceKey(config);
    std::promise<SharedTrace> promise;
    std::shared_future<SharedTrace> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (!owner)
        return future.get();
    try {
        SharedTrace trace = load(config);
        promise.set_value(trace);
        return trace;
    } catch (...) {
        // Unpublish the failed entry so a later get() can retry, then
        // wake any waiters with the failure.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

SharedTrace
TraceStore::load(const WorkloadConfig &config)
{
    if (!config.tracePath.empty()) {
        // External workload: the trace file on disk is already the
        // durable tier, so the cache directory is never consulted.
        // ingestTraceFile throws IngestError on hostile input; get()
        // propagates it and the per-job guard fails just that job.
        IngestResult result = ingestTraceFile(config.tracePath);
        ingested_.fetch_add(1);
        return std::move(result.trace);
    }
    if (!cacheDir_.empty()) {
        const std::string path = cachePath(config);
        if (SharedTrace trace = loadFromDisk(config, path))
            return trace;
        auto trace = materializeForFormat(config);
        generated_.fetch_add(1);
        saveToDisk(*trace, path);
        return trace;
    }
    auto trace = materializeForFormat(config);
    generated_.fetch_add(1);
    return trace;
}

SharedTrace
TraceStore::loadFromDisk(const WorkloadConfig &config,
                         const std::string &path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::exists(path, ec))
        return nullptr;
    std::string reason;
    if (!TraceFileSource::probe(path, &reason)) {
        quarantine(path, reason);
        return nullptr;
    }
    if (traceFormat() == TraceFormat::Mmap) {
        // Zero-copy tier: map the columns read-only and replay them
        // in place; every process mapping this file shares one
        // physical copy through the page cache.  Checksums are
        // verified through the mapping before the trace is trusted,
        // so corruption quarantines exactly as in the streaming tier.
        if (auto mapped = mapTraceFile(path, &reason)) {
            if (mapped->size() == config.length) {
                diskLoads_.fetch_add(1);
                mapped_.fetch_add(1);
                return mapped;
            }
            reason = DecodeError{DecodeErrorKind::CountMismatch, 8,
                                 detail::concat("record count ",
                                                mapped->size(),
                                                " != expected ",
                                                config.length)}
                         .format();
        }
        quarantine(path, reason);
        return nullptr;
    }
    // Streaming tier: one bulk pass reads each column straight into
    // its owned vector, folding the checksums over the same bytes
    // (the old loader verified in one pass and then re-read the file
    // record-at-a-time, which made a warm cache slower than
    // regenerating).
    if (auto trace = readTraceFile(path, &reason)) {
        if (trace->size() == config.length) {
            diskLoads_.fetch_add(1);
            return trace;
        }
        // Stale rather than corrupt (a key collision across
        // different lengths), but quarantining is still the right
        // recovery: keep the evidence, regenerate the trace.
        reason = DecodeError{DecodeErrorKind::CountMismatch, 8,
                             detail::concat("record count ",
                                            trace->size(),
                                            " != expected ",
                                            config.length)}
                     .format();
    }
    quarantine(path, reason);
    return nullptr;
}

void
TraceStore::quarantine(const std::string &path, const std::string &reason)
{
    namespace fs = std::filesystem;
    const std::string target = path + ".corrupt";
    std::error_code ec;
    fs::remove(target, ec);
    fs::rename(path, target, ec);
    if (ec) {
        // Renaming failed (e.g. read-only cache dir); removing keeps
        // the next run from tripping over the same bad file.
        fs::remove(path, ec);
    }
    chirp_warn("trace cache: quarantined '", path, "' -> '", target,
               "' (", reason, "); regenerating");
    noteQuarantined(target, reason);
    rejected_.fetch_add(1);
    quarantined_.fetch_add(1);
}

void
TraceStore::saveToDisk(const ColumnarTrace &trace,
                       const std::string &path) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(cacheDir_, ec);
    if (ec) {
        chirp_warn("trace cache: cannot create '", cacheDir_,
                  "', caching disabled for this trace");
        return;
    }
    // Write to a private temp name and rename so concurrent processes
    // only ever observe complete files.
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long long>(
            reinterpret_cast<std::uintptr_t>(this)));
    if (!TraceFileWriter::writeFile(tmp, trace)) {
        fs::remove(tmp, ec);
        chirp_warn("trace cache: write to '", tmp,
                   "' failed, caching disabled for this trace");
        return;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        chirp_warn("trace cache: cannot publish '", path, "'");
        return;
    }
    fsyncParentDir(path);
    // Give the fault harness a window to corrupt the freshly
    // published file, exercising the quarantine path end to end.
    FaultInjector::instance().onCachePublish(path);
}

void
TraceStore::drop(const WorkloadConfig &config)
{
    const std::uint64_t key = workloadTraceKey(config);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(key);
}

std::size_t
TraceStore::residentTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace chirp
