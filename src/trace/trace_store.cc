#include "trace/trace_store.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "trace/trace_file.hh"
#include "util/fault_injection.hh"
#include "util/hashing.hh"
#include "util/logging.hh"

namespace chirp
{

std::uint64_t
workloadTraceKey(const WorkloadConfig &config)
{
    std::uint64_t key =
        mix64(static_cast<std::uint64_t>(config.category) + 1);
    key = hashCombine(key, config.seed);
    key = hashCombine(key, config.length);
    std::uint64_t scale_bits = 0;
    static_assert(sizeof(scale_bits) == sizeof(config.scale));
    std::memcpy(&scale_bits, &config.scale, sizeof(scale_bits));
    return hashCombine(key, scale_bits);
}

std::vector<TraceRecord>
materializeWorkload(const WorkloadConfig &config)
{
    const auto program = buildWorkload(config);
    std::vector<TraceRecord> records;
    records.reserve(static_cast<std::size_t>(program->length()));
    TraceRecord rec;
    while (program->next(rec))
        records.push_back(rec);
    return records;
}

TraceStore::TraceStore()
{
    if (const char *env = std::getenv("CHIRP_TRACE_CACHE"); env && *env)
        cacheDir_ = env;
}

TraceStore::TraceStore(std::string cache_dir)
    : cacheDir_(std::move(cache_dir))
{
}

std::string
TraceStore::cachePath(const WorkloadConfig &config) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "chirp-%016llx.chtr",
                  static_cast<unsigned long long>(
                      workloadTraceKey(config)));
    return cacheDir_ + "/" + name;
}

SharedTrace
TraceStore::get(const WorkloadConfig &config)
{
    const std::uint64_t key = workloadTraceKey(config);
    std::promise<SharedTrace> promise;
    std::shared_future<SharedTrace> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            entries_.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (!owner)
        return future.get();
    try {
        SharedTrace trace = load(config);
        promise.set_value(trace);
        return trace;
    } catch (...) {
        // Unpublish the failed entry so a later get() can retry, then
        // wake any waiters with the failure.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

SharedTrace
TraceStore::load(const WorkloadConfig &config)
{
    if (!cacheDir_.empty()) {
        const std::string path = cachePath(config);
        if (SharedTrace trace = loadFromDisk(config, path))
            return trace;
        auto records = std::make_shared<std::vector<TraceRecord>>(
            materializeWorkload(config));
        generated_.fetch_add(1);
        saveToDisk(*records, path);
        return records;
    }
    auto records = std::make_shared<std::vector<TraceRecord>>(
        materializeWorkload(config));
    generated_.fetch_add(1);
    return records;
}

SharedTrace
TraceStore::loadFromDisk(const WorkloadConfig &config,
                         const std::string &path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::exists(path, ec))
        return nullptr;
    std::string reason;
    if (!TraceFileSource::probe(path, &reason)) {
        quarantine(path, reason);
        return nullptr;
    }
    // Quarantine only after the TraceFileSource has closed the file.
    {
        TraceFileSource source(path);
        if (source.count() != config.length) {
            // Stale rather than corrupt (a key collision across
            // different lengths), but quarantining is still the right
            // recovery: keep the evidence, regenerate the trace.
            reason = detail::concat("record count ", source.count(),
                                    " != expected ", config.length);
        } else if (!source.verifyChecksum()) {
            reason = "checksum mismatch";
        } else {
            auto records = std::make_shared<std::vector<TraceRecord>>(
                static_cast<std::size_t>(source.count()));
            const std::size_t got =
                source.nextBatch(records->data(), records->size());
            if (got == records->size()) {
                diskLoads_.fetch_add(1);
                return records;
            }
            reason = "short read";
        }
    }
    quarantine(path, reason);
    return nullptr;
}

void
TraceStore::quarantine(const std::string &path, const std::string &reason)
{
    namespace fs = std::filesystem;
    const std::string target = path + ".corrupt";
    std::error_code ec;
    fs::remove(target, ec);
    fs::rename(path, target, ec);
    if (ec) {
        // Renaming failed (e.g. read-only cache dir); removing keeps
        // the next run from tripping over the same bad file.
        fs::remove(path, ec);
    }
    chirp_warn("trace cache: quarantined '", path, "' -> '", target,
               "' (", reason, "); regenerating");
    rejected_.fetch_add(1);
    quarantined_.fetch_add(1);
}

void
TraceStore::saveToDisk(const std::vector<TraceRecord> &records,
                       const std::string &path) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(cacheDir_, ec);
    if (ec) {
        chirp_warn("trace cache: cannot create '", cacheDir_,
                  "', caching disabled for this trace");
        return;
    }
    // Write to a private temp name and rename so concurrent processes
    // only ever observe complete files.
    const std::string tmp =
        path + ".tmp." +
        std::to_string(static_cast<unsigned long long>(
            reinterpret_cast<std::uintptr_t>(this)));
    {
        TraceFileWriter writer(tmp);
        for (const TraceRecord &rec : records)
            writer.append(rec);
        if (!writer.close()) {
            fs::remove(tmp, ec);
            chirp_warn("trace cache: write to '", tmp,
                       "' failed, caching disabled for this trace");
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        chirp_warn("trace cache: cannot publish '", path, "'");
        return;
    }
    // Give the fault harness a window to corrupt the freshly
    // published file, exercising the quarantine path end to end.
    FaultInjector::instance().onCachePublish(path);
}

void
TraceStore::drop(const WorkloadConfig &config)
{
    const std::uint64_t key = workloadTraceKey(config);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(key);
}

std::size_t
TraceStore::residentTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace chirp
