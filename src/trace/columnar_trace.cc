#include "trace/columnar_trace.hh"

#include <cstring>

#include "util/logging.hh"

namespace chirp
{

ColumnarTrace::ColumnarTrace(const std::vector<TraceRecord> &records)
{
    appendBatch(records.data(), records.size());
}

ColumnarTrace::ColumnarTrace(std::vector<Addr> pc,
                             std::vector<Addr> eff_addr,
                             std::vector<Addr> target,
                             std::vector<std::uint8_t> meta)
    : pcStore_(std::move(pc)), effAddrStore_(std::move(eff_addr)),
      targetStore_(std::move(target)), metaStore_(std::move(meta))
{
    if (effAddrStore_.size() != pcStore_.size() ||
        targetStore_.size() != pcStore_.size() ||
        metaStore_.size() != pcStore_.size())
        chirp_fatal("columnar trace: adopted columns disagree on size");
    pc_ = pcStore_.data();
    effAddr_ = effAddrStore_.data();
    target_ = targetStore_.data();
    meta_ = metaStore_.data();
    size_ = pcStore_.size();
}

ColumnarTrace::ColumnarTrace(const Addr *pc, const Addr *eff_addr,
                             const Addr *target,
                             const std::uint8_t *meta, std::size_t n,
                             std::function<void()> release)
    : pc_(pc), effAddr_(eff_addr), target_(target), meta_(meta),
      size_(n), release_(std::move(release))
{
}

ColumnarTrace::~ColumnarTrace()
{
    if (release_)
        release_();
}

void
ColumnarTrace::reserve(std::size_t n)
{
    pcStore_.reserve(n);
    effAddrStore_.reserve(n);
    targetStore_.reserve(n);
    metaStore_.reserve(n);
}

void
ColumnarTrace::append(const TraceRecord &rec)
{
    appendBatch(&rec, 1);
}

void
ColumnarTrace::appendBatch(const TraceRecord *recs, std::size_t n)
{
    // Scatter column-wise with plain indexed stores: one resize per
    // column instead of a capacity check (and base-pointer refresh)
    // per record, which is what made the per-record append the
    // hottest function of a warm fig01 run.
    const std::size_t base = size_;
    pcStore_.resize(base + n);
    effAddrStore_.resize(base + n);
    targetStore_.resize(base + n);
    metaStore_.resize(base + n);
    Addr *pc = pcStore_.data() + base;
    Addr *ea = effAddrStore_.data() + base;
    Addr *tg = targetStore_.data() + base;
    std::uint8_t *meta = metaStore_.data() + base;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &rec = recs[i];
        pc[i] = rec.pc;
        ea[i] = rec.effAddr;
        tg[i] = rec.target;
        meta[i] = packMeta(rec.cls, rec.taken);
    }
    pc_ = pcStore_.data();
    effAddr_ = effAddrStore_.data();
    target_ = targetStore_.data();
    meta_ = metaStore_.data();
    size_ += n;
}

void
ColumnarTrace::gather(std::size_t pos, std::size_t n,
                      TraceRecord *out) const
{
    const Addr *pc = pc_ + pos;
    const Addr *ea = effAddr_ + pos;
    const Addr *tg = target_ + pos;
    const std::uint8_t *meta = meta_ + pos;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord &rec = out[i];
        rec.pc = pc[i];
        rec.effAddr = ea[i];
        rec.target = tg[i];
        const std::uint8_t m = meta[i];
        rec.cls = static_cast<InstClass>(m & kClsMask);
        rec.taken = (m & kTakenBit) != 0;
    }
}

std::vector<TraceRecord>
ColumnarTrace::toRecords() const
{
    std::vector<TraceRecord> records(size_);
    gather(0, size_, records.data());
    return records;
}

bool
ColumnarTrace::operator==(const ColumnarTrace &other) const
{
    if (size_ != other.size_)
        return false;
    if (size_ == 0)
        return true;
    return std::memcmp(pc_, other.pc_, size_ * sizeof(Addr)) == 0 &&
           std::memcmp(effAddr_, other.effAddr_,
                       size_ * sizeof(Addr)) == 0 &&
           std::memcmp(target_, other.target_,
                       size_ * sizeof(Addr)) == 0 &&
           std::memcmp(meta_, other.meta_, size_) == 0;
}

bool
operator==(const ColumnarTrace &trace,
           const std::vector<TraceRecord> &records)
{
    if (trace.size() != records.size())
        return false;
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (trace.record(i) != records[i])
            return false;
    }
    return true;
}

bool
operator==(const std::vector<TraceRecord> &records,
           const ColumnarTrace &trace)
{
    return trace == records;
}

} // namespace chirp
