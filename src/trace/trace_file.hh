/**
 * @file
 * Binary trace file format: writer, reading TraceSource, and the
 * zero-copy mmap loader.
 *
 * Layout v2 (little-endian, column-major):
 *   header : magic "CHTR", u32 version, u64 record count n
 *   columns: pc[n] u64, effAddr[n] u64, target[n] u64, meta[n] u8
 *            (the ColumnarTrace cls/taken lane), zero-padded to the
 *            next 8-byte boundary
 *   footer : four u64 checksums, one per column (four FNV-1a-style
 *            lanes striped over consecutive 8-byte words, folded
 *            with the length — see columnChecksum in the .cc)
 *
 * The column layout is exactly ColumnarTrace's in-memory layout, so a
 * cached trace can be mapped read-only (mapTraceFile) and replayed in
 * place: the coordinator and every --workers process on a host then
 * share one physical copy of each trace through the page cache.
 * Per-column checksums keep the quarantine story of the streaming
 * tier: any flipped byte in any column is caught before (mmap) or by
 * the end of (streaming) the first replay.
 *
 * v1 files (row-major 26-byte records, single checksum) are not read;
 * probe() refuses them as "unsupported version 1" and the trace store
 * quarantines and regenerates, which is the supported migration path.
 */

#ifndef CHIRP_TRACE_TRACE_FILE_HH
#define CHIRP_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "trace/columnar_trace.hh"
#include "trace/trace_source.hh"

namespace chirp
{

/** Current on-disk format version. */
constexpr std::uint32_t kTraceFormatVersion = 2;

/** Streaming writer for the binary trace format. */
class TraceFileWriter
{
  public:
    /** Create/truncate @p path; fatal on failure. */
    explicit TraceFileWriter(const std::string &path);

    /** Writes the file if close() was not called. */
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record (buffered; the column layout needs the full
     *  stream before any column can be laid down). */
    void append(const TraceRecord &rec);

    /** Records written so far. */
    std::uint64_t count() const { return buf_.size(); }

    /**
     * Write header, columns and footer, flush + fsync, and close the
     * file.  Returns false when any write failed along the way (disk
     * full, I/O error) -- callers publishing the file must not trust
     * it then.
     */
    bool close();

    /**
     * One-shot form: write @p trace to @p path with the same
     * durability guarantees, without buffering a second copy.
     * Returns false on any failure.
     */
    static bool writeFile(const std::string &path,
                          const ColumnarTrace &trace);

  private:
    std::string path_;
    std::FILE *file_;
    ColumnarTrace buf_;
    bool closed_ = false;
};

/**
 * TraceSource that replays a file written by TraceFileWriter.  The
 * whole header is validated on open; the per-column checksums are
 * validated when the trace has been fully consumed once, or eagerly
 * on demand via verifyChecksum().
 */
class TraceFileSource : public TraceSource
{
  public:
    /** Open @p path; fatal on missing/corrupt header. */
    explicit TraceFileSource(const std::string &path);
    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    /**
     * Non-fatal structural check: true when @p path exists, carries a
     * valid header, and its size matches the header's record count
     * (including padding and the checksum footer).  Lets callers such
     * as the trace cache reject candidate files without tripping the
     * fatal paths in the constructor.  On failure @p reason, when
     * non-null, receives a short explanation (bad magic, size
     * mismatch, ...) for the caller's quarantine log.
     */
    static bool probe(const std::string &path,
                      std::string *reason = nullptr);

    bool next(TraceRecord &rec) override;
    std::size_t nextBatch(TraceRecord *out, std::size_t n) override;
    void reset() override;
    InstCount expectedLength() const override { return count_; }

    /** Total records in the file. */
    std::uint64_t count() const { return count_; }

    /**
     * Eagerly validate the per-column checksum footer with one full
     * pass over the column payload (each column read and folded in
     * one shot, matching the whole-column definition of the lane-
     * striped checksum).  Returns false (without terminating, unlike
     * the lazy end-of-trace check) on mismatch or truncation; on
     * success later passes and the end-of-trace check are skipped.
     */
    bool verifyChecksum();

  private:
    void verifyFooter();

    std::FILE *file_;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    bool verified_ = false;
};

/**
 * Map @p path read-only (MAP_SHARED) and return a zero-copy
 * ColumnarTrace view over its columns, or nullptr with @p reason set
 * when the file is structurally invalid or fails its per-column
 * checksums.  The mapping is advised MADV_WILLNEED (the replay will
 * touch every column) and released when the last shared_ptr drops;
 * concurrent processes mapping the same cache file share one
 * physical copy through the page cache.
 */
std::shared_ptr<const ColumnarTrace>
mapTraceFile(const std::string &path, std::string *reason = nullptr);

/**
 * Read @p path into owned columns in one streaming pass (header,
 * bulk column freads, per-column checksum fold, footer compare), or
 * nullptr with @p reason set when the file is structurally invalid
 * or fails its checksums.  The streaming counterpart of
 * mapTraceFile for callers that want a self-contained copy.
 */
std::shared_ptr<const ColumnarTrace>
readTraceFile(const std::string &path, std::string *reason = nullptr);

} // namespace chirp

#endif // CHIRP_TRACE_TRACE_FILE_HH
