#include "trace/workload_suite.hh"

#include <cmath>
#include <string>
#include <cstdio>
#include <cstdlib>

#include "util/hashing.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace chirp
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        chirp_fatal("environment variable ", name, "='", value,
                    "' is not a number");
    return parsed;
}

} // namespace

SuiteOptions
suiteOptionsFromEnv()
{
    return suiteOptionsFromEnv(SuiteOptions{}.size);
}

SuiteOptions
suiteOptionsFromEnv(std::size_t default_size)
{
    SuiteOptions options;
    options.size = static_cast<std::size_t>(
        envU64("CHIRP_SUITE_SIZE", default_size));
    options.traceLength = envU64("CHIRP_TRACE_LEN", options.traceLength);
    options.baseSeed = envU64("CHIRP_SEED", options.baseSeed);
    if (options.size == 0)
        chirp_fatal("suite size must be nonzero");
    if (options.traceLength < 1000)
        chirp_fatal("trace length must be at least 1000 instructions");
    if (const char *only = std::getenv("CHIRP_CATEGORY");
        only && *only) {
        options.onlyCategory = -1;
        const auto ncat = static_cast<unsigned>(Category::NumCategories);
        for (unsigned c = 0; c < ncat; ++c) {
            if (std::string(categoryName(static_cast<Category>(c))) ==
                only) {
                options.onlyCategory = static_cast<int>(c);
            }
        }
        if (options.onlyCategory < 0)
            chirp_fatal("CHIRP_CATEGORY='", only,
                        "' is not a category name");
    }
    return options;
}

std::vector<WorkloadConfig>
makeSuite(const SuiteOptions &options)
{
    std::vector<WorkloadConfig> suite;
    suite.reserve(options.size);
    const auto ncat = static_cast<unsigned>(Category::NumCategories);
    for (std::size_t i = 0; i < options.size; ++i) {
        WorkloadConfig config;
        config.category = options.onlyCategory >= 0
                              ? static_cast<Category>(options.onlyCategory)
                              : static_cast<Category>(i % ncat);
        config.seed = mix64(options.baseSeed + i * 7919);
        config.length = options.traceLength;
        // Footprint scale spreads log-uniformly over ~[0.45, 1.8] so
        // the suite spans comfortable-fit to heavy-pressure workloads
        // the way a real trace set does.
        Rng scale_rng(mix64(config.seed ^ 0x5ca1e));
        config.scale = 0.45 * std::pow(2.0, 2.0 * scale_rng.uniform());
        char name[64];
        std::snprintf(name, sizeof(name), "%s_%03zu",
                      categoryName(config.category), i);
        config.name = name;
        suite.push_back(std::move(config));
    }
    return suite;
}

} // namespace chirp
