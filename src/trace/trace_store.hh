/**
 * @file
 * Materialized trace store: each workload's record stream is
 * generated exactly once and shared read-only across every policy
 * job that replays it.
 *
 * The paper's methodology replays fixed CVP-1 traces across all
 * policies; the synthetic generator stands in for those archives, so
 * a P-policy sweep used to re-run the full pattern machinery P times
 * per workload.  The store keys each materialized stream by the
 * stream-determining fields of its WorkloadConfig, hands it out as a
 * shared_ptr to an immutable vector, and optionally persists it in
 * the TraceFileWriter format under a cache directory
 * (CHIRP_TRACE_CACHE or --trace-cache DIR) so repeated bench runs
 * skip generation entirely.  Cached files are checksum-verified
 * eagerly before being trusted; a corrupt candidate is quarantined
 * (renamed to "<file>.corrupt" with a logged reason) and the trace is
 * regenerated, so one bad file can never wedge a suite.
 *
 * Memory: streams are stored column-major (ColumnarTrace), 25 B per
 * record, so a default 500k-instruction workload costs ~12.5 MB
 * resident and cached.  Under the mmap trace format the disk tier is
 * mapped read-only instead of copied, so concurrent processes share
 * one physical copy through the page cache.  Multi-policy suite runs
 * drop() each workload once every policy has replayed it, bounding
 * residency to the in-flight jobs rather than the whole suite.
 */

#ifndef CHIRP_TRACE_TRACE_STORE_HH
#define CHIRP_TRACE_TRACE_STORE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "trace/columnar_trace.hh"
#include "trace/synthetic/workload_factory.hh"
#include "trace/trace_source.hh"

namespace chirp
{

/** An immutable, fully materialized instruction stream. */
using SharedTrace = std::shared_ptr<const ColumnarTrace>;

/**
 * How traces are stored and replayed, selected by the
 * --trace-format flag / CHIRP_TRACE_FORMAT environment variable:
 *
 *  - Legacy: columnar storage but the reference one-record-at-a-time
 *    replay loops (the CI equality legs diff the other modes against
 *    this one).
 *  - Columnar (default): batched replay pipeline over the columns.
 *  - Mmap: Columnar, plus disk-cache loads map the file zero-copy
 *    instead of streaming it into private memory.
 */
enum class TraceFormat : std::uint8_t
{
    Legacy,
    Columnar,
    Mmap,
};

/**
 * The active format from CHIRP_TRACE_FORMAT ("legacy", "columnar",
 * "mmap"; unset/empty means Columnar).  Read fresh each call so the
 * equality tests can flip it between runs in one process; fatal on
 * unrecognized values.
 */
TraceFormat traceFormat();

/** Printable name of a trace format. */
const char *traceFormatName(TraceFormat format);

/**
 * Key over the fields of @p config that determine the emitted record
 * stream (category, seed, length, scale).  The display name is
 * deliberately excluded: renamed copies of the same workload share
 * one materialization.
 */
std::uint64_t workloadTraceKey(const WorkloadConfig &config);

/** Run the generator for @p config to completion into a vector. */
std::vector<TraceRecord> materializeWorkload(const WorkloadConfig &config);

/**
 * TraceSource replaying a shared materialized stream from flat
 * memory.  nextBatch() is a bounds-checked column gather, so the
 * simulator's batched hot loop consumes records with no generator
 * branching and one virtual call per chunk instead of per record.
 */
class MemoryTraceSource : public TraceSource
{
  public:
    explicit MemoryTraceSource(SharedTrace records,
                               std::string name = "memory")
        : records_(std::move(records))
    {
        name_ = std::move(name);
    }

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_->size())
            return false;
        rec = records_->record(pos_++);
        return true;
    }

    std::size_t
    nextBatch(TraceRecord *out, std::size_t n) override
    {
        const std::size_t got = std::min(n, records_->size() - pos_);
        records_->gather(pos_, got, out);
        pos_ += got;
        return got;
    }

    void reset() override { pos_ = 0; }

    InstCount expectedLength() const override { return records_->size(); }

    /** The shared stream this source replays. */
    const SharedTrace &records() const { return records_; }

  private:
    SharedTrace records_;
    std::size_t pos_ = 0;
};

/**
 * Thread-safe cache of materialized workload streams.
 *
 * get() returns the stream for a config, materializing it at most
 * once per store no matter how many threads ask concurrently
 * (latecomers block on the first caller's result).  drop() evicts
 * the store's reference once a suite run is finished with a
 * workload; outstanding SharedTrace handles keep the data alive.
 */
class TraceStore
{
  public:
    /** Cache directory from CHIRP_TRACE_CACHE ("" = memory only). */
    TraceStore();

    /** Explicit cache directory; empty disables the disk tier. */
    explicit TraceStore(std::string cache_dir);

    TraceStore(const TraceStore &) = delete;
    TraceStore &operator=(const TraceStore &) = delete;

    /** The stream for @p config, materializing/loading on first use. */
    SharedTrace get(const WorkloadConfig &config);

    /** Release the store's reference to @p config's stream. */
    void drop(const WorkloadConfig &config);

    /** Disk tier directory ("" when disabled). */
    const std::string &cacheDir() const { return cacheDir_; }

    /** On-disk location a config caches to (usable with any dir). */
    std::string cachePath(const WorkloadConfig &config) const;

    /** Streams currently held by the store. */
    std::size_t residentTraces() const;

    // Provenance counters (tests and bench diagnostics).
    /** Streams produced by running the generator. */
    std::uint64_t generated() const { return generated_.load(); }
    /** Streams loaded from a verified disk-cache file. */
    std::uint64_t diskLoads() const { return diskLoads_.load(); }
    /** Disk loads satisfied zero-copy via mapTraceFile (a subset of
     *  diskLoads; nonzero only under the mmap trace format). */
    std::uint64_t mappedLoads() const { return mapped_.load(); }
    /** Disk-cache candidates rejected as corrupt/stale. */
    std::uint64_t rejectedCaches() const { return rejected_.load(); }
    /** Rejected candidates renamed aside as "<file>.corrupt". */
    std::uint64_t quarantinedCaches() const { return quarantined_.load(); }
    /** Streams ingested from external ChampSim/CVP trace files. */
    std::uint64_t ingested() const { return ingested_.load(); }

  private:
    SharedTrace load(const WorkloadConfig &config);
    SharedTrace loadFromDisk(const WorkloadConfig &config,
                             const std::string &path);
    void saveToDisk(const ColumnarTrace &trace,
                    const std::string &path) const;
    void quarantine(const std::string &path, const std::string &reason);

    std::string cacheDir_;
    mutable std::mutex mutex_;
    std::map<std::uint64_t, std::shared_future<SharedTrace>> entries_;
    std::atomic<std::uint64_t> generated_{0};
    std::atomic<std::uint64_t> diskLoads_{0};
    std::atomic<std::uint64_t> mapped_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> quarantined_{0};
    std::atomic<std::uint64_t> ingested_{0};
};

} // namespace chirp

#endif // CHIRP_TRACE_TRACE_STORE_HH
