/**
 * @file
 * Synthetic code layout: assigns instruction addresses to workload
 * code.
 *
 * Workload generators do not emulate real binaries, but the PCs they
 * emit must behave like ones from a compiled program because CHiRP's
 * signature is built from PC bits: 4-byte instruction slots, 64-byte
 * aligned basic blocks, functions packed into a contiguous code
 * segment.  Under this layout PC bits [3:2] identify the slot
 * position inside a 16-byte group, which is exactly the PC slice the
 * paper's path history captures, and the ADALINE study (Fig 3) can
 * rediscover.
 */

#ifndef CHIRP_TRACE_SYNTHETIC_CODE_LAYOUT_HH
#define CHIRP_TRACE_SYNTHETIC_CODE_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace chirp
{

/** Bytes per instruction slot (fixed-width ISA assumption). */
constexpr Addr kInstBytes = 4;

/** Instruction slots per basic block (blocks are 64-byte aligned). */
constexpr unsigned kSlotsPerBlock = 16;

/** Byte stride between consecutive basic blocks. */
constexpr Addr kBlockBytes = kInstBytes * kSlotsPerBlock;

/** Descriptor of one synthetic function. */
struct FuncDesc
{
    Addr entry = 0;       //!< address of block 0, slot 0
    unsigned nblocks = 0; //!< number of basic blocks

    /** PC of a (block, slot) pair inside this function. */
    Addr
    pcOf(unsigned block, unsigned slot) const
    {
        return entry + static_cast<Addr>(block) * kBlockBytes +
               static_cast<Addr>(slot) * kInstBytes;
    }
};

/**
 * Allocator of function address ranges inside a synthetic code
 * segment.  Functions are laid out contiguously; `pad` pages of dead
 * space can be inserted between functions to inflate the code
 * footprint (web/server-style workloads with i-TLB pressure).
 */
class CodeLayout
{
  public:
    /** @param base start of the code segment. */
    explicit CodeLayout(Addr base = 0x400000);

    /**
     * Allocate a function of @p nblocks basic blocks.
     * @param pad_pages full pages of unused space to skip afterwards.
     */
    FuncDesc allocFunction(unsigned nblocks, unsigned pad_pages = 0);

    /** Number of distinct code pages spanned so far. */
    std::uint64_t codePages() const;

    /** First address past the allocated segment. */
    Addr top() const { return top_; }

    /** All functions allocated, in allocation order. */
    const std::vector<FuncDesc> &functions() const { return funcs_; }

  private:
    Addr base_;
    Addr top_;
    std::vector<FuncDesc> funcs_;
};

} // namespace chirp

#endif // CHIRP_TRACE_SYNTHETIC_CODE_LAYOUT_HH
