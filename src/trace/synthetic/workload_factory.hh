/**
 * @file
 * Workload factory: builds a Program for each of the paper's six
 * trace categories (SPEC-like, database, crypto, scientific, web,
 * big-data).
 *
 * Each category is a recipe of regions, shared functions and data
 * patterns whose parameters are drawn (deterministically from the
 * seed) out of category-specific ranges, so sweeping seeds yields a
 * diverse suite the way the CVP-1 set spans hundreds of workloads of
 * a few kinds.
 */

#ifndef CHIRP_TRACE_SYNTHETIC_WORKLOAD_FACTORY_HH
#define CHIRP_TRACE_SYNTHETIC_WORKLOAD_FACTORY_HH

#include <memory>
#include <string>

#include "trace/synthetic/program.hh"

namespace chirp
{

/** The paper's workload categories (§V). */
enum class Category
{
    Spec,       //!< loop nests with phase changes and mixed locality
    Database,   //!< shared B-tree walkers: hot index, cold leaves, log
    Crypto,     //!< compute-bound tiny footprint
    Scientific, //!< tiled array sweeps, FP heavy
    Web,        //!< large code footprint, indirect-call heavy
    BigData,    //!< dominant streaming with hot metadata

    NumCategories
};

/** Printable category name ("spec", "db", ...). */
const char *categoryName(Category category);

/** Parameters identifying one synthetic workload. */
struct WorkloadConfig
{
    Category category = Category::Spec;
    std::uint64_t seed = 1;
    InstCount length = 1'000'000;
    /** Multiplier on all data/code footprints (suite diversity). */
    double scale = 1.0;
    /** Workload name; derived from category+seed when empty. */
    std::string name;
    /**
     * Non-empty marks an external-trace workload: the stream comes
     * from ingesting this ChampSim/CVP file (see trace/ingest/), not
     * from the synthetic generator, and category/seed/length/scale
     * are ignored for stream content.
     */
    std::string tracePath;
};

/** Construct (and finalize) the Program for @p config. */
std::unique_ptr<Program> buildWorkload(const WorkloadConfig &config);

} // namespace chirp

#endif // CHIRP_TRACE_SYNTHETIC_WORKLOAD_FACTORY_HH
