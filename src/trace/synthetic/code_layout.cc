#include "trace/synthetic/code_layout.hh"

#include "util/logging.hh"

namespace chirp
{

CodeLayout::CodeLayout(Addr base)
    : base_(base), top_(base)
{
    if (base % kBlockBytes != 0)
        chirp_fatal("code segment base ", base,
                    " is not basic-block aligned");
}

FuncDesc
CodeLayout::allocFunction(unsigned nblocks, unsigned pad_pages)
{
    if (nblocks == 0)
        chirp_fatal("functions need at least one basic block");
    FuncDesc fn;
    fn.entry = top_;
    fn.nblocks = nblocks;
    top_ += static_cast<Addr>(nblocks) * kBlockBytes;
    top_ += static_cast<Addr>(pad_pages) * kPageSize;
    funcs_.push_back(fn);
    return fn;
}

std::uint64_t
CodeLayout::codePages() const
{
    if (top_ == base_)
        return 0;
    return pageNumber(top_ - 1) - pageNumber(base_) + 1;
}

} // namespace chirp
