#include "trace/synthetic/patterns.hh"

#include <numeric>

#include "util/logging.hh"

namespace chirp
{

StreamPattern::StreamPattern(Addr base, std::uint64_t npages,
                             unsigned accesses_per_page, Addr stride,
                             double revisit_fraction,
                             std::uint64_t revisit_lag)
    : base_(base), npages_(npages), accessesPerPage_(accesses_per_page),
      stride_(stride), revisitFraction_(revisit_fraction),
      revisitLag_(revisit_lag)
{
    if (npages == 0 || accesses_per_page == 0)
        chirp_fatal("StreamPattern needs nonzero pages and accesses");
}

Addr
StreamPattern::nextAddr(Rng &rng)
{
    if (revisitPending_) {
        // Lagged re-touch of an already-streamed page: far enough
        // back to have left the L1 TLB, recent enough to still be
        // L2-resident under a sane policy.
        revisitPending_ = false;
        const std::uint64_t back =
            (page_ + npages_ - (revisitLag_ % npages_)) % npages_;
        return base_ + back * kPageSize;
    }
    const Addr offset = (static_cast<Addr>(touch_) * stride_) &
                        kPageOffsetMask;
    const Addr addr = base_ + page_ * kPageSize + offset;
    if (++touch_ >= accessesPerPage_) {
        touch_ = 0;
        if (++page_ >= npages_)
            page_ = 0;
        if (page_ >= revisitLag_ && rng.chance(revisitFraction_))
            revisitPending_ = true;
    }
    return addr;
}

void
StreamPattern::reset()
{
    page_ = 0;
    touch_ = 0;
    revisitPending_ = false;
}

ZipfPattern::ZipfPattern(Addr base, std::uint64_t npages, double exponent,
                         std::uint64_t layout_seed, unsigned line_slots)
    : base_(base), zipf_(npages, exponent),
      lineSlots_(line_slots ? line_slots : 1)
{
    if (npages == 0)
        chirp_fatal("ZipfPattern needs nonzero pages");
    rankToPage_.resize(npages);
    std::iota(rankToPage_.begin(), rankToPage_.end(), 0u);
    Rng layout_rng(layout_seed);
    layout_rng.shuffle(rankToPage_);
}

Addr
ZipfPattern::nextAddr(Rng &rng)
{
    const std::size_t rank = zipf_(rng);
    const Addr page = rankToPage_[rank];
    // A few fixed 64B lines per page: hot structures are dense.
    const Addr offset = rng.below(lineSlots_) * 64;
    return base_ + page * kPageSize + offset;
}

std::uint64_t
ZipfPattern::footprintPages() const
{
    return rankToPage_.size();
}

UniformPattern::UniformPattern(Addr base, std::uint64_t npages,
                               unsigned line_slots)
    : base_(base), npages_(npages), lineSlots_(line_slots ? line_slots : 1)
{
    if (npages == 0)
        chirp_fatal("UniformPattern needs nonzero pages");
}

Addr
UniformPattern::nextAddr(Rng &rng)
{
    const Addr page = rng.below(npages_);
    const Addr offset = rng.below(lineSlots_) * 64;
    return base_ + page * kPageSize + offset;
}

ChasePattern::ChasePattern(Addr base, std::uint64_t npages,
                           unsigned derefs_per_page,
                           std::uint64_t layout_seed)
    : base_(base), derefsPerPage_(derefs_per_page ? derefs_per_page : 1)
{
    if (npages == 0)
        chirp_fatal("ChasePattern needs nonzero pages");
    // Build a single-cycle permutation (Sattolo's algorithm) so the
    // walk visits every page before repeating.
    std::vector<std::uint32_t> order(npages);
    std::iota(order.begin(), order.end(), 0u);
    Rng layout_rng(layout_seed);
    for (std::size_t i = npages - 1; i > 0; --i) {
        const std::size_t j = layout_rng.below(i);
        std::swap(order[i], order[j]);
    }
    nextPage_.resize(npages);
    for (std::size_t i = 0; i < npages; ++i)
        nextPage_[order[i]] = order[(i + 1) % npages];
    page_ = order[0];
}

Addr
ChasePattern::nextAddr(Rng &rng)
{
    const Addr offset = rng.below(kPageSize / 64) * 64;
    const Addr addr = base_ + static_cast<Addr>(page_) * kPageSize + offset;
    if (++touch_ >= derefsPerPage_) {
        touch_ = 0;
        page_ = nextPage_[page_];
    }
    return addr;
}

void
ChasePattern::reset()
{
    // Restart the walk from a fixed element of the cycle.
    page_ = 0;
    touch_ = 0;
}

std::uint64_t
ChasePattern::footprintPages() const
{
    return nextPage_.size();
}

TiledPattern::TiledPattern(Addr base, std::uint64_t npages,
                           std::uint64_t tile_pages,
                           std::uint64_t touches_per_tile)
    : base_(base), npages_(npages),
      tilePages_(tile_pages ? tile_pages : 1),
      touchesPerTile_(touches_per_tile ? touches_per_tile : 1)
{
    if (npages == 0)
        chirp_fatal("TiledPattern needs nonzero pages");
    if (tilePages_ > npages_)
        tilePages_ = npages_;
}

Addr
TiledPattern::nextAddr(Rng &rng)
{
    const Addr page = (tileStart_ + rng.below(tilePages_)) % npages_;
    const Addr offset = rng.below(kPageSize / 64) * 64;
    const Addr addr = base_ + page * kPageSize + offset;
    if (++touch_ >= touchesPerTile_) {
        touch_ = 0;
        tileStart_ = (tileStart_ + tilePages_) % npages_;
    }
    return addr;
}

void
TiledPattern::reset()
{
    tileStart_ = 0;
    touch_ = 0;
}

} // namespace chirp
