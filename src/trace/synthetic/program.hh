/**
 * @file
 * Synthetic program: the trace generator at the heart of the CVP-1
 * substitution.
 *
 * A Program is a set of *regions* (loop nests) scheduled by a Markov
 * chain, a set of *shared functions* callable from any region, and a
 * set of *data patterns* (see patterns.hh).  Executing the program
 * emits a realistic retired-instruction stream: ALU/FP filler, loads
 * and stores with effective addresses drawn from patterns,
 * conditional branches ending every basic block, and direct/indirect
 * calls into shared functions.
 *
 * The structure deliberately reproduces the phenomena the paper
 * builds CHiRP on:
 *
 *  - a shared function's load PCs are identical no matter which
 *    region calls it, while the *lifetime* of the pages it touches
 *    depends on the calling region (its argument pattern): the
 *    accessing PC alone cannot predict reuse, but the control-flow
 *    history (region branch PCs, indirect call-site PCs) can;
 *  - within a page, many consecutive accesses hit, so per-PC
 *    predictors see overwhelmingly "live" evidence (Observation 2);
 *  - streaming regions sweep footprints larger than the TLB, the
 *    scan case where LRU is weakest.
 */

#ifndef CHIRP_TRACE_SYNTHETIC_PROGRAM_HH
#define CHIRP_TRACE_SYNTHETIC_PROGRAM_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic/code_layout.hh"
#include "trace/synthetic/patterns.hh"
#include "trace/trace_source.hh"
#include "util/random.hh"

namespace chirp
{

/** Allocates contiguous page ranges inside a synthetic data segment. */
class DataLayout
{
  public:
    explicit DataLayout(Addr base = Addr{1} << 32)
        : top_(base), base_(base)
    {
    }

    /** Reserve @p npages pages (plus a guard page) and return the base. */
    Addr
    alloc(std::uint64_t npages)
    {
        const Addr result = top_;
        top_ += (npages + 1) * kPageSize;
        pages_ += npages;
        allocations_.push_back({result, npages});
        return result;
    }

    /** Total data pages allocated (excluding guard pages). */
    std::uint64_t pages() const { return pages_; }

    Addr base() const { return base_; }

    /** One reserved region. */
    struct Allocation
    {
        Addr base;
        std::uint64_t npages;
    };

    /** Every region reserved so far, in allocation order; lets
     *  mixed-page studies back chosen regions with superpages. */
    const std::vector<Allocation> &allocations() const
    {
        return allocations_;
    }

  private:
    Addr top_;
    Addr base_;
    std::uint64_t pages_ = 0;
    std::vector<Allocation> allocations_;
};

/**
 * The synthetic program.  Build once (addPattern / addSharedFunction /
 * addRegion / setTransition, then finalize), then consume as a
 * TraceSource.  Given the same construction parameters and seed, the
 * emitted stream is bit-identical across runs and platforms.
 */
class Program : public TraceSource
{
  public:
    /** Specification of a shared (callee) function. */
    struct SharedFnSpec
    {
        std::string name;
        unsigned alus = 4;  //!< ALU filler instructions in the body
        unsigned loads = 4; //!< load sites (pattern supplied per call)
        /** Fraction of memory sites emitted as stores. */
        double storeFraction = 0.0;
    };

    /** One call a region makes each iteration. */
    struct CallSpec
    {
        unsigned fnIdx = 0;      //!< index from addSharedFunction
        unsigned patternIdx = 0; //!< pattern the callee dereferences
        bool indirect = true;    //!< call through a pointer?
        /** Chance the call happens in a given iteration. */
        double probability = 1.0;
    };

    /** Specification of a region (one phase of the program). */
    struct RegionSpec
    {
        std::string name;
        /** Pattern index for each body load site, in emission order. */
        std::vector<unsigned> loadSites;
        unsigned alusPerBlock = 6;  //!< ALU filler density
        double fpFraction = 0.0;    //!< fraction of filler that is FP
        double storeFraction = 0.1; //!< memory sites emitted as stores
        /** Taken bias of block-ending conditional branches. */
        double branchBias = 0.85;
        std::vector<CallSpec> calls;
        unsigned minIters = 8;  //!< iterations per visit, lower bound
        unsigned maxIters = 32; //!< iterations per visit, upper bound
        /** Dead code pages after the region body (i-TLB pressure). */
        unsigned codePadPages = 0;
    };

    /**
     * @param name workload name (reported in all results)
     * @param seed master seed; derives every random decision
     * @param length total instructions to emit before end-of-trace
     */
    Program(std::string name, std::uint64_t seed, InstCount length);
    ~Program() override;

    /** Register a data pattern; returns its index. */
    unsigned addPattern(std::unique_ptr<DataPattern> pattern);

    /** Register a shared function; returns its index. */
    unsigned addSharedFunction(const SharedFnSpec &spec);

    /** Register a region; returns its index. */
    unsigned addRegion(const RegionSpec &spec);

    /**
     * Set the Markov transition weight from region @p from to region
     * @p to.  Rows with no explicit weights default to uniform over
     * the other regions (or a self-loop for single-region programs).
     */
    void setTransition(unsigned from, unsigned to, double weight);

    /** Lay out code, validate references; must be called before use. */
    void finalize();

    bool next(TraceRecord &rec) override;
    std::size_t nextBatch(TraceRecord *out, std::size_t n) override;
    void reset() override;
    InstCount expectedLength() const override { return length_; }

    /** The code layout (for footprint reporting). */
    const CodeLayout &layout() const { return layout_; }

    /** Data pages across all patterns. */
    std::uint64_t dataFootprintPages() const;

    /** The data segment allocator, for the factory to place patterns. */
    DataLayout &dataLayout() { return dataLayout_; }
    const DataLayout &dataLayout() const { return dataLayout_; }

    /** Total instructions this program will emit. */
    InstCount length() const { return length_; }

    /**
     * A pre-laid-out instruction site (public so layout helpers can
     * build site lists; not part of the stable API).
     */
    struct Site
    {
        Addr pc = 0;
        InstClass cls = InstClass::Alu;
        unsigned patternIdx = 0; //!< loads/stores; ~0u = use override
        double takenBias = 1.0;  //!< conditional branches
        Addr target = 0;         //!< branches/calls
        unsigned callee = 0;     //!< calls: shared function index
        double probability = 1.0; //!< calls: per-iteration chance
        /**
         * Conditional branches: outcome pattern period.  0 draws
         * from takenBias each time; k > 0 is not-taken once every k
         * executions (loop-like, learnable), with a small noise
         * probability on top.  Real branch outcomes are patterned,
         * which matters to outcome-history predictors (GHRP) and to
         * the perceptron.
         */
        unsigned period = 0;
        unsigned siteId = ~0u;   //!< per-site state index
        bool isCall = false;
        bool isReturn = false;
    };

  private:
    /** A built shared function: body sites with placeholder patterns. */
    struct BuiltFn
    {
        FuncDesc fn;
        std::vector<Site> body; //!< excludes the return
        Addr returnPc = 0;
    };

    /** A built region. */
    struct BuiltRegion
    {
        RegionSpec spec;
        FuncDesc fn;
        std::vector<Site> body;   //!< block bodies + block branches
        std::vector<Site> calls;  //!< one call site per CallSpec
        Addr loopBranchPc = 0;    //!< back-edge conditional branch
        std::vector<double> transitions; //!< outgoing weights
    };

    static constexpr unsigned kNoPattern = ~0u;

    void buildRegion(BuiltRegion &region, unsigned index);
    void buildSharedFn(BuiltFn &fn, const SharedFnSpec &spec);

    /** Emit one iteration of the current region into the queue. */
    void emitIteration(bool last_iteration);

    void emitSite(const Site &site, unsigned pattern_override);

    /** Refill the drained queue with at least one record. */
    void refill();

    /** Assign site ids to every conditional-branch site. */
    void assignSiteIds();
    unsigned chooseNextRegion();

    std::uint64_t seed_;
    InstCount length_;
    CodeLayout layout_;
    DataLayout dataLayout_;
    std::vector<std::unique_ptr<DataPattern>> patterns_;
    std::vector<SharedFnSpec> fnSpecs_;
    std::vector<BuiltFn> fns_;
    std::vector<BuiltRegion> regions_;
    bool finalized_ = false;

    // Execution state (reconstructed by reset()).
    Rng rng_;
    std::vector<std::uint32_t> siteCounters_; //!< periodic-branch state
    // Pending records: emission always lands in a fully drained
    // queue, so a flat vector plus a read cursor replaces the old
    // deque — refills reuse one allocation and bulk consumers copy
    // contiguous spans instead of popping records one at a time.
    std::vector<TraceRecord> queue_;
    std::size_t queueHead_ = 0;
    InstCount emitted_ = 0;
    unsigned currentRegion_ = 0;
    unsigned itersLeft_ = 0;
    std::uint64_t memSiteCounter_ = 0;
};

} // namespace chirp

#endif // CHIRP_TRACE_SYNTHETIC_PROGRAM_HH
