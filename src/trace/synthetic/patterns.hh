/**
 * @file
 * Data-access patterns for the synthetic workload engine.
 *
 * Each pattern owns a region of the data address space and yields
 * effective addresses.  The pattern mix is chosen so the TLB-reuse
 * phenomena the paper identifies all occur in the generated traces:
 *
 *  - StreamPattern: one-pass page sweeps whose entries are dead after
 *    the last within-page access (defeats LRU, rewards dead-entry
 *    prediction);
 *  - ZipfPattern: skewed hot sets with long-lived entries;
 *  - UniformPattern: low-locality scatter over a large footprint;
 *  - ChasePattern: pointer-chasing walk along a fixed random
 *    permutation of pages;
 *  - TiledPattern: scientific-style tile reuse, where a small window
 *    of a large array is hot until the tile advances (phase-shaped
 *    lifetimes).
 *
 * `transient()` hints whether entries touched by the pattern tend to
 * die quickly; generators use it to place load sites at
 * even/odd instruction slots, which is how PC bits 2..3 come to carry
 * reuse information in the synthetic code layout (Fig 3).
 */

#ifndef CHIRP_TRACE_SYNTHETIC_PATTERNS_HH
#define CHIRP_TRACE_SYNTHETIC_PATTERNS_HH

#include <memory>
#include <vector>

#include "util/random.hh"
#include "util/types.hh"

namespace chirp
{

/** Abstract generator of effective addresses. */
class DataPattern
{
  public:
    virtual ~DataPattern() = default;

    /** Next effective address. */
    virtual Addr nextAddr(Rng &rng) = 0;

    /** Rewind internal position state (not the layout). */
    virtual void reset() {}

    /** Pages owned by the pattern. */
    virtual std::uint64_t footprintPages() const = 0;

    /** True when the pattern's entries tend to die quickly. */
    virtual bool transient() const = 0;
};

/**
 * Sequential one-pass sweep: `accesses_per_page` touches at a fixed
 * byte stride within each page, then the next page; wraps around at
 * the end of the region and starts a new sweep.
 */
class StreamPattern : public DataPattern
{
  public:
    /**
     * @param revisit_fraction after finishing a page, probability of
     *        one extra touch to a page `revisit_lag` pages back.
     *        Real streaming code (merges, lagged readers) re-touches
     *        recently streamed pages, which gives stream entries L2
     *        hits — the Observation-2 behaviour that defeats naive
     *        never-hit heuristics.
     */
    StreamPattern(Addr base, std::uint64_t npages,
                  unsigned accesses_per_page, Addr stride = 64,
                  double revisit_fraction = 0.0,
                  std::uint64_t revisit_lag = 80);

    Addr nextAddr(Rng &rng) override;
    void reset() override;
    std::uint64_t footprintPages() const override { return npages_; }
    bool transient() const override { return true; }

  private:
    Addr base_;
    std::uint64_t npages_;
    unsigned accessesPerPage_;
    Addr stride_;
    double revisitFraction_;
    std::uint64_t revisitLag_;
    std::uint64_t page_ = 0;
    unsigned touch_ = 0;
    bool revisitPending_ = false;
};

/**
 * Zipf-skewed accesses over a shuffled page set: a few pages absorb
 * most touches (hot working set), the tail provides occasional cold
 * fills.
 */
class ZipfPattern : public DataPattern
{
  public:
    /**
     * @param exponent Zipf skew (1.0 is classic; larger = hotter head)
     * @param layout_seed fixes the rank->page shuffle
     * @param line_slots distinct 64B lines touched per page; small
     *        values give the within-page cache locality real hot
     *        structures have
     */
    ZipfPattern(Addr base, std::uint64_t npages, double exponent,
                std::uint64_t layout_seed, unsigned line_slots = 8);

    Addr nextAddr(Rng &rng) override;
    std::uint64_t footprintPages() const override;
    bool transient() const override { return false; }

  private:
    Addr base_;
    Rng::Zipf zipf_;
    std::vector<std::uint32_t> rankToPage_;
    unsigned lineSlots_;
};

/** Uniform random page + offset over the region. */
class UniformPattern : public DataPattern
{
  public:
    UniformPattern(Addr base, std::uint64_t npages,
                   unsigned line_slots = 4);

    Addr nextAddr(Rng &rng) override;
    std::uint64_t footprintPages() const override { return npages_; }
    bool transient() const override { return true; }

  private:
    Addr base_;
    std::uint64_t npages_;
    unsigned lineSlots_;
};

/**
 * Pointer-chasing walk: pages are linked in a fixed random
 * permutation cycle; each step follows the link, with a small number
 * of dereferences per page before moving on.
 */
class ChasePattern : public DataPattern
{
  public:
    ChasePattern(Addr base, std::uint64_t npages, unsigned derefs_per_page,
                 std::uint64_t layout_seed);

    Addr nextAddr(Rng &rng) override;
    void reset() override;
    std::uint64_t footprintPages() const override;
    bool transient() const override { return true; }

  private:
    Addr base_;
    std::vector<std::uint32_t> nextPage_;
    unsigned derefsPerPage_;
    std::uint64_t page_ = 0;
    unsigned touch_ = 0;
};

/**
 * Tiled sweep: accesses fall uniformly inside a window of
 * `tile_pages` pages; after `touches_per_tile` accesses the window
 * slides forward, wrapping at the region end.  Entries are hot while
 * their tile is active and dead afterwards.
 */
class TiledPattern : public DataPattern
{
  public:
    TiledPattern(Addr base, std::uint64_t npages, std::uint64_t tile_pages,
                 std::uint64_t touches_per_tile);

    Addr nextAddr(Rng &rng) override;
    void reset() override;
    std::uint64_t footprintPages() const override { return npages_; }
    bool transient() const override { return true; }

  private:
    Addr base_;
    std::uint64_t npages_;
    std::uint64_t tilePages_;
    std::uint64_t touchesPerTile_;
    std::uint64_t tileStart_ = 0;
    std::uint64_t touch_ = 0;
};

} // namespace chirp

#endif // CHIRP_TRACE_SYNTHETIC_PATTERNS_HH
