#include "trace/synthetic/workload_factory.hh"

#include <algorithm>

#include "util/hashing.hh"
#include "util/logging.hh"

namespace chirp
{

namespace
{

/**
 * Helper wrapping a Program under construction: parameter jitter,
 * scaled page counts, and pattern shorthands.  The *At variants build
 * pattern views over a shared page region, which is how the same
 * table gets both point accesses and scans (the context-dependent
 * lifetime scenario CHiRP exploits).
 */
class Recipe
{
  public:
    Recipe(Program &prog, const WorkloadConfig &config)
        : prog_(prog), scale_(config.scale),
          rng_(mix64(config.seed ^ 0xabcdef12345ull))
    {
    }

    /** Scale a page count and jitter it +/-30%, with a floor of 8. */
    std::uint64_t
    pages(double base)
    {
        const double jitter = 0.7 + 0.6 * rng_.uniform();
        const double value = base * scale_ * jitter;
        return std::max<std::uint64_t>(8, static_cast<std::uint64_t>(value));
    }

    /** Jittered integer in a range. */
    unsigned
    num(unsigned lo, unsigned hi)
    {
        return static_cast<unsigned>(rng_.range(lo, hi));
    }

    std::uint64_t seed() { return rng_.next(); }

    /** Reserve a raw page region for multiple pattern views. */
    std::pair<Addr, std::uint64_t>
    region(double base_pages)
    {
        const std::uint64_t n = pages(base_pages);
        return {prog_.dataLayout().alloc(n), n};
    }

    unsigned
    zipfAt(Addr base, std::uint64_t n, double exponent, unsigned slots = 8)
    {
        return prog_.addPattern(std::make_unique<ZipfPattern>(
            base, n, exponent, seed(), slots));
    }

    unsigned
    zipf(double base_pages, double exponent, unsigned slots = 8)
    {
        const auto [base, n] = region(base_pages);
        return zipfAt(base, n, exponent, slots);
    }

    unsigned
    streamAt(Addr base, std::uint64_t n, unsigned touches_per_page,
             double revisit = 0.0)
    {
        return prog_.addPattern(std::make_unique<StreamPattern>(
            base, n, touches_per_page, 64, revisit));
    }

    unsigned
    stream(double base_pages, unsigned touches_per_page,
           double revisit = 0.0)
    {
        const auto [base, n] = region(base_pages);
        return streamAt(base, n, touches_per_page, revisit);
    }

    unsigned
    uniformAt(Addr base, std::uint64_t n, unsigned slots = 4)
    {
        return prog_.addPattern(
            std::make_unique<UniformPattern>(base, n, slots));
    }

    unsigned
    chase(double base_pages, unsigned derefs)
    {
        const auto [base, n] = region(base_pages);
        return prog_.addPattern(
            std::make_unique<ChasePattern>(base, n, derefs, seed()));
    }

    unsigned
    tiled(double base_pages, std::uint64_t tile, std::uint64_t touches)
    {
        const auto [base, n] = region(base_pages);
        return prog_.addPattern(std::make_unique<TiledPattern>(
            base, n,
            std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(tile * scale_)),
            touches));
    }

  private:
    Program &prog_;
    double scale_;
    Rng rng_;
};

/** Expand {pattern, count} groups into a flat load-site list. */
std::vector<unsigned>
sites(std::initializer_list<std::pair<unsigned, unsigned>> groups)
{
    std::vector<unsigned> out;
    for (const auto &[idx, n] : groups)
        for (unsigned i = 0; i < n; ++i)
            out.push_back(idx);
    return out;
}

void
buildSpec(Program &prog, Recipe &r)
{
    // Three lifetimes share one set of accessor PCs:
    //  - hot: small, always resident, hammers the L2 TLB with hits
    //    (the Observation-2 counter-saturation traffic);
    //  - warm: fits the TLB but must refill after every pollution
    //    burst under LRU — the avoidable misses;
    //  - sweep: bursts of dead pages wider than the TLB.
    const unsigned hot = r.zipf(200, 1.0);
    const unsigned warm = r.zipf(650, 0.85);
    const unsigned sweep = r.stream(2800, r.num(6, 9));
    const unsigned tiles = r.tiled(900, 40, 2500);
    const unsigned links = r.chase(160, r.num(20, 36));

    Program::SharedFnSpec util;
    util.name = "memutil";
    util.alus = 8;
    util.loads = 4;
    const unsigned fn = prog.addSharedFunction(util);

    Program::RegionSpec compute;
    compute.name = "compute";
    compute.loadSites = sites({{warm, 1}, {hot, 1}});
    compute.alusPerBlock = r.num(8, 12);
    compute.calls = {{fn, warm, true, 1.0}, {fn, hot, true, 1.0},
                     {fn, sweep, true, 0.15}};
    compute.minIters = 1000;
    compute.maxIters = 2000;
    const unsigned r0 = prog.addRegion(compute);

    // Pollution burst: the same helper PCs now mostly stream dead
    // pages; each visit sweeps well past the TLB's capacity, while
    // the hot set keeps feeding the same PCs live evidence.
    Program::RegionSpec sweeper;
    sweeper.name = "sweep";
    sweeper.loadSites = sites({{hot, 1}});
    sweeper.alusPerBlock = r.num(5, 8);
    sweeper.calls = {{fn, sweep, true, 1.0}, {fn, sweep, true, 1.0},
                     {fn, hot, true, 1.0}};
    sweeper.minIters = 600;
    sweeper.maxIters = 1200;
    const unsigned r1 = prog.addRegion(sweeper);

    Program::RegionSpec tiler;
    tiler.name = "tiles";
    tiler.loadSites = sites({{tiles, 2}});
    tiler.alusPerBlock = r.num(8, 12);
    tiler.fpFraction = 0.3;
    tiler.calls = {{fn, tiles, true, 1.0}, {fn, hot, true, 1.0}};
    tiler.minIters = 300;
    tiler.maxIters = 700;
    const unsigned r2 = prog.addRegion(tiler);

    Program::RegionSpec misc;
    misc.name = "misc";
    misc.loadSites = sites({{links, 1}, {warm, 1}});
    misc.alusPerBlock = r.num(10, 14);
    misc.calls = {{fn, warm, true, 1.0}, {fn, links, true, 0.5}};
    misc.minIters = 150;
    misc.maxIters = 350;
    const unsigned r3 = prog.addRegion(misc);

    // Phased behavior: the compute loop is the common "home" phase.
    prog.setTransition(r0, r1, 0.5);
    prog.setTransition(r0, r2, 0.3);
    prog.setTransition(r0, r3, 0.2);
    prog.setTransition(r1, r0, 0.8);
    prog.setTransition(r1, r2, 0.2);
    prog.setTransition(r2, r0, 0.7);
    prog.setTransition(r2, r3, 0.3);
    prog.setTransition(r3, r0, 1.0);
}

void
buildDatabase(Program &prog, Recipe &r)
{
    // One table region, two views: point lookups see its pages as
    // cold singles, scans stream over the very same pages.
    const auto [table_base, table_pages] = r.region(5000);
    const unsigned leaves_point = r.uniformAt(table_base, table_pages);
    const unsigned leaves_scan =
        r.streamAt(table_base, table_pages, r.num(5, 9), 0.15);

    const unsigned index = r.zipf(700, 0.9);
    const unsigned log = r.stream(1000, r.num(8, 14));
    // Hot connection/session state: always resident, hammers the
    // shared accessors with live evidence in every phase.
    const unsigned scratch = r.zipf(200, 1.0);

    Program::SharedFnSpec walker;
    walker.name = "btree_walk";
    walker.alus = 8;
    walker.loads = 4;
    const unsigned walk_fn = prog.addSharedFunction(walker);

    Program::SharedFnSpec leaf_read;
    leaf_read.name = "leaf_read";
    leaf_read.alus = 6;
    leaf_read.loads = 2;
    const unsigned leaf_fn = prog.addSharedFunction(leaf_read);

    Program::SharedFnSpec copier;
    copier.name = "row_copy";
    copier.alus = 5;
    copier.loads = 3;
    copier.storeFraction = 0.4;
    const unsigned copy_fn = prog.addSharedFunction(copier);

    // OLTP: hot index walks with occasional cold leaf touches.
    Program::RegionSpec oltp;
    oltp.name = "oltp";
    oltp.loadSites = sites({{scratch, 1}, {index, 1}});
    oltp.alusPerBlock = r.num(8, 12);
    oltp.calls = {{walk_fn, index, true, 1.0},
                  {leaf_fn, scratch, true, 1.0},
                  {leaf_fn, leaves_point, true, 0.3},
                  {walk_fn, leaves_scan, true, 0.35},
                  {copy_fn, scratch, true, 0.6}};
    oltp.minIters = 300;
    oltp.maxIters = 800;
    const unsigned r0 = prog.addRegion(oltp);

    // Table scan: the SAME walker/leaf-reader PCs stream the table —
    // identical callee code, completely different page lifetimes.
    Program::RegionSpec scan;
    scan.name = "scan";
    scan.loadSites = sites({{scratch, 1}});
    scan.alusPerBlock = r.num(4, 7);
    // Scans still consult the index root: the walker keeps receiving
    // live evidence while it streams dead leaves.
    scan.calls = {{walk_fn, leaves_scan, true, 1.0},
                  {leaf_fn, leaves_scan, true, 1.0},
                  {walk_fn, scratch, true, 1.0},
                  {leaf_fn, scratch, true, 1.0}};
    scan.minIters = 800;
    scan.maxIters = 2000;
    const unsigned r1 = prog.addRegion(scan);

    // Log writer: sequential append bursts.
    Program::RegionSpec logger;
    logger.name = "logger";
    logger.loadSites = sites({{scratch, 1}});
    logger.storeFraction = 0.5;
    logger.alusPerBlock = r.num(6, 9);
    logger.calls = {{copy_fn, log, true, 1.0},
                    {copy_fn, scratch, true, 1.0},
                    {walk_fn, scratch, true, 1.0}};
    logger.minIters = 150;
    logger.maxIters = 400;
    const unsigned r2 = prog.addRegion(logger);

    prog.setTransition(r0, r0, 0.5);
    prog.setTransition(r0, r1, 0.25);
    prog.setTransition(r0, r2, 0.25);
    prog.setTransition(r1, r0, 0.8);
    prog.setTransition(r1, r2, 0.2);
    prog.setTransition(r2, r0, 1.0);
}

void
buildCrypto(Program &prog, Recipe &r)
{
    const unsigned state = r.zipf(24, 0.8);
    const unsigned input = r.stream(64, r.num(96, 160));

    Program::RegionSpec rounds;
    rounds.name = "rounds";
    rounds.loadSites = sites({{state, 2}});
    rounds.alusPerBlock = r.num(12, 14);
    rounds.fpFraction = 0.05;
    rounds.branchBias = 0.97;
    rounds.minIters = 200;
    rounds.maxIters = 800;
    const unsigned r0 = prog.addRegion(rounds);

    Program::RegionSpec absorb;
    absorb.name = "absorb";
    absorb.loadSites = sites({{input, 1}, {state, 1}});
    absorb.alusPerBlock = r.num(8, 12);
    absorb.minIters = 20;
    absorb.maxIters = 60;
    const unsigned r1 = prog.addRegion(absorb);

    prog.setTransition(r0, r1, 1.0);
    prog.setTransition(r1, r0, 1.0);
}

void
buildScientific(Program &prog, Recipe &r)
{
    const unsigned grid = r.tiled(3200, 160, 6000);
    const unsigned rhs = r.stream(2600, r.num(7, 12));
    const unsigned coeffs = r.zipf(420, 0.85);
    const unsigned bounds = r.zipf(180, 1.0);

    Program::SharedFnSpec stencil;
    stencil.name = "stencil";
    stencil.alus = 10;
    stencil.loads = 5;
    stencil.storeFraction = 0.2;
    const unsigned fn = prog.addSharedFunction(stencil);

    Program::RegionSpec relax;
    relax.name = "relax";
    relax.loadSites = sites({{grid, 1}, {coeffs, 2}});
    relax.alusPerBlock = r.num(9, 13);
    relax.fpFraction = 0.5;
    relax.branchBias = 0.95;
    relax.calls = {{fn, grid, false, 1.0}, {fn, bounds, false, 1.0},
                   {fn, rhs, false, 0.25}};
    relax.minIters = 300;
    relax.maxIters = 800;
    const unsigned r0 = prog.addRegion(relax);

    // The residual sweep leaves grid tiles and coefficients dormant.
    Program::RegionSpec residual;
    residual.name = "residual";
    residual.loadSites = sites({{bounds, 1}});
    residual.alusPerBlock = r.num(7, 11);
    residual.fpFraction = 0.5;
    residual.branchBias = 0.95;
    residual.calls = {{fn, rhs, false, 1.0}, {fn, rhs, false, 1.0},
                      {fn, bounds, false, 1.0}};
    residual.minIters = 600;
    residual.maxIters = 1400;
    const unsigned r1 = prog.addRegion(residual);

    prog.setTransition(r0, r1, 1.0);
    prog.setTransition(r1, r0, 1.0);
}

void
buildWeb(Program &prog, Recipe &r)
{
    const unsigned session = r.zipf(520, 0.9);
    const unsigned heap = r.chase(640, r.num(8, 16));
    const unsigned bodies = r.stream(1600, r.num(6, 10));
    const unsigned cache = r.zipf(420, 0.9);
    const unsigned conns = r.zipf(190, 1.0);

    Program::SharedFnSpec render;
    render.name = "render";
    render.alus = 8;
    render.loads = 4;
    const unsigned render_fn = prog.addSharedFunction(render);

    Program::SharedFnSpec alloc;
    alloc.name = "alloc";
    alloc.alus = 6;
    alloc.loads = 3;
    alloc.storeFraction = 0.5;
    const unsigned alloc_fn = prog.addSharedFunction(alloc);

    // Many handler regions spread over many code pages: i-side
    // pressure is the category signature.  Streaming handlers leave
    // the session/cache sets dormant.
    const unsigned nhandlers = r.num(6, 10);
    for (unsigned h = 0; h < nhandlers; ++h) {
        Program::RegionSpec handler;
        handler.name = "handler" + std::to_string(h);
        const bool streaming = (h % 3) == 2;
        handler.loadSites = streaming ? sites({{conns, 1}})
                                      : sites({{session, 1}, {heap, 1},
                                               {cache, 1}});
        handler.alusPerBlock = r.num(8, 12);
        handler.codePadPages = r.num(2, 8);
        handler.branchBias = 0.78;
        if (streaming) {
            handler.calls = {{render_fn, bodies, true, 1.0},
                             {render_fn, bodies, true, 1.0},
                             {render_fn, conns, true, 1.0},
                             {alloc_fn, conns, true, 0.6}};
            handler.minIters = 400;
            handler.maxIters = 900;
        } else {
            handler.calls = {{render_fn, session, true, 1.0},
                             {render_fn, bodies, true, 0.3},
                             {alloc_fn, heap, true, 0.5},
                             {alloc_fn, conns, true, 0.5}};
            handler.minIters = 150;
            handler.maxIters = 400;
        }
        prog.addRegion(handler);
    }
    // Uniform dispatch between handlers (default transitions).
}

void
buildBigData(Program &prog, Recipe &r)
{
    const unsigned input = r.stream(9000, r.num(5, 8));
    const unsigned shuffle = r.stream(4500, r.num(6, 10), 0.2);
    const unsigned metadata = r.zipf(500, 0.9);
    const unsigned counters = r.zipf(190, 1.0);

    Program::SharedFnSpec digest;
    digest.name = "digest";
    digest.alus = 5;
    digest.loads = 3;
    const unsigned fn = prog.addSharedFunction(digest);

    // Map and shuffle leave the metadata set dormant; reduce brings
    // it back — the refills are what predictive replacement saves.
    Program::RegionSpec map_phase;
    map_phase.name = "map";
    map_phase.loadSites = sites({{counters, 1}});
    map_phase.alusPerBlock = r.num(4, 7);
    map_phase.calls = {{fn, input, true, 1.0}, {fn, input, true, 1.0},
                       {fn, counters, true, 1.0}};
    map_phase.minIters = 800;
    map_phase.maxIters = 2000;
    const unsigned r0 = prog.addRegion(map_phase);

    Program::RegionSpec shuffle_phase;
    shuffle_phase.name = "shuffle";
    shuffle_phase.loadSites = sites({{counters, 1}});
    shuffle_phase.storeFraction = 0.4;
    shuffle_phase.alusPerBlock = r.num(4, 7);
    shuffle_phase.calls = {{fn, shuffle, true, 1.0},
                           {fn, counters, true, 1.0}};
    shuffle_phase.minIters = 500;
    shuffle_phase.maxIters = 1200;
    const unsigned r1 = prog.addRegion(shuffle_phase);

    Program::RegionSpec reduce_phase;
    reduce_phase.name = "reduce";
    reduce_phase.loadSites = sites({{metadata, 2}});
    reduce_phase.alusPerBlock = r.num(6, 9);
    reduce_phase.calls = {{fn, metadata, true, 1.0},
                          {fn, counters, true, 1.0},
                          {fn, shuffle, true, 0.3}};
    reduce_phase.minIters = 300;
    reduce_phase.maxIters = 800;
    const unsigned r2 = prog.addRegion(reduce_phase);

    prog.setTransition(r0, r1, 1.0);
    prog.setTransition(r1, r2, 1.0);
    prog.setTransition(r2, r0, 1.0);
}

} // namespace

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::Spec:
        return "spec";
      case Category::Database:
        return "db";
      case Category::Crypto:
        return "crypto";
      case Category::Scientific:
        return "sci";
      case Category::Web:
        return "web";
      case Category::BigData:
        return "bigdata";
      default:
        return "?";
    }
}

std::unique_ptr<Program>
buildWorkload(const WorkloadConfig &config)
{
    if (!config.tracePath.empty()) {
        chirp_fatal("workload '", config.name, "' is external (",
                    config.tracePath,
                    "); its stream must come from TraceStore ingest, "
                    "not the synthetic generator");
    }
    std::string name = config.name;
    if (name.empty()) {
        name = std::string(categoryName(config.category)) + "_" +
               std::to_string(config.seed);
    }
    auto prog =
        std::make_unique<Program>(name, config.seed, config.length);
    Recipe recipe(*prog, config);
    switch (config.category) {
      case Category::Spec:
        buildSpec(*prog, recipe);
        break;
      case Category::Database:
        buildDatabase(*prog, recipe);
        break;
      case Category::Crypto:
        buildCrypto(*prog, recipe);
        break;
      case Category::Scientific:
        buildScientific(*prog, recipe);
        break;
      case Category::Web:
        buildWeb(*prog, recipe);
        break;
      case Category::BigData:
        buildBigData(*prog, recipe);
        break;
      default:
        chirp_fatal("unknown workload category");
    }
    prog->finalize();
    return prog;
}

} // namespace chirp
