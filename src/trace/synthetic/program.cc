#include "trace/synthetic/program.hh"

#include <algorithm>
#include <cassert>

#include "util/hashing.hh"
#include "util/logging.hh"

namespace chirp
{

namespace
{

/** Slots 0..14 hold body instructions; slot 15 the block branch. */
constexpr unsigned kBodySlots = kSlotsPerBlock - 1;

/**
 * Incremental packer of sites into (block, slot) coordinates with
 * automatic block-ending conditional branches.
 */
class BlockPacker
{
  public:
    BlockPacker(std::vector<Program::Site> &sites, double branch_bias,
                Rng &build_rng)
        : sites_(sites), branchBias_(branch_bias), buildRng_(build_rng)
    {
    }

    /** Relative PC (from function entry) of a (block, slot) pair. */
    static Addr
    relPc(unsigned block, unsigned slot)
    {
        return static_cast<Addr>(block) * kBlockBytes +
               static_cast<Addr>(slot) * kInstBytes;
    }

    /**
     * Append a site at the next slot; if @p parity is 0 or 1, ALU
     * filler is inserted until the slot index has that parity.
     */
    void
    place(Program::Site site, int parity = -1)
    {
        if (parity >= 0) {
            while (static_cast<int>(slot_ & 1) != parity)
                placeFiller();
        }
        site.pc = relPc(block_, slot_);
        sites_.push_back(site);
        advance();
    }

    /** Append one ALU/FP filler instruction. */
    void
    placeFiller(double fp_fraction = 0.0)
    {
        Program::Site filler;
        if (buildRng_.chance(fp_fraction))
            filler.cls = InstClass::Fp;
        else if (buildRng_.chance(0.05))
            filler.cls = InstClass::SlowAlu;
        else
            filler.cls = InstClass::Alu;
        filler.pc = relPc(block_, slot_);
        sites_.push_back(filler);
        advance();
    }

    /**
     * Close the current block if partially filled, then return the
     * total number of blocks used.  The final block's branch slot is
     * left free for the caller (loop back-edge or return).
     */
    unsigned
    finish()
    {
        return block_ + 1;
    }

    /** Relative PC of the current block's branch slot (slot 15). */
    Addr
    branchSlotPc() const
    {
        return relPc(block_, kSlotsPerBlock - 1);
    }

  private:
    /** Move to the next slot, ending blocks with a branch site. */
    void
    advance()
    {
        if (++slot_ < kBodySlots)
            return;
        // Block-ending conditional branch at slot 15; the taken
        // target skips one block ahead, giving each branch a
        // plausible forward target.
        Program::Site br;
        br.cls = InstClass::CondBranch;
        br.pc = relPc(block_, kSlotsPerBlock - 1);
        br.takenBias = branchBias_;
        // Most block branches follow a short loop-like pattern; the
        // rest stay data-dependent (biased coin).
        if (buildRng_.chance(0.7))
            br.period = 2 + static_cast<unsigned>(buildRng_.below(11));
        br.target = relPc(block_ + 2, 0);
        sites_.push_back(br);
        ++block_;
        slot_ = 0;
    }

    std::vector<Program::Site> &sites_;
    double branchBias_;
    Rng &buildRng_;
    unsigned block_ = 0;
    unsigned slot_ = 0;
};

} // namespace

Program::Program(std::string name, std::uint64_t seed, InstCount length)
    : seed_(seed), length_(length), rng_(mix64(seed))
{
    name_ = std::move(name);
    if (length == 0)
        chirp_fatal("program '", name_, "' has zero length");
}

Program::~Program() = default;

unsigned
Program::addPattern(std::unique_ptr<DataPattern> pattern)
{
    assert(!finalized_);
    patterns_.push_back(std::move(pattern));
    return static_cast<unsigned>(patterns_.size() - 1);
}

unsigned
Program::addSharedFunction(const SharedFnSpec &spec)
{
    assert(!finalized_);
    fnSpecs_.push_back(spec);
    return static_cast<unsigned>(fnSpecs_.size() - 1);
}

unsigned
Program::addRegion(const RegionSpec &spec)
{
    assert(!finalized_);
    BuiltRegion region;
    region.spec = spec;
    regions_.push_back(std::move(region));
    return static_cast<unsigned>(regions_.size() - 1);
}

void
Program::setTransition(unsigned from, unsigned to, double weight)
{
    assert(!finalized_);
    if (from >= regions_.size() || to >= regions_.size())
        chirp_fatal("transition references unknown region");
    auto &row = regions_[from].transitions;
    if (row.empty())
        row.assign(regions_.size(), 0.0);
    row[to] = weight;
}

void
Program::buildSharedFn(BuiltFn &built, const SharedFnSpec &spec)
{
    Rng build_rng(mix64(seed_ ^ (built.fn.entry + 0x5f)));
    BlockPacker packer(built.body, 0.9, build_rng);
    unsigned filler_left = spec.alus;
    const unsigned per_load =
        spec.loads ? std::max(1u, spec.alus / std::max(1u, spec.loads)) : 0;
    for (unsigned i = 0; i < spec.loads; ++i) {
        for (unsigned a = 0; a < per_load && filler_left; ++a, --filler_left)
            packer.placeFiller();
        Site load;
        load.cls = build_rng.chance(spec.storeFraction) ? InstClass::Store
                                                        : InstClass::Load;
        load.patternIdx = kNoPattern; // resolved by the call site
        packer.place(load);
    }
    while (filler_left--)
        packer.placeFiller();

    built.returnPc = packer.branchSlotPc();
    const unsigned nblocks = packer.finish();
    // Assign real addresses now that the size is known.
    built.fn = layout_.allocFunction(nblocks);
    for (auto &site : built.body) {
        site.pc += built.fn.entry;
        if (site.cls == InstClass::CondBranch)
            site.target += built.fn.entry;
    }
    built.returnPc += built.fn.entry;
}

void
Program::buildRegion(BuiltRegion &region, unsigned index)
{
    const RegionSpec &spec = region.spec;
    Rng build_rng(mix64(seed_ ^ (index + 0x17) ^
                        (region.spec.loadSites.size() << 8)));
    BlockPacker packer(region.body, spec.branchBias, build_rng);

    for (unsigned pattern_idx : spec.loadSites) {
        if (pattern_idx >= patterns_.size())
            chirp_fatal("region '", spec.name, "' references pattern ",
                        pattern_idx, " but only ", patterns_.size(),
                        " exist");
        for (unsigned a = 0; a < spec.alusPerBlock; ++a)
            packer.placeFiller(spec.fpFraction);
        Site mem;
        mem.cls = build_rng.chance(spec.storeFraction) ? InstClass::Store
                                                       : InstClass::Load;
        mem.patternIdx = pattern_idx;
        // Slot-parity convention: transient-pattern sites sit at even
        // slots, persistent ones at odd slots, so PC bit 2 carries
        // reuse information (the Fig 3 phenomenon).
        const int parity = patterns_[pattern_idx]->transient() ? 0 : 1;
        packer.place(mem, parity);
    }

    // Call sites occupy their own slots after the body.
    for (const CallSpec &call : spec.calls) {
        if (call.fnIdx >= fns_.size())
            chirp_fatal("region '", spec.name, "' calls unknown function ",
                        call.fnIdx);
        if (call.patternIdx >= patterns_.size())
            chirp_fatal("region '", spec.name,
                        "' passes unknown pattern ", call.patternIdx);
        Site site;
        site.cls = call.indirect ? InstClass::UncondIndirect
                                 : InstClass::UncondDirect;
        site.isCall = true;
        site.callee = call.fnIdx;
        site.patternIdx = call.patternIdx;
        site.target = fns_[call.fnIdx].fn.entry;
        site.probability = call.probability;
        packer.place(site);
    }

    region.loopBranchPc = packer.branchSlotPc();
    const unsigned nblocks = packer.finish();
    region.fn = layout_.allocFunction(nblocks, spec.codePadPages);
    for (auto &site : region.body) {
        site.pc += region.fn.entry;
        if (site.cls == InstClass::CondBranch && !site.isCall)
            site.target += region.fn.entry;
    }
    region.loopBranchPc += region.fn.entry;

    // The packer appended call sites into region.body; split them out
    // so emission can interleave callee bodies.
    std::vector<Site> body;
    for (const auto &site : region.body) {
        if (site.isCall)
            region.calls.push_back(site);
        else
            body.push_back(site);
    }
    region.body = std::move(body);
}

void
Program::finalize()
{
    if (finalized_)
        chirp_fatal("program '", name_, "' finalized twice");
    if (regions_.empty())
        chirp_fatal("program '", name_, "' has no regions");
    if (patterns_.empty())
        chirp_fatal("program '", name_, "' has no data patterns");

    fns_.resize(fnSpecs_.size());
    for (std::size_t i = 0; i < fnSpecs_.size(); ++i)
        buildSharedFn(fns_[i], fnSpecs_[i]);
    for (std::size_t i = 0; i < regions_.size(); ++i)
        buildRegion(regions_[i], static_cast<unsigned>(i));

    // Default transition rows: uniform over the *other* regions.
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        auto &row = regions_[i].transitions;
        if (row.empty()) {
            row.assign(regions_.size(), 1.0);
            if (regions_.size() > 1)
                row[i] = 0.0;
        }
        double sum = 0.0;
        for (double w : row)
            sum += w;
        if (sum <= 0.0)
            chirp_fatal("region '", regions_[i].spec.name,
                        "' has no outgoing transitions");
    }

    assignSiteIds();
    finalized_ = true;
    reset();
}

void
Program::assignSiteIds()
{
    unsigned next_id = 0;
    auto assign = [&](std::vector<Site> &sites) {
        for (auto &site : sites) {
            if (site.cls == InstClass::CondBranch && site.period > 0)
                site.siteId = next_id++;
        }
    };
    for (auto &fn : fns_)
        assign(fn.body);
    for (auto &region : regions_)
        assign(region.body);
    siteCounters_.assign(next_id, 0);
}

std::uint64_t
Program::dataFootprintPages() const
{
    std::uint64_t pages = 0;
    for (const auto &p : patterns_)
        pages += p->footprintPages();
    return pages;
}

unsigned
Program::chooseNextRegion()
{
    const auto &row = regions_[currentRegion_].transitions;
    double sum = 0.0;
    for (double w : row)
        sum += w;
    double draw = rng_.uniform() * sum;
    for (std::size_t i = 0; i < row.size(); ++i) {
        draw -= row[i];
        if (draw < 0.0)
            return static_cast<unsigned>(i);
    }
    return static_cast<unsigned>(row.size() - 1);
}

void
Program::emitSite(const Site &site, unsigned pattern_override)
{
    TraceRecord rec;
    rec.pc = site.pc;
    rec.cls = site.cls;
    if (isMemory(site.cls)) {
        const unsigned idx =
            site.patternIdx == kNoPattern ? pattern_override
                                          : site.patternIdx;
        assert(idx != kNoPattern && idx < patterns_.size());
        rec.effAddr = patterns_[idx]->nextAddr(rng_);
        ++memSiteCounter_;
    } else if (site.cls == InstClass::CondBranch) {
        if (site.period > 0) {
            const std::uint32_t phase = siteCounters_[site.siteId]++;
            rec.taken = (phase % site.period) != site.period - 1;
            if (rng_.chance(0.02))
                rec.taken = !rec.taken; // sporadic data dependence
        } else {
            rec.taken = rng_.chance(site.takenBias);
        }
        rec.target = site.target;
    }
    queue_.push_back(rec);
}

void
Program::emitIteration(bool last_iteration)
{
    const BuiltRegion &region = regions_[currentRegion_];
    for (const Site &site : region.body)
        emitSite(site, kNoPattern);

    for (const Site &call : region.calls) {
        if (call.probability < 1.0 && !rng_.chance(call.probability))
            continue;
        TraceRecord rec;
        rec.pc = call.pc;
        rec.cls = call.cls;
        rec.target = call.target;
        rec.taken = true;
        queue_.push_back(rec);

        const BuiltFn &fn = fns_[call.callee];
        for (const Site &site : fn.body)
            emitSite(site, call.patternIdx);

        TraceRecord ret;
        ret.pc = fn.returnPc;
        ret.cls = InstClass::UncondIndirect;
        ret.target = call.pc + kInstBytes;
        ret.taken = true;
        queue_.push_back(ret);
    }

    TraceRecord loop;
    loop.pc = region.loopBranchPc;
    loop.cls = InstClass::CondBranch;
    loop.taken = !last_iteration;
    loop.target = region.fn.entry;
    queue_.push_back(loop);
}

void
Program::refill()
{
    queue_.clear();
    queueHead_ = 0;
    while (queue_.empty()) {
        const bool last = itersLeft_ <= 1;
        emitIteration(last);
        if (last) {
            currentRegion_ = chooseNextRegion();
            const RegionSpec &spec = regions_[currentRegion_].spec;
            itersLeft_ = static_cast<unsigned>(
                rng_.range(spec.minIters, spec.maxIters));
        } else {
            --itersLeft_;
        }
    }
}

bool
Program::next(TraceRecord &rec)
{
    assert(finalized_);
    if (emitted_ >= length_)
        return false;
    if (queueHead_ >= queue_.size())
        refill();
    rec = queue_[queueHead_++];
    ++emitted_;
    return true;
}

std::size_t
Program::nextBatch(TraceRecord *out, std::size_t n)
{
    assert(finalized_);
    std::size_t total = 0;
    while (total < n && emitted_ < length_) {
        if (queueHead_ >= queue_.size())
            refill();
        const std::size_t take = std::min(
            {n - total, queue_.size() - queueHead_,
             static_cast<std::size_t>(length_ - emitted_)});
        std::copy_n(queue_.data() + queueHead_, take, out + total);
        queueHead_ += take;
        emitted_ += take;
        total += take;
    }
    return total;
}

void
Program::reset()
{
    rng_ = Rng(mix64(seed_));
    for (auto &p : patterns_)
        p->reset();
    queue_.clear();
    queueHead_ = 0;
    std::fill(siteCounters_.begin(), siteCounters_.end(), 0u);
    emitted_ = 0;
    memSiteCounter_ = 0;
    currentRegion_ = 0;
    if (!regions_.empty()) {
        const RegionSpec &spec = regions_[0].spec;
        itersLeft_ = static_cast<unsigned>(
            rng_.range(spec.minIters, spec.maxIters));
    }
}

} // namespace chirp
