/**
 * @file
 * The trace-source abstraction the simulator consumes.
 *
 * Sources are pull-based: the simulator calls next() until it returns
 * false.  Synthetic workloads, trace files and in-memory vectors all
 * implement this interface, so the whole stack is agnostic to where
 * instructions come from.
 */

#ifndef CHIRP_TRACE_TRACE_SOURCE_HH
#define CHIRP_TRACE_TRACE_SOURCE_HH

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_record.hh"

namespace chirp
{

/** Abstract producer of an instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction into @p rec.
     * @return false at end of trace.
     */
    virtual bool next(TraceRecord &rec) = 0;

    /**
     * Produce up to @p n instructions into @p out and return how many
     * were written.  A short count (anything below @p n, including 0)
     * means end of trace; callers may rely on that to avoid a final
     * empty probe.  The default implementation loops next(); sources
     * backed by flat memory override it so bulk consumers skip the
     * per-record virtual call.
     */
    virtual std::size_t
    nextBatch(TraceRecord *out, std::size_t n)
    {
        std::size_t got = 0;
        while (got < n && next(out[got]))
            ++got;
        return got;
    }

    /** Rewind to the beginning of the trace. */
    virtual void reset() = 0;

    /** Human-readable identifier (workload name or file path). */
    virtual const std::string &name() const { return name_; }

    /**
     * Total instructions this source will produce, when known
     * up-front (0 otherwise).  The simulator uses it to place the
     * warmup/measurement split at the midpoint per the paper's
     * methodology.
     */
    virtual InstCount expectedLength() const { return 0; }

  protected:
    std::string name_ = "trace";
};

/** A trace held in memory; used by tests and the trace tools. */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceRecord> records,
                          std::string name = "vector")
        : records_(std::move(records))
    {
        name_ = std::move(name);
    }

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= records_.size())
            return false;
        rec = records_[pos_++];
        return true;
    }

    std::size_t
    nextBatch(TraceRecord *out, std::size_t n) override
    {
        const std::size_t got = std::min(n, records_.size() - pos_);
        std::copy_n(records_.data() + pos_, got, out);
        pos_ += got;
        return got;
    }

    void reset() override { pos_ = 0; }

    InstCount expectedLength() const override { return records_.size(); }

    /** Direct access for inspection. */
    const std::vector<TraceRecord> &records() const { return records_; }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

/**
 * Wraps another source and stops after a fixed number of
 * instructions; implements the paper's "long traces are allowed to
 * run for 100 million instructions" cap.
 */
class CappedSource : public TraceSource
{
  public:
    CappedSource(TraceSource &inner, InstCount cap)
        : inner_(inner), cap_(cap)
    {
        name_ = inner.name();
    }

    bool
    next(TraceRecord &rec) override
    {
        if (count_ >= cap_)
            return false;
        if (!inner_.next(rec))
            return false;
        ++count_;
        return true;
    }

    std::size_t
    nextBatch(TraceRecord *out, std::size_t n) override
    {
        const std::size_t want = static_cast<std::size_t>(
            std::min<InstCount>(n, cap_ - count_));
        const std::size_t got = inner_.nextBatch(out, want);
        count_ += got;
        return got;
    }

    void
    reset() override
    {
        inner_.reset();
        count_ = 0;
    }

    InstCount
    expectedLength() const override
    {
        const InstCount inner_len = inner_.expectedLength();
        return inner_len == 0 ? cap_ : std::min(cap_, inner_len);
    }

  private:
    TraceSource &inner_;
    InstCount cap_;
    InstCount count_ = 0;
};

} // namespace chirp

#endif // CHIRP_TRACE_TRACE_SOURCE_HH
