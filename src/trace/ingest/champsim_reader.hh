/**
 * @file
 * Streaming reader for ChampSim's fixed 64-byte input_instr records.
 * See ingest.hh for the format description and the adversarial-input
 * contract; resync after a bad record is trivial here because every
 * record starts on a 64-byte boundary.
 */

#ifndef CHIRP_TRACE_INGEST_CHAMPSIM_READER_HH
#define CHIRP_TRACE_INGEST_CHAMPSIM_READER_HH

#include <cstdio>

#include "trace/ingest/ingest_util.hh"
#include "trace/trace_source.hh"

namespace chirp::ingest_detail
{

/** TraceSource over a ChampSim trace; takes ownership of @p file. */
class ChampSimReader final : public TraceSource
{
  public:
    /** Record size on disk. */
    static constexpr std::size_t kRecordBytes = 64;

    ChampSimReader(std::FILE *file, const std::string &name,
                   IngestContext &ctx);

    bool next(TraceRecord &rec) override;
    void reset() override;

    /**
     * Decode one 64-byte image into @p rec, or report why it cannot
     * be one.  Shared with the CVP resync scanner's cousin in spirit:
     * pure, no stream state.
     */
    static bool decode(const std::uint8_t *bytes, std::uint64_t offset,
                       TraceRecord &rec, DecodeError &err);

  private:
    ByteWindow window_;
    IngestContext &ctx_;
    QuarantineTracker quarantine_;
    bool done_ = false;
};

} // namespace chirp::ingest_detail

#endif // CHIRP_TRACE_INGEST_CHAMPSIM_READER_HH
