#include "trace/ingest/ingest.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <sys/stat.h>

#include "trace/ingest/champsim_reader.hh"
#include "trace/ingest/cvp_reader.hh"
#include "trace/ingest/ingest_util.hh"
#include "util/logging.hh"

namespace chirp
{
namespace
{

using ingest_detail::ChampSimReader;
using ingest_detail::CvpReader;
using ingest_detail::IngestContext;

thread_local const std::atomic<bool> *tlsIngestCancel = nullptr;

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        chirp_fatal(name, " must be a non-negative integer, got '",
                    value, "'");
    return parsed;
}

/**
 * Decide what format a stream holds without trusting anything beyond
 * the first bytes: the CVPT magic wins; otherwise a non-empty
 * 64-byte-multiple body is the only shape a ChampSim trace can have.
 */
ExternalTraceFormat
sniffFormat(std::FILE *file, std::uint64_t size, const std::string &name)
{
    std::uint8_t magic[4] = {};
    const std::size_t got = std::fread(magic, 1, sizeof(magic), file);
    std::fseek(file, 0, SEEK_SET);
    if (got == 4 && std::memcmp(magic, "CVPT", 4) == 0)
        return ExternalTraceFormat::Cvp;
    if (size > 0 && size % ChampSimReader::kRecordBytes == 0)
        return ExternalTraceFormat::ChampSim;
    throw IngestError(
        {DecodeErrorKind::UnknownFormat, 0,
         detail::concat("'", name, "': no CVPT magic and ", size,
                        " bytes is not a whole number of 64-byte "
                        "ChampSim records")});
}

/**
 * The shared core: wrap @p file (ownership passes to the reader) in
 * the format's defensive decoder, stream it through CappedSource into
 * owned columns, and enforce the resident-size budget as the columns
 * grow.
 */
IngestResult
ingestStream(std::FILE *file, std::uint64_t size, const std::string &name,
             const IngestLimits &limits, ExternalTraceFormat format)
{
    if (size == 0) {
        std::fclose(file);
        throw IngestError({DecodeErrorKind::TruncatedHeader, 0,
                           detail::concat("'", name, "': empty file")});
    }
    if (format == ExternalTraceFormat::Auto) {
        try {
            format = sniffFormat(file, size, name);
        } catch (...) {
            std::fclose(file);
            throw;
        }
    }

    IngestContext ctx;
    ctx.limits = limits;
    ctx.name = name;
    ctx.cancel =
        limits.cancel ? limits.cancel : ScopedIngestCancel::current();
    if (limits.maxWallMs != 0) {
        ctx.hasDeadline = true;
        ctx.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(limits.maxWallMs);
    }

    // The reader's ByteWindow member takes ownership of the FILE*
    // before any header validation runs, so a constructor throw
    // (truncated/bad CVP header) still closes the file during unwind.
    std::unique_ptr<TraceSource> reader;
    if (format == ExternalTraceFormat::ChampSim)
        reader = std::make_unique<ChampSimReader>(file, name, ctx);
    else
        reader = std::make_unique<CvpReader>(file, name, ctx);

    const InstCount cap = limits.maxRecords == 0
                              ? std::numeric_limits<InstCount>::max()
                              : limits.maxRecords;
    CappedSource capped(*reader, cap);

    auto trace = std::make_shared<ColumnarTrace>();
    const InstCount expected = capped.expectedLength();
    if (expected != 0) {
        // Never trust a declared count with our memory: the reserve
        // hint is clamped by what the input could physically hold
        // (the smallest CVP record is 11 bytes) and by the resident
        // budget, so a 16-byte file claiming 2^32 records cannot make
        // us pre-allocate gigabytes.
        std::uint64_t hint = std::min<std::uint64_t>(
            expected, size / 11 + 1);
        if (limits.maxResidentBytes != 0) {
            hint = std::min<std::uint64_t>(
                hint, limits.maxResidentBytes / 25);
        }
        trace->reserve(static_cast<std::size_t>(hint));
    }

    constexpr std::size_t kBatch = 4096;
    TraceRecord batch[kBatch];
    for (;;) {
        const std::size_t got = capped.nextBatch(batch, kBatch);
        if (got == 0)
            break;
        trace->appendBatch(batch, got);
        if (limits.maxResidentBytes != 0 &&
            trace->size() * 25ull > limits.maxResidentBytes) {
            throw IngestError(
                {DecodeErrorKind::BudgetExceeded, ctx.stats.bytesConsumed,
                 detail::concat("materialized trace exceeds ",
                                limits.maxResidentBytes,
                                "-byte resident budget at ",
                                trace->size(), " records")});
        }
        if (got < kBatch)
            break;
    }

    if (trace->empty()) {
        throw IngestError(
            {DecodeErrorKind::UnknownFormat, ctx.stats.bytesConsumed,
             detail::concat("'", name,
                            "': no decodable records in ",
                            ctx.stats.bytesConsumed, " bytes")});
    }

    IngestResult result;
    result.trace = std::move(trace);
    result.stats = ctx.stats;
    result.format = format;
    chirp_inform("ingest '", name, "': ", result.stats.records, " ",
                 externalTraceFormatName(format), " records from ",
                 result.stats.bytesConsumed, " bytes (",
                 result.stats.badRecords, " bad, ",
                 result.stats.quarantinedBytes, " quarantined in ",
                 result.stats.quarantinedRangeCount, " ranges)");
    return result;
}

} // namespace

const char *
externalTraceFormatName(ExternalTraceFormat format)
{
    switch (format) {
      case ExternalTraceFormat::Auto:
        return "auto";
      case ExternalTraceFormat::ChampSim:
        return "champsim";
      case ExternalTraceFormat::Cvp:
        return "cvp";
    }
    return "?";
}

ExternalTraceFormat
externalTraceFormatFromEnv()
{
    const char *value = std::getenv("CHIRP_TRACE_IN_FORMAT");
    if (!value || !*value || std::strcmp(value, "auto") == 0)
        return ExternalTraceFormat::Auto;
    if (std::strcmp(value, "champsim") == 0)
        return ExternalTraceFormat::ChampSim;
    if (std::strcmp(value, "cvp") == 0)
        return ExternalTraceFormat::Cvp;
    chirp_fatal("CHIRP_TRACE_IN_FORMAT must be auto, champsim or cvp, "
                "got '", value, "'");
}

IngestLimits
ingestLimitsFromEnv()
{
    IngestLimits limits;
    limits.maxRecords =
        envU64("CHIRP_INGEST_MAX_RECORDS", limits.maxRecords);
    limits.maxResidentBytes =
        envU64("CHIRP_INGEST_MAX_BYTES", limits.maxResidentBytes);
    limits.badRecordBudget =
        envU64("CHIRP_INGEST_BAD_BUDGET", limits.badRecordBudget);
    limits.maxWallMs = envU64("CHIRP_INGEST_TIMEOUT_MS", limits.maxWallMs);
    return limits;
}

IngestResult
ingestTraceFile(const std::string &path, const IngestLimits &limits,
                ExternalTraceFormat format)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        throw IngestError({DecodeErrorKind::Unreadable, 0,
                           detail::concat("'", path, "': ",
                                          std::strerror(errno))});
    }
    struct stat st = {};
    if (fstat(fileno(file), &st) != 0 || !S_ISREG(st.st_mode)) {
        std::fclose(file);
        throw IngestError(
            {DecodeErrorKind::Unreadable, 0,
             detail::concat("'", path, "': not a regular file")});
    }
    return ingestStream(file, static_cast<std::uint64_t>(st.st_size),
                        path, limits, format);
}

IngestResult
ingestTraceFile(const std::string &path)
{
    return ingestTraceFile(path, ingestLimitsFromEnv(),
                           externalTraceFormatFromEnv());
}

IngestResult
ingestTraceBytes(const void *data, std::size_t len,
                 const std::string &name, const IngestLimits &limits,
                 ExternalTraceFormat format)
{
    if (len == 0) {
        throw IngestError({DecodeErrorKind::TruncatedHeader, 0,
                           detail::concat("'", name, "': empty input")});
    }
    // fmemopen's buffer must outlive the stream, and the readers keep
    // the FILE* for their whole life: copy into an image owned here.
    std::vector<std::uint8_t> image(
        static_cast<const std::uint8_t *>(data),
        static_cast<const std::uint8_t *>(data) + len);
    std::FILE *file = fmemopen(image.data(), image.size(), "rb");
    if (!file) {
        throw IngestError({DecodeErrorKind::Unreadable, 0,
                           detail::concat("'", name, "': fmemopen: ",
                                          std::strerror(errno))});
    }
    return ingestStream(file, len, name, limits, format);
}

ScopedIngestCancel::ScopedIngestCancel(const std::atomic<bool> *token)
    : previous_(tlsIngestCancel)
{
    tlsIngestCancel = token;
}

ScopedIngestCancel::~ScopedIngestCancel()
{
    tlsIngestCancel = previous_;
}

const std::atomic<bool> *
ScopedIngestCancel::current()
{
    return tlsIngestCancel;
}

void
appendChampSimRecord(std::string &out, const TraceRecord &rec)
{
    std::uint8_t bytes[ChampSimReader::kRecordBytes] = {};
    std::memcpy(bytes + 0, &rec.pc, 8);
    bytes[8] = isBranch(rec.cls) ? 1 : 0;
    bytes[9] = (isBranch(rec.cls) && rec.taken) ? 1 : 0;
    if (rec.cls == InstClass::Store)
        std::memcpy(bytes + 16, &rec.effAddr, 8);
    if (rec.cls == InstClass::Load)
        std::memcpy(bytes + 32, &rec.effAddr, 8);
    out.append(reinterpret_cast<const char *>(bytes), sizeof(bytes));
}

TraceRecord
champSimCanonical(const TraceRecord &rec)
{
    TraceRecord out;
    out.pc = rec.pc;
    if (isBranch(rec.cls)) {
        // The format only records is_branch/branch_taken.
        out.cls = InstClass::CondBranch;
        out.taken = rec.taken;
    } else if (isMemory(rec.cls) && rec.effAddr != 0) {
        out.cls = rec.cls;
        out.effAddr = rec.effAddr;
    } else {
        // Fp/SlowAlu and zero-address memory ops all decode as Alu.
        out.cls = InstClass::Alu;
    }
    return out;
}

void
appendCvpHeader(std::string &out, std::uint64_t count)
{
    out.append("CVPT", 4);
    const std::uint32_t version = 1;
    out.append(reinterpret_cast<const char *>(&version),
               sizeof(version));
    out.append(reinterpret_cast<const char *>(&count), sizeof(count));
}

void
appendCvpRecord(std::string &out, const TraceRecord &rec)
{
    out.append(reinterpret_cast<const char *>(&rec.pc), 8);
    out.push_back(static_cast<char>(rec.cls));
    std::uint8_t flags = 0;
    if (isBranch(rec.cls) && rec.taken)
        flags |= 0x01;
    if (isMemory(rec.cls))
        flags |= 0x02;
    if (isBranch(rec.cls) && rec.target != 0)
        flags |= 0x04;
    out.push_back(static_cast<char>(flags));
    if (flags & 0x02) {
        out.append(reinterpret_cast<const char *>(&rec.effAddr), 8);
        out.push_back(8); // access size: one machine word
    }
    if (flags & 0x04)
        out.append(reinterpret_cast<const char *>(&rec.target), 8);
    // One source register derived from the pc, so corpus files
    // exercise the register-list decode path.
    out.push_back(1);
    out.push_back(static_cast<char>(rec.pc & 0x1f));
}

} // namespace chirp
