/**
 * @file
 * Streaming reader for the CVP-1-style variable-length container.
 * See ingest.hh for the format description.  Because records are
 * variable-length, resync after corruption is a byte-at-a-time scan
 * for the next position where two consecutive records decode cleanly
 * (or one decodes and ends exactly at EOF).
 */

#ifndef CHIRP_TRACE_INGEST_CVP_READER_HH
#define CHIRP_TRACE_INGEST_CVP_READER_HH

#include <cstdio>

#include "trace/ingest/ingest_util.hh"
#include "trace/trace_source.hh"

namespace chirp::ingest_detail
{

/**
 * TraceSource over a CVP trace; takes ownership of @p file.  The
 * constructor validates the container header and throws IngestError
 * on a short header, wrong magic, or unsupported version — a broken
 * header means there is no stream to salvage records from.
 */
class CvpReader final : public TraceSource
{
  public:
    static constexpr std::size_t kHeaderBytes = 16;
    /** Largest possible record: pc + cls + flags + mem + target +
     *  register list = 8+1+1+9+8+9. */
    static constexpr std::size_t kMaxRecordBytes = 36;

    CvpReader(std::FILE *file, const std::string &name,
              IngestContext &ctx);

    bool next(TraceRecord &rec) override;
    void reset() override;

    InstCount expectedLength() const override { return declared_; }

    /**
     * Try to decode one record from @p bytes (holding @p avail valid
     * bytes at input offset @p offset).  On success sets @p rec and
     * @p len (bytes consumed) and returns true.  On failure returns
     * false with @p err describing why; @p len is 0 when the bytes
     * ran out (need more input / truncated) and nonzero never implies
     * validity.
     */
    static bool decode(const std::uint8_t *bytes, std::size_t avail,
                       std::uint64_t offset, TraceRecord &rec,
                       std::size_t &len, DecodeError &err);

  private:
    bool resync(TraceRecord &rec);

    ByteWindow window_;
    IngestContext &ctx_;
    QuarantineTracker quarantine_;
    std::uint64_t declared_ = 0;
    bool done_ = false;
    bool countChecked_ = false;
};

} // namespace chirp::ingest_detail

#endif // CHIRP_TRACE_INGEST_CVP_READER_HH
