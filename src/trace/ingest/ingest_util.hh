/**
 * @file
 * Internal plumbing shared by the ingest readers: the buffered byte
 * window they peek records out of, the per-stream context carrying
 * budgets and counters, and the quarantine-range tracker that merges,
 * logs, and budget-charges corrupt regions.  Nothing here is part of
 * the public ingest API (see ingest.hh).
 */

#ifndef CHIRP_TRACE_INGEST_INGEST_UTIL_HH
#define CHIRP_TRACE_INGEST_INGEST_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "trace/ingest/ingest.hh"
#include "util/logging.hh"

namespace chirp::ingest_detail
{

/** Is @p addr 48-bit sign-extended, the shape every real x86-64 /
 *  AArch64 virtual address has?  Hostile files love impossible
 *  addresses; anything else is rejected as non-canonical. */
inline bool
canonicalAddr(std::uint64_t addr)
{
    const std::uint64_t top = addr >> 47;
    return top == 0 || top == 0x1ffff;
}

/**
 * Buffered forward window over a stdio stream.  Readers peek() up to
 * a few records' worth of bytes, decode out of the returned buffer
 * with bounds-checked memcpy, and consume() what they accepted; the
 * window refills behind the scenes and tracks the absolute input
 * offset for quarantine logs.  Owns the FILE*.
 */
class ByteWindow
{
  public:
    /** Most bytes one peek() may request. */
    static constexpr std::size_t kMaxPeek = 4096;

    explicit ByteWindow(std::FILE *file) : file_(file)
    {
        buf_.resize(kBufBytes);
    }

    ~ByteWindow()
    {
        if (file_)
            std::fclose(file_);
    }

    ByteWindow(const ByteWindow &) = delete;
    ByteWindow &operator=(const ByteWindow &) = delete;

    /**
     * Make up to @p want bytes (<= kMaxPeek) visible at the current
     * position; @p avail receives how many actually are.  A short
     * count means end of input.
     */
    const std::uint8_t *
    peek(std::size_t want, std::size_t &avail)
    {
        if (len_ - pos_ < want && !eof_)
            fill(want);
        avail = std::min(want, len_ - pos_);
        return buf_.data() + pos_;
    }

    /** Advance past @p n bytes previously made visible by peek(). */
    void consume(std::size_t n) { pos_ += n; }

    /** Absolute input offset of the current position. */
    std::uint64_t offset() const { return base_ + pos_; }

    /** Rewind to the start of the input. */
    void
    rewind()
    {
        std::fseek(file_, 0, SEEK_SET);
        base_ = 0;
        pos_ = 0;
        len_ = 0;
        eof_ = false;
    }

  private:
    static constexpr std::size_t kBufBytes = 1 << 16;

    void
    fill(std::size_t want)
    {
        // Slide the unconsumed tail to the front, then top up.
        if (pos_ > 0) {
            std::memmove(buf_.data(), buf_.data() + pos_, len_ - pos_);
            base_ += pos_;
            len_ -= pos_;
            pos_ = 0;
        }
        while (len_ < std::max(want, kBufBytes / 2) && !eof_) {
            const std::size_t got = std::fread(
                buf_.data() + len_, 1, buf_.size() - len_, file_);
            len_ += got;
            if (got == 0)
                eof_ = true;
        }
    }

    std::FILE *file_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;      //!< read cursor within buf_
    std::size_t len_ = 0;      //!< valid bytes in buf_
    std::uint64_t base_ = 0;   //!< input offset of buf_[0]
    bool eof_ = false;
};

/**
 * Everything one ingest shares across its reader and materialization
 * loop: the budgets, the counters, the effective cancel token, and
 * the wall-clock deadline.
 */
struct IngestContext
{
    IngestLimits limits;
    IngestStats stats;
    std::string name;
    const std::atomic<bool> *cancel = nullptr;
    bool hasDeadline = false;
    std::chrono::steady_clock::time_point deadline{};

    /**
     * Cancellation / deadline poll: cheap (one relaxed load) on most
     * calls, checking the clock only every 1024th so per-record use
     * costs nothing measurable.  Throws IngestError on abort.
     */
    void
    checkAbort(std::uint64_t offset)
    {
        if (cancel && cancel->load(std::memory_order_relaxed)) {
            throw IngestError({DecodeErrorKind::Cancelled, offset,
                               "cancel token raised (watchdog)"});
        }
        if (hasDeadline && (++tick_ & 1023u) == 0 &&
            std::chrono::steady_clock::now() > deadline) {
            throw IngestError(
                {DecodeErrorKind::Timeout, offset,
                 detail::concat(limits.maxWallMs, " ms budget")});
        }
    }

  private:
    std::uint32_t tick_ = 0;
};

/**
 * Merges consecutive corrupt regions into one logged byte range,
 * records them in the stream's stats, and charges the bad-record
 * budget — throwing IngestError(BudgetExceeded) once the input has
 * proved itself hostile (with the pending range flushed first so the
 * evidence is logged either way).
 */
class QuarantineTracker
{
  public:
    explicit QuarantineTracker(IngestContext &ctx) : ctx_(ctx) {}

    ~QuarantineTracker() { flush(); }

    /**
     * Mark [begin, end) corrupt with @p err as the representative
     * failure; adjacent ranges merge into one log line.
     */
    void
    openRange(std::uint64_t begin, std::uint64_t end,
              const DecodeError &err)
    {
        if (open_ && begin == end_) {
            end_ = end;
            return;
        }
        flush();
        open_ = true;
        begin_ = begin;
        end_ = end;
        first_ = err;
    }

    /** Grow the open range (resync scans extend byte by byte). */
    void extend(std::uint64_t end) { end_ = end; }

    /**
     * Charge @p n bad records against the budget; throws
     * IngestError(BudgetExceeded) past the limit.
     */
    void
    charge(std::uint64_t n, std::uint64_t offset,
           const DecodeError &err)
    {
        ctx_.stats.badRecords += n;
        if (ctx_.stats.badRecords <= ctx_.limits.badRecordBudget)
            return;
        flush();
        throw IngestError(
            {DecodeErrorKind::BudgetExceeded, offset,
             detail::concat("bad-record budget of ",
                            ctx_.limits.badRecordBudget,
                            " exhausted; last error: ", err.format())});
    }

    /** Log and account the pending range, if any. */
    void
    flush()
    {
        if (!open_)
            return;
        open_ = false;
        chirp_warn("ingest '", ctx_.name, "': quarantined bytes [",
                   begin_, ", ", end_, ") — ", first_.format());
        ctx_.stats.quarantinedBytes += end_ - begin_;
        if (++ctx_.stats.quarantinedRangeCount <=
            IngestStats::kMaxLoggedRanges)
            ctx_.stats.ranges.push_back({begin_, end_});
    }

  private:
    IngestContext &ctx_;
    bool open_ = false;
    std::uint64_t begin_ = 0;
    std::uint64_t end_ = 0;
    DecodeError first_;
};

} // namespace chirp::ingest_detail

#endif // CHIRP_TRACE_INGEST_INGEST_UTIL_HH
