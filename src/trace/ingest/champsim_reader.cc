#include "trace/ingest/champsim_reader.hh"

#include <cstring>

namespace chirp::ingest_detail
{
namespace
{

// Field offsets within the 64-byte input_instr image.
constexpr std::size_t kOffIp = 0;
constexpr std::size_t kOffIsBranch = 8;
constexpr std::size_t kOffTaken = 9;
constexpr std::size_t kOffDestRegs = 10; // u8[2]
constexpr std::size_t kOffSrcRegs = 12;  // u8[4]
constexpr std::size_t kOffDestMem = 16;  // u64[2]
constexpr std::size_t kOffSrcMem = 32;   // u64[4]

std::uint64_t
readU64(const std::uint8_t *bytes, std::size_t at)
{
    std::uint64_t v = 0;
    std::memcpy(&v, bytes + at, sizeof(v));
    return v; // build targets are little-endian, like the format
}

} // namespace

ChampSimReader::ChampSimReader(std::FILE *file, const std::string &name,
                               IngestContext &ctx)
    : window_(file), ctx_(ctx), quarantine_(ctx)
{
    name_ = name;
}

bool
ChampSimReader::decode(const std::uint8_t *bytes, std::uint64_t offset,
                       TraceRecord &rec, DecodeError &err)
{
    const std::uint64_t ip = readU64(bytes, kOffIp);
    const std::uint8_t isBranch = bytes[kOffIsBranch];
    const std::uint8_t taken = bytes[kOffTaken];

    if (isBranch > 1 || taken > 1 || (taken && !isBranch)) {
        err = {DecodeErrorKind::OutOfRangeFlags, offset,
               detail::concat("is_branch=", int(isBranch),
                              " branch_taken=", int(taken))};
        return false;
    }
    if (ip == 0 || !canonicalAddr(ip)) {
        err = {DecodeErrorKind::NonCanonicalPc, offset, ""};
        return false;
    }
    // Register ids in real ChampSim traces are x86 uop register
    // numbers; anything >= 0x80 cannot occur and marks garbage.
    for (std::size_t i = 0; i < 6; ++i) {
        const std::uint8_t reg = bytes[kOffDestRegs + i];
        if (reg >= 0x80) {
            err = {DecodeErrorKind::OutOfRangeRegister, offset,
                   detail::concat("register byte 0x", int(reg))};
            return false;
        }
    }
    std::uint64_t destMem = 0;
    std::uint64_t srcMem = 0;
    for (std::size_t i = 0; i < 2; ++i) {
        const std::uint64_t a = readU64(bytes, kOffDestMem + 8 * i);
        if (a != 0 && !canonicalAddr(a)) {
            err = {DecodeErrorKind::NonCanonicalAddress, offset,
                   "destination_memory"};
            return false;
        }
        if (destMem == 0)
            destMem = a;
    }
    for (std::size_t i = 0; i < 4; ++i) {
        const std::uint64_t a = readU64(bytes, kOffSrcMem + 8 * i);
        if (a != 0 && !canonicalAddr(a)) {
            err = {DecodeErrorKind::NonCanonicalAddress, offset,
                   "source_memory"};
            return false;
        }
        if (srcMem == 0)
            srcMem = a;
    }

    rec = TraceRecord{};
    rec.pc = ip;
    if (isBranch) {
        rec.cls = InstClass::CondBranch;
        rec.taken = taken != 0;
    } else if (srcMem != 0) {
        rec.cls = InstClass::Load;
        rec.effAddr = srcMem;
    } else if (destMem != 0) {
        rec.cls = InstClass::Store;
        rec.effAddr = destMem;
    } else {
        rec.cls = InstClass::Alu;
    }
    return true;
}

bool
ChampSimReader::next(TraceRecord &rec)
{
    while (!done_) {
        const std::uint64_t at = window_.offset();
        ctx_.checkAbort(at);
        std::size_t avail = 0;
        const std::uint8_t *bytes = window_.peek(kRecordBytes, avail);
        if (avail == 0) {
            done_ = true;
            break;
        }
        if (avail < kRecordBytes) {
            // Trailing partial record: quarantine the stub and stop.
            quarantine_.openRange(
                at, at + avail,
                {DecodeErrorKind::TruncatedRecord, at,
                 detail::concat(avail, " trailing bytes")});
            quarantine_.charge(1, at,
                               {DecodeErrorKind::TruncatedRecord, at, ""});
            window_.consume(avail);
            ctx_.stats.bytesConsumed += avail;
            done_ = true;
            break;
        }
        DecodeError err;
        const bool ok = decode(bytes, at, rec, err);
        window_.consume(kRecordBytes);
        ctx_.stats.bytesConsumed += kRecordBytes;
        if (ok) {
            quarantine_.flush();
            ++ctx_.stats.records;
            return true;
        }
        // Records are boundary-aligned, so resync is just "skip this
        // slot": quarantine the 64 bytes and try the next one.
        quarantine_.openRange(at, at + kRecordBytes, err);
        quarantine_.charge(1, at, err);
    }
    quarantine_.flush();
    return false;
}

void
ChampSimReader::reset()
{
    window_.rewind();
    done_ = false;
}

} // namespace chirp::ingest_detail
