/**
 * @file
 * Hardened external-trace ingestion: the untrusted front-end that
 * turns ChampSim / CVP trace files into the same SharedTrace tier the
 * synthetic generator materializes into, so replay, --jobs and
 * --workers all work unchanged on real program traces.
 *
 * Every input is treated as adversarial.  The readers decode via
 * bounds-checked memcpy from length-validated buffers (never by
 * struct-casting raw file bytes), classify every failure through the
 * DecodeError taxonomy, quarantine-and-resync past corrupt regions
 * (skipping to the next plausible record boundary and logging the
 * byte range), and enforce hard resource budgets: a maximum record
 * count (through the same CappedSource the paper's 100M-instruction
 * cap uses), a maximum resident size for the materialized trace, a
 * configurable bad-record budget, an optional wall-clock budget, and
 * a cancel token the suite watchdog raises.  A file that exhausts a
 * budget fails its job with IngestError — through SuiteHealth, never
 * by taking the suite down — and no input may crash, hang, or OOM
 * the decoder (tools/trace_fuzz asserts exactly that invariant).
 *
 * Supported formats:
 *
 *  - ChampSim: the fixed 64-byte input_instr record — u64 ip, u8
 *    is_branch, u8 branch_taken, u8 destination_registers[2], u8
 *    source_registers[4], u64 destination_memory[2], u64
 *    source_memory[4], all little-endian.  Branches map to
 *    CondBranch with the recorded outcome; the first source /
 *    destination memory address selects Load / Store; everything
 *    else is Alu.
 *  - CVP: a CVP-1-style variable-length container — header magic
 *    "CVPT", u32 version (1), u64 declared record count; each record
 *    is u64 pc, u8 InstClass, u8 flags (taken / has-memory /
 *    has-target), an optional u64 effective address + u8 access
 *    size, an optional u64 branch target, and a u8-counted register
 *    list.  The declared count is treated as a hint, never trusted.
 *
 * Format selection is automatic (CVPT magic, else a 64-byte-multiple
 * file is ChampSim) or explicit via CHIRP_TRACE_IN_FORMAT /
 * --trace-in-format.
 */

#ifndef CHIRP_TRACE_INGEST_INGEST_HH
#define CHIRP_TRACE_INGEST_INGEST_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/ingest/decode_error.hh"
#include "trace/trace_store.hh"

namespace chirp
{

/** External trace container formats the ingest front-end reads. */
enum class ExternalTraceFormat : std::uint8_t
{
    Auto,     //!< sniff: CVPT magic, else 64-byte-multiple ChampSim
    ChampSim, //!< fixed 64-byte input_instr records
    Cvp,      //!< CVP-1-style variable-length records
};

/** Printable name ("auto", "champsim", "cvp"). */
const char *externalTraceFormatName(ExternalTraceFormat format);

/**
 * The format from CHIRP_TRACE_IN_FORMAT (unset/empty means Auto);
 * fatal on unrecognized values.  Read fresh each call so --workers
 * children inherit the coordinator's choice through the environment.
 */
ExternalTraceFormat externalTraceFormatFromEnv();

/**
 * Hard resource budgets for one ingest.  Defaults come from
 * ingestLimitsFromEnv(); every knob has an environment override so
 * the budgets reach --workers children unchanged.
 */
struct IngestLimits
{
    /** Max records materialized (the paper's 100M cap); 0 = unlimited.
     *  CHIRP_INGEST_MAX_RECORDS. */
    InstCount maxRecords = 100'000'000;
    /** Max resident bytes for the materialized columns; 0 = unlimited.
     *  CHIRP_INGEST_MAX_BYTES. */
    std::uint64_t maxResidentBytes = 4ull << 30;
    /** Bad records tolerated before the stream is declared hostile
     *  (64 bytes of resync scanning count as one).
     *  CHIRP_INGEST_BAD_BUDGET. */
    std::uint64_t badRecordBudget = 1024;
    /** Wall-clock budget for the whole ingest; 0 = unlimited.
     *  CHIRP_INGEST_TIMEOUT_MS. */
    std::uint64_t maxWallMs = 0;
    /**
     * Cancel token polled between records; ingest aborts with
     * IngestError(Cancelled) once it reads true.  When null, the
     * thread's ScopedIngestCancel token (installed by the suite
     * runner next to the simulator's watchdog token) applies.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** Budgets from the CHIRP_INGEST_* environment (defaults above). */
IngestLimits ingestLimitsFromEnv();

/** One corrupt byte range skipped by quarantine-and-resync. */
struct QuarantinedRange
{
    std::uint64_t begin = 0; //!< first quarantined byte
    std::uint64_t end = 0;   //!< one past the last quarantined byte
};

/** Per-stream sanity counters accumulated during one ingest. */
struct IngestStats
{
    /** Ranges kept in `ranges` (the rest are counted, not stored). */
    static constexpr std::size_t kMaxLoggedRanges = 16;

    std::uint64_t records = 0;          //!< records materialized
    std::uint64_t badRecords = 0;       //!< decode failures charged
    std::uint64_t bytesConsumed = 0;    //!< input bytes walked
    std::uint64_t quarantinedBytes = 0; //!< bytes inside bad ranges
    std::uint64_t quarantinedRangeCount = 0;
    std::vector<QuarantinedRange> ranges;
};

/** A successfully ingested trace plus its provenance. */
struct IngestResult
{
    SharedTrace trace;
    IngestStats stats;
    ExternalTraceFormat format = ExternalTraceFormat::Auto;
};

/**
 * Ingest @p path under @p limits into a materialized SharedTrace.
 * Throws IngestError when no usable trace can be delivered
 * (unreadable / unrecognizable file, exhausted bad-record budget,
 * blown resource budget, cancellation); never crashes, hangs, or
 * OOMs on any input.
 */
IngestResult ingestTraceFile(const std::string &path,
                             const IngestLimits &limits,
                             ExternalTraceFormat format =
                                 ExternalTraceFormat::Auto);

/** As above with limits and format taken from the environment. */
IngestResult ingestTraceFile(const std::string &path);

/**
 * Ingest an in-memory image (tests and the fuzz driver; identical
 * semantics to ingestTraceFile on a file holding @p len bytes).
 */
IngestResult ingestTraceBytes(const void *data, std::size_t len,
                              const std::string &name,
                              const IngestLimits &limits,
                              ExternalTraceFormat format =
                                  ExternalTraceFormat::Auto);

/**
 * Installs a thread-local cancel token consulted by any ingest on
 * this thread whose limits carry none.  The suite runner scopes one
 * around each guarded job body so the --job-timeout watchdog reaches
 * ingest the same way it reaches the simulator.
 */
class ScopedIngestCancel
{
  public:
    explicit ScopedIngestCancel(const std::atomic<bool> *token);
    ~ScopedIngestCancel();

    ScopedIngestCancel(const ScopedIngestCancel &) = delete;
    ScopedIngestCancel &operator=(const ScopedIngestCancel &) = delete;

    /** The innermost token installed on this thread (null if none). */
    static const std::atomic<bool> *current();

  private:
    const std::atomic<bool> *previous_;
};

// Encoders for fixtures and the fuzz corpus: append one well-formed
// record (or the CVP container header) to a byte string.  Decoding
// an encoded stream round-trips exactly for CVP; ChampSim cannot
// express every InstClass, so its round trip lands on
// champSimCanonical() of each record.

/** Append the 64-byte ChampSim image of @p rec to @p out. */
void appendChampSimRecord(std::string &out, const TraceRecord &rec);

/**
 * What decoding appendChampSimRecord(rec) yields: branches coarsen
 * to CondBranch, memory ops with a zero effective address to Alu,
 * and targets are dropped (the format carries none).
 */
TraceRecord champSimCanonical(const TraceRecord &rec);

/** Append the 16-byte CVP container header declaring @p count. */
void appendCvpHeader(std::string &out, std::uint64_t count);

/** Append the variable-length CVP image of @p rec to @p out. */
void appendCvpRecord(std::string &out, const TraceRecord &rec);

} // namespace chirp

#endif // CHIRP_TRACE_INGEST_INGEST_HH
