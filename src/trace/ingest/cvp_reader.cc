#include "trace/ingest/cvp_reader.hh"

#include <cstring>

namespace chirp::ingest_detail
{
namespace
{

constexpr std::uint8_t kFlagTaken = 0x01;
constexpr std::uint8_t kFlagHasMem = 0x02;
constexpr std::uint8_t kFlagHasTarget = 0x04;
constexpr std::uint8_t kFlagMask =
    kFlagTaken | kFlagHasMem | kFlagHasTarget;

std::uint64_t
readU64(const std::uint8_t *bytes, std::size_t at)
{
    std::uint64_t v = 0;
    std::memcpy(&v, bytes + at, sizeof(v));
    return v;
}

bool
plausibleAccessSize(std::uint8_t size)
{
    return size != 0 && size <= 64 && (size & (size - 1)) == 0;
}

} // namespace

CvpReader::CvpReader(std::FILE *file, const std::string &name,
                     IngestContext &ctx)
    : window_(file), ctx_(ctx), quarantine_(ctx)
{
    name_ = name;
    std::size_t avail = 0;
    const std::uint8_t *hdr = window_.peek(kHeaderBytes, avail);
    if (avail < kHeaderBytes) {
        throw IngestError({DecodeErrorKind::TruncatedHeader, 0,
                           detail::concat(avail, " of ", kHeaderBytes,
                                          " header bytes")});
    }
    if (std::memcmp(hdr, "CVPT", 4) != 0)
        throw IngestError({DecodeErrorKind::BadMagic, 0, ""});
    std::uint32_t version = 0;
    std::memcpy(&version, hdr + 4, sizeof(version));
    if (version != 1) {
        throw IngestError({DecodeErrorKind::BadVersion, 4,
                           detail::concat("version ", version)});
    }
    declared_ = readU64(hdr, 8);
    window_.consume(kHeaderBytes);
    ctx_.stats.bytesConsumed += kHeaderBytes;
}

bool
CvpReader::decode(const std::uint8_t *bytes, std::size_t avail,
                  std::uint64_t offset, TraceRecord &rec,
                  std::size_t &len, DecodeError &err)
{
    len = 0;
    std::size_t pos = 0;
    const auto truncated = [&](const char *what) {
        err = {DecodeErrorKind::TruncatedRecord, offset + avail, what};
        return false;
    };

    if (avail < 10)
        return truncated("pc/class/flags");
    const std::uint64_t pc = readU64(bytes, 0);
    const std::uint8_t clsByte = bytes[8];
    const std::uint8_t flags = bytes[9];
    pos = 10;

    if (clsByte >= static_cast<std::uint8_t>(InstClass::NumClasses)) {
        err = {DecodeErrorKind::OutOfRangeClass, offset + 8,
               detail::concat("class ", int(clsByte))};
        return false;
    }
    const auto cls = static_cast<InstClass>(clsByte);
    if (flags & ~kFlagMask) {
        err = {DecodeErrorKind::OutOfRangeFlags, offset + 9,
               detail::concat("reserved bits in 0x", int(flags))};
        return false;
    }
    const bool taken = flags & kFlagTaken;
    const bool hasMem = flags & kFlagHasMem;
    const bool hasTarget = flags & kFlagHasTarget;
    if (hasMem != isMemory(cls)) {
        err = {DecodeErrorKind::OutOfRangeFlags, offset + 9,
               hasMem ? "memory operand on non-memory class"
                      : "memory class without memory operand"};
        return false;
    }
    if ((taken || hasTarget) && !isBranch(cls)) {
        err = {DecodeErrorKind::OutOfRangeFlags, offset + 9,
               "branch flags on non-branch class"};
        return false;
    }
    if (pc == 0 || !canonicalAddr(pc)) {
        err = {DecodeErrorKind::NonCanonicalPc, offset, ""};
        return false;
    }

    std::uint64_t effAddr = 0;
    std::uint64_t target = 0;
    if (hasMem) {
        if (avail < pos + 9)
            return truncated("effective address");
        effAddr = readU64(bytes, pos);
        const std::uint8_t size = bytes[pos + 8];
        if (!canonicalAddr(effAddr)) {
            err = {DecodeErrorKind::NonCanonicalAddress, offset + pos,
                   "effective address"};
            return false;
        }
        if (!plausibleAccessSize(size)) {
            err = {DecodeErrorKind::ImpossibleLength, offset + pos + 8,
                   detail::concat("memory access size ", int(size))};
            return false;
        }
        pos += 9;
    }
    if (hasTarget) {
        if (avail < pos + 8)
            return truncated("branch target");
        target = readU64(bytes, pos);
        if (!canonicalAddr(target)) {
            err = {DecodeErrorKind::NonCanonicalAddress, offset + pos,
                   "branch target"};
            return false;
        }
        pos += 8;
    }
    if (avail < pos + 1)
        return truncated("register count");
    const std::uint8_t nRegs = bytes[pos];
    if (nRegs > 8) {
        err = {DecodeErrorKind::ImpossibleLength, offset + pos,
               detail::concat("register count ", int(nRegs))};
        return false;
    }
    ++pos;
    if (avail < pos + nRegs)
        return truncated("register list");
    for (std::size_t i = 0; i < nRegs; ++i) {
        if (bytes[pos + i] >= 0x80) {
            err = {DecodeErrorKind::OutOfRangeRegister, offset + pos + i,
                   detail::concat("register byte 0x",
                                  int(bytes[pos + i]))};
            return false;
        }
    }
    pos += nRegs;

    rec = TraceRecord{};
    rec.pc = pc;
    rec.cls = cls;
    rec.taken = taken;
    rec.effAddr = effAddr;
    rec.target = target;
    len = pos;
    return true;
}

bool
CvpReader::next(TraceRecord &rec)
{
    while (!done_) {
        const std::uint64_t at = window_.offset();
        ctx_.checkAbort(at);
        std::size_t avail = 0;
        const std::uint8_t *bytes = window_.peek(kMaxRecordBytes, avail);
        if (avail == 0) {
            done_ = true;
            break;
        }
        DecodeError err;
        std::size_t len = 0;
        if (decode(bytes, avail, at, rec, len, err)) {
            window_.consume(len);
            ctx_.stats.bytesConsumed += len;
            quarantine_.flush();
            ++ctx_.stats.records;
            return true;
        }
        if (err.kind == DecodeErrorKind::TruncatedRecord &&
            avail < kMaxRecordBytes) {
            // The file genuinely ends inside this record: quarantine
            // the stub and finish.
            quarantine_.openRange(at, at + avail, err);
            quarantine_.charge(1, at, err);
            window_.consume(avail);
            ctx_.stats.bytesConsumed += avail;
            done_ = true;
            break;
        }
        // Corrupt bytes mid-stream: quarantine and scan for the next
        // plausible record boundary.
        quarantine_.openRange(at, at, err);
        quarantine_.charge(1, at, err);
        if (resync(rec))
            return true;
    }
    quarantine_.flush();
    if (!countChecked_) {
        countChecked_ = true;
        if (ctx_.stats.records != declared_) {
            const DecodeError err{
                DecodeErrorKind::CountMismatch, window_.offset(),
                detail::concat("header declared ", declared_, ", got ",
                               ctx_.stats.records)};
            chirp_warn("ingest '", name_, "': ", err.format());
            quarantine_.charge(1, window_.offset(), err);
        }
    }
    return false;
}

bool
CvpReader::resync(TraceRecord &rec)
{
    // A position is a plausible boundary when two consecutive records
    // decode cleanly from it, or one does and ends exactly at EOF.
    std::uint64_t scanned = 0;
    for (;;) {
        const std::uint64_t at = window_.offset();
        ctx_.checkAbort(at);
        std::size_t avail = 0;
        const std::uint8_t *bytes =
            window_.peek(2 * kMaxRecordBytes, avail);
        if (avail == 0) {
            quarantine_.extend(at);
            done_ = true;
            return false;
        }
        TraceRecord first;
        std::size_t firstLen = 0;
        DecodeError err;
        if (decode(bytes, avail, at, first, firstLen, err)) {
            const bool atEof = avail < 2 * kMaxRecordBytes;
            bool accept = atEof && firstLen == avail;
            if (!accept && firstLen < avail) {
                TraceRecord second;
                std::size_t secondLen = 0;
                accept = decode(bytes + firstLen, avail - firstLen,
                                at + firstLen, second, secondLen, err);
            }
            if (accept) {
                quarantine_.extend(at);
                quarantine_.flush();
                window_.consume(firstLen);
                ctx_.stats.bytesConsumed += firstLen;
                ++ctx_.stats.records;
                rec = first;
                return true;
            }
        }
        window_.consume(1);
        ctx_.stats.bytesConsumed += 1;
        quarantine_.extend(at + 1);
        // Charge the scan itself so a huge run of garbage exhausts
        // the bad-record budget instead of being walked for free.
        if ((++scanned & 63u) == 0) {
            quarantine_.charge(
                1, at + 1,
                {DecodeErrorKind::TruncatedRecord, at + 1,
                 detail::concat("resync scanned ", scanned, " bytes")});
        }
    }
}

void
CvpReader::reset()
{
    window_.rewind();
    window_.consume(0);
    std::size_t avail = 0;
    window_.peek(kHeaderBytes, avail);
    window_.consume(kHeaderBytes); // header was validated at construction
    done_ = false;
    countChecked_ = false;
}

} // namespace chirp::ingest_detail
