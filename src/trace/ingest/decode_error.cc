#include "trace/ingest/decode_error.hh"

#include "util/logging.hh"

namespace chirp
{

const char *
decodeErrorKindName(DecodeErrorKind kind)
{
    switch (kind) {
      case DecodeErrorKind::Unreadable:
        return "unreadable";
      case DecodeErrorKind::UnknownFormat:
        return "unknown trace format";
      case DecodeErrorKind::BadMagic:
        return "bad magic";
      case DecodeErrorKind::BadVersion:
        return "unsupported version";
      case DecodeErrorKind::TruncatedHeader:
        return "truncated header";
      case DecodeErrorKind::TruncatedRecord:
        return "truncated record";
      case DecodeErrorKind::TruncatedColumn:
        return "truncated column";
      case DecodeErrorKind::TruncatedFooter:
        return "truncated checksum footer";
      case DecodeErrorKind::ImpossibleLength:
        return "impossible length";
      case DecodeErrorKind::OutOfRangeClass:
        return "out-of-range instruction class";
      case DecodeErrorKind::OutOfRangeRegister:
        return "out-of-range register";
      case DecodeErrorKind::OutOfRangeFlags:
        return "impossible flag bits";
      case DecodeErrorKind::NonCanonicalPc:
        return "non-canonical pc";
      case DecodeErrorKind::NonCanonicalAddress:
        return "non-canonical address";
      case DecodeErrorKind::SizeMismatch:
        return "size mismatch";
      case DecodeErrorKind::CountMismatch:
        return "record count mismatch";
      case DecodeErrorKind::ChecksumMismatch:
        return "checksum mismatch";
      case DecodeErrorKind::BudgetExceeded:
        return "resource budget exceeded";
      case DecodeErrorKind::Timeout:
        return "ingest wall-clock budget exceeded";
      case DecodeErrorKind::Cancelled:
        return "cancelled";
    }
    return "?";
}

std::string
DecodeError::format() const
{
    if (detail.empty()) {
        return detail::concat(decodeErrorKindName(kind), " at byte ",
                              offset);
    }
    return detail::concat(decodeErrorKindName(kind), " (", detail,
                          ") at byte ", offset);
}

} // namespace chirp
