/**
 * @file
 * The decode-failure taxonomy shared by every path that parses bytes
 * it did not produce: the external-trace ingest readers (ChampSim /
 * CVP front-end) and the trace-cache tier's probe/load validators.
 *
 * External trace files are the first untrusted input this codebase
 * parses, so every way a decode can go wrong gets a named kind, a
 * byte offset, and an optional detail string.  One taxonomy across
 * both tiers means a quarantine log line reads the same whether the
 * bad bytes came from a corrupted cache file or a hostile --trace-in
 * file, and tests can assert on kinds instead of ad-hoc prose.
 */

#ifndef CHIRP_TRACE_INGEST_DECODE_ERROR_HH
#define CHIRP_TRACE_INGEST_DECODE_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace chirp
{

/** Every way parsing untrusted trace bytes can fail. */
enum class DecodeErrorKind : std::uint8_t
{
    Unreadable,         //!< cannot open/stat/read the file at all
    UnknownFormat,      //!< no reader recognizes the bytes
    BadMagic,           //!< magic bytes are not a known trace header
    BadVersion,         //!< recognized container, unsupported version
    TruncatedHeader,    //!< file ends inside the header
    TruncatedRecord,    //!< file ends inside a record
    TruncatedColumn,    //!< file ends inside a column payload
    TruncatedFooter,    //!< file ends inside the checksum footer
    ImpossibleLength,   //!< a length field claims an impossible value
    OutOfRangeClass,    //!< instruction class outside InstClass
    OutOfRangeRegister, //!< register id outside any plausible file
    OutOfRangeFlags,    //!< flag byte with impossible bits set
    NonCanonicalPc,     //!< PC is zero or not 48-bit sign-extended
    NonCanonicalAddress,//!< memory/target address fails the PC check
    SizeMismatch,       //!< file size disagrees with its own header
    CountMismatch,      //!< record count disagrees with the header
    ChecksumMismatch,   //!< stored checksum does not match the bytes
    BudgetExceeded,     //!< a hard ingest resource budget was hit
    Timeout,            //!< ingest wall-clock budget exceeded
    Cancelled,          //!< cancel token raised (watchdog) mid-ingest
};

/** Stable printable name of a kind ("truncated record", ...). */
const char *decodeErrorKindName(DecodeErrorKind kind);

/**
 * One decode failure: what went wrong, where in the file, and any
 * free-form detail (expected vs actual values, errno text).
 */
struct DecodeError
{
    DecodeErrorKind kind = DecodeErrorKind::Unreadable;
    /** Byte offset in the input the failure was detected at. */
    std::uint64_t offset = 0;
    std::string detail;

    /**
     * "kind (detail) at byte N" — the one rendering every quarantine
     * log and probe reason uses, so cache-tier and ingest-tier
     * failures read identically.
     */
    std::string format() const;
};

/**
 * Thrown when ingest cannot deliver a usable trace at all (unreadable
 * file, exhausted bad-record budget, blown resource budget).  The
 * suite runner's per-job guard catches it like any job failure: the
 * job fails through SuiteHealth, the suite continues.
 */
class IngestError : public std::runtime_error
{
  public:
    explicit IngestError(DecodeError error)
        : std::runtime_error(error.format()), error_(std::move(error))
    {
    }

    const DecodeError &error() const { return error_; }
    DecodeErrorKind kind() const { return error_.kind; }

  private:
    DecodeError error_;
};

} // namespace chirp

#endif // CHIRP_TRACE_INGEST_DECODE_ERROR_HH
