#include "trace/trace_file.hh"

#include <algorithm>
#include <cstring>

#include <unistd.h>

#include "util/logging.hh"

namespace chirp
{

namespace
{

constexpr char kMagic[4] = {'C', 'H', 'T', 'R'};
constexpr std::size_t kRecordBytes = 8 + 8 + 8 + 1 + 1;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** Serialize a record into its 26-byte wire form. */
void
packRecord(const TraceRecord &rec, std::uint8_t *buf)
{
    auto put64 = [&](std::size_t off, std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            buf[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    put64(0, rec.pc);
    put64(8, rec.effAddr);
    put64(16, rec.target);
    buf[24] = static_cast<std::uint8_t>(rec.cls);
    buf[25] = rec.taken ? 1 : 0;
}

/** Deserialize a 26-byte wire record. */
void
unpackRecord(const std::uint8_t *buf, TraceRecord &rec)
{
    auto get64 = [&](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(buf[off + i]) << (8 * i);
        return v;
    };
    rec.pc = get64(0);
    rec.effAddr = get64(8);
    rec.target = get64(16);
    rec.cls = static_cast<InstClass>(buf[24]);
    rec.taken = buf[25] != 0;
}

std::uint64_t
fnvUpdate(std::uint64_t h, const std::uint8_t *data, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= kFnvPrime;
    }
    return h;
}

void
put32(std::FILE *f, std::uint32_t v)
{
    std::uint8_t buf[4];
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    std::fwrite(buf, 1, sizeof(buf), f);
}

void
put64(std::FILE *f, std::uint64_t v)
{
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    std::fwrite(buf, 1, sizeof(buf), f);
}

bool
get32(std::FILE *f, std::uint32_t &v)
{
    std::uint8_t buf[4];
    if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
    return true;
}

bool
get64(std::FILE *f, std::uint64_t &v)
{
    std::uint8_t buf[8];
    if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return true;
}

constexpr long kHeaderBytes = 4 + 4 + 8;

} // namespace

const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::Alu:
        return "alu";
      case InstClass::Load:
        return "load";
      case InstClass::Store:
        return "store";
      case InstClass::CondBranch:
        return "condBranch";
      case InstClass::UncondDirect:
        return "uncondDirect";
      case InstClass::UncondIndirect:
        return "uncondIndirect";
      case InstClass::Fp:
        return "fp";
      case InstClass::SlowAlu:
        return "slowAlu";
      default:
        return "?";
    }
}

TraceFileWriter::TraceFileWriter(const std::string &path)
    : path_(path),
      file_(std::fopen(path.c_str(), "wb")),
      checksum_(kFnvOffset)
{
    if (!file_)
        chirp_fatal("cannot open trace file '", path, "' for writing");
    std::fwrite(kMagic, 1, sizeof(kMagic), file_);
    put32(file_, kTraceFormatVersion);
    put64(file_, 0); // record count, patched in close()
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_)
        close();
}

void
TraceFileWriter::append(const TraceRecord &rec)
{
    if (closed_)
        chirp_fatal("append to closed trace file '", path_, "'");
    std::uint8_t buf[kRecordBytes];
    packRecord(rec, buf);
    checksum_ = fnvUpdate(checksum_, buf, sizeof(buf));
    std::fwrite(buf, 1, sizeof(buf), file_);
    ++count_;
}

bool
TraceFileWriter::close()
{
    if (closed_)
        return true;
    put64(file_, checksum_);
    std::fseek(file_, 8, SEEK_SET);
    put64(file_, count_);
    // Surface any buffered write failure (disk full, I/O error) and
    // make the bytes durable before the caller publishes the file.
    bool ok = std::fflush(file_) == 0 && std::ferror(file_) == 0;
    if (ok && ::fsync(::fileno(file_)) != 0)
        ok = false;
    if (std::fclose(file_) != 0)
        ok = false;
    file_ = nullptr;
    closed_ = true;
    return ok;
}

TraceFileSource::TraceFileSource(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb")), checksum_(kFnvOffset)
{
    name_ = path;
    if (!file_)
        chirp_fatal("cannot open trace file '", path, "'");
    char magic[4];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        chirp_fatal("'", path, "' is not a chirp trace file");
    }
    std::uint32_t version = 0;
    if (!get32(file_, version) || version != kTraceFormatVersion)
        chirp_fatal("'", path, "' has unsupported trace version ", version);
    if (!get64(file_, count_))
        chirp_fatal("'", path, "' is truncated (no record count)");
}

TraceFileSource::~TraceFileSource()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileSource::probe(const std::string &path, std::string *reason)
{
    const auto refuse = [&](const std::string &why) {
        if (reason)
            *reason = why;
        return false;
    };
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return refuse("unreadable");
    bool ok = false;
    std::string why;
    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        why = "bad magic (not a chirp trace)";
    } else if (!get32(f, version) || version != kTraceFormatVersion) {
        why = detail::concat("unsupported version ", version);
    } else if (!get64(f, count)) {
        why = "truncated header (no record count)";
    } else if (std::fseek(f, 0, SEEK_END) != 0) {
        why = "unseekable";
    } else {
        const long size = std::ftell(f);
        const std::uint64_t expected = static_cast<std::uint64_t>(
            kHeaderBytes) + count * kRecordBytes + 8;
        ok = size >= 0 && static_cast<std::uint64_t>(size) == expected;
        if (!ok) {
            why = detail::concat("size ", size, " != expected ",
                                 expected, " for ", count, " records");
        }
    }
    std::fclose(f);
    return ok ? true : refuse(why);
}

bool
TraceFileSource::verifyChecksum()
{
    if (verified_)
        return true;
    const long pos = std::ftell(file_);
    std::fseek(file_, kHeaderBytes, SEEK_SET);
    std::uint64_t hash = kFnvOffset;
    std::uint64_t remaining = count_ * kRecordBytes;
    std::uint8_t buf[kRecordBytes * 256];
    bool ok = true;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(sizeof(buf), remaining));
        if (std::fread(buf, 1, want, file_) != want) {
            ok = false;
            break;
        }
        hash = fnvUpdate(hash, buf, want);
        remaining -= want;
    }
    if (ok) {
        std::uint64_t stored = 0;
        ok = get64(file_, stored) && stored == hash;
    }
    if (ok)
        verified_ = true;
    std::clearerr(file_);
    std::fseek(file_, pos, SEEK_SET);
    return ok;
}

bool
TraceFileSource::next(TraceRecord &rec)
{
    if (read_ >= count_) {
        verifyFooter();
        return false;
    }
    std::uint8_t buf[kRecordBytes];
    if (std::fread(buf, 1, sizeof(buf), file_) != sizeof(buf))
        chirp_fatal("'", name(), "' is truncated at record ", read_);
    if (!verified_)
        checksum_ = fnvUpdate(checksum_, buf, sizeof(buf));
    unpackRecord(buf, rec);
    ++read_;
    return true;
}

std::size_t
TraceFileSource::nextBatch(TraceRecord *out, std::size_t n)
{
    std::size_t total = 0;
    std::uint8_t buf[kRecordBytes * 256];
    while (total < n && read_ < count_) {
        const std::size_t want = std::min<std::size_t>(
            {n - total, sizeof(buf) / kRecordBytes,
             static_cast<std::size_t>(count_ - read_)});
        if (std::fread(buf, 1, want * kRecordBytes, file_) !=
            want * kRecordBytes) {
            chirp_fatal("'", name(), "' is truncated at record ", read_);
        }
        if (!verified_)
            checksum_ = fnvUpdate(checksum_, buf, want * kRecordBytes);
        for (std::size_t i = 0; i < want; ++i)
            unpackRecord(buf + i * kRecordBytes, out[total + i]);
        total += want;
        read_ += want;
    }
    if (read_ >= count_)
        verifyFooter();
    return total;
}

void
TraceFileSource::verifyFooter()
{
    if (verified_)
        return;
    std::uint64_t stored = 0;
    if (!get64(file_, stored))
        chirp_fatal("'", name(), "' is missing its checksum footer");
    if (stored != checksum_)
        chirp_fatal("'", name(), "' failed checksum validation");
    verified_ = true;
}

void
TraceFileSource::reset()
{
    std::fseek(file_, kHeaderBytes, SEEK_SET);
    read_ = 0;
    if (!verified_)
        checksum_ = kFnvOffset;
}

} // namespace chirp
