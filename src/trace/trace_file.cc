#include "trace/trace_file.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "trace/ingest/decode_error.hh"
#include "util/logging.hh"

namespace chirp
{

namespace
{

constexpr char kMagic[4] = {'C', 'H', 'T', 'R'};
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kNumColumns = 4;
constexpr bool kLittleEndian =
    std::endian::native == std::endian::little;

/** Byte offsets of every section of a v2 file holding @p n records. */
struct Layout
{
    std::uint64_t pcOff = kHeaderBytes;
    std::uint64_t effAddrOff = 0;
    std::uint64_t targetOff = 0;
    std::uint64_t metaOff = 0;
    std::uint64_t padBytes = 0;
    std::uint64_t footerOff = 0;
    std::uint64_t fileSize = 0;
};

Layout
layoutFor(std::uint64_t n)
{
    Layout lay;
    lay.effAddrOff = kHeaderBytes + 8 * n;
    lay.targetOff = lay.effAddrOff + 8 * n;
    lay.metaOff = lay.targetOff + 8 * n;
    const std::uint64_t meta_end = lay.metaOff + n;
    lay.padBytes = (8 - meta_end % 8) % 8;
    lay.footerOff = meta_end + lay.padBytes;
    lay.fileSize = lay.footerOff + 8 * kNumColumns;
    return lay;
}

/**
 * The v2 per-column checksum: four independent FNV-1a-style 64-bit
 * lanes striped over consecutive 8-byte words, folded together (with
 * the length) at the end.  A single byte-serial FNV chain is
 * latency-bound at ~1 ns/byte — one 64-bit multiply per byte — which
 * made verifying a warm multi-hundred-MB trace cache cost more than
 * regenerating it; four lanes keep the same per-word xor-multiply
 * mixing (any single-bit flip still changes its lane's sum, the
 * multiplier being odd and thus invertible) while the dependency
 * chains overlap.  Defined over a whole column at a time: every
 * writer and reader folds each column in one shot, so there is no
 * chunk-boundary dependence to keep in sync.
 */
std::uint64_t
columnChecksum(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t lanes[4] = {
        kFnvOffset,
        kFnvOffset ^ 0x9e3779b97f4a7c15ull,
        kFnvOffset ^ 0xc2b2ae3d27d4eb4full,
        kFnvOffset ^ 0x165667b19e3779f9ull,
    };
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        for (int l = 0; l < 4; ++l) {
            std::uint64_t word;
            std::memcpy(&word, data + i + 8 * l, sizeof(word));
            lanes[l] = (lanes[l] ^ word) * kFnvPrime;
        }
    }
    // Tail (< 32 bytes): byte-serial into lane 0, cheap by volume.
    for (; i < len; ++i) {
        lanes[0] ^= data[i];
        lanes[0] *= kFnvPrime;
    }
    std::uint64_t h = kFnvOffset ^ static_cast<std::uint64_t>(len);
    for (const std::uint64_t lane : lanes)
        h = (h ^ lane) * kFnvPrime;
    return h;
}

void
put32(std::FILE *f, std::uint32_t v)
{
    std::uint8_t buf[4];
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    std::fwrite(buf, 1, sizeof(buf), f);
}

void
put64(std::FILE *f, std::uint64_t v)
{
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    std::fwrite(buf, 1, sizeof(buf), f);
}

bool
get32(std::FILE *f, std::uint32_t &v)
{
    std::uint8_t buf[4];
    if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
    return true;
}

bool
get64(std::FILE *f, std::uint64_t &v)
{
    std::uint8_t buf[8];
    if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return true;
}

/** Convert an in-memory Addr chunk to/from the file's LE layout. */
void
fixEndian(Addr *values, std::size_t n)
{
    if constexpr (kLittleEndian) {
        (void)values;
        (void)n;
    } else {
        for (std::size_t i = 0; i < n; ++i)
            values[i] = __builtin_bswap64(values[i]);
    }
}

/**
 * Write one u64 column in file (LE) byte order, accumulating the
 * FNV-1a checksum over the bytes as laid down on disk.
 */
std::uint64_t
writeAddrColumn(std::FILE *f, const Addr *values, std::uint64_t n)
{
    if constexpr (kLittleEndian) {
        if (n > 0)
            std::fwrite(values, sizeof(Addr), n, f);
        return columnChecksum(
            reinterpret_cast<const std::uint8_t *>(values),
            static_cast<std::size_t>(n) * sizeof(Addr));
    }
    // Big-endian host: the checksum covers the on-disk (LE) bytes and
    // is defined over the whole column, so build the swapped column
    // once and write/fold it in one shot.
    std::vector<Addr> le(values, values + n);
    fixEndian(le.data(), le.size());
    if (n > 0)
        std::fwrite(le.data(), sizeof(Addr), le.size(), f);
    return columnChecksum(
        reinterpret_cast<const std::uint8_t *>(le.data()),
        le.size() * sizeof(Addr));
}

/** Lay down a complete v2 file body; error state stays on @p f. */
void
writeAll(std::FILE *f, const ColumnarTrace &trace)
{
    const std::uint64_t n = trace.size();
    const Layout lay = layoutFor(n);
    std::fwrite(kMagic, 1, sizeof(kMagic), f);
    put32(f, kTraceFormatVersion);
    put64(f, n);
    std::uint64_t sums[kNumColumns];
    sums[0] = writeAddrColumn(f, trace.pc(), n);
    sums[1] = writeAddrColumn(f, trace.effAddr(), n);
    sums[2] = writeAddrColumn(f, trace.target(), n);
    if (n > 0)
        std::fwrite(trace.meta(), 1, n, f);
    sums[3] = columnChecksum(trace.meta(),
                             static_cast<std::size_t>(n));
    const std::uint8_t pad[8] = {};
    if (lay.padBytes > 0)
        std::fwrite(pad, 1, static_cast<std::size_t>(lay.padBytes), f);
    for (const std::uint64_t sum : sums)
        put64(f, sum);
}

/** Flush, fsync and close @p f; true when every write stuck. */
bool
finishFile(std::FILE *f)
{
    bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
    if (ok && ::fsync(::fileno(f)) != 0)
        ok = false;
    if (std::fclose(f) != 0)
        ok = false;
    return ok;
}

} // namespace

const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::Alu:
        return "alu";
      case InstClass::Load:
        return "load";
      case InstClass::Store:
        return "store";
      case InstClass::CondBranch:
        return "condBranch";
      case InstClass::UncondDirect:
        return "uncondDirect";
      case InstClass::UncondIndirect:
        return "uncondIndirect";
      case InstClass::Fp:
        return "fp";
      case InstClass::SlowAlu:
        return "slowAlu";
      default:
        return "?";
    }
}

TraceFileWriter::TraceFileWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        chirp_fatal("cannot open trace file '", path, "' for writing");
}

TraceFileWriter::~TraceFileWriter()
{
    if (!closed_)
        close();
}

void
TraceFileWriter::append(const TraceRecord &rec)
{
    if (closed_)
        chirp_fatal("append to closed trace file '", path_, "'");
    buf_.append(rec);
}

bool
TraceFileWriter::close()
{
    if (closed_)
        return true;
    writeAll(file_, buf_);
    // Surface any buffered write failure (disk full, I/O error) and
    // make the bytes durable before the caller publishes the file.
    const bool ok = finishFile(file_);
    file_ = nullptr;
    closed_ = true;
    return ok;
}

bool
TraceFileWriter::writeFile(const std::string &path,
                           const ColumnarTrace &trace)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    writeAll(f, trace);
    return finishFile(f);
}

TraceFileSource::TraceFileSource(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    name_ = path;
    if (!file_)
        chirp_fatal("cannot open trace file '", path, "'");
    char magic[4];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        chirp_fatal("'", path, "' is not a chirp trace file");
    }
    std::uint32_t version = 0;
    if (!get32(file_, version) || version != kTraceFormatVersion)
        chirp_fatal("'", path, "' has unsupported trace version ", version);
    if (!get64(file_, count_))
        chirp_fatal("'", path, "' is truncated (no record count)");
}

TraceFileSource::~TraceFileSource()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileSource::probe(const std::string &path, std::string *reason)
{
    // Failure reasons use the ingest tier's DecodeError taxonomy, so
    // a quarantine log line reads the same whether the bad bytes came
    // from a cache file or a hostile --trace-in file.
    const auto refuse = [&](const DecodeError &why) {
        if (reason)
            *reason = why.format();
        return false;
    };
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return refuse({DecodeErrorKind::Unreadable, 0, ""});
    bool ok = false;
    DecodeError why;
    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        why = {DecodeErrorKind::BadMagic, 0, "not a chirp trace"};
    } else if (!get32(f, version) || version != kTraceFormatVersion) {
        why = {DecodeErrorKind::BadVersion, 4,
               detail::concat("version ", version)};
    } else if (!get64(f, count)) {
        why = {DecodeErrorKind::TruncatedHeader, 8, "no record count"};
    } else if (std::fseek(f, 0, SEEK_END) != 0) {
        why = {DecodeErrorKind::Unreadable, 0, "unseekable"};
    } else {
        const long size = std::ftell(f);
        const std::uint64_t expected = layoutFor(count).fileSize;
        ok = size >= 0 && static_cast<std::uint64_t>(size) == expected;
        if (!ok) {
            why = {DecodeErrorKind::SizeMismatch, 0,
                   detail::concat("size ", size, " != expected ",
                                  expected, " for ", count, " records")};
        }
    }
    std::fclose(f);
    return ok ? true : refuse(why);
}

bool
TraceFileSource::verifyChecksum()
{
    if (verified_)
        return true;
    const Layout lay = layoutFor(count_);
    const std::uint64_t starts[kNumColumns] = {
        lay.pcOff, lay.effAddrOff, lay.targetOff, lay.metaOff};
    const std::uint64_t widths[kNumColumns] = {8, 8, 8, 1};
    std::uint64_t sums[kNumColumns];
    // The checksum is defined over a whole column, so each column is
    // read into one buffer and folded in a single shot.
    std::vector<std::uint8_t> buf;
    bool ok = true;
    for (std::size_t c = 0; ok && c < kNumColumns; ++c) {
        const std::size_t bytes =
            static_cast<std::size_t>(count_ * widths[c]);
        buf.resize(bytes);
        if (std::fseek(file_, static_cast<long>(starts[c]),
                       SEEK_SET) != 0 ||
            (bytes > 0 &&
             std::fread(buf.data(), 1, bytes, file_) != bytes)) {
            ok = false;
            break;
        }
        sums[c] = columnChecksum(buf.data(), bytes);
    }
    if (ok) {
        if (std::fseek(file_, static_cast<long>(lay.footerOff),
                       SEEK_SET) != 0)
            ok = false;
        for (std::size_t c = 0; ok && c < kNumColumns; ++c) {
            std::uint64_t stored = 0;
            ok = get64(file_, stored) && stored == sums[c];
        }
    }
    if (ok)
        verified_ = true;
    std::clearerr(file_);
    return ok;
}

std::size_t
TraceFileSource::nextBatch(TraceRecord *out, std::size_t n)
{
    constexpr std::size_t kChunk = 256;
    Addr pcBuf[kChunk], eaBuf[kChunk], tgBuf[kChunk];
    std::uint8_t metaBuf[kChunk];
    const Layout lay = layoutFor(count_);
    std::size_t total = 0;
    // All reads seek to absolute column offsets, so the stream
    // position carries no state between calls (read_ does).
    const auto read_chunk = [&](void *dst, std::uint64_t off,
                                std::size_t bytes) {
        if (std::fseek(file_, static_cast<long>(off), SEEK_SET) != 0 ||
            std::fread(dst, 1, bytes, file_) != bytes)
            chirp_fatal("'", name(), "' is truncated at record ", read_);
    };
    while (total < n && read_ < count_) {
        const std::size_t want = std::min<std::size_t>(
            {n - total, kChunk,
             static_cast<std::size_t>(count_ - read_)});
        read_chunk(pcBuf, lay.pcOff + 8 * read_, want * 8);
        read_chunk(eaBuf, lay.effAddrOff + 8 * read_, want * 8);
        read_chunk(tgBuf, lay.targetOff + 8 * read_, want * 8);
        read_chunk(metaBuf, lay.metaOff + read_, want);
        fixEndian(pcBuf, want);
        fixEndian(eaBuf, want);
        fixEndian(tgBuf, want);
        for (std::size_t i = 0; i < want; ++i) {
            TraceRecord &rec = out[total + i];
            rec.pc = pcBuf[i];
            rec.effAddr = eaBuf[i];
            rec.target = tgBuf[i];
            rec.cls = static_cast<InstClass>(metaBuf[i] &
                                             ColumnarTrace::kClsMask);
            rec.taken = (metaBuf[i] & ColumnarTrace::kTakenBit) != 0;
        }
        total += want;
        read_ += want;
    }
    if (read_ >= count_)
        verifyFooter();
    return total;
}

bool
TraceFileSource::next(TraceRecord &rec)
{
    return nextBatch(&rec, 1) == 1;
}

void
TraceFileSource::verifyFooter()
{
    if (verified_)
        return;
    // The lane-striped column checksum is defined whole-column, so
    // end-of-stream validation re-reads each column in one shot
    // rather than folding record chunks as they stream by.  This
    // source is the reference/testing reader — the cache tiers use
    // the bulk loaders below — so the extra pass is off every hot
    // path.
    if (!verifyChecksum())
        chirp_fatal("'", name(), "' failed checksum validation");
}

void
TraceFileSource::reset()
{
    read_ = 0;
}

std::shared_ptr<const ColumnarTrace>
mapTraceFile(const std::string &path, std::string *reason)
{
    const auto refuse = [&](const DecodeError &why)
        -> std::shared_ptr<const ColumnarTrace> {
        if (reason)
            *reason = why.format();
        return nullptr;
    };
    if (!kLittleEndian) {
        // The columns would need byte-swapping, defeating zero-copy;
        // the streaming tier still works everywhere.
        return refuse({DecodeErrorKind::Unreadable, 0,
                       "mmap tier requires a little-endian host"});
    }
    if (!TraceFileSource::probe(path, reason))
        return nullptr;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return refuse({DecodeErrorKind::Unreadable, 0, ""});
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return refuse({DecodeErrorKind::Unreadable, 0, "fstat failed"});
    }
    const std::size_t len = static_cast<std::size_t>(st.st_size);
    void *base = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps its own reference
    if (base == MAP_FAILED)
        return refuse({DecodeErrorKind::Unreadable, 0, "mmap failed"});
    // The replay will touch every column front to back; huge pages
    // cut TLB pressure where the kernel supports them for file
    // mappings (harmless where it does not).
    ::madvise(base, len, MADV_WILLNEED);
#ifdef MADV_HUGEPAGE
    ::madvise(base, len, MADV_HUGEPAGE);
#endif
    const std::uint8_t *bytes = static_cast<const std::uint8_t *>(base);
    std::uint64_t count = 0;
    std::memcpy(&count, bytes + 8, sizeof(count));
    const Layout lay = layoutFor(count);
    const std::uint8_t *cols[kNumColumns] = {
        bytes + lay.pcOff, bytes + lay.effAddrOff,
        bytes + lay.targetOff, bytes + lay.metaOff};
    const std::uint64_t widths[kNumColumns] = {8, 8, 8, 1};
    for (std::size_t c = 0; c < kNumColumns; ++c) {
        const std::uint64_t sum = columnChecksum(
            cols[c], static_cast<std::size_t>(count * widths[c]));
        std::uint64_t stored = 0;
        std::memcpy(&stored, bytes + lay.footerOff + 8 * c,
                    sizeof(stored));
        if (sum != stored) {
            ::munmap(base, len);
            return refuse({DecodeErrorKind::ChecksumMismatch,
                           lay.footerOff + 8 * c,
                           detail::concat("column ", c)});
        }
    }
    return std::make_shared<const ColumnarTrace>(
        reinterpret_cast<const Addr *>(cols[0]),
        reinterpret_cast<const Addr *>(cols[1]),
        reinterpret_cast<const Addr *>(cols[2]), cols[3],
        static_cast<std::size_t>(count),
        [base, len] { ::munmap(base, len); });
}

std::shared_ptr<const ColumnarTrace>
readTraceFile(const std::string &path, std::string *reason)
{
    // The streaming analog of mapTraceFile: one pass that freads
    // each column straight into its owned vector and folds the
    // checksum over the same bytes, instead of a verify pass
    // followed by a record-at-a-time gather/scatter round trip.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    const auto refuse = [&](const DecodeError &why)
        -> std::shared_ptr<const ColumnarTrace> {
        if (f)
            std::fclose(f);
        if (reason)
            *reason = why.format();
        return nullptr;
    };
    if (!f)
        return refuse({DecodeErrorKind::Unreadable, 0, ""});
    char magic[4];
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return refuse({DecodeErrorKind::BadMagic, 0, "not a chirp trace"});
    if (!get32(f, version) || version != kTraceFormatVersion)
        return refuse({DecodeErrorKind::BadVersion, 4,
                       detail::concat("version ", version)});
    if (!get64(f, count))
        return refuse(
            {DecodeErrorKind::TruncatedHeader, 8, "no record count"});
    const std::size_t n = static_cast<std::size_t>(count);
    std::uint64_t sums[kNumColumns];
    std::vector<Addr> pc(n), ea(n), tg(n);
    std::vector<std::uint8_t> meta(n);
    Addr *addr_cols[3] = {pc.data(), ea.data(), tg.data()};
    for (std::size_t c = 0; c < 3; ++c) {
        if (n > 0 &&
            std::fread(addr_cols[c], sizeof(Addr), n, f) != n)
            return refuse({DecodeErrorKind::TruncatedColumn,
                           static_cast<std::uint64_t>(std::ftell(f)),
                           detail::concat("column ", c)});
        // The footer covers the on-disk (LE) bytes: fold the sum
        // before any endian fix so it matches the writer's.
        sums[c] = columnChecksum(
            reinterpret_cast<const std::uint8_t *>(addr_cols[c]),
            n * sizeof(Addr));
        fixEndian(addr_cols[c], n);
    }
    if (n > 0 && std::fread(meta.data(), 1, n, f) != n)
        return refuse({DecodeErrorKind::TruncatedColumn,
                       static_cast<std::uint64_t>(std::ftell(f)),
                       "meta column"});
    sums[3] = columnChecksum(meta.data(), n);
    const Layout lay = layoutFor(count);
    if (lay.padBytes > 0 &&
        std::fseek(f, static_cast<long>(lay.padBytes), SEEK_CUR) != 0)
        return refuse({DecodeErrorKind::TruncatedFooter,
                       lay.footerOff, "padding"});
    for (std::size_t c = 0; c < kNumColumns; ++c) {
        std::uint64_t stored = 0;
        if (!get64(f, stored))
            return refuse({DecodeErrorKind::TruncatedFooter,
                           lay.footerOff + 8 * c, ""});
        if (stored != sums[c])
            return refuse({DecodeErrorKind::ChecksumMismatch,
                           lay.footerOff + 8 * c,
                           detail::concat("column ", c)});
    }
    std::fclose(f);
    f = nullptr;
    return std::make_shared<const ColumnarTrace>(
        std::move(pc), std::move(ea), std::move(tg), std::move(meta));
}

} // namespace chirp
