#include "dist/wire.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "util/fault_injection.hh"

namespace chirp::dist
{

namespace
{

bool
validType(std::uint8_t type)
{
    return type >= static_cast<std::uint8_t>(FrameType::Hello) &&
           type <= static_cast<std::uint8_t>(FrameType::Log);
}

/** FNV-1a over the type byte and payload; the frame's integrity tag. */
std::uint32_t
frameSum(std::uint8_t type, std::string_view payload)
{
    std::uint32_t sum = 2166136261u;
    sum = (sum ^ type) * 16777619u;
    for (const char c : payload)
        sum = (sum ^ static_cast<std::uint8_t>(c)) * 16777619u;
    return sum;
}

void
appendLe32(std::string &out, std::uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xff));
    out.push_back(static_cast<char>((value >> 8) & 0xff));
    out.push_back(static_cast<char>((value >> 16) & 0xff));
    out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t
readLe32(const std::uint8_t *raw)
{
    return static_cast<std::uint32_t>(raw[0]) |
           (static_cast<std::uint32_t>(raw[1]) << 8) |
           (static_cast<std::uint32_t>(raw[2]) << 16) |
           (static_cast<std::uint32_t>(raw[3]) << 24);
}

/** Wire header: length, type, checksum. */
constexpr std::size_t kHeaderBytes = 9;

} // namespace

bool
sendFrame(int fd, FrameType type, std::string_view payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    std::string frame;
    frame.reserve(kHeaderBytes + payload.size());
    appendLe32(frame, static_cast<std::uint32_t>(payload.size()));
    frame.push_back(static_cast<char>(type));
    appendLe32(frame,
               frameSum(static_cast<std::uint8_t>(type), payload));
    frame.append(payload);

    // The fault injector may shorten the frame (msg-truncate): the
    // truncated bytes still go out and we still report success, so
    // the faulty worker keeps running against a desynced stream just
    // like a process whose write was torn by a crash.  Heartbeats are
    // exempt so their timing jitter cannot shift which data frame a
    // msg-truncate@N:K action lands on.
    std::size_t want = frame.size();
    if (type != FrameType::Ping)
        want = FaultInjector::instance().onWireSend(frame.size());

    std::size_t sent = 0;
    while (sent < want) {
        const ssize_t n =
            ::write(fd, frame.data() + sent, want - sent);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

FrameReader::Status
FrameReader::feed()
{
    if (corrupt_)
        return Status::Corrupt;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
        return Status::Ok;
    }
    if (n == 0)
        return Status::Eof;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::Ok;
    return Status::Eof; // ECONNRESET and friends: peer is gone
}

bool
FrameReader::next(Frame &out)
{
    if (corrupt_ || buf_.size() < kHeaderBytes)
        return false;
    const auto *raw =
        reinterpret_cast<const std::uint8_t *>(buf_.data());
    const std::uint32_t len = readLe32(raw);
    const std::uint8_t type = raw[4];
    const std::uint32_t sum = readLe32(raw + 5);
    if (len > kMaxFramePayload || !validType(type)) {
        corrupt_ = true;
        return false;
    }
    if (buf_.size() < kHeaderBytes + len)
        return false;
    const std::string_view payload(buf_.data() + kHeaderBytes, len);
    if (frameSum(type, payload) != sum) {
        // A half-written frame whose header survived: the payload is
        // spliced with the next frame's bytes.  Plausible-looking but
        // wrong — drop the connection, never the merge.
        corrupt_ = true;
        return false;
    }
    out.type = static_cast<FrameType>(type);
    out.payload.assign(payload);
    buf_.erase(0, kHeaderBytes + len);
    return true;
}

FrameReader::Status
FrameReader::recv(Frame &out, bool &got_frame, int timeout_ms)
{
    got_frame = false;
    if (next(out)) {
        got_frame = true;
        return Status::Ok;
    }
    if (corrupt_)
        return Status::Corrupt;
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno != EINTR)
        return Status::Eof;
    if (ready <= 0)
        return Status::Ok; // timeout (or EINTR): try again later
    const Status status = feed();
    if (status != Status::Ok)
        return status;
    if (next(out))
        got_frame = true;
    else if (corrupt_)
        return Status::Corrupt;
    return Status::Ok;
}

} // namespace chirp::dist
