/**
 * @file
 * Crash-tolerant distributed sweep fabric (coordinator + workers).
 *
 * A suite run's (workload x policy) job matrix is partitioned by the
 * coordinator into shards of whole workloads — the unit that keeps
 * the record-once/replay-per-policy fast path intact on workers.
 * Worker processes re-execute the same bench binary (same arguments
 * minus the fabric flags, same environment), so they deterministically
 * rebuild the identical suite, factories, and suite-call sequence;
 * each suite call is numbered identically on both sides and workers
 * announce theirs to the coordinator, which replies Begin (claim
 * shards of this suite), or Skip (run it as zeros; the coordinator
 * keeps it local).  Workers execute granted shards through
 * Runner::runSuiteMulti and stream every finished job back as its
 * bit-exact encodeSimStats text; the coordinator merges them into the
 * same result slots, journal, health ledger, and progress ticks a
 * local run would have produced — byte-identical CSVs by
 * construction.
 *
 * Robustness model (at-least-once execution, idempotent merge):
 *  - Shards are leased.  A worker that dies (EOF, protocol garbage,
 *    heartbeat silence) or overruns its lease gets its shard
 *    re-dispatched with exponential backoff; a straggler racing the
 *    re-dispatch is harmless because results are deduplicated per
 *    (suite, workload, policy) before merging.
 *  - After maxShardAttempts dispatches (or with no live workers at
 *    all) a shard falls back to in-process execution on the
 *    coordinator, so a sweep always terminates.
 *  - Every merged job is journaled (fsynced) before the shard is
 *    acked, so a coordinator killed mid-sweep resumes with --resume
 *    exactly like a serial run would; the fsynced shard ledger keeps
 *    the orchestration trail.
 *  - Worker log lines travel over the wire and are printed by the
 *    coordinator prefixed with "[w<id>]", serialized on one stderr.
 *
 * The fabric deliberately knows nothing about simulators: it moves
 * (suite seq, workload index, policy index, payload text) tuples.
 * Runner owns the mapping to real jobs.
 */

#ifndef CHIRP_DIST_FABRIC_HH
#define CHIRP_DIST_FABRIC_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/shard_ledger.hh"
#include "dist/wire.hh"

#include <sys/types.h>

namespace chirp::dist
{

/** Tuning knobs; every one has a CHIRP_DIST_* environment override. */
struct FabricOptions
{
    /** Workloads per shard; 0 sizes shards from the worker count. */
    unsigned shardWorkloads = 0;
    /** Worker heartbeat period. */
    std::uint64_t heartbeatMs = 500;
    /** Silence after which a worker is declared dead. */
    std::uint64_t workerTimeoutMs = 5000;
    /** Shard lease; an overrun lease re-dispatches to another worker. */
    std::uint64_t leaseMs = 30000;
    /** Base re-dispatch backoff, doubled per shard attempt. */
    std::uint64_t backoffMs = 100;
    /** Dispatches per shard before it falls back to local execution. */
    unsigned maxShardAttempts = 3;
    /** Coordinator: also accept external workers on this AF_UNIX path. */
    std::string socketPath;
    /** Shard-ledger sidecar ("" disables it). */
    std::string ledgerPath;
    /** Fingerprint stamped into the shard ledger. */
    std::uint64_t ledgerFingerprint = 0;
    /** Scan an existing matching ledger instead of restarting it. */
    bool ledgerResume = false;
};

/** FabricOptions with CHIRP_DIST_* environment overrides applied. */
FabricOptions fabricOptionsFromEnv();

/** Counters the coordinator reports at the end of a run. */
struct FabricStats
{
    std::uint64_t workersSpawned = 0;
    std::uint64_t workersAttached = 0;
    std::uint64_t workersLost = 0;
    std::uint64_t shardsDispatched = 0;
    std::uint64_t shardsRequeued = 0;
    std::uint64_t shardsLocal = 0;
    std::uint64_t remoteResults = 0;
    std::uint64_t duplicateResults = 0; //!< dropped by the idempotent merge
    std::uint64_t staleResults = 0;     //!< for an already-settled suite
    std::uint64_t remoteTimeouts = 0;   //!< timed-out jobs awaiting requeue
};

/** One remotely executed job, as a worker reported it. */
struct RemoteOutcome
{
    bool ok = false;
    bool timedOut = false;
    bool hung = false;
    unsigned attempts = 0;
    std::uint64_t wallNs = 0;
    /** encodeSimStats text when ok, else the error message. */
    std::string payload;
};

/** One end of the sweep fabric; see the file comment. */
class SweepFabric
{
  public:
    enum class Role
    {
        Coordinator,
        Worker,
    };

    /** The coordinator's verdict on one announced suite call. */
    enum class SuiteRole
    {
        Participate, //!< claim and execute shards of this suite
        Skip,        //!< return zero-filled results immediately
    };

    /**
     * Invoked by the coordinator (on the fabric's service thread, at
     * most once per job, with the runner thread parked inside
     * coordinateSuite) for every remotely completed job.  Must not
     * call back into the fabric.
     */
    using RemoteDelivery = std::function<void(
        std::size_t workload_idx, std::size_t policy_idx,
        const RemoteOutcome &outcome)>;

    /** Coordinator end; spawn or adopt workers afterwards. */
    static std::shared_ptr<SweepFabric>
    makeCoordinator(const FabricOptions &opts);

    /**
     * Worker end speaking over inherited descriptor @p fd as worker
     * @p worker_id.  A worker fabric owns its process: losing the
     * coordinator exits the process (workers are disposable replicas
     * whose only purpose is feeding the coordinator).
     */
    static std::shared_ptr<SweepFabric>
    makeWorker(int fd, unsigned worker_id,
               const FabricOptions &opts = {});

    /** Worker end attaching over the coordinator's AF_UNIX socket. */
    static std::shared_ptr<SweepFabric>
    connectWorker(const std::string &socket_path,
                  const FabricOptions &opts = {});

    ~SweepFabric();

    SweepFabric(const SweepFabric &) = delete;
    SweepFabric &operator=(const SweepFabric &) = delete;

    Role role() const { return role_; }
    bool isCoordinator() const { return role_ == Role::Coordinator; }
    bool isWorker() const { return role_ == Role::Worker; }

    /** This end's worker id (workers only). */
    unsigned workerId() const { return workerId_; }

    /**
     * Next suite-call sequence number.  Coordinator and workers run
     * the same binary and issue the same suite calls in the same
     * order, so counting calls yields matching numbers on both sides.
     */
    std::uint64_t nextSuiteSeq() { return suiteSeq_.fetch_add(1); }

    // ------------------------- coordinator -------------------------

    /**
     * fork/exec one local worker running @p argv with a fresh wire
     * socketpair; "--worker-fd N --worker-id I" are appended to the
     * argv.  False when the spawn failed.
     */
    bool spawnWorker(const std::vector<std::string> &argv);

    /**
     * Adopt an already-connected worker wire (tests fork children
     * around plain socketpairs).  The worker introduces itself via
     * Hello.
     */
    void adoptWorker(int fd);

    /** Workers currently believed alive. */
    std::size_t liveWorkers() const;

    FabricStats stats() const;

    /**
     * Declare suite call @p seq not distributable (observer attached,
     * legacy paths, single-factory runs): workers announcing it are
     * released with Skip.
     */
    void skipSuite(std::uint64_t seq);

    /**
     * Distribute suite call @p seq: shard @p pending_workloads, feed
     * granted shards to announced workers, deliver every remote job
     * through @p deliver, and survive worker deaths per the file
     * comment.  Blocks until every shard is either done remotely or
     * assigned to local fallback; returns the workload indices the
     * caller must now execute in-process (empty in the happy path).
     */
    std::vector<std::size_t>
    coordinateSuite(std::uint64_t seq, std::size_t workloads,
                    std::size_t policies, std::uint64_t fingerprint,
                    const std::vector<std::size_t> &pending_workloads,
                    const RemoteDelivery &deliver);

    // --------------------------- worker ----------------------------

    /**
     * Announce suite call @p seq and block for the coordinator's
     * verdict.  Participate means: execute shards via
     * workerRunSuite.  Exits the process when the coordinator is
     * gone.
     */
    SuiteRole announceSuite(std::uint64_t seq, std::size_t workloads,
                            std::size_t policies,
                            std::uint64_t fingerprint);

    /**
     * Shard execution loop: receive grants for @p seq, run each
     * granted workload through @p run_workload (which must report
     * every job via reportJob), ack with ShardDone, and return when
     * the coordinator settles the suite.
     */
    void workerRunSuite(
        std::uint64_t seq,
        const std::function<void(std::size_t workload_idx)> &run_workload);

    /** Stream one finished job (called from inside run_workload). */
    void reportJob(std::uint64_t seq, std::size_t workload_idx,
                   std::size_t policy_idx, const RemoteOutcome &out);

    /**
     * Worker log sink: forward one line to the coordinator's stderr
     * (falling back to local stderr when the wire is gone).
     */
    void emitLog(const std::string &line);

  private:
    struct WorkerConn;
    struct Shard;
    struct ActiveSuite;

    explicit SweepFabric(Role role);

    // Coordinator internals (all *Locked expect mutex_ held).
    void serviceLoop();
    void wakeService();
    void handleFrameLocked(WorkerConn &conn, const Frame &frame);
    void markDeadLocked(WorkerConn &conn, const std::string &reason);
    void requeueShardLocked(std::size_t shard_idx,
                            const std::string &reason);
    void resolveParkedLocked();
    void checkCompleteLocked();
    void sweepLocked();
    std::size_t liveWorkersLocked() const;

    // Worker internals.
    void heartbeatLoop();
    [[noreturn]] void coordinatorGone(const std::string &why);

    const Role role_;
    FabricOptions opts_;
    std::atomic<std::uint64_t> suiteSeq_{0};

    mutable std::mutex mutex_;
    std::condition_variable cv_;

    // Coordinator state.
    std::vector<std::unique_ptr<WorkerConn>> workers_;
    std::unique_ptr<ActiveSuite> active_;
    // Disposition of every registered suite call.
    enum class Disposition
    {
        Skipped,
        Active,
        Finished,
    };
    std::vector<std::pair<std::uint64_t, Disposition>> dispositions_;
    std::unique_ptr<ShardLedger> ledger_;
    FabricStats stats_;
    unsigned nextWorkerId_ = 0;
    int listenFd_ = -1;
    int selfPipe_[2] = {-1, -1};
    bool stop_ = false;
    bool degraded_ = false; //!< service plumbing failed; run local
    std::thread service_;

    // Worker state.
    int fd_ = -1;
    unsigned workerId_ = 0;
    std::unique_ptr<FrameReader> reader_;
    std::mutex sendMutex_;
    bool shardTimedOut_ = false;
    bool heartbeatStop_ = false;
    std::condition_variable heartbeatCv_;
    std::thread heartbeat_;
};

} // namespace chirp::dist

#endif // CHIRP_DIST_FABRIC_HH
