/**
 * @file
 * Length-prefixed frame protocol for coordinator<->worker wires.
 *
 * Every message is one frame: a 4-byte little-endian payload length,
 * a 1-byte type, a 4-byte little-endian FNV-1a checksum of the type
 * and payload, then a space-separated text payload.  Text keeps the
 * protocol debuggable with strace/hexdump and sidesteps struct
 * padding/endianness concerns; the only binary-sensitive data (the
 * SimStats doubles) already travels as IEEE-754 bit patterns via
 * encodeSimStats.  Frames are small — the largest is a Grant listing
 * a shard's workload indices — so a 16 MiB length cap cleanly
 * separates "peer is ahead of us" from "stream is garbage" after a
 * truncated write desyncs a connection.  The checksum closes the
 * nastier half-write hole: when a torn frame's header survives
 * intact, the bytes of the *next* frame would otherwise splice into
 * its payload and parse as a plausible-but-wrong message; with the
 * checksum, any splice surfaces as Corrupt and the connection (never
 * the data) is what gets dropped.
 */

#ifndef CHIRP_DIST_WIRE_HH
#define CHIRP_DIST_WIRE_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace chirp::dist
{

/** Message types; values are stable wire constants. */
enum class FrameType : std::uint8_t
{
    Hello = 1,     //!< worker -> coordinator: "id <id-or-65535>"
    HelloAck = 2,  //!< coordinator -> worker: "id <assigned id>"
    Announce = 3,  //!< worker: "<seq> <workloads> <policies> <fp>"
    Begin = 4,     //!< coordinator: suite <seq> is distributed
    Skip = 5,      //!< coordinator: run suite <seq> locally (zeros)
    Grant = 6,     //!< coordinator: "<seq> <shard> <w0> <w1> ..."
    Result = 7,    //!< worker: one finished job (see fabric.cc)
    ShardDone = 8, //!< worker: "<seq> <shard> <timedout>"
    SuiteOver = 9, //!< coordinator: suite <seq> settled; move on
    Ping = 10,     //!< worker heartbeat (empty payload)
    Log = 11,      //!< worker: one log line for the shared stderr
};

/** Largest payload a well-formed peer ever sends. */
constexpr std::size_t kMaxFramePayload = 16u << 20;

/**
 * Write one frame to @p fd, looping over partial writes.  Returns
 * false when the peer is gone (EPIPE/EOF) or the write failed; the
 * caller treats that as a dead connection.  Worker processes route
 * sends through FaultInjector::onWireSend, so an armed msg-truncate
 * action cuts the frame short mid-write (and this still returns
 * true: the wire *looks* fine to the faulty worker, exactly like a
 * real half-written crash).
 */
bool sendFrame(int fd, FrameType type, std::string_view payload);

/** One parsed frame. */
struct Frame
{
    FrameType type = FrameType::Ping;
    std::string payload;
};

/**
 * Per-connection incremental parser: feed() pulls whatever bytes are
 * available into an internal buffer, next() extracts complete frames.
 * The coordinator polls many readers; workers block in recv().
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd) : fd_(fd) {}

    int fd() const { return fd_; }

    enum class Status
    {
        Ok,      //!< read some bytes (or would block)
        Eof,     //!< peer closed the connection
        Corrupt, //!< stream desynced (bad type / absurd length)
    };

    /** One read() into the buffer; never blocks longer than read(). */
    Status feed();

    /** Extract one complete frame; false when more bytes are needed. */
    bool next(Frame &out);

    /** Whether the stream has desynced (next() hit garbage). */
    bool corrupt() const { return corrupt_; }

    /**
     * Block up to @p timeout_ms for one frame (worker side).  Returns
     * Ok with @p out filled, Eof, or Corrupt; on timeout returns Ok
     * with @p got_frame false.
     */
    Status recv(Frame &out, bool &got_frame, int timeout_ms);

  private:
    int fd_;
    std::string buf_;
    bool corrupt_ = false;
};

} // namespace chirp::dist

#endif // CHIRP_DIST_WIRE_HH
