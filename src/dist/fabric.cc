#include "dist/fabric.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/fault_injection.hh"
#include "util/logging.hh"
#include "util/subprocess.hh"

namespace chirp::dist
{

namespace
{

using Clock = std::chrono::steady_clock;

Clock::duration
millis(std::uint64_t ms)
{
    return std::chrono::milliseconds(ms);
}

/** Worker id a connectWorker() end sends before it has one. */
constexpr unsigned kUnassignedId = 65535;

/** Poll period of the coordinator service loop. */
constexpr int kServiceTickMs = 50;

/** Worker-side blocking-recv slice (keeps exit latency bounded). */
constexpr int kWorkerRecvMs = 500;

void
envU64(const char *name, std::uint64_t &slot)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end != value && *end == '\0')
        slot = parsed;
}

} // namespace

FabricOptions
fabricOptionsFromEnv()
{
    FabricOptions opts;
    std::uint64_t shard = opts.shardWorkloads;
    std::uint64_t attempts = opts.maxShardAttempts;
    envU64("CHIRP_DIST_SHARD", shard);
    envU64("CHIRP_DIST_HEARTBEAT_MS", opts.heartbeatMs);
    envU64("CHIRP_DIST_WORKER_TIMEOUT_MS", opts.workerTimeoutMs);
    envU64("CHIRP_DIST_LEASE_MS", opts.leaseMs);
    envU64("CHIRP_DIST_BACKOFF_MS", opts.backoffMs);
    envU64("CHIRP_DIST_MAX_ATTEMPTS", attempts);
    opts.shardWorkloads = static_cast<unsigned>(shard);
    opts.maxShardAttempts =
        std::max(1u, static_cast<unsigned>(attempts));
    return opts;
}

/** One worker connection, as the coordinator sees it. */
struct SweepFabric::WorkerConn
{
    WorkerConn(int fd_in, int slot_in)
        : reader(fd_in), fd(fd_in), slot(slot_in),
          lastSeen(Clock::now())
    {
    }

    FrameReader reader;
    int fd;
    int slot; //!< index in workers_ (stable; conns are never erased)
    pid_t pid = -1;
    unsigned id = 0;
    bool alive = true;
    bool helloDone = false;
    Clock::time_point lastSeen;

    // Announce parked until its suite call is registered.
    bool hasPendingAnnounce = false;
    std::uint64_t pendingSeq = 0;
    std::size_t pendingWorkloads = 0;
    std::size_t pendingPolicies = 0;
    std::uint64_t pendingFp = 0;

    // Participation in the currently active suite.
    bool announced = false;
    std::uint64_t announcedSeq = 0;
    int shard = -1; //!< shard index this worker is executing, -1 idle
};

/** One leased unit of work: a contiguous set of workload indices. */
struct SweepFabric::Shard
{
    std::vector<std::size_t> workloads;
    unsigned attempts = 0; //!< dispatches so far
    bool done = false;     //!< all results merged
    bool local = false;    //!< given up on workers; runner executes it
    int owner = -1;        //!< slot of the latest lease holder
    Clock::time_point notBefore{}; //!< backoff gate for re-dispatch
    Clock::time_point leaseExpiry{};
};

struct SweepFabric::ActiveSuite
{
    std::uint64_t seq = 0;
    std::size_t workloads = 0;
    std::size_t policies = 0;
    std::uint64_t fp = 0;
    std::vector<Shard> shards;
    std::vector<char> delivered; //!< per (workload, policy) job
    RemoteDelivery deliver;
    Clock::time_point startedAt;
    bool complete = false;
    bool anyAnnounced = false;
};

SweepFabric::SweepFabric(Role role) : role_(role) {}

std::shared_ptr<SweepFabric>
SweepFabric::makeCoordinator(const FabricOptions &opts)
{
    std::shared_ptr<SweepFabric> fabric(
        new SweepFabric(Role::Coordinator));
    fabric->opts_ = opts;
    ignoreSigpipe();

    if (!opts.ledgerPath.empty()) {
        fabric->ledger_ = std::make_unique<ShardLedger>(
            opts.ledgerPath, opts.ledgerFingerprint,
            opts.ledgerResume);
        if (fabric->ledger_->priorDone() > 0)
            chirp_inform("shard ledger: resuming past ",
                         fabric->ledger_->priorDone(),
                         " settled shard(s)");
    }

    if (::pipe2(fabric->selfPipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
        chirp_warn("sweep fabric: pipe2 failed (",
                   std::strerror(errno),
                   "); degrading to in-process execution");
        fabric->degraded_ = true;
        return fabric;
    }

    if (!opts.socketPath.empty()) {
        std::string error;
        fabric->listenFd_ = listenUnix(opts.socketPath, &error);
        if (fabric->listenFd_ < 0)
            chirp_warn("sweep fabric: cannot listen on '",
                       opts.socketPath, "': ", error);
        else
            ::fcntl(fabric->listenFd_, F_SETFL,
                    ::fcntl(fabric->listenFd_, F_GETFL, 0) |
                        O_NONBLOCK);
    }

    fabric->service_ =
        std::thread(&SweepFabric::serviceLoop, fabric.get());
    return fabric;
}

std::shared_ptr<SweepFabric>
SweepFabric::makeWorker(int fd, unsigned worker_id,
                        const FabricOptions &opts)
{
    std::shared_ptr<SweepFabric> fabric(
        new SweepFabric(Role::Worker));
    fabric->opts_ = opts;
    fabric->fd_ = fd;
    fabric->workerId_ = worker_id;
    fabric->reader_ = std::make_unique<FrameReader>(fd);
    ignoreSigpipe();

    {
        std::lock_guard<std::mutex> lock(fabric->sendMutex_);
        char hello[32];
        std::snprintf(hello, sizeof(hello), "id %u", worker_id);
        if (!sendFrame(fd, FrameType::Hello, hello))
            fabric->coordinatorGone("hello write failed");
    }
    fabric->heartbeat_ =
        std::thread(&SweepFabric::heartbeatLoop, fabric.get());
    return fabric;
}

std::shared_ptr<SweepFabric>
SweepFabric::connectWorker(const std::string &socket_path,
                           const FabricOptions &opts)
{
    std::string error;
    const int fd = connectUnix(socket_path, 10000, &error);
    if (fd < 0) {
        chirp_warn("sweep fabric: cannot attach to '", socket_path,
                   "': ", error);
        return nullptr;
    }
    auto fabric = makeWorker(fd, kUnassignedId, opts);

    // Block for the coordinator-assigned id before doing anything
    // else; every later frame carries it implicitly.
    const auto deadline = Clock::now() + millis(15000);
    while (Clock::now() < deadline) {
        Frame frame;
        bool got = false;
        const auto status =
            fabric->reader_->recv(frame, got, kWorkerRecvMs);
        if (status != FrameReader::Status::Ok)
            fabric->coordinatorGone("lost while attaching");
        if (!got || frame.type != FrameType::HelloAck)
            continue;
        unsigned assigned = 0;
        if (std::sscanf(frame.payload.c_str(), "id %u", &assigned) ==
            1) {
            fabric->workerId_ = assigned;
            return fabric;
        }
    }
    fabric->coordinatorGone("no HelloAck within 15s");
}

SweepFabric::~SweepFabric()
{
    if (role_ == Role::Coordinator) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wakeService();
        cv_.notify_all();
        if (service_.joinable())
            service_.join();
        for (auto &conn : workers_)
            if (conn->fd >= 0)
                ::close(conn->fd);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            ::unlink(opts_.socketPath.c_str());
        }
        for (int fd : selfPipe_)
            if (fd >= 0)
                ::close(fd);
    } else {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            heartbeatStop_ = true;
        }
        heartbeatCv_.notify_all();
        if (heartbeat_.joinable())
            heartbeat_.join();
        if (fd_ >= 0)
            ::close(fd_);
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

void
SweepFabric::wakeService()
{
    if (selfPipe_[1] >= 0) {
        const char byte = 'w';
        [[maybe_unused]] ssize_t n = ::write(selfPipe_[1], &byte, 1);
    }
}

bool
SweepFabric::spawnWorker(const std::vector<std::string> &argv)
{
    if (degraded_)
        return false;
    autoReapChildren();

    int fds[2];
    std::string error;
    if (!makeSocketPair(fds, &error)) {
        chirp_warn("sweep fabric: socketpair failed: ", error);
        return false;
    }

    unsigned id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = nextWorkerId_++;
    }

    std::vector<std::string> full = argv;
    full.push_back("--worker-fd");
    full.push_back(std::to_string(fds[1]));
    full.push_back("--worker-id");
    full.push_back(std::to_string(id));

    const pid_t pid = spawnWithFd(full, fds[1], &error);
    ::close(fds[1]);
    if (pid < 0) {
        ::close(fds[0]);
        chirp_warn("sweep fabric: cannot spawn worker ", id, ": ",
                   error);
        return false;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    auto conn = std::make_unique<WorkerConn>(
        fds[0], static_cast<int>(workers_.size()));
    conn->pid = pid;
    conn->id = id;
    workers_.push_back(std::move(conn));
    ++stats_.workersSpawned;
    wakeService();
    return true;
}

void
SweepFabric::adoptWorker(int fd)
{
    std::lock_guard<std::mutex> lock(mutex_);
    workers_.push_back(std::make_unique<WorkerConn>(
        fd, static_cast<int>(workers_.size())));
    wakeService();
}

std::size_t
SweepFabric::liveWorkersLocked() const
{
    std::size_t live = 0;
    for (const auto &conn : workers_)
        live += conn->alive ? 1 : 0;
    return live;
}

std::size_t
SweepFabric::liveWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return liveWorkersLocked();
}

FabricStats
SweepFabric::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
SweepFabric::skipSuite(std::uint64_t seq)
{
    if (role_ != Role::Coordinator || degraded_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    dispositions_.emplace_back(seq, Disposition::Skipped);
    wakeService();
}

std::vector<std::size_t>
SweepFabric::coordinateSuite(
    std::uint64_t seq, std::size_t workloads, std::size_t policies,
    std::uint64_t fingerprint,
    const std::vector<std::size_t> &pending_workloads,
    const RemoteDelivery &deliver)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (degraded_ || stop_) {
        dispositions_.emplace_back(seq, Disposition::Finished);
        return pending_workloads;
    }
    if (pending_workloads.empty()) {
        dispositions_.emplace_back(seq, Disposition::Finished);
        wakeService();
        return {};
    }

    // Shard size: explicit knob, or enough shards to keep every
    // known worker busy ~4 times over (small shards amortize loss:
    // a kill -9 forfeits one shard's worth of replay work, not a
    // worker's whole share of the suite).
    std::size_t per_shard = opts_.shardWorkloads;
    if (per_shard == 0) {
        const std::size_t known = std::max<std::size_t>(
            1, std::max<std::size_t>(nextWorkerId_,
                                     liveWorkersLocked()));
        const std::size_t target = 4 * known;
        per_shard = std::max<std::size_t>(
            1, (pending_workloads.size() + target - 1) / target);
    }

    auto suite = std::make_unique<ActiveSuite>();
    suite->seq = seq;
    suite->workloads = workloads;
    suite->policies = policies;
    suite->fp = fingerprint;
    suite->delivered.assign(workloads * policies, 0);
    suite->deliver = deliver;
    suite->startedAt = Clock::now();
    for (std::size_t i = 0; i < pending_workloads.size();
         i += per_shard) {
        Shard shard;
        const std::size_t end =
            std::min(pending_workloads.size(), i + per_shard);
        shard.workloads.assign(pending_workloads.begin() + i,
                               pending_workloads.begin() + end);
        suite->shards.push_back(std::move(shard));
    }
    active_ = std::move(suite);
    dispositions_.emplace_back(seq, Disposition::Active);
    wakeService();

    cv_.wait(lock,
             [this] { return stop_ || active_->complete; });

    // Anything not merged remotely comes back to the caller.
    std::vector<std::size_t> leftovers;
    for (const Shard &shard : active_->shards)
        if (!shard.done)
            leftovers.insert(leftovers.end(),
                             shard.workloads.begin(),
                             shard.workloads.end());
    for (auto &entry : dispositions_)
        if (entry.first == seq)
            entry.second = Disposition::Finished;
    active_.reset();
    wakeService(); // release workers parked on later suites
    std::sort(leftovers.begin(), leftovers.end());
    return leftovers;
}

void
SweepFabric::serviceLoop()
{
    std::vector<struct pollfd> pfds;
    std::vector<int> slots; // conn slot per pfd; -1 selfpipe, -2 listen
    while (true) {
        pfds.clear();
        slots.clear();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stop_)
                return;
            sweepLocked();
            pfds.push_back({selfPipe_[0], POLLIN, 0});
            slots.push_back(-1);
            if (listenFd_ >= 0) {
                pfds.push_back({listenFd_, POLLIN, 0});
                slots.push_back(-2);
            }
            for (const auto &conn : workers_) {
                if (!conn->alive || conn->fd < 0)
                    continue;
                pfds.push_back({conn->fd, POLLIN, 0});
                slots.push_back(conn->slot);
            }
        }

        ::poll(pfds.data(), pfds.size(), kServiceTickMs);

        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            return;
        for (std::size_t i = 0; i < pfds.size(); ++i) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            if (slots[i] == -1) {
                char drain[64];
                while (::read(selfPipe_[0], drain, sizeof(drain)) > 0) {
                }
                continue;
            }
            if (slots[i] == -2) {
                const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                         SOCK_CLOEXEC);
                if (fd >= 0)
                    workers_.push_back(std::make_unique<WorkerConn>(
                        fd, static_cast<int>(workers_.size())));
                continue;
            }
            WorkerConn &conn = *workers_[slots[i]];
            if (!conn.alive || conn.fd != pfds[i].fd)
                continue; // replaced/closed since the snapshot
            const auto status = conn.reader.feed();
            Frame frame;
            while (conn.alive && conn.reader.next(frame))
                handleFrameLocked(conn, frame);
            if (!conn.alive)
                continue;
            if (conn.reader.corrupt() ||
                status == FrameReader::Status::Corrupt)
                markDeadLocked(conn, "protocol stream corrupt");
            else if (status == FrameReader::Status::Eof)
                markDeadLocked(conn, "connection closed");
        }
    }
}

void
SweepFabric::handleFrameLocked(WorkerConn &conn, const Frame &frame)
{
    const auto now = Clock::now();
    conn.lastSeen = now;
    switch (frame.type) {
    case FrameType::Hello: {
        unsigned id = 0;
        if (std::sscanf(frame.payload.c_str(), "id %u", &id) != 1) {
            markDeadLocked(conn, "malformed hello");
            return;
        }
        if (id == kUnassignedId) {
            conn.id = nextWorkerId_++;
            ++stats_.workersAttached;
        } else {
            conn.id = id;
            nextWorkerId_ = std::max(nextWorkerId_, id + 1);
            if (conn.pid < 0)
                ++stats_.workersAttached;
        }
        conn.helloDone = true;
        char ack[32];
        std::snprintf(ack, sizeof(ack), "id %u", conn.id);
        if (!sendFrame(conn.fd, FrameType::HelloAck, ack))
            markDeadLocked(conn, "hello-ack write failed");
        return;
    }
    case FrameType::Announce: {
        std::uint64_t seq = 0, fp = 0;
        std::size_t workloads = 0, policies = 0;
        if (std::sscanf(frame.payload.c_str(),
                        "%" SCNu64 " %zu %zu %" SCNx64, &seq,
                        &workloads, &policies, &fp) != 4) {
            markDeadLocked(conn, "malformed announce");
            return;
        }
        conn.hasPendingAnnounce = true;
        conn.pendingSeq = seq;
        conn.pendingWorkloads = workloads;
        conn.pendingPolicies = policies;
        conn.pendingFp = fp;
        resolveParkedLocked();
        return;
    }
    case FrameType::Result: {
        if (!active_)
            return void(++stats_.staleResults);
        std::uint64_t seq = 0, wall = 0;
        std::size_t w = 0, p = 0;
        int ok = 0, timed_out = 0, hung = 0;
        unsigned attempts = 0;
        int off = -1;
        if (std::sscanf(frame.payload.c_str(),
                        "%" SCNu64 " %zu %zu %d %d %d %u %" SCNu64
                        "%n",
                        &seq, &w, &p, &ok, &timed_out, &hung,
                        &attempts, &wall, &off) != 8 ||
            off < 0) {
            markDeadLocked(conn, "malformed result");
            return;
        }
        if (seq != active_->seq || active_->complete ||
            w >= active_->workloads || p >= active_->policies)
            return void(++stats_.staleResults);
        if (timed_out) {
            // Not merged and not marked delivered: the job comes
            // back via shard requeue or the local leftover pass.
            ++stats_.remoteTimeouts;
            return;
        }
        const std::size_t slot = w * active_->policies + p;
        if (active_->delivered[slot])
            return void(++stats_.duplicateResults);
        active_->delivered[slot] = 1;
        ++stats_.remoteResults;
        RemoteOutcome outcome;
        outcome.ok = ok != 0;
        outcome.timedOut = false;
        outcome.hung = hung != 0;
        outcome.attempts = attempts;
        outcome.wallNs = wall;
        const auto payload_off = static_cast<std::size_t>(off);
        if (payload_off + 1 < frame.payload.size())
            outcome.payload = frame.payload.substr(payload_off + 1);
        if (active_->deliver)
            active_->deliver(w, p, outcome);
        return;
    }
    case FrameType::ShardDone: {
        std::uint64_t seq = 0, shard_idx = 0;
        int timed_out = 0;
        if (std::sscanf(frame.payload.c_str(),
                        "%" SCNu64 " %" SCNu64 " %d", &seq,
                        &shard_idx, &timed_out) != 3) {
            markDeadLocked(conn, "malformed shard-done");
            return;
        }
        if (!active_ || seq != active_->seq) {
            conn.shard = -1; // straggler ack for a settled suite
            return;
        }
        if (shard_idx >= active_->shards.size())
            return;
        Shard &shard = active_->shards[shard_idx];
        if (conn.shard == static_cast<int>(shard_idx))
            conn.shard = -1;
        if (shard.owner == conn.slot)
            shard.owner = -1;
        if (shard.done || shard.local)
            return; // late duplicate; results were deduped already
        if (!timed_out) {
            // Clean completion is authoritative no matter who sent
            // it: every job was merged (or deduped) on receipt.
            shard.done = true;
            if (ledger_)
                ledger_->recordDone(seq, shard_idx);
            checkCompleteLocked();
        } else if (shard.owner < 0) {
            // The lease holder itself hit job timeouts; try again
            // elsewhere (or locally once attempts are exhausted).
            requeueShardLocked(static_cast<std::size_t>(shard_idx),
                               "worker reported job timeouts");
        }
        return;
    }
    case FrameType::Ping:
        return;
    case FrameType::Log:
        // The coordinator's stderr is the one serialization point
        // for all worker output; the prefix makes interleaving
        // attributable.
        std::fprintf(stderr, "[w%u] %s\n", conn.id,
                     frame.payload.c_str());
        return;
    default:
        return; // coordinator-bound stream never carries the rest
    }
}

void
SweepFabric::markDeadLocked(WorkerConn &conn,
                            const std::string &reason)
{
    if (!conn.alive)
        return;
    conn.alive = false;
    if (conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
    }
    // A worker hanging up between suites is a normal departure (its
    // main just finished); only mid-suite losses are worth flagging.
    if ((active_ && !active_->complete) || conn.shard >= 0) {
        ++stats_.workersLost;
        chirp_warn("sweep fabric: worker ", conn.id, " lost (",
                   reason, ")");
    }
    if (conn.shard >= 0 && active_ && !active_->complete) {
        Shard &shard =
            active_->shards[static_cast<std::size_t>(conn.shard)];
        if (shard.owner == conn.slot)
            shard.owner = -1;
        if (shard.owner < 0)
            requeueShardLocked(static_cast<std::size_t>(conn.shard),
                               reason);
    }
    conn.shard = -1;
    conn.announced = false;
    conn.hasPendingAnnounce = false;
}

void
SweepFabric::requeueShardLocked(std::size_t shard_idx,
                                const std::string &reason)
{
    Shard &shard = active_->shards[shard_idx];
    if (shard.done || shard.local)
        return;
    shard.owner = -1;
    if (shard.attempts >= opts_.maxShardAttempts) {
        shard.local = true;
        ++stats_.shardsLocal;
        if (ledger_)
            ledger_->recordRequeue(active_->seq, shard_idx,
                                   shard.attempts,
                                   reason + "; going local");
        checkCompleteLocked();
        return;
    }
    const unsigned exponent =
        shard.attempts > 0 ? shard.attempts - 1 : 0;
    shard.notBefore =
        Clock::now() + millis(opts_.backoffMs << exponent);
    ++stats_.shardsRequeued;
    if (ledger_)
        ledger_->recordRequeue(active_->seq, shard_idx,
                               shard.attempts, reason);
}

void
SweepFabric::resolveParkedLocked()
{
    for (auto &conn_ptr : workers_) {
        WorkerConn &conn = *conn_ptr;
        if (!conn.alive || !conn.hasPendingAnnounce)
            continue;
        const Disposition *disposition = nullptr;
        for (const auto &entry : dispositions_)
            if (entry.first == conn.pendingSeq)
                disposition = &entry.second;
        if (!disposition)
            continue; // suite call not reached yet; stay parked
        conn.hasPendingAnnounce = false;
        char payload[32];
        std::snprintf(payload, sizeof(payload), "%" PRIu64,
                      conn.pendingSeq);
        if (*disposition != Disposition::Active || !active_ ||
            active_->seq != conn.pendingSeq || active_->complete) {
            if (!sendFrame(conn.fd, FrameType::Skip, payload))
                markDeadLocked(conn, "skip write failed");
            continue;
        }
        if (conn.pendingFp != active_->fp ||
            conn.pendingWorkloads != active_->workloads ||
            conn.pendingPolicies != active_->policies) {
            // Same suite number, different shape: the worker rebuilt
            // a divergent world (changed binary/env) and its results
            // cannot be trusted to be byte-identical.
            markDeadLocked(conn, "suite fingerprint diverged");
            continue;
        }
        conn.announced = true;
        conn.announcedSeq = conn.pendingSeq;
        active_->anyAnnounced = true;
        if (!sendFrame(conn.fd, FrameType::Begin, payload))
            markDeadLocked(conn, "begin write failed");
    }
}

void
SweepFabric::checkCompleteLocked()
{
    if (!active_ || active_->complete)
        return;
    for (const Shard &shard : active_->shards)
        if (!shard.done && !shard.local)
            return;
    active_->complete = true;
    char payload[32];
    std::snprintf(payload, sizeof(payload), "%" PRIu64,
                  active_->seq);
    for (auto &conn_ptr : workers_) {
        WorkerConn &conn = *conn_ptr;
        if (!conn.alive || !conn.announced ||
            conn.announcedSeq != active_->seq)
            continue;
        if (!sendFrame(conn.fd, FrameType::SuiteOver, payload))
            markDeadLocked(conn, "suite-over write failed");
    }
    cv_.notify_all();
}

void
SweepFabric::sweepLocked()
{
    const auto now = Clock::now();

    for (auto &conn_ptr : workers_) {
        WorkerConn &conn = *conn_ptr;
        if (conn.alive &&
            now - conn.lastSeen > millis(opts_.workerTimeoutMs))
            markDeadLocked(conn, "heartbeat timeout");
    }

    resolveParkedLocked();

    if (!active_ || active_->complete)
        return;

    // Expired leases re-dispatch elsewhere while the straggler (if
    // it is merely slow, not dead) keeps crunching; whichever copy
    // finishes first wins and the loser's results are deduped.
    for (std::size_t i = 0; i < active_->shards.size(); ++i) {
        Shard &shard = active_->shards[i];
        if (!shard.done && !shard.local && shard.owner >= 0 &&
            now > shard.leaseExpiry) {
            const int straggler = shard.owner;
            shard.owner = -1;
            requeueShardLocked(i, "lease expired");
            (void)straggler; // keeps its conn.shard until ShardDone
        }
    }

    // Dispatch ready shards to idle announced workers.
    for (std::size_t i = 0; i < active_->shards.size(); ++i) {
        Shard &shard = active_->shards[i];
        if (shard.done || shard.local || shard.owner >= 0 ||
            now < shard.notBefore)
            continue;
        WorkerConn *idle = nullptr;
        for (auto &conn_ptr : workers_) {
            WorkerConn &conn = *conn_ptr;
            if (conn.alive && conn.announced &&
                conn.announcedSeq == active_->seq &&
                conn.shard < 0) {
                idle = &conn;
                break;
            }
        }
        if (!idle)
            break;
        std::ostringstream grant;
        grant << active_->seq << ' ' << i;
        for (std::size_t w : shard.workloads)
            grant << ' ' << w;
        ++shard.attempts;
        shard.owner = idle->slot;
        shard.leaseExpiry = now + millis(opts_.leaseMs);
        idle->shard = static_cast<int>(i);
        ++stats_.shardsDispatched;
        if (ledger_)
            ledger_->recordDispatch(active_->seq, i, shard.attempts,
                                    idle->id);
        if (!sendFrame(idle->fd, FrameType::Grant, grant.str()))
            markDeadLocked(*idle, "grant write failed");
    }

    // Graceful degradation: with nobody left to feed (or nobody ever
    // showing up), hand everything back to the runner thread.
    bool fall_back = false;
    if (liveWorkersLocked() == 0 &&
        (!workers_.empty() || listenFd_ < 0)) {
        fall_back = true;
    } else if (!active_->anyAnnounced) {
        // Announce grace: generous when live workers exist (they may
        // still be regenerating traces), short when none do.
        const std::uint64_t grace_ms = liveWorkersLocked() > 0
                                           ? opts_.leaseMs
                                           : opts_.workerTimeoutMs;
        fall_back =
            now - active_->startedAt > millis(grace_ms);
    }
    if (fall_back) {
        for (Shard &shard : active_->shards) {
            if (shard.done || shard.local)
                continue;
            shard.owner = -1;
            shard.local = true;
            ++stats_.shardsLocal;
            if (ledger_)
                ledger_->recordRequeue(active_->seq,
                                       &shard - active_->shards.data(),
                                       shard.attempts,
                                       "no workers; going local");
        }
    }

    checkCompleteLocked();
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

void
SweepFabric::heartbeatLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!heartbeatStop_) {
        heartbeatCv_.wait_for(lock, millis(opts_.heartbeatMs));
        if (heartbeatStop_)
            return;
        lock.unlock();
        {
            std::lock_guard<std::mutex> send(sendMutex_);
            if (fd_ >= 0)
                sendFrame(fd_, FrameType::Ping, "");
        }
        lock.lock();
    }
}

void
SweepFabric::coordinatorGone(const std::string &why)
{
    // A worker is a disposable replica; with the coordinator gone
    // there is nobody to feed and nothing worth flushing.
    std::fprintf(stderr,
                 "[w%u] coordinator gone (%s); worker exiting\n",
                 workerId_, why.c_str());
    std::_Exit(0);
}

SweepFabric::SuiteRole
SweepFabric::announceSuite(std::uint64_t seq, std::size_t workloads,
                           std::size_t policies,
                           std::uint64_t fingerprint)
{
    {
        std::lock_guard<std::mutex> send(sendMutex_);
        char payload[96];
        std::snprintf(payload, sizeof(payload),
                      "%" PRIu64 " %zu %zu %016" PRIx64, seq,
                      workloads, policies, fingerprint);
        if (!sendFrame(fd_, FrameType::Announce, payload))
            coordinatorGone("announce write failed");
    }
    // The verdict may take arbitrarily long: the coordinator answers
    // an announce for a future suite only once its own replay
    // reaches that call.  Heartbeats keep us alive meanwhile.
    while (true) {
        Frame frame;
        bool got = false;
        const auto status =
            reader_->recv(frame, got, kWorkerRecvMs);
        if (status == FrameReader::Status::Eof)
            coordinatorGone("connection closed");
        if (status == FrameReader::Status::Corrupt)
            coordinatorGone("stream corrupt");
        if (!got)
            continue;
        std::uint64_t got_seq = 0;
        switch (frame.type) {
        case FrameType::Begin:
            if (std::sscanf(frame.payload.c_str(), "%" SCNu64,
                            &got_seq) == 1 &&
                got_seq == seq)
                return SuiteRole::Participate;
            break;
        case FrameType::Skip:
        case FrameType::SuiteOver:
            if (std::sscanf(frame.payload.c_str(), "%" SCNu64,
                            &got_seq) == 1 &&
                got_seq == seq)
                return SuiteRole::Skip;
            break;
        default:
            break; // HelloAck and leftovers from settled suites
        }
    }
}

void
SweepFabric::workerRunSuite(
    std::uint64_t seq,
    const std::function<void(std::size_t)> &run_workload)
{
    while (true) {
        Frame frame;
        bool got = false;
        const auto status =
            reader_->recv(frame, got, kWorkerRecvMs);
        if (status == FrameReader::Status::Eof)
            coordinatorGone("connection closed");
        if (status == FrameReader::Status::Corrupt)
            coordinatorGone("stream corrupt");
        if (!got)
            continue;
        if (frame.type == FrameType::Grant) {
            std::istringstream in(frame.payload);
            std::uint64_t grant_seq = 0, shard_idx = 0;
            if (!(in >> grant_seq >> shard_idx) || grant_seq != seq)
                continue;
            shardTimedOut_ = false;
            std::size_t w = 0;
            while (in >> w)
                run_workload(w);
            char payload[64];
            std::snprintf(payload, sizeof(payload),
                          "%" PRIu64 " %" PRIu64 " %d", seq,
                          shard_idx, shardTimedOut_ ? 1 : 0);
            std::lock_guard<std::mutex> send(sendMutex_);
            if (!sendFrame(fd_, FrameType::ShardDone, payload))
                coordinatorGone("shard-done write failed");
            continue;
        }
        if (frame.type == FrameType::SuiteOver ||
            frame.type == FrameType::Skip) {
            std::uint64_t got_seq = 0;
            if (std::sscanf(frame.payload.c_str(), "%" SCNu64,
                            &got_seq) == 1 &&
                got_seq == seq)
                return;
        }
    }
}

void
SweepFabric::reportJob(std::uint64_t seq, std::size_t workload_idx,
                       std::size_t policy_idx,
                       const RemoteOutcome &out)
{
    if (out.timedOut)
        shardTimedOut_ = true;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "%" PRIu64 " %zu %zu %d %d %d %u %" PRIu64 " ",
                  seq, workload_idx, policy_idx, out.ok ? 1 : 0,
                  out.timedOut ? 1 : 0, out.hung ? 1 : 0,
                  out.attempts, out.wallNs);
    std::string payload = head;
    payload += out.payload;
    std::lock_guard<std::mutex> send(sendMutex_);
    // A failed send is not fatal here: the shard-done write (or the
    // next recv) notices the dead coordinator and exits the process.
    sendFrame(fd_, FrameType::Result, payload);
}

void
SweepFabric::emitLog(const std::string &line)
{
    if (role_ == Role::Worker && fd_ >= 0) {
        std::lock_guard<std::mutex> send(sendMutex_);
        if (sendFrame(fd_, FrameType::Log, line))
            return;
    }
    std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace chirp::dist
