/**
 * @file
 * Fsynced ledger of shard dispatch/requeue/completion events.
 *
 * The coordinator appends one line per shard state change, fsyncing
 * each, so a coordinator killed mid-sweep leaves a durable record of
 * how far the distributed run got.  Job-level crash recovery rides
 * the RunJournal (workers stream every finished job back and the
 * coordinator journals it before acking the shard); the shard ledger
 * adds the orchestration-level trail — which shards were dispatched
 * to whom, which were requeued and why, which completed — that a
 * --resume run reports and that the resilience tests assert against.
 *
 * Format (plain text, one record per line):
 *
 *   CHIRPSHRD 1 <fingerprint hex16>
 *   S <seq> <shard> <attempt> <worker>    dispatched
 *   R <seq> <shard> <attempt> <reason>    requeued
 *   D <seq> <shard>                       done (results merged)
 */

#ifndef CHIRP_DIST_SHARD_LEDGER_HH
#define CHIRP_DIST_SHARD_LEDGER_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace chirp::dist
{

/** Append-only shard event trail; see the file comment. */
class ShardLedger
{
  public:
    /**
     * Open the ledger at @p path.  With @p resume set, an existing
     * ledger whose fingerprint matches is scanned so priorDone()
     * reports how many shards the interrupted run had already
     * settled; new events append.  On mismatch (or without resume)
     * the ledger restarts empty.
     */
    ShardLedger(std::string path, std::uint64_t fingerprint,
                bool resume);

    ~ShardLedger();

    ShardLedger(const ShardLedger &) = delete;
    ShardLedger &operator=(const ShardLedger &) = delete;

    bool valid() const { return file_ != nullptr; }

    const std::string &path() const { return path_; }

    /** Shards recorded done by the run being resumed. */
    std::size_t priorDone() const { return priorDone_; }

    void recordDispatch(std::uint64_t seq, std::uint64_t shard,
                        unsigned attempt, unsigned worker);
    void recordRequeue(std::uint64_t seq, std::uint64_t shard,
                       unsigned attempt, const std::string &reason);
    void recordDone(std::uint64_t seq, std::uint64_t shard);

  private:
    void append(const std::string &line);

    std::string path_;
    std::FILE *file_ = nullptr;
    std::size_t priorDone_ = 0;
    std::mutex mutex_;
};

} // namespace chirp::dist

#endif // CHIRP_DIST_SHARD_LEDGER_HH
