#include "dist/shard_ledger.hh"

#include <cinttypes>
#include <cstring>

#include <unistd.h>

#include "util/atomic_file.hh"
#include "util/logging.hh"

namespace chirp::dist
{

namespace
{

constexpr char kMagic[] = "CHIRPSHRD";
constexpr unsigned kVersion = 1;

} // namespace

ShardLedger::ShardLedger(std::string path, std::uint64_t fingerprint,
                         bool resume)
    : path_(std::move(path))
{
    bool append_mode = false;
    if (resume) {
        if (std::FILE *in = std::fopen(path_.c_str(), "rb")) {
            char line[256];
            if (std::fgets(line, sizeof(line), in)) {
                char magic[16] = "";
                unsigned version = 0;
                std::uint64_t fp = 0;
                if (std::sscanf(line, "%15s %u %" SCNx64, magic,
                                &version, &fp) == 3 &&
                    std::strcmp(magic, kMagic) == 0 &&
                    version == kVersion && fp == fingerprint) {
                    append_mode = true;
                    while (std::fgets(line, sizeof(line), in)) {
                        if (line[0] == 'D')
                            ++priorDone_;
                    }
                }
            }
            std::fclose(in);
        }
    }
    if (append_mode) {
        file_ = std::fopen(path_.c_str(), "ab");
    } else {
        file_ = std::fopen(path_.c_str(), "wb");
        if (file_) {
            std::fprintf(file_, "%s %u %016" PRIx64 "\n", kMagic,
                         kVersion, fingerprint);
            std::fflush(file_);
            ::fsync(::fileno(file_));
            // New directory entry: flush it so a power cut cannot
            // lose the ledger the resume path depends on.
            fsyncParentDir(path_);
        }
    }
    if (!file_)
        chirp_warn("cannot open shard ledger '", path_, "'");
}

ShardLedger::~ShardLedger()
{
    if (file_)
        std::fclose(file_);
}

void
ShardLedger::append(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return;
    std::fprintf(file_, "%s\n", line.c_str());
    std::fflush(file_);
    ::fsync(::fileno(file_));
}

void
ShardLedger::recordDispatch(std::uint64_t seq, std::uint64_t shard,
                            unsigned attempt, unsigned worker)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "S %" PRIu64 " %" PRIu64 " %u %u", seq, shard,
                  attempt, worker);
    append(buf);
}

void
ShardLedger::recordRequeue(std::uint64_t seq, std::uint64_t shard,
                           unsigned attempt,
                           const std::string &reason)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "R %" PRIu64 " %" PRIu64 " %u %s", seq, shard,
                  attempt, reason.c_str());
    append(buf);
}

void
ShardLedger::recordDone(std::uint64_t seq, std::uint64_t shard)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "D %" PRIu64 " %" PRIu64, seq,
                  shard);
    append(buf);
}

} // namespace chirp::dist
