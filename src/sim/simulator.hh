/**
 * @file
 * The timing-approximate performance model (§V).
 *
 * An in-order pipeline retiring one instruction per cycle plus
 * first-order stalls: i-side and d-side TLB misses (L2 TLB lookup
 * latency and page-walk penalty), cache misses down the three-level
 * hierarchy, and branch mispredictions.  The first
 * `warmupFraction` of the trace warms all structures; statistics
 * cover the remainder.
 */

#ifndef CHIRP_SIM_SIMULATOR_HH
#define CHIRP_SIM_SIMULATOR_HH

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "branch/branch_unit.hh"
#include "mem/cache_hierarchy.hh"
#include "sim/sim_config.hh"
#include "sim/sim_stats.hh"
#include "tlb/tlb_hierarchy.hh"
#include "trace/columnar_trace.hh"
#include "trace/trace_source.hh"

namespace chirp
{

/**
 * Records pulled per TraceSource::nextBatch call in the simulation
 * loop: large enough to amortize the virtual dispatch, small enough
 * (8 KB of records) to stay L1-resident.
 */
constexpr std::size_t kReplayBatch = 256;

/**
 * Thrown out of a simulation whose cancel token fired: the enforcing
 * --job-timeout watchdog sets the token when an attempt overruns its
 * budget, and the runner records the abandoned job as timed out
 * (never retried — it would only time out again).
 */
class JobCancelled : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One processor model instance. */
class Simulator
{
  public:
    /**
     * @param config model parameters
     * @param l2_policy replacement policy for the L2 TLB (owned)
     */
    Simulator(const SimConfig &config,
              std::unique_ptr<ReplacementPolicy> l2_policy);

    /**
     * Simulate @p source to completion (resetting it first) and
     * return measured-phase statistics.
     */
    SimStats run(TraceSource &source);

    /**
     * Multi-process mode: interleave several traces round-robin with
     * a context-switch quantum.  Process i runs under ASID i+1; with
     * @p flush_on_switch the TLBs are flushed at every switch
     * (non-ASID-tagged hardware), otherwise entries of all processes
     * coexist under their ASIDs.  Statistics cover the post-warmup
     * phase of the combined stream.
     */
    SimStats runInterleaved(const std::vector<TraceSource *> &sources,
                            InstCount quantum, bool flush_on_switch);

    /**
     * Replay a pre-recorded L2 event stream instead of re-simulating
     * the full pipeline.  @p events is the L2 access sequence some
     * recording run of @p records captured via
     * TlbHierarchy::setL2EventSink, and @p base that run's statistics.
     *
     * The L1 TLBs, caches and branch unit evolve independently of the
     * L2 replacement policy, so only the L2 (and, for history-based
     * policies, the retire hooks) needs to run per policy; every
     * policy-independent statistic is taken from @p base and the
     * cycle count is reassembled from its policy-independent part
     * plus this policy's L2 stalls.  The result is bit-identical to
     * run() over @p records with the same policy.
     */
    SimStats replayL2(const ColumnarTrace &records,
                      const std::vector<L2Event> &events,
                      const SimStats &base);

    /**
     * Policy-parallel replay: evaluate several policies' table
     * updates in ONE pass over the shared L2 event stream (and, for
     * history-fed policies, the retire stream), instead of one walk
     * per policy.  Each simulator in @p sims is reset and driven with
     * exactly the event/retire interleaving replayL2 would give it,
     * so per-simulator results are bit-identical to calling
     * sims[i]->replayL2(records, events, base) one by one; the win is
     * that the record walk — the bulk of a replay's memory traffic —
     * is amortized over all policies.  Simulators may differ in
     * policy and warmup fraction; retire-blind lanes simply skip the
     * retire hooks.  Throws only on misuse (empty @p sims entries).
     */
    static std::vector<SimStats>
    replayL2Multi(const std::vector<Simulator *> &sims,
                  const ColumnarTrace &records,
                  const std::vector<L2Event> &events,
                  const SimStats &base);

    /** The TLB hierarchy (inspection in tests/examples). */
    TlbHierarchy &tlbs() { return *tlbs_; }
    const TlbHierarchy &tlbs() const { return *tlbs_; }

    BranchUnit &branches() { return branch_; }
    CacheHierarchy &caches() { return caches_; }

    const SimConfig &config() const { return config_; }

    /**
     * Attach a cooperative cancel token: run/replayL2 poll it every
     * few thousand records and abandon the simulation with
     * JobCancelled once it reads true.  nullptr (the default)
     * disables polling.  The token must outlive the simulation.
     */
    void setCancelToken(const std::atomic<bool> *token)
    {
        cancel_ = token;
    }

  private:
    /** Simulate one instruction; returns its cycle cost. */
    Cycles step(const TraceRecord &rec, std::uint64_t now);

    /** Throw JobCancelled when the attached token has fired. */
    void checkCancelled() const;

    /** Shared implementation of run/runInterleaved. */
    SimStats runImpl(const std::vector<TraceSource *> &sources,
                     InstCount quantum, bool flush_on_switch);

    Asid activeAsid_ = 0;

    const std::atomic<bool> *cancel_ = nullptr;

    SimConfig config_;
    std::unique_ptr<TlbHierarchy> tlbs_;
    CacheHierarchy caches_;
    BranchUnit branch_;
};

} // namespace chirp

#endif // CHIRP_SIM_SIMULATOR_HH
