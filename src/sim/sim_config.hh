/**
 * @file
 * Top-level simulation configuration — the programmatic form of the
 * paper's Table II.
 */

#ifndef CHIRP_SIM_SIM_CONFIG_HH
#define CHIRP_SIM_SIM_CONFIG_HH

#include "branch/branch_unit.hh"
#include "mem/cache_hierarchy.hh"
#include "tlb/tlb_hierarchy.hh"

namespace chirp
{

/** Full processor model configuration (defaults = Table II). */
struct SimConfig
{
    CacheHierarchyConfig caches;
    BranchUnitConfig branch;
    TlbHierarchyConfig tlbs;

    /** L2 TLB miss penalty (the paper's main results use 150). */
    Cycles pageWalkLatency = 150;

    /**
     * Model the cache hierarchy and branch predictors?  They only
     * affect timing, not TLB behaviour, so MPKI-only studies disable
     * them for speed.
     */
    bool simulateCaches = true;
    bool simulateBranch = true;

    /**
     * Fraction of the trace used to warm microarchitectural state
     * before measurement begins (paper: the first half).
     */
    double warmupFraction = 0.5;
};

} // namespace chirp

#endif // CHIRP_SIM_SIM_CONFIG_HH
